"""Experiment C2 (Section 3.1 / ref [21]): schedule synthesis belongs in
the backend.

Sweep the task-set size; synthesize the time-triggered table on the OEM
backend and on a 200 MHz ECU.  Report synthesis wall time (simulated) and
the speedup; backend tables additionally pass simulation validation
before release.
"""

from __future__ import annotations

import pytest

from _tables import fmt_ratio, print_table
from repro.core import ComputeSite, ScheduleManagementFramework
from repro.hw import EcuSpec
from repro.sim import RngStreams, Simulator
from repro.workloads import synthetic_task_set


def synthesize_at(tasks, site, validate):
    sim = Simulator()
    framework = ScheduleManagementFramework(sim)
    outcomes = []
    framework.synthesize(tasks, site, validate=validate).add_callback(
        outcomes.append
    )
    sim.run()
    return outcomes[0]


@pytest.mark.benchmark(group="c2")
def test_c2_backend_synthesis(benchmark):
    sizes = (4, 8, 16, 24)
    backend = ComputeSite.backend()
    legacy = ComputeSite.on_ecu(EcuSpec("legacy", cpu_mhz=200.0))

    def sweep():
        rows = []
        for n in sizes:
            tasks = synthetic_task_set(
                RngStreams(7), n, 0.5, stream=f"c2.{n}",
            )
            cloud = synthesize_at(tasks, backend, validate=True)
            onboard = synthesize_at(tasks, legacy, validate=False)
            rows.append((n, cloud, onboard))
        return rows

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for n, cloud, onboard in results:
        rows.append((
            n,
            f"{cloud.total_time * 1e3:.3f} ms",
            f"{onboard.total_time * 1e3:.3f} ms",
            fmt_ratio(onboard.total_time, cloud.total_time),
            "yes" if cloud.validated else "no",
            "yes" if cloud.feasible else "no",
        ))
    print_table(
        "C2: TT table synthesis, backend vs on-ECU",
        ["#tasks", "backend", "on-ECU", "slowdown", "validated", "feasible"],
        rows,
    )
    for n, cloud, onboard in results:
        assert cloud.feasible == onboard.feasible
        if cloud.feasible:
            assert cloud.validated  # backend tables are simulation-tested
        # the backend is orders of magnitude faster
        assert onboard.synthesis_time > cloud.synthesis_time * 100
