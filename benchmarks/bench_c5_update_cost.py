"""Experiment C5 (Section 3.2): the resource cost of staged updates.

"The disadvantage of such an update is of course the additional amount of
resources required in the update process, as every application to be
updated needs to be instantiated twice."

Sweep the app's memory footprint; measure the node's peak memory during a
staged vs a stop-restart update, and the peak/steady ratio.
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.core import DynamicPlatform, UpdateOrchestrator
from repro.hw import centralized_topology
from repro.model import AppModel, Asil
from repro.osal import TaskSpec
from repro.security import TrustStore, build_package
from repro.sim import Simulator


def app_of(memory_kib: float, version=(1, 0)):
    return AppModel(
        name="subject",
        tasks=(TaskSpec(name="subject_loop", period=0.01, wcet=0.0005),),
        asil=Asil.C, memory_kib=memory_kib, image_kib=256, version=version,
    )


def run_update(memory_kib: float, strategy: str):
    sim = Simulator()
    store = TrustStore()
    store.generate_key("oem")
    platform = DynamicPlatform(
        sim, centralized_topology(n_platforms=1), trust_store=store
    )
    orchestrator = UpdateOrchestrator(platform)
    platform.install(build_package(app_of(memory_kib), store, "oem"), "platform_0")
    sim.run()
    platform.start_app("subject", "platform_0")
    node = platform.node("platform_0")
    steady = node.state.memory_used_kib
    peak = [steady]

    def sample():
        peak[0] = max(peak[0], node.state.memory_used_kib)
        if sim.now < 2.0:
            sim.schedule(0.005, sample)

    sample()
    new_pkg = build_package(app_of(memory_kib, (1, 1)), store, "oem")
    if strategy == "staged":
        sim.at(0.1, lambda: orchestrator.staged_update(
            "subject", "platform_0", new_pkg, startup_latency=0.05))
    else:
        sim.at(0.1, lambda: orchestrator.stop_update_restart(
            "subject", "platform_0", new_pkg))
    sim.run(until=2.1)
    return steady, peak[0]


@pytest.mark.benchmark(group="c5")
def test_c5_update_cost(benchmark):
    sizes = (64.0, 1024.0, 16384.0)

    def sweep():
        out = []
        for size in sizes:
            s_steady, s_peak = run_update(size, "staged")
            r_steady, r_peak = run_update(size, "stop_restart")
            out.append((size, s_steady, s_peak, r_peak))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for size, steady, staged_peak, restart_peak in results:
        rows.append((
            f"{size:.0f}", f"{steady:.0f}", f"{staged_peak:.0f}",
            f"{staged_peak / steady:.2f}x", f"{restart_peak:.0f}",
        ))
    print_table(
        "C5: peak node memory during update (KiB)",
        ["app KiB", "steady", "staged peak", "staged ratio", "restart peak"],
        rows,
    )
    for size, steady, staged_peak, restart_peak in results:
        # the paper's 2x: both instances resident simultaneously
        assert staged_peak == pytest.approx(2 * steady, rel=0.01)
        # stop/restart never holds both
        assert restart_peak <= steady * 1.01
