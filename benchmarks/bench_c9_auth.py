"""Experiment C9 (Section 4.2): model-derived access control and
lightweight authentication.

* the ACL extracted from the reference system model blocks every binding
  that is not declared in the model (D4), while a permissive baseline
  lets an undeclared app bind to anything;
* the auth handshake adds a bounded one-time latency per (client,
  service) session; established sessions add none;
* wildcard clients (the data logger) are tracked and revocable at
  runtime.
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.errors import SecurityError
from repro.hw import centralized_topology
from repro.model import generate_config
from repro.security import (
    AccessControlMatrix,
    AuthBroker,
    TrustStore,
    permissive_matrix,
)
from repro.sim import Simulator
from repro.workloads import reference_system


def binding_matrix(acm, config, apps, interfaces):
    """Count allowed bindings for (app, interface) pairs."""
    allowed = 0
    total = 0
    for app in apps:
        for interface in interfaces:
            total += 1
            if acm.allows(app, config.service_id(interface)):
                allowed += 1
    return allowed, total


@pytest.mark.benchmark(group="c9")
def test_c9_auth(benchmark):
    model = reference_system(centralized_topology())
    config = generate_config(model)
    app_names = [a.name for a in model.apps]
    interface_names = [i.name for i in model.interfaces]

    def sweep():
        out = {}
        derived = AccessControlMatrix.from_config(config)
        out["model_derived"] = binding_matrix(
            derived, config, app_names, interface_names
        )
        out["permissive"] = binding_matrix(
            permissive_matrix(), config, app_names, interface_names
        )
        # attack probe: media_server tries to command the brakes
        brake_sid = config.service_id("brake_request")
        out["brake_attack_blocked"] = not derived.allows("media_server", brake_sid)
        # wildcard logger
        derived.grant_wildcard("data_logger")
        out["logger_sees_all"] = all(
            derived.allows("data_logger", config.service_id(i))
            for i in interface_names
        )
        out["wildcard_holders"] = list(derived.wildcard_holders)
        derived.revoke_wildcard("data_logger")
        out["logger_after_revoke"] = derived.allows("data_logger", brake_sid)
        # auth handshake latency
        sim = Simulator()
        store = TrustStore()
        store.generate_key("acc_key")
        broker = AuthBroker(sim, store)
        broker.set_authorizer(derived.as_authorizer())
        latencies = []
        tokens = []
        acc_sid = config.service_id("object_list")
        broker.establish_session("acc", "acc_key", acc_sid).add_callback(
            lambda t: (latencies.append(sim.now), tokens.append(t))
        )
        sim.run()
        out["handshake_latency"] = latencies[0]
        out["token_issued"] = tokens[0] is not None
        # per-message validation is a pure lookup: no simulated time
        t0 = sim.now
        assert broker.validate(tokens[0], acc_sid)
        out["validate_cost"] = sim.now - t0
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    allowed, total = out["model_derived"]
    p_allowed, p_total = out["permissive"]
    rows = [
        ("model-derived ACL", f"{allowed}/{total}", "least privilege"),
        ("permissive (Android-style)", f"{p_allowed}/{p_total}", "everything open"),
        ("brake attack", "blocked" if out["brake_attack_blocked"] else "ALLOWED", ""),
        ("auth handshake", f"{out['handshake_latency'] * 1e3:.3f} ms", "one-time"),
        ("per-message validate", f"{out['validate_cost'] * 1e3:.3f} ms", "per call"),
    ]
    print_table(
        "C9: access control & authentication",
        ["item", "value", "note"],
        rows,
        width=24,
    )
    assert allowed < total * 0.5  # least privilege: most pairs denied
    assert p_allowed == p_total
    assert out["brake_attack_blocked"]
    assert out["logger_sees_all"]
    assert out["wildcard_holders"] == ["data_logger"]
    assert not out["logger_after_revoke"]
    assert out["token_issued"]
    assert 0 < out["handshake_latency"] < 0.01
    assert out["validate_cost"] == 0.0
