#!/usr/bin/env python
"""Recovery benchmark: crash/resume latency, chaos overhead, identity.

Measures the :mod:`repro.exec.recovery` layer end to end on a fleet
campaign and writes ``BENCH_recovery.json`` at the repo root:

* **clean** — the uninterrupted parallel baseline every other section
  compares against (digest and wall-clock).
* **chaos** — the same campaign with :class:`repro.exec.ExecChaos`
  SIGKILLing and EOF-ing workers on a fixed schedule.  The digest must
  stay byte-identical (supervision is invisible to results) and the
  **redispatch overhead** — chaos wall-clock over clean wall-clock,
  minus one — is gated against the committed ceiling on multi-core
  runners.
* **crash_resume** — a checkpointed run killed ~60 % through by an
  injected checkpoint-write crash, then finished via
  :func:`resume_campaign`.  Reports recovery latency (resume
  wall-clock), how many shards were loaded vs. recomputed, and digest
  identity with the clean baseline.
* **checkpoint** — the durability tax: a checkpointed clean run vs. the
  uncheckpointed baseline (advisory, never gated).

Usage::

    PYTHONPATH=src python benchmarks/bench_recovery.py           # full run
    PYTHONPATH=src python benchmarks/bench_recovery.py --smoke   # CI-sized

Pass ``--gate-recovery BENCH_recovery.json`` to gate against the
committed report: any digest divergence fails unconditionally;
redispatch overhead above the committed ceiling fails too, but only on
multi-core runners (a single-core runner serialises respawns and would
gate on hardware, not regressions).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import shutil
import sys
import tempfile
from time import perf_counter

sys.path.insert(0, os.path.dirname(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

from repro.core.campaign import plan_waves  # noqa: E402
from repro.exec import ExecChaos, ParallelExecutor  # noqa: E402
from repro.exec.recovery import (  # noqa: E402
    CheckpointCrash,
    CheckpointSpec,
    FaultPoints,
    resume_campaign,
)
from repro.fleet import (  # noqa: E402
    FleetCampaignSpec,
    FleetSpec,
    run_fleet_campaign,
)

STAGES = (0.05, 0.3, 1.0)
SHARD_SIZE = 25


def _spec(size: int) -> FleetCampaignSpec:
    return FleetCampaignSpec(
        fleet=FleetSpec(name="bench_rec", size=size, master_seed=29,
                        soak_time=0.02),
        stages=STAGES,
        shard_size=SHARD_SIZE,
    )


def _total_shards(size: int) -> int:
    return sum(
        -(-(stop - start) // SHARD_SIZE)
        for start, stop in plan_waves(size, stages=STAGES)
    )


def _canonical(digest) -> str:
    return json.dumps(digest, sort_keys=True)


def _pool(workers: int, *, chaos=None) -> ParallelExecutor:
    # chunk_size=1 (one shard job per dispatch) for *every* pool so the
    # chaos sections compare apples to apples with the clean baseline —
    # and so the kill/EOF schedule, which counts dispatches, actually
    # fires on the small smoke configuration
    return ParallelExecutor(
        workers=workers,
        master_seed=0,
        chunk_size=1,
        heartbeat_period=0.1 if chaos is not None else 0.0,
        heartbeat_timeout=10.0 if chaos is not None else None,
        max_redispatches=8,
        shutdown_grace=1.0,
        chaos=chaos,
    )


def _ckpt_records(directory: str) -> int:
    return sum(1 for n in os.listdir(directory) if n.endswith(".ckpt"))


# -- clean: the uninterrupted parallel baseline --------------------------


def bench_clean(size: int, workers: int, repeats: int) -> dict:
    """Min-of-``repeats`` so the smoke-sized overhead comparison is not
    at the mercy of one noisy sub-second measurement."""
    pool = _pool(workers)
    try:
        pool.warm_up()
        elapsed = []
        for _ in range(repeats):
            gc.collect()
            start = perf_counter()
            result = run_fleet_campaign(_spec(size), executor=pool)
            elapsed.append(perf_counter() - start)
    finally:
        pool.close()
    best = min(elapsed)
    return {
        "vehicles": size,
        "workers": workers,
        "repeats": repeats,
        "seconds": round(best, 2),
        "vehicles_per_sec": round(size / best, 1),
        "digest": _canonical(result.campaign_digest),
    }


# -- chaos: kills + EOFs, digest identity, redispatch overhead ------------


def bench_chaos(size: int, workers: int, repeats: int, clean: dict) -> dict:
    chaos = ExecChaos(seed=17, kill_every=25, eof_every=33)
    pool = _pool(workers, chaos=chaos)
    try:
        pool.warm_up()
        elapsed = []
        identical = True
        for _ in range(repeats):
            gc.collect()
            start = perf_counter()
            result = run_fleet_campaign(_spec(size), executor=pool)
            elapsed.append(perf_counter() - start)
            identical = identical and (
                _canonical(result.campaign_digest) == clean["digest"]
            )
        counters = pool.supervisor.snapshot()["counter"]
    finally:
        pool.close()
    best = min(elapsed)
    overhead = best / clean["seconds"] - 1.0 if clean["seconds"] else 0.0
    return {
        "vehicles": size,
        "workers": workers,
        "repeats": repeats,
        "seconds": round(best, 2),
        "workers_killed": chaos.kills,
        "pipe_eofs_injected": chaos.eofs,
        "redispatches": counters["pool.supervisor.redispatches"]["value"],
        "worker_restarts": counters["pool.supervisor.restarts"]["value"],
        "redispatch_overhead": round(max(overhead, 0.0), 4),
        # committed ceiling the CI gate enforces on multi-core runners
        "redispatch_overhead_ceiling": 0.15,
        "results_identical": identical,
    }


# -- crash_resume: checkpointed run killed mid-flight, then resumed -------


def bench_crash_resume(size: int, workers: int, clean: dict) -> dict:
    total = _total_shards(size)
    crash_after = int(total * 0.6)
    directory = tempfile.mkdtemp(prefix="bench_recovery_")
    try:
        pool = _pool(workers)
        try:
            pool.warm_up()
            start = perf_counter()
            crashed = False
            try:
                run_fleet_campaign(
                    _spec(size), executor=pool,
                    checkpoint=CheckpointSpec(directory),
                    fault_points=FaultPoints().arm(
                        "checkpoint.record_written", after=crash_after
                    ),
                )
            except CheckpointCrash:
                crashed = True
            crash_seconds = perf_counter() - start
        finally:
            pool.close()
        durable = _ckpt_records(directory)

        resume_pool = _pool(workers)
        try:
            resume_pool.warm_up()
            gc.collect()
            start = perf_counter()
            result = resume_campaign(directory, executor=resume_pool)
            recovery_seconds = perf_counter() - start
        finally:
            resume_pool.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return {
        "vehicles": size,
        "workers": workers,
        "total_shards": total,
        "crashed_mid_flight": crashed,
        "crash_seconds": round(crash_seconds, 2),
        "shards_durable_at_crash": durable,
        "shards_recomputed": total - durable,
        "recovery_seconds": round(recovery_seconds, 2),
        "recovery_fraction_of_clean": round(
            recovery_seconds / clean["seconds"], 3
        ) if clean["seconds"] else None,
        "results_identical": _canonical(result.campaign_digest)
        == clean["digest"],
    }


# -- checkpoint: the durability tax (advisory) ----------------------------


def bench_checkpoint_overhead(size: int, workers: int, clean: dict) -> dict:
    directory = tempfile.mkdtemp(prefix="bench_recovery_ckpt_")
    try:
        pool = _pool(workers)
        try:
            pool.warm_up()
            gc.collect()
            start = perf_counter()
            result = run_fleet_campaign(
                _spec(size), executor=pool,
                checkpoint=CheckpointSpec(directory),
            )
            elapsed = perf_counter() - start
        finally:
            pool.close()
        records = _ckpt_records(directory)
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    overhead = elapsed / clean["seconds"] - 1.0 if clean["seconds"] else 0.0
    return {
        "vehicles": size,
        "seconds": round(elapsed, 2),
        "records_written": records,
        "checkpoint_overhead": round(max(overhead, 0.0), 4),
        "results_identical": _canonical(result.campaign_digest)
        == clean["digest"],
    }


# -- report plumbing ------------------------------------------------------


def _environment() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def _write(path: str, payload: dict) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {path}")


def _load_ceiling(path):
    with open(path) as fh:
        committed = json.load(fh)
    return committed.get("chaos", {}).get("redispatch_overhead_ceiling")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small configs for CI smoke runs")
    parser.add_argument("--out-dir", default=REPO_ROOT,
                        help="directory for BENCH_recovery.json "
                             "(default: repo root)")
    parser.add_argument(
        "--gate-recovery", metavar="PATH", default=None,
        help="committed BENCH_recovery.json to gate against: any digest "
             "divergence fails unconditionally; redispatch overhead "
             "above the committed ceiling fails on multi-core runners")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool size (default: min(4, cpu_count); note that "
             "workers=1 runs inline, so chaos injection never fires)")
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    size = 600 if args.smoke else 10_000
    workers = args.workers or min(4, os.cpu_count() or 1)
    ceiling = (_load_ceiling(args.gate_recovery)
               if args.gate_recovery else None)

    repeats = 3 if args.smoke else 1

    print(f"clean baseline ({mode}, {size:,} vehicles, w{workers})...")
    clean = bench_clean(size, workers, repeats)
    print(f"  {clean['seconds']}s ({clean['vehicles_per_sec']:,}/s)")

    print(f"\nchaos run ({mode})...")
    chaos = bench_chaos(size, workers, repeats, clean)
    print(
        f"  {chaos['workers_killed']} kills, "
        f"{chaos['pipe_eofs_injected']} EOFs, overhead "
        f"{chaos['redispatch_overhead']:.1%}, identical="
        f"{chaos['results_identical']}"
    )

    print(f"\ncrash + resume ({mode})...")
    resume = bench_crash_resume(size, workers, clean)
    print(
        f"  crashed with {resume['shards_durable_at_crash']}/"
        f"{resume['total_shards']} shards durable; resumed in "
        f"{resume['recovery_seconds']}s "
        f"({resume['shards_recomputed']} shards recomputed), identical="
        f"{resume['results_identical']}"
    )

    print(f"\ncheckpoint overhead ({mode})...")
    checkpoint = bench_checkpoint_overhead(size, workers, clean)
    print(
        f"  {checkpoint['records_written']} records, overhead "
        f"{checkpoint['checkpoint_overhead']:.1%} (advisory)"
    )

    clean_public = {k: v for k, v in clean.items() if k != "digest"}
    _write(os.path.join(args.out_dir, "BENCH_recovery.json"), {
        "environment": _environment(),
        "mode": mode,
        "clean": clean_public,
        "chaos": chaos,
        "crash_resume": resume,
        "checkpoint": checkpoint,
    })

    failures = []
    for name, section in (("chaos", chaos), ("crash_resume", resume),
                          ("checkpoint", checkpoint)):
        if not section["results_identical"]:
            failures.append(f"{name}: digest diverged from clean baseline")
    if not resume["crashed_mid_flight"]:
        failures.append("crash_resume: injected crash never fired")
    if workers > 1 and chaos["workers_killed"] == 0:
        failures.append("chaos: the kill schedule never fired")
    if resume["shards_recomputed"] <= 0:
        failures.append("crash_resume: nothing was left to recompute")
    if ceiling is not None and (os.cpu_count() or 1) >= 2:
        if chaos["redispatch_overhead"] > ceiling:
            failures.append(
                f"redispatch overhead {chaos['redispatch_overhead']:.1%} "
                f"exceeds the committed ceiling {ceiling:.0%}"
            )
    if failures:
        print("\nFAILED: " + "; ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
