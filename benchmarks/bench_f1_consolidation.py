"""Experiment F1 (Figure 1 / Section 1): ECU consolidation.

Claim: consolidating the federated one-function-per-ECU architecture onto
a small number of dynamic-platform computers cuts ECU count and hardware
cost while keeping every deterministic task set schedulable.

For a growing number of vehicle functions we build (a) the federated
baseline (one ECU per app) and (b) a consolidated deployment found by
first-fit onto platform computers, verify both, and compare ECU count and
cost.
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.baselines import federated_deployment
from repro.hw import centralized_topology
from repro.model import Deployment, SystemModel, verify
from repro.osal import Criticality, first_fit_partition
from repro.sim import RngStreams
from repro.workloads import synthetic_app_set


def consolidate(apps, topology):
    """First-fit the apps onto the platform computers of ``topology``."""
    platform_specs = [e for e in topology.ecus if e.name.startswith("platform")]
    deployment = Deployment()
    # treat each core of each platform computer as a bin
    bins = []
    for spec in platform_specs:
        for core in range(spec.cores):
            bins.append((spec, core, []))
    for app in sorted(apps, key=lambda a: a.utilization, reverse=True):
        det_tasks = [
            t for t in app.tasks if t.criticality is Criticality.DETERMINISTIC
        ]
        placed = False
        for spec, core, resident in bins:
            existing = [t for a in resident for t in a.tasks]
            combined = existing + list(app.tasks)
            utilization = sum(t.utilization for t in combined) / spec.speed_factor
            if utilization <= 0.7:
                resident.append(app)
                deployment.place(app.name, spec.name, core)
                placed = True
                break
        if not placed:
            head = [e for e in topology.ecus if e.name == "head_unit"]
            if head and not app.is_deterministic:
                deployment.place(app.name, "head_unit", 0)
                placed = True
        if not placed:
            return None
    return deployment


def run_f1(n_functions: int, seed: int = 42):
    apps = synthetic_app_set(
        RngStreams(seed), n_functions, det_fraction=0.6,
        utilization_per_app=0.06,
    )
    federated_topo, federated_dep = federated_deployment(apps)
    central_topo = centralized_topology(n_platforms=2)
    central_dep = consolidate(apps, central_topo)
    # verification of the consolidated mapping
    model = SystemModel(central_topo)
    for app in apps:
        model.add_app(app)
    ok = False
    if central_dep is not None:
        ok = verify(model, central_dep).ok
    # the zone sensors and head unit exist in both worlds; compare only
    # the function-hosting boxes
    federated_boxes = len(apps)
    central_boxes = len(
        {central_dep.ecu_of(a.name) for a in apps}
    ) if central_dep else None
    federated_cost = sum(
        federated_topo.ecu(f"ecu_{a.name}").unit_cost for a in apps
    )
    central_cost = (
        # sorted: float addition is order-sensitive, and set order is not
        # stable across processes under hash randomisation
        sum(
            central_topo.ecu(name).unit_cost
            for name in sorted({central_dep.ecu_of(a.name) for a in apps})
        )
        if central_dep
        else None
    )
    return {
        "functions": n_functions,
        "federated_ecus": federated_boxes,
        "central_ecus": central_boxes,
        "federated_cost": federated_cost,
        "central_cost": central_cost,
        "central_ok": ok,
    }


@pytest.mark.benchmark(group="f1")
def test_f1_consolidation(benchmark):
    rows = []

    def sweep():
        results = [run_f1(n) for n in (10, 20, 30, 40, 60)]
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for r in results:
        rows.append((
            r["functions"], r["federated_ecus"], r["central_ecus"],
            f"{r['federated_cost']:.0f}", f"{r['central_cost']:.0f}",
            "yes" if r["central_ok"] else "NO",
        ))
    print_table(
        "F1: ECU consolidation (federated vs dynamic platform)",
        ["#functions", "fed ECUs", "central ECUs", "fed cost", "central cost",
         "verified"],
        rows,
    )
    final = results[-1]
    assert final["central_ecus"] is not None
    assert final["central_ecus"] < final["federated_ecus"] / 3
    assert final["central_cost"] < final["federated_cost"]
    assert final["central_ok"]
