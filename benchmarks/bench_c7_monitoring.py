"""Experiment C7 (Section 3.4): runtime monitoring.

A fault-injection matrix is run against the runtime monitor: deadline
overruns, period drift and jitter violations are injected into task
behaviour; the monitor must detect each kind, record the conditions and
ship the reports to the backend.  Overhead is reported as trace events
processed per simulated second.
"""

from __future__ import annotations

import pytest

from _tables import print_obs_digest, print_table
from repro.core import BackendLink, RuntimeMonitor
from repro.obs import KernelProfiler, MetricsRegistry
from repro.osal import Core, FixedPriorityPolicy, PeriodicSource, TaskSpec
from repro.sim import RngStreams, Simulator, Tracer

DURATION = 2.0


def run_scenario(kind: str):
    tracer = Tracer()
    sim = Simulator(
        tracer=tracer, metrics=MetricsRegistry(), profiler=KernelProfiler()
    )
    backend = BackendLink(sim, uplink_latency=0.2)
    monitor = RuntimeMonitor(sim, backend=backend, period_drift_tolerance=0.2)
    core = Core(sim, "c", 1.0, FixedPriorityPolicy())
    streams = RngStreams(11)

    victim = TaskSpec(
        name="victim", period=0.01, wcet=0.002, deadline=0.006,
        jitter_tolerance=0.0015,
    )
    monitor.watch(victim)

    if kind == "healthy":
        PeriodicSource(sim, core, victim, horizon=DURATION)
    elif kind == "deadline":
        # a higher-priority hog steals the core so the victim overruns
        hog = TaskSpec(name="hog", period=0.01, wcet=0.005, priority=0)
        PeriodicSource(sim, core, victim, horizon=DURATION)
        PeriodicSource(sim, core, hog, horizon=DURATION)
    elif kind == "jitter":
        hog = TaskSpec(name="hog", period=0.01, wcet=0.003, priority=0)
        PeriodicSource(sim, core, victim, horizon=DURATION)
        PeriodicSource(sim, core, hog, horizon=DURATION)
    elif kind == "period_drift":
        PeriodicSource(
            sim, core, victim, horizon=DURATION,
            activation_jitter=0.004,
            jitter_draw=lambda: streams.stream("drift").random(),
        )
    sim.run(until=DURATION + 0.5)
    if kind == "deadline":
        print_obs_digest(sim, title="C7 observability digest (deadline scenario)")
    return {
        "deadline": len(monitor.faults_of_kind("deadline")),
        "jitter": len(monitor.faults_of_kind("jitter")),
        "period": len(monitor.faults_of_kind("period")),
        "backend": len(backend.received),
        "events": monitor.trace_events_processed,
        "report": monitor.certification_report()["victim"],
    }


@pytest.mark.benchmark(group="c7")
def test_c7_monitoring(benchmark):
    kinds = ("healthy", "deadline", "jitter", "period_drift")

    def sweep():
        return {kind: run_scenario(kind) for kind in kinds}

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for kind, r in table.items():
        rows.append((
            kind, r["deadline"], r["jitter"], r["period"],
            r["backend"], f"{r['events'] / DURATION:.0f}/s",
        ))
    print_table(
        "C7: detected faults per injected failure mode",
        ["scenario", "deadline", "jitter", "period", "shipped", "monitor load"],
        rows,
    )
    healthy = table["healthy"]
    assert healthy["deadline"] == healthy["jitter"] == healthy["period"] == 0
    assert table["deadline"]["deadline"] > 0
    assert table["jitter"]["jitter"] > 0
    assert table["period_drift"]["period"] > 0
    # every locally detected fault reached the manufacturer backend
    for kind in ("deadline", "jitter", "period_drift"):
        r = table[kind]
        assert r["backend"] == r["deadline"] + r["jitter"] + r["period"]
    # certification evidence is collected either way
    assert healthy["report"]["completions"] >= DURATION / 0.01 - 2
