"""Experiment C13 (Section 3.4, closing the loop): fleet OTA campaigns.

"With such monitoring capabilities, faults can easily be detected, the
conditions leading to such faults recorded and ... transferred to the
manufacturer ... In turn, an update can be created and rolled out to
remedy the detected error."

Two campaigns over an 8-vehicle fleet (waves of 2, 1 s soak each):

* a healthy update — must reach every vehicle with zero regressions;
* a regressive update (its control task overruns) — the first wave's
  monitors must catch it, the campaign must abort, the wave must roll
  back, and the remaining 6 vehicles must stay on the old version.
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.core import CampaignManager, Fleet
from repro.model import AppModel, Asil
from repro.osal import TaskSpec
from repro.security import TrustStore
from repro.sim import Simulator, Tracer

FLEET_SIZE = 8


def app_v(version, *, buggy=False):
    task = (
        TaskSpec(name="fn_bug", period=0.01, wcet=0.009, deadline=0.001)
        if buggy
        else TaskSpec(name="fn_loop", period=0.01, wcet=0.001, deadline=0.008)
    )
    return AppModel(
        name="fn", tasks=(task,), asil=Asil.C,
        memory_kib=64, image_kib=128, version=version,
    )


def run_campaign(buggy: bool):
    # ring-buffer mode: fleet campaigns are the long-running workload, so
    # bound the in-memory trace instead of growing it without limit
    sim = Simulator(tracer=Tracer(max_entries=50_000))
    store = TrustStore()
    store.generate_key("oem")
    fleet = Fleet(sim, store, size=FLEET_SIZE)
    fleet.deploy_everywhere(app_v((1, 0)), "oem")
    sim.run(until=sim.now + 0.5)
    manager = CampaignManager(
        fleet, "oem", wave_size=2, soak_time=1.0,
        abort_regression_ratio=0.5,
    )
    result = manager.rollout(app_v((1, 0)), app_v((1, 1), buggy=buggy))
    versions = fleet.versions("fn")
    on_new = sum(1 for v in versions.values() if v == (1, 1))
    on_old = sum(1 for v in versions.values() if v == (1, 0))
    total_regressions = sum(w.regressions for w in result.waves)
    return {
        "waves": len(result.waves),
        "aborted": result.aborted,
        "rolled_back": result.rolled_back,
        "on_new": on_new,
        "on_old": on_old,
        "regressions": total_regressions,
    }


@pytest.mark.benchmark(group="c13")
def test_c13_fleet_campaign(benchmark):
    def sweep():
        return {
            "healthy v1.1": run_campaign(buggy=False),
            "regressive v1.1": run_campaign(buggy=True),
        }

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name, r in table.items():
        rows.append((
            name, r["waves"], "yes" if r["aborted"] else "no",
            r["regressions"], f"{r['on_new']}/{FLEET_SIZE}",
            f"{r['on_old']}/{FLEET_SIZE}",
        ))
    print_table(
        "C13: staged fleet rollout with monitor-gated waves",
        ["campaign", "waves run", "aborted", "regressions", "on v1.1",
         "on v1.0"],
        rows,
        width=16,
    )
    healthy = table["healthy v1.1"]
    assert not healthy["aborted"]
    assert healthy["on_new"] == FLEET_SIZE
    assert healthy["regressions"] == 0
    bad = table["regressive v1.1"]
    assert bad["aborted"] and bad["rolled_back"]
    assert bad["waves"] == 1          # stopped after the first wave
    assert bad["on_old"] == FLEET_SIZE  # wave rolled back, rest spared
