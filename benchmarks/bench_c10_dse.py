"""Experiment C10 (Sections 2.2/2.3): verification + DSE.

* the verification engine catches seeded deployment errors (wrong OS
  class, memory overflow, unschedulable core, missing TSN isolation);
* GA / SA / random search race on the reference mapping problem — who
  finds a feasible mapping, at what cost, in how many evaluations;
* every mapping in a variant space is pre-verified (the paper's "every
  possible mapping is functional, safe, and secure").
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.dse import (
    MappingProblem,
    annealing_search,
    genetic_search,
    random_search,
)
from repro.hw import centralized_topology
from repro.model import Deployment, VariantSpace, verify, verify_variant_space
from repro.sim import RngStreams
from repro.workloads import reference_system

GOOD_PLACEMENT = {
    "wheel_sensor_fusion": ("platform_0", 0),
    "vehicle_state_estimator": ("platform_0", 1),
    "brake_controller": ("platform_0", 2),
    "suspension_control": ("platform_0", 3),
    "front_camera": ("platform_1", 0),
    "object_fusion": ("platform_0", 4),
    "acc": ("platform_1", 1),
    "diagnosis_service": ("platform_1", 2),
    "media_server": ("head_unit", 0),
    "navigation": ("head_unit", 1),
}


def good_deployment():
    deployment = Deployment()
    for app, (ecu, core) in GOOD_PLACEMENT.items():
        deployment.place(app, ecu, core)
    return deployment


def seeded_faults(model):
    """(name, broken deployment, expected rule) triples."""
    cases = []
    d1 = good_deployment()
    d1.place("brake_controller", "head_unit", 0)  # DA on GP OS
    cases.append(("DA on infotainment OS", d1, "os_class"))
    d2 = good_deployment()
    d2.place("media_server", "zone_sensor_0", 0)  # 65 MiB into 128 KiB
    cases.append(("memory overflow", d2, "memory"))
    d3 = good_deployment()
    d3.place("object_fusion", "zone_sensor_1", 0)  # GPU app on weak ECU
    cases.append(("GPU on weak ECU", d3, "gpu"))
    d4 = good_deployment()
    d4.remove("acc")  # unplaced app
    cases.append(("unplaced app", d4, "placement"))
    return cases


@pytest.mark.benchmark(group="c10")
def test_c10_dse(benchmark):
    model = reference_system(centralized_topology(n_platforms=2))

    def sweep():
        out = {}
        # 1. verification catches every seeded fault
        catches = []
        for name, deployment, rule in seeded_faults(model):
            result = verify(model, deployment)
            caught = any(v.rule == rule for v in result.errors)
            catches.append((name, rule, caught))
        out["catches"] = catches
        out["good_ok"] = verify(model, good_deployment()).ok
        # 2. engine race
        engines = {}
        for name, runner in (
            ("random", lambda p: random_search(p, RngStreams(21), budget=150)),
            ("ga", lambda p: genetic_search(
                p, RngStreams(21), population=20, generations=12)),
            ("sa", lambda p: annealing_search(p, RngStreams(21), budget=250)),
        ):
            problem = MappingProblem(model)
            result = runner(problem)
            engines[name] = {
                "feasible": result.found_feasible,
                "cost": result.best.evaluation.cost if result.best else None,
                "evals": result.evaluations,
                "pareto": len(result.archive),
            }
        out["engines"] = engines
        # 3. variant-space pre-verification
        space = VariantSpace()
        for app, (ecu, core) in GOOD_PLACEMENT.items():
            space.allow(app, ecu, core)
        space.allow("acc", "platform_0", 5)
        space.allow("diagnosis_service", "platform_0", 6)
        n_ok, n_total, failures = verify_variant_space(model, space)
        out["variants"] = (n_ok, n_total, len(failures))
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (name, rule, "caught" if caught else "MISSED")
        for name, rule, caught in out["catches"]
    ]
    print_table(
        "C10a: verification engine vs seeded deployment faults",
        ["fault", "rule", "verdict"],
        rows,
        width=24,
    )
    rows = [
        (name, str(e["feasible"]), f"{e['cost']:.0f}", e["evals"], e["pareto"])
        for name, e in out["engines"].items()
    ]
    print_table(
        "C10b: DSE engine race on the reference system",
        ["engine", "feasible", "best cost", "evaluations", "|pareto|"],
        rows,
    )
    n_ok, n_total, n_fail = out["variants"]
    print_table(
        "C10c: variant space pre-verification",
        ["verified ok", "total variants", "failing"],
        [(n_ok, n_total, n_fail)],
    )
    assert all(caught for _n, _r, caught in out["catches"])
    assert out["good_ok"]
    for e in out["engines"].values():
        assert e["feasible"]
    # heuristics find mappings at least as cheap as random sampling
    assert out["engines"]["ga"]["cost"] <= out["engines"]["random"]["cost"]
    assert n_total == 4
    assert n_ok == n_total  # every runtime-selectable variant is safe
