#!/usr/bin/env python
"""Snapshot/fork benchmark: CoW campaign throughput and hot-loop allocations.

Measures the copy-on-write snapshot machinery end to end and writes
``BENCH_snapshot.json`` at the repo root:

* **snapshot** — capture/restore latency and forks/s on the warmed-up
  chaos base world, plus the correctness bar: a mid-soak restore that
  continues to the end must reproduce the straight run's trace byte for
  byte, and capturing must not perturb the source world.
* **campaign / sweep / xil** — the three fan-out sites run fork-per-
  variant (``fork=True``, the default) against rebuild-per-variant
  (``fork=False``), asserting identical outcomes and digests before
  reporting the speedup.
* **dse** — ``MappingProblem.evaluate`` with its warm ``VerifyCache``
  against a faithful reconstruction of the pre-cache scoring path
  (uncached ``verify`` + per-call route/latency recomputation), with
  evaluation-list equality asserted.
* **allocations** — steady-state allocated bytes per event, measured
  with :mod:`tracemalloc` around single-event steps: the pooled
  ``sim.post`` kernel against the frozen :mod:`_legacy_kernel` shim
  (fresh call object per push, tuple-allocating ``__lt__``).

Usage::

    PYTHONPATH=src python benchmarks/bench_snapshot.py           # full run
    PYTHONPATH=src python benchmarks/bench_snapshot.py --smoke   # CI-sized

Both sides of every comparison run the same workload in the same
process, so the ratios isolate the code path from the hardware.  Pass
``--gate-snapshot BENCH_snapshot.json`` to gate against the committed
report: any ``results_identical: false`` fails the run unconditionally;
forks/s failing 90% of the committed ``forks_per_sec_floor`` fails it
too (the floor is committed deliberately low — about a quarter of the
measured rate on the machine that produced the report — so slower CI
runners gate on real regressions, not on hardware).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import tracemalloc
from time import perf_counter

sys.path.insert(0, os.path.dirname(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

import _legacy_kernel  # noqa: E402

from repro.core.campaign import CampaignSpec, sweep_campaigns  # noqa: E402
from repro.dse import MappingProblem  # noqa: E402
from repro.dse.problem import Evaluation  # noqa: E402
from repro.faults import FaultCampaignSpec, FaultPlan, FaultSpec  # noqa: E402
from repro.faults.campaign import (  # noqa: E402
    build_chaos_base,
    run_fault_campaign,
    start_chaos_workload,
)
from repro.hw import centralized_topology  # noqa: E402
from repro.model.verification import estimate_latency, verify  # noqa: E402
from repro.osal.analysis import scaled_utilization  # noqa: E402
from repro.osal.task import Criticality  # noqa: E402
from repro.sim import RngStreams, Simulator, Tracer  # noqa: E402
from repro.workloads import reference_system  # noqa: E402
from repro.xil import ScenarioSpec, run_battery  # noqa: E402


# -- shared fixtures ----------------------------------------------------


def _chaos_spec(*, soak_time: float) -> FaultCampaignSpec:
    """A campaign whose deterministic base dwarfs its per-variant soak.

    Four nodes with triple redundancy and a long fault-free settle under
    heartbeats make the shared base the dominant cost — exactly the
    regime fork-per-variant is for.  Faults land inside the short soak
    so every replication still exercises crash, drop and breaker paths.
    """
    plan = FaultPlan(
        name="bench",
        faults=(
            FaultSpec(kind="ecu_crash", target="platform_0", start=0.01,
                      duration=0.04),
            FaultSpec(kind="frame_drop", target="eth_backbone", start=0.005,
                      duration=0.05, probability=0.4),
        ),
    )
    return FaultCampaignSpec(plan=plan, n_nodes=4, replicas=3,
                             soak_time=soak_time, settle_time=1.5,
                             breaker_threshold=2, breaker_reset=0.03)


def trace_json(sim) -> list:
    return [entry.to_json() for entry in sim.tracer.entries]


def _build_chaos_world(spec, seed=77):
    sim = Simulator(Tracer())
    base = build_chaos_base(sim, spec)
    start_chaos_workload(sim, base, spec, RngStreams(seed))
    return sim


# -- snapshot micro-benchmark -------------------------------------------


def bench_snapshot_micro(*, smoke: bool) -> dict:
    """Capture/restore latency, forks/s, and the trace-equality bar."""
    spec = _chaos_spec(soak_time=0.06)
    captures = 5 if smoke else 20
    restores = 20 if smoke else 100

    # correctness first: restore + continue == straight run, source
    # unperturbed — the same matrix bar the tests pin, sampled mid-soak
    straight_sim = _build_chaos_world(spec)
    start = straight_sim.now
    end = start + spec.soak_time
    straight_sim.run(until=end)
    straight = trace_json(straight_sim)

    source = _build_chaos_world(spec)
    source.run(until=start + 0.5 * spec.soak_time)
    mid_snap = source.snapshot()
    restored = mid_snap.restore()
    restored.run(until=end)
    source.run(until=end)
    identical = (trace_json(restored) == straight
                 and trace_json(source) == straight
                 and bool(straight))

    # capture latency: snapshot the warmed-up base world repeatedly
    base_sim = Simulator()
    build_chaos_base(base_sim, spec)
    gc.collect()  # steady playing field for the timed half
    t0 = perf_counter()
    for _ in range(captures):
        snap = base_sim.snapshot()
    capture_s = (perf_counter() - t0) / captures

    # restore latency / forks-per-second: one cached snapshot fanned out
    # many times — the exact per-variant cost of a fork-based campaign
    gc.collect()  # steady playing field for the timed half
    t0 = perf_counter()
    for _ in range(restores):
        snap.restore()
    restore_s = (perf_counter() - t0) / restores
    forks_per_sec = 1.0 / restore_s if restore_s > 0 else float("inf")

    return {
        "capture_ms": round(capture_s * 1e3, 3),
        "restore_ms": round(restore_s * 1e3, 3),
        "forks_per_sec": round(forks_per_sec, 1),
        # committed deliberately low (~25% of measured) so slower CI
        # hardware does not trip the gate; see --gate-snapshot
        "forks_per_sec_floor": round(forks_per_sec * 0.25, 1),
        "snapshot_bytes": len(snap.to_bytes()),
        "results_identical": identical,
    }


# -- fan-out sites: fork vs rebuild -------------------------------------


def bench_campaign(*, smoke: bool) -> dict:
    spec = _chaos_spec(soak_time=0.06)
    replications = 6 if smoke else 16

    # untimed warm-up: pay one-time import/allocator costs outside the
    # timed halves so both measure steady state
    run_fault_campaign(spec, replications=1, master_seed=7, fork=True)
    run_fault_campaign(spec, replications=1, master_seed=7, fork=False)

    gc.collect()  # steady playing field for the timed half
    t0 = perf_counter()
    forked = run_fault_campaign(spec, replications=replications,
                                master_seed=7, fork=True)
    fork_s = perf_counter() - t0

    gc.collect()  # steady playing field for the timed half
    t0 = perf_counter()
    rebuilt = run_fault_campaign(spec, replications=replications,
                                 master_seed=7, fork=False)
    rebuild_s = perf_counter() - t0

    identical = (forked.outcomes == rebuilt.outcomes
                 and forked.digest["metrics"] == rebuilt.digest["metrics"])
    return {
        "replications": replications,
        "fork_seconds": round(fork_s, 4),
        "rebuild_seconds": round(rebuild_s, 4),
        "speedup": round(rebuild_s / fork_s, 2) if fork_s > 0 else None,
        "results_identical": identical,
    }


def bench_sweep(*, smoke: bool) -> dict:
    # single-wave rollout with a short wave soak: the per-replication
    # half stays small next to the shared build-deploy-settle base
    spec = CampaignSpec(fleet_size=6, wave_size=6, soak_time=0.02,
                        settle_time=10.0, target_wcet=0.004,
                        target_wcet_jitter=0.004, target_deadline=0.002)
    replications = 10 if smoke else 16

    # untimed warm-up: pay one-time import/allocator costs outside the
    # timed halves so both measure steady state
    sweep_campaigns(spec, replications=1, master_seed=7, fork=True)
    sweep_campaigns(spec, replications=1, master_seed=7, fork=False)

    gc.collect()  # steady playing field for the timed half
    t0 = perf_counter()
    forked = sweep_campaigns(spec, replications=replications,
                             master_seed=7, fork=True)
    fork_s = perf_counter() - t0

    gc.collect()  # steady playing field for the timed half
    t0 = perf_counter()
    rebuilt = sweep_campaigns(spec, replications=replications,
                              master_seed=7, fork=False)
    rebuild_s = perf_counter() - t0

    identical = (forked.outcomes == rebuilt.outcomes
                 and forked.digest["metrics"] == rebuilt.digest["metrics"])
    return {
        "replications": replications,
        "fork_seconds": round(fork_s, 4),
        "rebuild_seconds": round(rebuild_s, 4),
        "speedup": round(rebuild_s / fork_s, 2) if fork_s > 0 else None,
        "results_identical": identical,
    }


def bench_xil(*, smoke: bool) -> dict:
    """Battery of SiL scenarios sharing one loop config.

    With ``warmup_fraction=0.8`` the healthy warm-up covers 80% of every
    scenario; all faults open after the fork point, so every scenario is
    fork-eligible and the battery builds the warm world exactly once.
    """
    duration = 8.0 if smoke else 16.0
    late = duration * 0.85  # strictly after the 0.8 warm-up point

    def scenario(name, **kw):
        return ScenarioSpec(name=name, level="SiL", duration=duration, **kw)

    scenarios = [scenario("nominal")] + [
        scenario(f"late-dropout-{i}",
                 sensor_dropout_window=(late + duration * 0.01 * i,
                                        late + duration * (0.05 + 0.01 * i)))
        for i in range(9)
    ]

    # untimed warm-up: pay one-time import/allocator costs outside the
    # timed halves so both measure steady state
    run_battery(scenarios[:2], master_seed=7, fork=True, warmup_fraction=0.8)
    run_battery(scenarios[:2], master_seed=7, fork=False, warmup_fraction=0.8)

    gc.collect()  # steady playing field for the timed half
    t0 = perf_counter()
    forked = run_battery(scenarios, master_seed=7, fork=True,
                         warmup_fraction=0.8)
    fork_s = perf_counter() - t0

    gc.collect()  # steady playing field for the timed half
    t0 = perf_counter()
    rebuilt = run_battery(scenarios, master_seed=7, fork=False,
                          warmup_fraction=0.8)
    rebuild_s = perf_counter() - t0

    identical = all(fv == rv for fv, rv
                    in zip(forked.verdicts, rebuilt.verdicts)) \
        and len(forked.verdicts) == len(rebuilt.verdicts)
    return {
        "scenarios": len(scenarios),
        "fork_seconds": round(fork_s, 4),
        "rebuild_seconds": round(rebuild_s, 4),
        "speedup": round(rebuild_s / fork_s, 2) if fork_s > 0 else None,
        "results_identical": identical,
    }


# -- DSE: warm VerifyCache vs the pre-cache scoring path ----------------


def _evaluate_cold(problem: MappingProblem, deployment) -> Evaluation:
    """The scoring path as it was before ``VerifyCache``.

    Uncached ``verify`` plus a latency loop that re-derives routes,
    payload sizes and bandwidths on every call — kept here (not in the
    library) so the benchmark always compares against the true old cost.
    """
    model = problem.model
    result = verify(model, deployment)
    cost = sum(
        model.topology.ecu(name).unit_cost for name in deployment.used_ecus()
    )
    latency = 0.0
    for producer, consumer, interface in model.communication_pairs():
        if deployment.is_placed(producer) and deployment.is_placed(consumer):
            latency += estimate_latency(
                model,
                deployment.ecu_of(producer),
                deployment.ecu_of(consumer),
                interface.payload_bytes,
            )
    utilizations = []
    for ecu_name in deployment.used_ecus():
        spec = model.topology.ecu(ecu_name)
        for core in range(spec.cores):
            tasks = [
                t
                for a in deployment.apps_on_core(ecu_name, core)
                for t in model.app(a).tasks
                if t.criticality is Criticality.DETERMINISTIC
            ]
            if tasks:
                utilizations.append(
                    scaled_utilization(tasks, spec.speed_factor)
                )
    imbalance = (max(utilizations) - min(utilizations)
                 if len(utilizations) > 1 else 0.0)
    return Evaluation(
        feasible=result.ok,
        cost=cost,
        latency=latency,
        imbalance=imbalance,
        violations=len(result.errors),
    )


def bench_dse(*, smoke: bool) -> dict:
    model = reference_system(centralized_topology())
    problem = MappingProblem(model)
    evaluations = 200 if smoke else 600

    rng = RngStreams(13).stream("bench.dse.deployments")
    bounds = problem.genome_bounds()
    deployments = [
        problem.decode([rng.randrange(b) for b in bounds])
        for _ in range(evaluations)
    ]

    # cold side first so the warm side cannot piggyback on anything
    gc.collect()  # steady playing field for the timed half
    t0 = perf_counter()
    cold = [_evaluate_cold(problem, d) for d in deployments]
    cold_s = perf_counter() - t0

    # warm side includes its own one-time cache fill — honest end-to-end
    gc.collect()  # steady playing field for the timed half
    t0 = perf_counter()
    warm = [problem.evaluate(d) for d in deployments]
    warm_s = perf_counter() - t0

    return {
        "evaluations": evaluations,
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 2) if warm_s > 0 else None,
        "results_identical": warm == cold,
    }


# -- steady-state allocations per event (tracemalloc) -------------------

_CHAINS = 64
_PERIOD = 0.0625          # 64 * 2**-10: all event times exact in binary
_PHASE = _PERIOD / _CHAINS


def _measure_bytes_per_event(step_one, *, warmup: int, events: int) -> float:
    """Sum of per-step tracemalloc peak deltas over ``events`` steps.

    Each step dispatches exactly one event with the peak counter reset
    first, so the delta is the gross transient allocation of that event
    — churn that current/peak sampling over a whole run can never see,
    because dispatched call objects are freed as fast as they are made.
    """
    for _ in range(warmup):
        step_one()
    gc.disable()
    tracemalloc.start()
    try:
        total = 0
        for _ in range(events):
            base = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()  # after the base read: the probe's
            # own result tuple never contaminates the measured peak
            step_one()
            total += max(0, tracemalloc.get_traced_memory()[1] - base)
        return total / events
    finally:
        tracemalloc.stop()
        gc.enable()


def bench_allocations(*, smoke: bool) -> dict:
    """Pooled ``sim.post`` kernel vs the frozen legacy shim.

    The workload is 64 phase-staggered self-rescheduling timer chains —
    the steady-state shape of every heartbeat/sampling loop in the
    stack.  The pooled kernel recycles one call object per chain and
    compares precomputed keys; the legacy shim allocates a fresh call
    per push and two key tuples per heap comparison.
    """
    warmup = 256
    events = 512 if smoke else 2048

    sim = Simulator()

    # this benchmark sim is stepped, never snapshotted: closures are fine
    def tick():
        sim.post(_PERIOD, tick)  # repro: allow[PICK511]

    for j in range(_CHAINS):
        sim.post(j * _PHASE if j else _PERIOD, tick)  # repro: allow[PICK511]
    current_bpe = _measure_bytes_per_event(sim.step, warmup=warmup,
                                           events=events)
    pool = sim.queue.stats()

    lsim = _legacy_kernel.LegacySimulator()

    def ltick():
        lsim.schedule(_PERIOD, ltick)  # repro: allow[PICK511]

    for j in range(_CHAINS):
        lsim.schedule(j * _PHASE if j else _PERIOD, ltick)  # repro: allow[PICK511]

    def lstep():
        call = lsim.queue.pop()
        lsim.now = call.time
        call.callback(*call.args)

    legacy_bpe = _measure_bytes_per_event(lstep, warmup=warmup,
                                          events=events)

    ratio = (legacy_bpe / current_bpe) if current_bpe > 0 else float("inf")
    return {
        "events_measured": events,
        "legacy_bytes_per_event": round(legacy_bpe, 1),
        "current_bytes_per_event": round(current_bpe, 1),
        "ratio": round(ratio, 1) if ratio != float("inf") else "inf",
        "reduced_5x": (ratio >= 5.0),
        "pool_creations": pool["pool_creations"],
        "pool_reuses": pool["pool_reuses"],
    }


# -- report plumbing ----------------------------------------------------


def _environment() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def _write(path: str, payload: dict) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {path}")


def _load_snapshot_floor(path):
    with open(path) as fh:
        committed = json.load(fh)
    return committed.get("snapshot", {}).get("forks_per_sec_floor")


def _identity_failures(report: dict) -> list:
    failures = []
    for section in ("snapshot", "campaign", "sweep", "xil", "dse"):
        if not report[section]["results_identical"]:
            failures.append(
                f"{section}: fork/cached path diverged from the rebuild path"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small configs for CI smoke runs")
    parser.add_argument("--out-dir", default=REPO_ROOT,
                        help="directory for BENCH_snapshot.json "
                             "(default: repo root)")
    parser.add_argument(
        "--gate-snapshot", metavar="PATH", default=None,
        help="committed BENCH_snapshot.json to gate against: any "
             "results_identical=false fails unconditionally; forks/s "
             "below 90%% of the committed forks_per_sec_floor fails too")
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    committed_floor = (_load_snapshot_floor(args.gate_snapshot)
                       if args.gate_snapshot else None)

    print(f"snapshot micro-benchmark ({mode})...")
    snapshot = bench_snapshot_micro(smoke=args.smoke)
    print(
        f"  capture {snapshot['capture_ms']}ms, "
        f"restore {snapshot['restore_ms']}ms, "
        f"{snapshot['forks_per_sec']:,} forks/s "
        f"(trace identical={snapshot['results_identical']})"
    )

    sections = {"snapshot": snapshot}
    for name, fn in (("campaign", bench_campaign), ("sweep", bench_sweep),
                     ("xil", bench_xil)):
        print(f"\n{name} fork-vs-rebuild ({mode})...")
        result = fn(smoke=args.smoke)
        sections[name] = result
        print(
            f"  fork {result['fork_seconds']}s, "
            f"rebuild {result['rebuild_seconds']}s "
            f"({result['speedup']}x, identical="
            f"{result['results_identical']})"
        )

    print(f"\nDSE warm-cache benchmark ({mode})...")
    dse = bench_dse(smoke=args.smoke)
    sections["dse"] = dse
    print(
        f"  cold {dse['cold_seconds']}s, warm {dse['warm_seconds']}s "
        f"({dse['speedup']}x, identical={dse['results_identical']})"
    )

    print(f"\nallocations-per-event probe ({mode})...")
    allocations = bench_allocations(smoke=args.smoke)
    sections["allocations"] = allocations
    print(
        f"  legacy {allocations['legacy_bytes_per_event']} B/event, "
        f"current {allocations['current_bytes_per_event']} B/event "
        f"({allocations['ratio']}x reduction)"
    )

    _write(os.path.join(args.out_dir, "BENCH_snapshot.json"), {
        "environment": _environment(),
        "mode": mode,
        **sections,
    })

    failures = _identity_failures(sections)
    if committed_floor is not None:
        measured = snapshot["forks_per_sec"]
        if measured < committed_floor * 0.9:
            failures.append(
                f"forks/s {measured} regressed below 90% of the committed "
                f"floor {committed_floor} ({committed_floor * 0.9:.1f})"
            )
    if failures:
        print("\nFAILED: " + "; ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
