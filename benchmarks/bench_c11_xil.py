"""Experiment C11 (Section 2.4): MiL/SiL testing finds controller bugs
before any hardware exists, much faster than real time.

The XiL suite runs a nominal controller and three buggy variants at MiL
and SiL level; we report pass/fail per case and the realtime factor
(simulated seconds per wall-clock second) — the paper's "using the full
potential of computing power of a PC" argument.
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.xil import (
    BuggyCruiseController,
    CruiseController,
    LoopAssertions,
    XilTestCase,
    XilTestSuite,
)

ASSERTIONS = LoopAssertions(
    max_overshoot=2.0, max_settling_time=110.0, max_steady_state_error=0.5
)


def build_suite(level: str) -> XilTestSuite:
    return XilTestSuite([
        XilTestCase(
            name="nominal",
            build_controller=lambda: CruiseController(25.0),
            assertions=ASSERTIONS, level=level, duration=120.0,
        ),
        XilTestCase(
            name="bug:sign",
            build_controller=lambda: BuggyCruiseController(25.0, "sign"),
            assertions=ASSERTIONS, level=level, duration=120.0,
        ),
        XilTestCase(
            name="bug:windup",
            build_controller=lambda: BuggyCruiseController(25.0, "windup"),
            assertions=LoopAssertions(
                max_overshoot=0.35, max_settling_time=110.0,
                max_steady_state_error=0.5,
            ),
            level=level, duration=120.0,
        ),
        XilTestCase(
            name="bug:gain",
            build_controller=lambda: BuggyCruiseController(25.0, "gain"),
            assertions=LoopAssertions(
                max_overshoot=0.35, max_settling_time=110.0,
                max_steady_state_error=0.5,
            ),
            level=level, duration=120.0,
        ),
    ])


@pytest.mark.benchmark(group="c11")
def test_c11_xil(benchmark):
    def sweep():
        results = {}
        for level in ("MiL", "SiL"):
            suite = build_suite(level)
            failures = suite.run()
            results[level] = (suite, failures)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for level, (suite, failures) in results.items():
        for name, passed, messages, loop in suite.results:
            rows.append((
                level, name, "PASS" if passed else "FAIL",
                f"{loop.realtime_factor:.0f}x",
                messages[0][:40] if messages else "",
            ))
    print_table(
        "C11: XiL suite verdicts and realtime factors",
        ["level", "case", "verdict", "speed", "first failure"],
        rows,
        width=18,
    )
    for level, (suite, failures) in results.items():
        verdicts = {name: passed for name, passed, _m, _r in suite.results}
        assert verdicts["nominal"], f"nominal failed at {level}"
        assert not verdicts["bug:sign"]
        assert not verdicts["bug:windup"]
        assert not verdicts["bug:gain"]
        # the virtual loop runs far faster than the real plant would
        for _name, _p, _m, loop in suite.results:
            assert loop.realtime_factor > 10.0
