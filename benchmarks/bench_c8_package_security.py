"""Experiment C8 (Section 4.1): package security and the update master.

Three sub-tables:

1. the verdict matrix — valid / tampered / forged / unsigned packages
   against a capable ECU (all attacks rejected, all legitimate installs
   pass);
2. install latency per ECU class — the crypto-less ECU must go through
   the update master, paying verification-at-master plus transfer;
3. master redundancy — installs keep succeeding after the primary master
   fails (with a failover count), and fail only when all masters are
   down.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from _tables import print_table
from repro.core import DynamicPlatform
from repro.hw import centralized_topology
from repro.model import AppModel
from repro.security import TrustStore, build_package, forged_package
from repro.sim import Simulator


def app_of(image_kib=512.0, name="pkg_app"):
    return AppModel(name=name, memory_kib=16, image_kib=image_kib)


def make_platform():
    sim = Simulator()
    store = TrustStore()
    store.generate_key("oem")
    platform = DynamicPlatform(
        sim, centralized_topology(n_platforms=2), trust_store=store
    )
    platform.setup_update_masters(["platform_0", "platform_1"])
    return sim, store, platform


def install_outcome(platform, sim, package, node):
    outcome = []
    platform.install(package, node).add_callback(
        lambda ok: outcome.append((sim.now, ok))
    )
    start = sim.now
    sim.run()
    return outcome[0][1], outcome[0][0] - start


@pytest.mark.benchmark(group="c8")
def test_c8_package_security(benchmark):
    def sweep():
        out = {}
        # 1. verdict matrix
        sim, store, platform = make_platform()
        valid = build_package(app_of(), store, "oem")
        out["valid"] = install_outcome(platform, sim, valid, "platform_0")
        sim, store, platform = make_platform()
        pkg = build_package(app_of(), store, "oem").tampered()
        out["tampered"] = install_outcome(platform, sim, pkg, "platform_0")
        sim, store, platform = make_platform()
        out["forged"] = install_outcome(
            platform, sim, forged_package(app_of()), "platform_0"
        )
        sim, store, platform = make_platform()
        unsigned = replace(build_package(app_of(), store, "oem"), signature=None)
        out["unsigned"] = install_outcome(platform, sim, unsigned, "platform_0")
        # 2. per-ECU-class latency (accelerated platform vs weak via master)
        sim, store, platform = make_platform()
        out["install@platform"] = install_outcome(
            platform, sim, build_package(app_of(), store, "oem"), "platform_1"
        )
        sim, store, platform = make_platform()
        out["install@weak"] = install_outcome(
            platform, sim, build_package(app_of(image_kib=64), store, "oem"),
            "zone_sensor_0",
        )
        # 3. master failover
        sim, store, platform = make_platform()
        platform.update_masters.masters[0].fail()
        out["weak, master failed"] = install_outcome(
            platform, sim, build_package(app_of(image_kib=64), store, "oem"),
            "zone_sensor_0",
        )
        failovers = platform.update_masters.failovers
        return out, failovers

    (table, failovers) = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (name, "accepted" if ok else "rejected", f"{latency * 1e3:.2f} ms")
        for name, (ok, latency) in table.items()
    ]
    print_table(
        "C8: package installation outcomes",
        ["scenario", "verdict", "latency"],
        rows,
        width=20,
    )
    assert table["valid"][0]
    assert not table["tampered"][0]
    assert not table["forged"][0]
    assert not table["unsigned"][0]
    assert table["install@weak"][0]
    # the weak ECU pays the master round trip: noticeably slower than a
    # local accelerated verify
    assert table["install@weak"][1] > table["install@platform"][1]
    assert table["weak, master failed"][0]
    assert failovers >= 1
