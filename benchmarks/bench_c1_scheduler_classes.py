"""Experiment C1 (Section 3.1 CPU): RTOS scheduling classes meet
deterministic activation windows; a general-purpose scheduler does not.

Random deterministic task sets at increasing utilization run under four
policies; report the fraction of sets with zero deadline misses.
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.osal import (
    Core,
    EdfPolicy,
    FairSharePolicy,
    FixedPriorityPolicy,
    PeriodicSource,
    TaskSpec,
    hyperperiod,
)
from repro.sim import RngStreams, Simulator
from repro.workloads import synthetic_task_set

N_SETS = 10
N_TASKS = 5


def run_set(tasks, policy_factory) -> bool:
    """True iff no deterministic job misses a deadline over 2 hyperperiods."""
    sim = Simulator()
    core = Core(sim, "c", 1.0, policy_factory())
    horizon = min(2 * hyperperiod(tasks), 2.0)
    sources = [PeriodicSource(sim, core, t, horizon=horizon) for t in tasks]
    sim.run(until=horizon + 0.2)
    return all(s.miss_ratio(sim.now) == 0.0 for s in sources)


POLICIES = {
    "fixed_priority": FixedPriorityPolicy,
    "edf": EdfPolicy,
    "fair_share": lambda: FairSharePolicy(quantum=0.001),
}


@pytest.mark.benchmark(group="c1")
def test_c1_scheduler_classes(benchmark):
    utilizations = (0.3, 0.5, 0.7, 0.9)

    def sweep():
        table = {name: [] for name in POLICIES}
        for util in utilizations:
            sets = [
                synthetic_task_set(
                    RngStreams(100 + i), N_TASKS, util,
                    stream=f"c1.{util}.{i}",
                )
                for i in range(N_SETS)
            ]
            for name, factory in POLICIES.items():
                ok = sum(run_set(tasks, factory) for tasks in sets)
                table[name].append(ok / N_SETS)
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name, ratios in table.items():
        rows.append([name] + [f"{r:.0%}" for r in ratios])
    print_table(
        "C1: fraction of task sets with zero deadline misses",
        ["policy"] + [f"U={u}" for u in utilizations],
        rows,
    )
    # RTOS classes hold up to high utilization; EDF is exact up to U=1
    assert table["edf"] == [1.0, 1.0, 1.0, 1.0]
    assert table["fixed_priority"][0] == 1.0
    assert table["fixed_priority"][1] == 1.0
    # the GPOS class degrades well before the RTOS classes do
    assert table["fair_share"][-1] < table["fixed_priority"][-1]
    assert table["fair_share"][-1] < 0.5
