"""Experiment C3 (Section 3.1 Hardware Access & Communication): urgent
deterministic transmissions vs non-deterministic bulk streams.

Two scenarios, each sweeping the bulk stream's offered bandwidth:

* CAN: urgent low-ID control frames vs high-ID bulk frames — identifier
  arbitration bounds the urgent frame's delay to one frame time;
* Ethernet: PCP7 control frames vs PCP0 bulk — plain strict priority is
  still blocked by in-flight bulk frames, the TSN time-aware shaper's
  protected window removes the interference.

Reported: worst-case observed latency of the urgent transmission.
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.network import (
    CanBus,
    EthernetBus,
    Frame,
    GateControlList,
    TrafficClass,
    TsnBus,
    can_frame_bits,
)
from repro.sim import Simulator

DURATION = 0.5


def can_scenario(bulk_rate_fps: float) -> float:
    """Worst urgent-frame latency on CAN with ``bulk_rate_fps`` bulk load."""
    sim = Simulator()
    bus = CanBus(sim, "can0", 500_000.0)
    worst = [0.0]

    def send_bulk():
        bus.submit(Frame(src="bulk", dst=None, payload_bytes=8, priority=0x700))
        sim.schedule(1.0 / bulk_rate_fps, send_bulk)

    def send_urgent():
        frame = Frame(
            src="ctl", dst=None, payload_bytes=2, priority=0x010,
            traffic_class=TrafficClass.DETERMINISTIC,
        )
        bus.submit(frame).add_callback(
            lambda f: worst.__setitem__(0, max(worst[0], f.latency))
        )
        sim.schedule(0.010, send_urgent)

    send_bulk()
    sim.schedule(0.0005, send_urgent)
    sim.run(until=DURATION)
    return worst[0]


def ethernet_scenario(bulk_mbps: float, use_tsn: bool) -> float:
    sim = Simulator()
    if use_tsn:
        gcl = GateControlList.tas_split(0.001, 0.0002, (7,))
        bus = TsnBus(sim, "eth0", 100e6, gcl=gcl)
    else:
        bus = EthernetBus(sim, "eth0", 100e6)
    worst = [0.0]
    bulk_interval = 1500 * 8 / (bulk_mbps * 1e6)

    def send_bulk():
        bus.submit(Frame(src="cam", dst="sink", payload_bytes=1500, priority=0))
        sim.schedule(bulk_interval, send_bulk)

    def send_urgent():
        frame = Frame(
            src="ctl", dst="sink", payload_bytes=100, priority=7,
            traffic_class=TrafficClass.DETERMINISTIC,
        )
        bus.submit(frame).add_callback(
            lambda f: worst.__setitem__(0, max(worst[0], f.latency))
        )
        sim.schedule(0.010, send_urgent)

    send_bulk()
    sim.schedule(0.00007, send_urgent)
    sim.run(until=DURATION)
    return worst[0]


@pytest.mark.benchmark(group="c3")
def test_c3_comm_interference(benchmark):
    can_rates = (100.0, 1000.0, 3000.0)
    eth_rates = (10.0, 50.0, 90.0)

    def sweep():
        return {
            "can": [can_scenario(r) for r in can_rates],
            "eth_priority": [ethernet_scenario(r, use_tsn=False) for r in eth_rates],
            "eth_tsn": [ethernet_scenario(r, use_tsn=True) for r in eth_rates],
        }

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for rate, latency in zip(can_rates, table["can"]):
        rows.append(("CAN id-arb", f"{rate:.0f} f/s", f"{latency * 1e6:.1f} us"))
    for rate, plain, tsn in zip(eth_rates, table["eth_priority"], table["eth_tsn"]):
        rows.append(("Eth strict-prio", f"{rate:.0f} Mb/s", f"{plain * 1e6:.1f} us"))
        rows.append(("Eth TSN gates", f"{rate:.0f} Mb/s", f"{tsn * 1e6:.1f} us"))
    print_table(
        "C3: worst urgent-transmission latency under bulk load",
        ["mechanism", "bulk load", "worst latency"],
        rows,
        width=16,
    )
    # CAN: bounded by one max frame time + own time regardless of load
    bound = (can_frame_bits(8) + 3 + can_frame_bits(2)) / 500_000.0
    for latency in table["can"]:
        assert latency <= bound * 1.05
    # TSN keeps the urgent latency flat; strict priority degrades with load
    assert max(table["eth_tsn"]) <= 0.0012  # within ~one gate cycle
    assert table["eth_priority"][-1] > 0.0
