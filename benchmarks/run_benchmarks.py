#!/usr/bin/env python
"""Perf-trajectory benchmark runner.

Measures (a) the kernel hot path against a frozen pre-optimization shim
(:mod:`_legacy_kernel`) and (b) the :mod:`repro.exec` parallel executor
against serial execution, then writes ``BENCH_kernel.json`` and
``BENCH_exec.json`` at the repo root so every future PR has a recorded
baseline to beat.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py           # full run
    PYTHONPATH=src python benchmarks/run_benchmarks.py --smoke   # CI-sized

Both kernel variants run the *same* workload in the same process, so the
events/sec ratio isolates the code change from the hardware.  Executor
speedups depend on available cores; the report records ``cpu_count`` so
single-core CI boxes are read in context.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from time import perf_counter

sys.path.insert(0, os.path.dirname(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

import _legacy_kernel  # noqa: E402


# -- kernel microbenchmark ----------------------------------------------


def _kernel_workload(sim, signal_factory, *, chains, chain_length, fanout,
                     cancel_every):
    """A scheduling-heavy workload exercising every optimized path.

    * ``chains`` timer chains of ``chain_length`` rescheduled callbacks
      (heap push/pop churn → sort_key comparisons);
    * one signal per chain link waking ``fanout`` registered waiters
      (Signal.fire batching);
    * every ``cancel_every``-th link schedules a decoy timer and cancels
      it (cancelled-entry pruning).

    Returns the number of events executed.
    """
    executed = [0]
    decoys = []

    def link(chain_id, depth):
        executed[0] += 1
        if cancel_every and depth % cancel_every == 0:
            decoys.append(sim.schedule(1e6, _noop))
            if len(decoys) >= 64:
                for handle in decoys:
                    handle.cancel()
                decoys.clear()
        signal = signal_factory(sim)
        for _ in range(fanout):
            signal.add_callback(_count_cb(executed))
        signal.fire(depth)
        if depth < chain_length:
            sim.schedule(1e-6 * ((chain_id + depth) % 7 + 1),
                         link, chain_id, depth + 1)

    for chain_id in range(chains):
        sim.schedule(1e-6 * chain_id, link, chain_id, 1)
    sim.run()
    return executed[0]


def _noop():
    pass


def _count_cb(executed):
    def cb(_value):
        executed[0] += 1
    return cb


def _run_kernel_side(make_sim, signal_factory, params):
    start = perf_counter()
    executed = _kernel_workload(make_sim(), signal_factory, **params)
    elapsed = perf_counter() - start
    return executed, elapsed


def bench_kernel(*, smoke: bool) -> dict:
    from repro.sim import Simulator

    params = dict(
        chains=20 if smoke else 100,
        chain_length=60 if smoke else 300,
        fanout=4,
        cancel_every=3,
    )
    repeats = 2 if smoke else 3

    def optimized_sim():
        return Simulator()

    def legacy_sim():
        return _legacy_kernel.LegacySimulator()

    def legacy_signal(sim):
        return sim.signal()

    def optimized_signal(sim):
        return sim.signal()

    # interleave repeats so frequency scaling hits both sides equally
    best = {"legacy": None, "optimized": None}
    events = {"legacy": 0, "optimized": 0}
    for _ in range(repeats):
        for name, make_sim, factory in (
            ("legacy", legacy_sim, legacy_signal),
            ("optimized", optimized_sim, optimized_signal),
        ):
            executed, elapsed = _run_kernel_side(make_sim, factory, params)
            events[name] = executed
            if best[name] is None or elapsed < best[name]:
                best[name] = elapsed
    assert events["legacy"] == events["optimized"], (
        "legacy and optimized kernels must execute identical workloads"
    )
    baseline_eps = events["legacy"] / best["legacy"]
    optimized_eps = events["optimized"] / best["optimized"]
    return {
        "workload": params,
        "events": events["optimized"],
        "repeats": repeats,
        "baseline_events_per_sec": round(baseline_eps),
        "optimized_events_per_sec": round(optimized_eps),
        "speedup": round(optimized_eps / baseline_eps, 3),
    }


# -- executor benchmarks ------------------------------------------------


def _dse_problem():
    from repro.dse import MappingProblem
    from repro.hw import centralized_topology
    from repro.workloads import reference_system

    return MappingProblem(reference_system(centralized_topology(n_platforms=2)))


def bench_exec_dse(*, smoke: bool, workers: int) -> dict:
    from repro.dse import random_search
    from repro.exec import ParallelExecutor
    from repro.sim import RngStreams

    budget = 50 if smoke else 200
    t0 = perf_counter()
    serial = random_search(_dse_problem(), RngStreams(11), budget=budget)
    serial_s = perf_counter() - t0
    with ParallelExecutor(workers=workers, master_seed=0) as executor:
        t0 = perf_counter()
        parallel = random_search(
            _dse_problem(), RngStreams(11), budget=budget, executor=executor
        )
        parallel_s = perf_counter() - t0
    identical = (
        serial.best.genome == parallel.best.genome
        and serial.best.evaluation == parallel.best.evaluation
        and [c.evaluation for c in serial.archive.members]
        == [c.evaluation for c in parallel.archive.members]
    )
    return {
        "workload": f"random-search DSE, budget={budget}",
        "evaluations": budget,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "workers": workers,
        "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
        "results_identical": identical,
    }


def bench_exec_campaign(*, smoke: bool, workers: int) -> dict:
    from repro.core import CampaignSpec, sweep_campaigns
    from repro.exec import ParallelExecutor

    replications = 4 if smoke else 8
    spec = CampaignSpec(
        fleet_size=2 if smoke else 4,
        soak_time=0.3 if smoke else 0.5,
        target_wcet=0.004,
        target_wcet_jitter=0.004,
        target_deadline=0.002,
    )
    t0 = perf_counter()
    serial = sweep_campaigns(spec, replications=replications, master_seed=3)
    serial_s = perf_counter() - t0
    with ParallelExecutor(workers=workers, master_seed=3) as executor:
        t0 = perf_counter()
        parallel = sweep_campaigns(
            spec, replications=replications, executor=executor
        )
        parallel_s = perf_counter() - t0
    return {
        "workload": f"fleet-campaign sweep, {replications} replications",
        "replications": replications,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "workers": workers,
        "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
        "results_identical": serial.outcomes == parallel.outcomes,
    }


def bench_exec_xil(*, smoke: bool, workers: int) -> dict:
    from repro.exec import ParallelExecutor
    from repro.xil import ScenarioSpec, run_battery

    duration = 10.0 if smoke else 40.0
    scenarios = [
        ScenarioSpec(name="nominal", duration=duration, max_settling_time=None,
                     max_steady_state_error=30.0),
        ScenarioSpec(name="sil_nominal", level="SiL", duration=duration,
                     max_settling_time=None, max_steady_state_error=30.0),
        ScenarioSpec(name="dropout", duration=duration,
                     sensor_dropout_window=(2.0, 3.0),
                     max_settling_time=None, max_steady_state_error=30.0),
        ScenarioSpec(name="stuck_actuator", duration=duration,
                     actuator_stuck_at=0.3,
                     max_settling_time=None, max_steady_state_error=30.0),
    ]
    t0 = perf_counter()
    serial = run_battery(scenarios)
    serial_s = perf_counter() - t0
    with ParallelExecutor(workers=workers) as executor:
        t0 = perf_counter()
        parallel = run_battery(scenarios, executor=executor)
        parallel_s = perf_counter() - t0
    return {
        "workload": f"XiL battery, {len(scenarios)} scenarios x {duration}s",
        "scenarios": len(scenarios),
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "workers": workers,
        "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
        "results_identical": serial.verdicts == parallel.verdicts,
    }


# -- entry point ---------------------------------------------------------


def _environment() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def _write(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small configs for CI smoke runs")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker count for executor benchmarks")
    parser.add_argument("--out-dir", default=REPO_ROOT,
                        help="directory for BENCH_*.json (default: repo root)")
    args = parser.parse_args(argv)

    print(f"kernel microbenchmark ({'smoke' if args.smoke else 'full'})...")
    kernel = bench_kernel(smoke=args.smoke)
    print(
        f"  legacy   {kernel['baseline_events_per_sec']:>12,} events/s\n"
        f"  current  {kernel['optimized_events_per_sec']:>12,} events/s\n"
        f"  speedup  {kernel['speedup']:.2f}x"
    )
    _write(os.path.join(args.out_dir, "BENCH_kernel.json"), {
        "environment": _environment(),
        "mode": "smoke" if args.smoke else "full",
        **kernel,
    })

    print(f"\nexecutor benchmarks (workers={args.workers})...")
    sections = {}
    for name, fn in (
        ("dse_random_search", bench_exec_dse),
        ("fleet_campaign_sweep", bench_exec_campaign),
        ("xil_battery", bench_exec_xil),
    ):
        result = fn(smoke=args.smoke, workers=args.workers)
        sections[name] = result
        print(
            f"  {name}: serial {result['serial_seconds']}s, "
            f"parallel {result['parallel_seconds']}s "
            f"({result['speedup']}x, identical="
            f"{result['results_identical']})"
        )
    _write(os.path.join(args.out_dir, "BENCH_exec.json"), {
        "environment": _environment(),
        "mode": "smoke" if args.smoke else "full",
        **sections,
    })

    failures = []
    if not all(s["results_identical"] for s in sections.values()):
        failures.append("parallel results diverged from serial")
    if failures:
        print("\nFAILED: " + "; ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
