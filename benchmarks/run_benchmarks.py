#!/usr/bin/env python
"""Perf-trajectory benchmark runner.

Measures (a) the kernel hot path against a frozen pre-optimization shim
(:mod:`_legacy_kernel`), (b) the :mod:`repro.exec` parallel executor
against serial execution, and (c) the communication stack (route cache,
heap arbitration, batched segmented transfer) against the frozen
:mod:`_legacy_comms` shim, then writes ``BENCH_kernel.json``,
``BENCH_exec.json`` and ``BENCH_comms.json`` at the repo root so every
future PR has a recorded baseline to beat.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py           # full run
    PYTHONPATH=src python benchmarks/run_benchmarks.py --smoke   # CI-sized

Legacy and optimized variants run the *same* workload in the same
process, so the throughput ratio isolates the code change from the
hardware; the comms benchmark additionally asserts that both sides
produce **byte-identical delivery traces** (same frames, same order,
same timestamps).

The executor benchmarks share **one warm worker pool** across all three
workloads (spawn + import paid once, outside the timed regions — the
deployment model of the warm-pool architecture).  Speedups depend on
available cores: each section records ``effective_workers =
min(workers, cpu_count)`` and the report carries ``speedup_gate``
(``"enforced"`` on multi-core hosts, ``"advisory"`` when
``cpu_count < 2`` so single-core CI runners never gate on scheduling
noise).  Pass ``--gate-exec BENCH_exec.json`` to fail on any workload
whose speedup regresses below 90% of its committed value (multi-core
runners only); ``results_identical`` is always gating.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import platform
import sys
from time import perf_counter

sys.path.insert(0, os.path.dirname(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

import _legacy_kernel  # noqa: E402


# -- kernel microbenchmark ----------------------------------------------


def _kernel_workload(sim, signal_factory, *, chains, chain_length, fanout,
                     cancel_every):
    """A scheduling-heavy workload exercising every optimized path.

    * ``chains`` timer chains of ``chain_length`` rescheduled callbacks
      (heap push/pop churn → sort_key comparisons);
    * one signal per chain link waking ``fanout`` registered waiters
      (Signal.fire batching);
    * every ``cancel_every``-th link schedules a decoy timer and cancels
      it (cancelled-entry pruning).

    Returns the number of events executed.
    """
    executed = [0]
    decoys = []

    def link(chain_id, depth):
        executed[0] += 1
        if cancel_every and depth % cancel_every == 0:
            decoys.append(sim.schedule(1e6, _noop))
            if len(decoys) >= 64:
                for handle in decoys:
                    handle.cancel()
                decoys.clear()
        signal = signal_factory(sim)
        for _ in range(fanout):
            signal.add_callback(_count_cb(executed))
        signal.fire(depth)
        if depth < chain_length:
            sim.schedule(1e-6 * ((chain_id + depth) % 7 + 1),
                         link, chain_id, depth + 1)

    for chain_id in range(chains):
        sim.schedule(1e-6 * chain_id, link, chain_id, 1)
    sim.run()
    return executed[0]


def _noop():
    pass


def _count_cb(executed):
    def cb(_value):
        executed[0] += 1
    return cb


def _run_kernel_side(make_sim, signal_factory, params):
    start = perf_counter()
    executed = _kernel_workload(make_sim(), signal_factory, **params)
    elapsed = perf_counter() - start
    return executed, elapsed


def bench_kernel(*, smoke: bool) -> dict:
    from repro.sim import Simulator

    params = dict(
        chains=20 if smoke else 100,
        chain_length=60 if smoke else 300,
        fanout=4,
        cancel_every=3,
    )
    repeats = 2 if smoke else 3

    def optimized_sim():
        return Simulator()

    def legacy_sim():
        return _legacy_kernel.LegacySimulator()

    def legacy_signal(sim):
        return sim.signal()

    def optimized_signal(sim):
        return sim.signal()

    # interleave repeats so frequency scaling hits both sides equally
    best = {"legacy": None, "optimized": None}
    events = {"legacy": 0, "optimized": 0}
    for _ in range(repeats):
        for name, make_sim, factory in (
            ("legacy", legacy_sim, legacy_signal),
            ("optimized", optimized_sim, optimized_signal),
        ):
            executed, elapsed = _run_kernel_side(make_sim, factory, params)
            events[name] = executed
            if best[name] is None or elapsed < best[name]:
                best[name] = elapsed
    assert events["legacy"] == events["optimized"], (
        "legacy and optimized kernels must execute identical workloads"
    )
    baseline_eps = events["legacy"] / best["legacy"]
    optimized_eps = events["optimized"] / best["optimized"]
    return {
        "workload": params,
        "events": events["optimized"],
        "repeats": repeats,
        "baseline_events_per_sec": round(baseline_eps),
        "optimized_events_per_sec": round(optimized_eps),
        "speedup": round(optimized_eps / baseline_eps, 3),
    }


# -- comms-stack benchmark ----------------------------------------------


def _comms_topology():
    """Mixed CAN / FlexRay / Ethernet vehicle with a redundant ring.

    Two CAN legs joined to an Ethernet backbone through gateways, one
    FlexRay chassis cluster, and a second Ethernet segment (``eth_ring``)
    giving every gateway a redundant channel — so failing the backbone
    mid-run exercises rerouting without partitioning the vehicle.
    """
    from repro.hw import BusSpec, EcuSpec, Topology

    topo = Topology("bench-comms")
    topo.add_bus(BusSpec("can_front", "can", 500_000.0))
    topo.add_bus(BusSpec("can_rear", "can", 500_000.0))
    topo.add_bus(BusSpec("flexray_chassis", "flexray", 10_000_000.0))
    topo.add_bus(BusSpec("eth_backbone", "ethernet", 100e6))
    topo.add_bus(BusSpec("eth_ring", "ethernet", 100e6))

    eth2 = (("eth0", "ethernet"), ("eth1", "ethernet"))
    topo.add_ecu(EcuSpec("sensor1", ports=(("can0", "can"),)))
    topo.add_ecu(EcuSpec("sensor2", ports=(("can0", "can"),)))
    topo.add_ecu(EcuSpec("actuator1", ports=(("can0", "can"),)))
    topo.add_ecu(EcuSpec("actuator2", ports=(("can0", "can"),)))
    topo.add_ecu(EcuSpec("brake1", ports=(("fr0", "flexray"),)))
    topo.add_ecu(EcuSpec("brake2", ports=(("fr0", "flexray"),)))
    topo.add_ecu(EcuSpec("cam", ports=(("eth0", "ethernet"),)))
    topo.add_ecu(EcuSpec("fusion", ports=eth2))
    topo.add_ecu(EcuSpec("gw_front", ports=(("can0", "can"),) + eth2))
    topo.add_ecu(EcuSpec("gw_rear", ports=(("can0", "can"),) + eth2))
    topo.add_ecu(EcuSpec("gw_chassis", ports=(("fr0", "flexray"),) + eth2))

    topo.attach("sensor1", "can0", "can_front")
    topo.attach("sensor2", "can0", "can_front")
    topo.attach("gw_front", "can0", "can_front")
    topo.attach("actuator1", "can0", "can_rear")
    topo.attach("actuator2", "can0", "can_rear")
    topo.attach("gw_rear", "can0", "can_rear")
    topo.attach("brake1", "fr0", "flexray_chassis")
    topo.attach("brake2", "fr0", "flexray_chassis")
    topo.attach("gw_chassis", "fr0", "flexray_chassis")
    for gw in ("gw_front", "gw_rear", "gw_chassis", "fusion"):
        topo.attach(gw, "eth0", "eth_backbone")
        topo.attach(gw, "eth1", "eth_ring")
    topo.attach("cam", "eth0", "eth_backbone")
    return topo


def _reset_comms_counters():
    """Pin frame/session id streams so trace runs are comparable."""
    import repro.middleware.wire as wire
    import repro.network.frame as frame_mod

    frame_mod._frame_ids = itertools.count(1)
    wire._session_ids = itertools.count(1)


def _comms_run(network_cls, endpoint_cls, *, rounds, tracer=None):
    """Run the mixed-topology SOA workload; returns (messages, elapsed).

    Each 5 ms round issues six service messages spanning every transport:
    CAN-segmented sensor fan-in, bulk Ethernet camera samples, cross-CAN
    commands, a deterministic FlexRay brake request and an intra-cluster
    FlexRay notification.  The middle half of the run fails the Ethernet
    backbone, forcing reroutes over the ring (camera traffic, which has
    no redundant path, pauses for that window).
    """
    from repro.middleware import (
        Message,
        MessageType,
        QOS_BULK,
        QOS_CONTROL,
        QoS,
        ServiceRegistry,
    )
    from repro.sim import Simulator

    _reset_comms_counters()
    period = 0.005
    topo = _comms_topology()
    sim = Simulator(tracer=tracer)
    net = network_cls(sim, topo)
    registry = ServiceRegistry()
    endpoints = {
        name: endpoint_cls(sim, net, name, registry)
        for name in ("sensor1", "sensor2", "actuator1", "actuator2",
                     "brake1", "brake2", "cam", "fusion")
    }

    def sender(src, dst, svc, msg_type, size, qos):
        ep = endpoints[src]

        def _send():
            ep.send(
                Message(service_id=svc, method_id=1, msg_type=msg_type,
                        payload_bytes=size, src=src, dst=dst),
                qos,
            )

        return _send

    traffic = [
        sender("sensor1", "fusion", 0x100, MessageType.NOTIFICATION, 48,
               QoS(priority=0x120)),
        sender("cam", "fusion", 0x200, MessageType.STREAM_SAMPLE, 3000,
               QOS_BULK),
        sender("fusion", "actuator1", 0x300, MessageType.REQUEST, 24,
               QoS(priority=0x340)),
        sender("sensor2", "actuator2", 0x101, MessageType.NOTIFICATION, 16,
               QoS(priority=0x210)),
        sender("fusion", "brake1", 0x400, MessageType.REQUEST, 8,
               QOS_CONTROL),
        sender("brake2", "brake1", 0x401, MessageType.NOTIFICATION, 12,
               QoS(priority=0x500)),
    ]
    cam_index = 1

    fail_round = rounds // 4
    repair_round = (3 * rounds) // 4
    start = perf_counter()
    # backbone outage window: between the boundary rounds, offset so the
    # failure event never ties with a round's sends
    sim.at(fail_round * period - period / 2, net.fail_bus, "eth_backbone")
    sim.at(repair_round * period - period / 2, net.repair_bus, "eth_backbone")
    for r in range(rounds):
        in_outage = fail_round <= r < repair_round
        base = r * period
        for index, send in enumerate(traffic):
            if in_outage and index == cam_index:
                continue  # the camera has no redundant path
            sim.at(base, send)
    sim.run()
    elapsed = perf_counter() - start
    messages = sum(ep.messages_sent for ep in endpoints.values())
    return messages, elapsed


def bench_comms(*, smoke: bool) -> dict:
    import _legacy_comms

    from repro.middleware import Endpoint
    from repro.network import VehicleNetwork
    from repro.sim import Tracer

    rounds = 80 if smoke else 400
    repeats = 2 if smoke else 3
    sides = {
        "legacy": (_legacy_comms.LegacyVehicleNetwork,
                   _legacy_comms.LegacyEndpoint),
        "optimized": (VehicleNetwork, Endpoint),
    }

    # interleave timing repeats so frequency scaling hits both sides equally
    best = {"legacy": None, "optimized": None}
    messages = {"legacy": 0, "optimized": 0}
    for _ in range(repeats):
        for name, (net_cls, ep_cls) in sides.items():
            count, elapsed = _comms_run(net_cls, ep_cls, rounds=rounds)
            messages[name] = count
            if best[name] is None or elapsed < best[name]:
                best[name] = elapsed
    assert messages["legacy"] == messages["optimized"], (
        "legacy and optimized comms stacks must send identical workloads"
    )

    # equivalence pass: full tracing on, delivery traces must be
    # byte-identical (same frames, same order, same timestamps)
    traces = {}
    for name, (net_cls, ep_cls) in sides.items():
        tracer = Tracer(enabled=True)
        _comms_run(net_cls, ep_cls, rounds=max(rounds // 4, 30), tracer=tracer)
        traces[name] = [e.to_json() for e in tracer.entries]
    identical = traces["legacy"] == traces["optimized"]

    baseline_mps = messages["legacy"] / best["legacy"]
    optimized_mps = messages["optimized"] / best["optimized"]
    return {
        "workload": (
            f"mixed CAN/FlexRay/Ethernet topology, {rounds} rounds x 6 "
            f"messages, backbone outage in the middle half"
        ),
        "messages": messages["optimized"],
        "repeats": repeats,
        "trace_entries_compared": len(traces["optimized"]),
        "baseline_messages_per_sec": round(baseline_mps),
        "optimized_messages_per_sec": round(optimized_mps),
        "speedup": round(optimized_mps / baseline_mps, 3),
        "results_identical": identical,
    }


# -- executor benchmarks ------------------------------------------------
#
# All three workloads share ONE warm executor: the pool is spawned and
# warm-up-pinged once (outside every timed region) and then serves the
# DSE batch, the fleet sweep and the XiL battery back to back — the
# deployment model the warm-pool architecture is built for.  Serial and
# parallel sides are timed best-of-``repeats`` interleaved so frequency
# scaling and CPU steal hit both equally.


def _dse_problem():
    from repro.dse import MappingProblem
    from repro.hw import centralized_topology
    from repro.workloads import reference_system

    return MappingProblem(reference_system(centralized_topology(n_platforms=2)))


def _best_of(repeats, serial_fn, parallel_fn):
    """Interleaved best-of timing; returns (serial_s, parallel_s, last)."""
    best_serial = best_parallel = None
    serial = parallel = None
    for _ in range(repeats):
        t0 = perf_counter()
        serial = serial_fn()
        elapsed = perf_counter() - t0
        if best_serial is None or elapsed < best_serial:
            best_serial = elapsed
        t0 = perf_counter()
        parallel = parallel_fn()
        elapsed = perf_counter() - t0
        if best_parallel is None or elapsed < best_parallel:
            best_parallel = elapsed
    return best_serial, best_parallel, (serial, parallel)


def _exec_section(workload, serial_s, parallel_s, workers, identical, extra):
    section = {
        "workload": workload,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "workers": workers,
        "effective_workers": min(workers, os.cpu_count() or 1),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
        "results_identical": identical,
    }
    section.update(extra)
    return section


def bench_exec_dse(executor, *, smoke: bool, repeats: int) -> dict:
    from repro.dse import random_search
    from repro.sim import RngStreams

    budget = 50 if smoke else 200

    def serial_side():
        return random_search(_dse_problem(), RngStreams(11), budget=budget)

    def parallel_side():
        return random_search(_dse_problem(), RngStreams(11), budget=budget,
                             executor=executor)

    serial_s, parallel_s, (serial, parallel) = _best_of(
        repeats, serial_side, parallel_side
    )
    identical = (
        serial.best.genome == parallel.best.genome
        and serial.best.evaluation == parallel.best.evaluation
        and [c.evaluation for c in serial.archive.members]
        == [c.evaluation for c in parallel.archive.members]
    )
    return _exec_section(
        f"random-search DSE, budget={budget}", serial_s, parallel_s,
        executor.workers, identical, {"evaluations": budget},
    )


def bench_exec_campaign(executor, *, smoke: bool, repeats: int) -> dict:
    from repro.core import CampaignSpec, sweep_campaigns

    replications = 4 if smoke else 8
    spec = CampaignSpec(
        fleet_size=2 if smoke else 4,
        soak_time=0.3 if smoke else 0.5,
        target_wcet=0.004,
        target_wcet_jitter=0.004,
        target_deadline=0.002,
    )

    def serial_side():
        return sweep_campaigns(spec, replications=replications, master_seed=3)

    def parallel_side():
        return sweep_campaigns(spec, replications=replications,
                               executor=executor, master_seed=3)

    serial_s, parallel_s, (serial, parallel) = _best_of(
        repeats, serial_side, parallel_side
    )
    return _exec_section(
        f"fleet-campaign sweep, {replications} replications",
        serial_s, parallel_s, executor.workers,
        serial.outcomes == parallel.outcomes,
        {"replications": replications},
    )


def bench_exec_xil(executor, *, smoke: bool, repeats: int) -> dict:
    from repro.xil import ScenarioSpec, run_battery

    duration = 10.0 if smoke else 40.0
    scenarios = [
        ScenarioSpec(name="nominal", duration=duration, max_settling_time=None,
                     max_steady_state_error=30.0),
        ScenarioSpec(name="sil_nominal", level="SiL", duration=duration,
                     max_settling_time=None, max_steady_state_error=30.0),
        ScenarioSpec(name="dropout", duration=duration,
                     sensor_dropout_window=(2.0, 3.0),
                     max_settling_time=None, max_steady_state_error=30.0),
        ScenarioSpec(name="stuck_actuator", duration=duration,
                     actuator_stuck_at=0.3,
                     max_settling_time=None, max_steady_state_error=30.0),
    ]

    def serial_side():
        return run_battery(scenarios)

    def parallel_side():
        return run_battery(scenarios, executor=executor, master_seed=0)

    serial_s, parallel_s, (serial, parallel) = _best_of(
        repeats, serial_side, parallel_side
    )
    return _exec_section(
        f"XiL battery, {len(scenarios)} scenarios x {duration}s",
        serial_s, parallel_s, executor.workers,
        serial.verdicts == parallel.verdicts,
        {"scenarios": len(scenarios)},
    )


def bench_exec(*, smoke: bool, workers: int) -> dict:
    """Run all three executor workloads against one shared warm pool."""
    from repro.exec import ParallelExecutor

    repeats = 2 if smoke else 5
    sections = {}
    with ParallelExecutor(workers=workers, master_seed=0) as executor:
        executor.warm_up()  # spawn + import outside every timed region
        for name, fn in (
            ("dse_random_search", bench_exec_dse),
            ("fleet_campaign_sweep", bench_exec_campaign),
            ("xil_battery", bench_exec_xil),
        ):
            sections[name] = fn(executor, smoke=smoke, repeats=repeats)
    return sections


# -- entry point ---------------------------------------------------------


def _environment() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def _write(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")


def _load_exec_floors(path, mode):
    """Committed per-workload speedup floors from a prior BENCH_exec.json.

    Floors only apply like-for-like: the committed run must have the
    same mode (smoke vs full) and must itself have been recorded on a
    multi-core host (``speedup_gate: enforced``) — single-core numbers
    measure overhead, not parallelism, and make meaningless floors.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            committed = json.load(fh)
    except (OSError, ValueError):
        return None
    if committed.get("speedup_gate") != "enforced":
        return None
    if committed.get("mode") != mode:
        return None
    floors = {}
    for name in ("dse_random_search", "fleet_campaign_sweep", "xil_battery"):
        speedup = committed.get(name, {}).get("speedup")
        if isinstance(speedup, (int, float)):
            floors[name] = speedup
    return floors or None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small configs for CI smoke runs")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker count for executor benchmarks")
    parser.add_argument("--out-dir", default=REPO_ROOT,
                        help="directory for BENCH_*.json (default: repo root)")
    parser.add_argument(
        "--gate-exec", metavar="PATH", default=None,
        help="committed BENCH_exec.json to gate against: fail if any "
             "workload speedup regresses below 90%% of its committed "
             "value (advisory — never failing — when cpu_count < 2)")
    args = parser.parse_args(argv)
    # read committed floors before this run overwrites the file in place
    mode = "smoke" if args.smoke else "full"
    exec_floors = (_load_exec_floors(args.gate_exec, mode)
                   if args.gate_exec else None)

    print(f"kernel microbenchmark ({'smoke' if args.smoke else 'full'})...")
    kernel = bench_kernel(smoke=args.smoke)
    print(
        f"  legacy   {kernel['baseline_events_per_sec']:>12,} events/s\n"
        f"  current  {kernel['optimized_events_per_sec']:>12,} events/s\n"
        f"  speedup  {kernel['speedup']:.2f}x"
    )
    _write(os.path.join(args.out_dir, "BENCH_kernel.json"), {
        "environment": _environment(),
        "mode": "smoke" if args.smoke else "full",
        **kernel,
    })

    print(f"\ncomms-stack benchmark ({'smoke' if args.smoke else 'full'})...")
    comms = bench_comms(smoke=args.smoke)
    print(
        f"  legacy   {comms['baseline_messages_per_sec']:>12,} messages/s\n"
        f"  current  {comms['optimized_messages_per_sec']:>12,} messages/s\n"
        f"  speedup  {comms['speedup']:.2f}x "
        f"(traces identical={comms['results_identical']})"
    )
    _write(os.path.join(args.out_dir, "BENCH_comms.json"), {
        "environment": _environment(),
        "mode": "smoke" if args.smoke else "full",
        **comms,
    })

    cpu_count = os.cpu_count() or 1
    multi_core = cpu_count >= 2
    print(f"\nexecutor benchmarks (workers={args.workers}, "
          f"effective={min(args.workers, cpu_count)}, one shared warm pool)...")
    sections = bench_exec(smoke=args.smoke, workers=args.workers)
    for name, result in sections.items():
        print(
            f"  {name}: serial {result['serial_seconds']}s, "
            f"parallel {result['parallel_seconds']}s "
            f"({result['speedup']}x, identical="
            f"{result['results_identical']})"
        )
    # speedups on a single-core runner measure pure overhead, not
    # parallelism — record them, but never gate on them
    speedup_gate = "enforced" if multi_core else "advisory"
    _write(os.path.join(args.out_dir, "BENCH_exec.json"), {
        "environment": _environment(),
        "mode": "smoke" if args.smoke else "full",
        "speedup_gate": speedup_gate,
        **sections,
    })

    failures = []
    if not comms["results_identical"]:
        failures.append(
            "comms fast path diverged from the legacy shim (delivery traces "
            "not byte-identical)"
        )
    if not all(s["results_identical"] for s in sections.values()):
        failures.append("parallel results diverged from serial")
    if exec_floors and multi_core:
        for name, floor in exec_floors.items():
            speedup = sections.get(name, {}).get("speedup")
            if speedup is not None and speedup < floor * 0.9:
                failures.append(
                    f"{name} speedup {speedup}x regressed below committed "
                    f"{floor}x (floor {floor * 0.9:.2f}x)"
                )
    elif exec_floors:
        print(f"\nspeedup gate advisory: cpu_count={cpu_count} < 2, "
              "not gating on parallel speedups")
    if failures:
        print("\nFAILED: " + "; ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
