"""Frozen pre-optimization communication stack, for benchmark baselines.

Companion to :mod:`_legacy_kernel`: these classes restore the network and
middleware hot paths exactly as they stood *before* the comms fast-path
PR, so ``BENCH_comms.json`` records a before/after trajectory on the same
hardware and Python:

* ``LegacyVehicleNetwork`` — recomputes the shortest path on **every**
  send (including the per-call ``import networkx`` on the degraded-mode
  branch), rebuilds the bus-name set per ``route_buses`` call, and runs
  the per-segment ``_send_hop`` chain with one end-to-end signal and one
  forwarding closure per segment per hop;
* ``LegacyCanBus`` — full ``O(n log n)`` sort of the pending list per
  arbitration round, K-times-counted arbitration losses, unguarded
  trace-kwargs construction;
* ``LegacyFlexRayBus`` — sorts the dynamic queue on every dynamic-segment
  iteration;
* ``LegacyEthernetBus`` / ``LegacyTsnBus`` — recompute each frame's wire
  duration at every selection round and scan the whole GCL per enqueue;
* ``LegacyEndpoint`` — re-resolves the route (and the per-technology
  segment payloads) for every message, then issues one independent
  ``network.send`` per segment;
* unguarded ``_deliver`` — builds the trace kwargs dict and copies the
  listener table on every delivery, tracing or not.

Do not "fix" this module: its whole value is staying slow the old way.
The delivery semantics are identical to the live stack — the benchmark
asserts byte-identical delivery traces between the two.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError, NetworkError
from repro.middleware.endpoint import Endpoint
from repro.middleware.wire import Message, segment_payload_for, segments_needed
from repro.network.base import BusModel
from repro.network.can import CanBus, can_frame_bits
from repro.network.ethernet import (
    EgressPort,
    EthernetBus,
    N_PRIORITIES,
    ethernet_wire_bytes,
)
from repro.network.flexray import FlexRayBus
from repro.network.frame import Frame, TrafficClass
from repro.network.gateway import VehicleNetwork
from repro.network.tsn import GatedEgressPort, TsnBus
from repro.sim import Signal


class _LegacyDeliverMixin(BusModel):
    """The pre-change ``_deliver``: unguarded trace kwargs, per-delivery
    listener-table copy."""

    def _deliver(self, frame, done):
        frame.delivered_at = self.sim.now
        self.frames_delivered += 1
        self.bytes_delivered += frame.payload_bytes
        self._m_frames.inc()
        self._m_bytes.inc(frame.payload_bytes)
        self._m_latency.observe(frame.latency)
        self.sim.trace(
            "net.delivery",
            bus=self.name,
            frame_id=frame.frame_id,
            src=frame.src,
            dst=frame.dst,
            label=frame.label,
            latency=frame.latency,
            traffic_class=frame.traffic_class.value,
        )
        if frame.dst is None:
            for ecu, listener in list(self._listeners.items()):
                if ecu != frame.src:
                    listener(frame)
        else:
            listener = self._listeners.get(frame.dst)
            if listener is not None:
                listener(frame)
        if done is not None:
            done.fire(frame)


class LegacyCanBus(_LegacyDeliverMixin, CanBus):
    """Pending list sorted in full on every arbitration round."""

    def submit(self, frame: Frame) -> Signal:
        from repro.network.can import CAN_MAX_ID

        if not 0 <= frame.priority <= CAN_MAX_ID:
            raise NetworkError(
                f"CAN identifier must be 0..{CAN_MAX_ID}, got {frame.priority}"
            )
        can_frame_bits(frame.payload_bytes)  # validates payload size
        frame.created_at = self.sim.now
        done = self.sim.signal(name=f"{self.name}.tx")
        self._seq += 1
        self._pending.append((frame.priority, self._seq, frame, done))
        if not self._busy:
            self._start_next()
        return done

    def _start_next(self) -> None:
        if not self._pending:
            return
        self._busy = True
        if len(self._pending) > 1:
            self.arbitration_losses += len(self._pending) - 1
        self._pending.sort(key=lambda item: (item[0], item[1]))
        __, __, frame, done = self._pending.pop(0)
        duration = can_frame_bits(frame.payload_bytes) / self.bitrate_bps
        self.sim.trace(
            "net.tx_start",
            bus=self.name,
            frame_id=frame.frame_id,
            can_id=frame.priority,
            duration=duration,
        )
        self.sim.schedule(duration, self._finish, frame, done, duration)


class LegacyFlexRayBus(_LegacyDeliverMixin, FlexRayBus):
    """Dynamic queue re-sorted on every dynamic-segment iteration."""

    def submit(self, frame: Frame) -> Signal:
        self._ensure_cycle_process()
        frame.created_at = self.sim.now
        done = self.sim.signal(name=f"{self.name}.tx")
        if frame.traffic_class is TrafficClass.DETERMINISTIC:
            slot = self.slot_of(frame.src)
            if slot is None:
                raise NetworkError(
                    f"{frame.src!r} owns no static slot on {self.name!r}"
                )
            if frame.payload_bytes > self.config.slot_payload_bytes:
                raise NetworkError(
                    f"frame exceeds static slot payload "
                    f"({frame.payload_bytes} > {self.config.slot_payload_bytes})"
                )
            self._slot_queue[slot].append((frame, done))
        else:
            self._seq += 1
            self._dynamic.append((frame.priority, self._seq, frame, done))
        return done

    def _cycle_loop(self):
        cfg = self.config
        cycle = int(self.sim.now // cfg.cycle_length)
        while True:
            cycle_start = cycle * cfg.cycle_length
            for slot in range(cfg.static_slots):
                slot_start = cfg.slot_start(cycle, slot)
                if slot_start < self.sim.now:
                    continue
                wait = slot_start - self.sim.now
                if wait > 0:
                    yield wait
                queue = self._slot_queue.get(slot)
                if queue:
                    frame, done = queue.pop(0)
                    yield cfg.static_slot_length
                    self.static_frames_sent += 1
                    self.record_transmission(cfg.static_slot_length)
                    self._deliver(frame, done)
            dyn_start = cycle_start + cfg.static_segment_length
            dyn_end = cycle_start + cfg.cycle_length
            if self.sim.now < dyn_start:
                yield dyn_start - self.sim.now
            while self._dynamic and self.sim.now < dyn_end:
                self._dynamic.sort(key=lambda item: (item[0], item[1]))
                __, __, frame, done = self._dynamic[0]
                duration = self.wire_time(frame.payload_bytes + 8)
                if self.sim.now + duration > dyn_end:
                    self.dynamic_deferrals += 1
                    break
                self._dynamic.pop(0)
                yield duration
                self.dynamic_frames_sent += 1
                self.record_transmission(duration)
                self._deliver(frame, done)
            if dyn_end > self.sim.now:
                yield dyn_end - self.sim.now
            cycle += 1
            if not self._has_pending():
                self._cycle_proc_started = False
                return


class LegacyEgressPort(EgressPort):
    """(frame, done) pairs; wire duration recomputed per transmission."""

    def enqueue(self, frame: Frame, done: Signal) -> None:
        if not 0 <= frame.priority < N_PRIORITIES:
            raise NetworkError(
                f"Ethernet PCP must be 0..{N_PRIORITIES - 1}, got {frame.priority}"
            )
        self.queues[frame.priority].append((frame, done))
        if not self.busy:
            self._start_next()

    def _select(self):
        for pcp in range(N_PRIORITIES - 1, -1, -1):
            if self.queues[pcp]:
                return self.queues[pcp].popleft()
        return None

    def _start_next(self) -> None:
        item = self._select()
        if item is None:
            return
        frame, done = item
        self.busy = True
        duration = self.bus.wire_time(ethernet_wire_bytes(frame.payload_bytes))
        self.bus.sim.schedule(duration, self._finish, frame, done, duration)


class LegacyGatedEgressPort(GatedEgressPort):
    """(frame, done) pairs; full GCL scan per enqueue, per-round duration
    recomputation in transmission selection."""

    def enqueue(self, frame: Frame, done: Signal) -> None:
        duration = self.bus.wire_time(ethernet_wire_bytes(frame.payload_bytes))
        fits_somewhere = any(
            frame.priority in entry.open_priorities
            and duration <= entry.duration + 1e-12
            for entry in self.gcl.entries
        )
        if not fits_somewhere:
            raise NetworkError(
                f"frame of {frame.payload_bytes} B can never fit a gate window "
                f"open for priority {frame.priority}"
            )
        self.queues[frame.priority].append((frame, done))
        if not self.busy:
            self._start_next()

    def _select(self):
        now = self.bus.sim.now
        open_set, remaining = self.gcl.state_at(now)
        for pcp in range(7, -1, -1):
            if not self.queues[pcp]:
                continue
            if pcp not in open_set:
                continue
            frame, done = self.queues[pcp][0]
            duration = self.bus.wire_time(ethernet_wire_bytes(frame.payload_bytes))
            if duration <= remaining + 1e-12:
                self.queues[pcp].popleft()
                return frame, done
            self.gate_deferrals += 1
        self._arm_wakeup()
        return None

    def _start_next(self) -> None:
        item = self._select()
        if item is None:
            self.busy = False
            return
        frame, done = item
        self.busy = True
        duration = self.bus.wire_time(ethernet_wire_bytes(frame.payload_bytes))
        self.bus.sim.schedule(duration, self._finish, frame, done, duration)


class LegacyEthernetBus(_LegacyDeliverMixin, EthernetBus):
    def _make_port(self, dst: str):
        return LegacyEgressPort(self, dst)


class LegacyTsnBus(_LegacyDeliverMixin, TsnBus):
    def _make_port(self, dst: str):
        return LegacyGatedEgressPort(self, dst, self.gcl)


def legacy_build_bus(sim, spec, gcl=None):
    """Instantiate the legacy simulator class for a bus spec."""
    if spec.technology == "can":
        return LegacyCanBus(sim, spec.name, spec.bitrate_bps)
    if spec.technology == "flexray":
        return LegacyFlexRayBus(sim, spec.name, spec.bitrate_bps)
    if spec.technology == "ethernet":
        if spec.tsn_capable:
            return LegacyTsnBus(sim, spec.name, spec.bitrate_bps, gcl=gcl)
        return LegacyEthernetBus(sim, spec.name, spec.bitrate_bps)
    raise ConfigurationError(f"no simulator for technology {spec.technology!r}")


class LegacyVehicleNetwork(VehicleNetwork):
    """Per-send shortest-path recomputation, per-segment signal chains."""

    _bus_factory = staticmethod(legacy_build_bus)

    def _route(self, src: str, dst: str) -> List[str]:
        if not self._failed_buses:
            return self.topology.route(src, dst)
        import networkx as nx

        graph = self.topology.graph.copy()
        graph.remove_nodes_from(self._failed_buses)
        try:
            route = nx.shortest_path(graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise ConfigurationError(
                f"no surviving path {src!r} -> {dst!r} "
                f"(failed buses: {sorted(self._failed_buses)})"
            ) from None
        self.reroutes += 1
        return route

    def send(
        self,
        src: str,
        dst: str,
        payload_bytes: int,
        *,
        priority: int = 0,
        traffic_class: TrafficClass = TrafficClass.NON_DETERMINISTIC,
        payload: object = None,
        label: str = "",
    ) -> Signal:
        route = self._route(src, dst)
        hops: List[Tuple[str, str, str]] = []
        for i in range(0, len(route) - 1, 2):
            hops.append((route[i], route[i + 1], route[i + 2]))
        done = self.sim.signal(name=f"net.{src}->{dst}")
        self._send_hop(
            tuple(hops), 0, payload_bytes, priority, traffic_class, payload, label, done
        )
        return done

    def route_buses(self, src: str, dst: str):
        return [
            self.topology.bus(node)
            for node in self._route(src, dst)
            if node in {b.name for b in self.topology.buses}
        ]


class LegacyEndpoint(Endpoint):
    """Route re-resolved per message; one ``network.send`` per segment."""

    def _segment_sizes(self, src: str, message: Message) -> List[int]:
        route_buses = self.network.route_buses(src, message.dst)
        min_segment = min(
            segment_payload_for(spec.technology) for spec in route_buses
        )
        total = message.total_bytes
        n_segments = segments_needed(total, min_segment)
        sizes = []
        remaining = total
        can_route = min_segment == segment_payload_for("can")
        for _ in range(n_segments):
            seg = min(min_segment, remaining) if remaining > 0 else 0
            remaining -= seg
            sizes.append(min(seg + 1, 8) if can_route else max(seg, 1))
        return sizes

    def _transmit(self, src: str, message: Message, qos, done: Signal) -> None:
        sizes = self._segment_sizes(src, message)
        n_segments = len(sizes)
        for index, frame_payload in enumerate(sizes):
            marker = (message, index, n_segments, done)
            self.network.send(
                src,
                message.dst,
                frame_payload,
                priority=qos.priority,
                traffic_class=qos.traffic_class,
                payload=marker,
                label=f"svc{message.service_id:04x}.{message.msg_type.value}",
            )
