"""Experiment F2 (Figure 2 / Section 3.1): CPU freedom of interference.

Claim: on the dynamic platform's mixed-criticality scheduler, a
deterministic control application keeps its deadlines and jitter budget
no matter how much non-deterministic load shares the core; on a plain
fair-share (GPOS) core it does not.

Sweep the NDA offered load from 0.2 to 2.0 of the core and report the
DA's deadline-miss ratio and worst jitter under three policies:
fair-share (no isolation), mixed without a budget server (background
NDAs), and mixed with a budget server (D1).
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.osal import (
    BudgetServer,
    Core,
    Criticality,
    FairSharePolicy,
    MixedCriticalityPolicy,
    PeriodicSource,
    TaskSpec,
)
from repro.sim import Simulator

DA = TaskSpec(
    name="ctl", period=0.01, wcet=0.002, deadline=0.005,
    jitter_tolerance=0.002,
)
HORIZON = 2.0


def run_policy(policy_factory, nda_load: float):
    sim = Simulator()
    core = Core(sim, "c", 1.0, policy_factory())
    da_source = PeriodicSource(sim, core, DA, horizon=HORIZON)
    # nda_load is spread over 4 bulk tasks (per-task U = load / 4)
    nda_sources = []
    for i in range(4):
        task = TaskSpec(
            name=f"bulk{i}", period=0.02,
            wcet=min(0.02 * nda_load / 4.0, 0.0199),
            criticality=Criticality.NON_DETERMINISTIC,
        )
        nda_sources.append(PeriodicSource(sim, core, task, horizon=HORIZON))
    sim.run(until=HORIZON)
    jitters = [j.start_jitter for j in da_source.finished_jobs()]
    da_work = sum(
        j.task.wcet for j in da_source.finished_jobs()
    )
    # NDA service share: core busy time not attributable to the DA
    nda_service = max(0.0, core.busy_time - da_work) / sim.now
    return {
        "miss_ratio": da_source.miss_ratio(sim.now),
        "max_jitter": max(jitters) if jitters else float("inf"),
        "nda_service": nda_service,
    }


POLICIES = {
    "fair_share": lambda: FairSharePolicy(quantum=0.001),
    "background": lambda: MixedCriticalityPolicy(server=None),
    "budget_30%": lambda: MixedCriticalityPolicy(
        server=BudgetServer(capacity=0.003, period=0.01)
    ),
}


@pytest.mark.benchmark(group="f2")
def test_f2_interference(benchmark):
    loads = (0.2, 0.6, 1.0, 1.5, 2.0)

    def sweep():
        table = {}
        for name, factory in POLICIES.items():
            table[name] = [run_policy(factory, load) for load in loads]
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name, results in table.items():
        for load, r in zip(loads, results):
            rows.append((
                name, load, f"{r['miss_ratio']:.3f}",
                f"{r['max_jitter'] * 1e3:.3f} ms",
                f"{r['nda_service']:.2f}",
            ))
    print_table(
        "F2: DA deadline misses & jitter vs NDA load, per policy",
        ["policy", "NDA load", "DA miss ratio", "DA max jitter", "NDA service"],
        rows,
        width=16,
    )
    # the claims: fair-share misses under load; the platform never does
    fair = table["fair_share"]
    assert fair[-1]["miss_ratio"] > 0.5
    for r in table["background"]:
        assert r["miss_ratio"] == 0.0
    for r in table["budget_30%"]:
        assert r["miss_ratio"] == 0.0
        assert r["max_jitter"] <= DA.jitter_tolerance + 1e-9
    # the budget server guarantees NDAs their ~30% share even at overload
    assert table["budget_30%"][-1]["nda_service"] > 0.2
