#!/usr/bin/env python3
"""Sanitizer benchmark: race-freedom, non-perturbation and overhead.

Three gates, each failing the process (exit 1) when violated:

1. **Race freedom** — the seeded chaos scenario (the same one
   ``bench_fault_soak.py`` soaks) runs with the
   :class:`~repro.analysis.sanitizer.KernelSanitizer` attached to both
   the kernel and the fault injector's RNG streams; it must finish with
   ``race_count == 0``.  Tiebreak diagnostics are allowed (they are
   informational), races are not.

2. **Non-perturbation** — the chaos scenario soaked with and without
   the sanitizer must produce byte-identical fault timelines and
   condensed outcomes.  A sanitizer that changes the simulation it
   observes would be worse than none.

3. **Attached overhead** — a message-heavy soak is timed bare and with
   the sanitizer attached; the sanitized run must stay within
   ``MAX_OVERHEAD_PCT`` of the baseline.  (When *detached* the kernel
   pays exactly one ``is None`` branch per event — the same contract as
   the fault layer, covered by ``bench_fault_soak.py``'s idle gate.)

Writes ``BENCH_sanitizer.json`` at the repo root.
"""

import argparse
import json
import os
import platform
import sys
from time import perf_counter

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.analysis import KernelSanitizer  # noqa: E402
from repro.faults import (  # noqa: E402
    FaultCampaignSpec,
    FaultPlan,
    FaultSpec,
    build_chaos_scenario,
    campaign_outcome,
)
from repro.hw import BusSpec, EcuSpec, Topology  # noqa: E402
from repro.middleware import Endpoint, Message, MessageType, ServiceRegistry  # noqa: E402
from repro.network import VehicleNetwork  # noqa: E402
from repro.sim import Simulator  # noqa: E402

MAX_OVERHEAD_PCT = 5.0

CHAOS_PLAN = FaultPlan(
    name="sanitized-soak",
    faults=(
        FaultSpec(kind="ecu_crash", target="platform_0", start=0.1, duration=0.15),
        FaultSpec(kind="bus_outage", target="eth_backbone", start=0.05, duration=0.08),
        FaultSpec(
            kind="frame_drop", target="eth_ring", start=0.06,
            duration=0.04, probability=0.5, count=3, period=0.12, jitter=0.01,
        ),
        FaultSpec(
            kind="task_overrun", target="platform_1", start=0.2,
            duration=0.1, magnitude=0.5,
        ),
    ),
)


def run_chaos_once(seed: int, soak_time: float, sanitized: bool):
    spec = FaultCampaignSpec(plan=CHAOS_PLAN, soak_time=soak_time)
    sim = Simulator()
    scenario = build_chaos_scenario(sim, spec, seed)
    sanitizer = None
    if sanitized:
        sanitizer = KernelSanitizer(
            sim, rng=scenario["injector"].rng
        ).attach()
    sim.run(until=sim.now + soak_time)
    outcome = campaign_outcome("sanitized-soak", scenario)
    return tuple(scenario["injector"].timeline), outcome, sanitizer


def check_chaos(seed: int, soak_time: float) -> dict:
    bare_timeline, bare_outcome, _ = run_chaos_once(seed, soak_time, False)
    san_timeline, san_outcome, sanitizer = run_chaos_once(
        seed, soak_time, True
    )
    return {
        "seed": seed,
        "soak_time": soak_time,
        "timeline_events": len(san_timeline),
        "race_count": sanitizer.race_count,
        "tie_count": sanitizer.tie_count,
        "counts": dict(sorted(sanitizer.counts.items())),
        "summary": sanitizer.summary().splitlines()[0],
        "unperturbed": (
            bare_timeline == san_timeline and bare_outcome == san_outcome
        ),
    }


def message_soak(n_messages: int, sanitized: bool) -> float:
    """Wall-clock seconds to pump ``n_messages`` through one segment."""
    topo = Topology()
    topo.add_bus(BusSpec("eth", "ethernet", 1e9))
    for name in ("e0", "e1"):
        topo.add_ecu(EcuSpec(name, ports=(("eth0", "ethernet"),)))
        topo.attach(name, "eth0", "eth")
    sim = Simulator()
    net = VehicleNetwork(sim, topo)
    registry = ServiceRegistry()
    endpoints = {n: Endpoint(sim, net, n, registry) for n in ("e0", "e1")}
    endpoints["e1"].on_message(0x10, MessageType.NOTIFICATION, lambda m: None)
    if sanitized:
        KernelSanitizer(sim).attach()

    def sender():
        for _ in range(n_messages):
            endpoints["e0"].send(Message(
                service_id=0x10, method_id=1,
                msg_type=MessageType.NOTIFICATION,
                payload_bytes=64, src="e0", dst="e1",
            ))
            yield 1e-5

    sim.process(sender())
    t0 = perf_counter()
    sim.run(until=(n_messages + 10) * 1e-5)
    elapsed = perf_counter() - t0
    assert net.bus("eth").frames_delivered == n_messages
    return elapsed


def check_overhead(n_messages: int, repeats: int, max_batches: int = 5) -> dict:
    # Shared-runner noise (CPU steal) is one-sided: it only ever *adds*
    # wall time.  The robust estimator under such noise is the ratio of
    # minimums — with many short interleaved runs, min(bare) and
    # min(sanitized) both converge on the true undisturbed cost (short
    # runs matter: each is another chance to land in a quiet window).  A
    # batch that still looks like a breach accumulates more runs before
    # judging: real overhead persists, noise washes out.
    baseline_runs = []
    sanitized_runs = []
    for _ in range(max_batches):
        for _ in range(repeats):
            baseline_runs.append(message_soak(n_messages, False))
            sanitized_runs.append(message_soak(n_messages, True))
        ratio = min(sanitized_runs) / min(baseline_runs)
        overhead_pct = (ratio - 1.0) * 100.0
        if overhead_pct < MAX_OVERHEAD_PCT:
            break
    return {
        "messages": n_messages,
        "repeats": len(baseline_runs),
        "baseline_seconds": round(min(baseline_runs), 4),
        "sanitized_seconds": round(min(sanitized_runs), 4),
        "overhead_pct": round(overhead_pct, 2),
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "within_budget": overhead_pct < MAX_OVERHEAD_PCT,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small configs for CI smoke runs")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out-dir", default=REPO_ROOT)
    args = parser.parse_args(argv)

    soak_time = 0.5 if args.smoke else 2.0
    n_messages = 2_000 if args.smoke else 10_000
    repeats = 10 if args.smoke else 12

    print(f"sanitized chaos soak (seed {args.seed}, {soak_time}s) ...")
    chaos = check_chaos(args.seed, soak_time)
    print(f"  {chaos['timeline_events']} timeline events, "
          f"races={chaos['race_count']}, ties={chaos['tie_count']}, "
          f"unperturbed={chaos['unperturbed']}")

    print(f"attached-sanitizer overhead ({n_messages:,} messages x {repeats}) ...")
    overhead = check_overhead(n_messages, repeats)
    print(f"  baseline {overhead['baseline_seconds']}s, "
          f"sanitized {overhead['sanitized_seconds']}s "
          f"({overhead['overhead_pct']:+.2f}%, budget "
          f"{MAX_OVERHEAD_PCT:.0f}%)")

    payload = {
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "mode": "smoke" if args.smoke else "full",
        "chaos": chaos,
        "attached_overhead": overhead,
    }
    out_path = os.path.join(args.out_dir, "BENCH_sanitizer.json")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path}")

    if chaos["race_count"] != 0:
        print(f"FAIL: sanitizer found {chaos['race_count']} race(s) in the "
              f"seeded chaos scenario: {chaos['summary']}", file=sys.stderr)
        return 1
    if not chaos["unperturbed"]:
        print("FAIL: attaching the sanitizer changed the fault timeline "
              "or outcome", file=sys.stderr)
        return 1
    if not overhead["within_budget"]:
        print(f"FAIL: attached sanitizer overhead "
              f"{overhead['overhead_pct']}% exceeds {MAX_OVERHEAD_PCT}% "
              "budget", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
