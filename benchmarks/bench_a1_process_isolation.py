"""Experiment A1 (Section 3.1 Memory): process separation and the MMU.

"Freedom of interference between applications also requires to fully
separate their memory. ... OSs with support for memory separation often
require a Memory Management Unit."

We co-locate a growing number of apps on one ECU, inject a wild write
into one of them, and count the corrupted apps — with and without an
MMU, and with apps sharing one process vs one process each ("it is
important to define which applications need to run in separate processes
and which can be combined").
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.hw import EcuSpec, EcuState
from repro.osal import MemoryManager


def blast_radius(n_apps: int, mmu: bool, own_process: bool) -> int:
    state = EcuState(EcuSpec("e", memory_kib=1 << 16, has_mmu=mmu))
    manager = MemoryManager(state)
    if own_process:
        for i in range(n_apps):
            manager.spawn(f"proc_{i}", 16, resident=f"app_{i}")
        victims = manager.wild_write("proc_0")
    else:
        proc = manager.spawn("shared", 16, resident="app_0")
        for i in range(1, n_apps):
            proc.add_resident(f"app_{i}")
        victims = manager.wild_write("shared")
        # everyone in the shared process is corrupted regardless of MMU
        return sum(
            len(manager.process(v).residents) for v in victims
        )
    return sum(len(manager.process(v).residents) for v in victims)


@pytest.mark.benchmark(group="a1")
def test_a1_process_isolation(benchmark):
    counts = (2, 8, 32)

    def sweep():
        rows = []
        for n in counts:
            rows.append((
                n,
                blast_radius(n, mmu=True, own_process=True),
                blast_radius(n, mmu=False, own_process=True),
                blast_radius(n, mmu=True, own_process=False),
            ))
        return rows

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "A1: apps corrupted by one wild write",
        ["co-located apps", "MMU + own process", "no MMU", "shared process"],
        results,
        width=18,
    )
    for n, isolated, no_mmu, shared in results:
        assert isolated == 1          # blast radius: the faulty app only
        assert no_mmu == n            # everything on the ECU corrupted
        assert shared == n            # process sharing defeats the MMU
