"""Frozen pre-optimization kernel hot path, for benchmark baselines.

This module is a verbatim-in-spirit copy of the event queue, scheduler
and signal fan-out as they stood *before* the hot-path optimization PR
(tuple-allocating ``__lt__``, unconditional negative-delay branch, one
heap push per signal waiter, fully lazy cancelled-entry removal).  The
benchmark runner executes the same workload against this shim and
against the live :mod:`repro.sim` kernel, so ``BENCH_kernel.json``
records the before/after trajectory on the *same* hardware and Python.

Do not "fix" this module: its whole value is staying slow the old way.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

PRIORITY_NORMAL = 100
PRIORITY_URGENT = 10


class LegacyScheduledCall:
    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "_queue")

    def __init__(self, time, priority, seq, callback, args, queue=None):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()

    def __lt__(self, other: "LegacyScheduledCall") -> bool:
        # The pre-change comparison: allocates two tuples per heap sift step.
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )


class LegacyEventQueue:
    def __init__(self) -> None:
        self._heap: List[LegacyScheduledCall] = []
        self._counter = itertools.count()
        self._cancelled_in_heap = 0

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled_in_heap

    def _note_cancelled(self) -> None:
        # Pre-change behaviour: purely lazy, cancelled entries linger until
        # they surface at the heap root.
        self._cancelled_in_heap += 1

    def push(self, time, callback, args=(), priority=PRIORITY_NORMAL):
        call = LegacyScheduledCall(
            time, priority, next(self._counter), callback, args, self
        )
        heapq.heappush(self._heap, call)
        return call

    def pop(self) -> LegacyScheduledCall:
        while self._heap:
            call = heapq.heappop(self._heap)
            call._queue = None
            if not call.cancelled:
                return call
            self._cancelled_in_heap -= 1
        raise RuntimeError("event queue is empty")

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)._queue = None
            self._cancelled_in_heap -= 1
        if not self._heap:
            return None
        return self._heap[0].time


class LegacySignal:
    """Pre-change signal: one urgent heap push per registered waiter."""

    __slots__ = ("sim", "fired", "value", "_callbacks")

    def __init__(self, sim: "LegacySimulator") -> None:
        self.sim = sim
        self.fired = False
        self.value: Any = None
        self._callbacks: List[Callable[[Any], None]] = []

    def fire(self, value: Any = None) -> None:
        if self.fired:
            raise RuntimeError("signal fired twice")
        self.fired = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.sim.schedule(0.0, cb, value, priority=PRIORITY_URGENT)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        if self.fired:
            self.sim.schedule(0.0, callback, self.value, priority=PRIORITY_URGENT)
        else:
            self._callbacks.append(callback)


class LegacySimulator:
    """Pre-change scheduling loop, stripped of tracing/metrics/profiling
    (both sides of the benchmark run bare, so the comparison isolates the
    hot-path changes themselves)."""

    def __init__(self) -> None:
        self.now = 0.0
        self.queue = LegacyEventQueue()

    def schedule(self, delay, callback, *args, priority=PRIORITY_NORMAL):
        # Pre-change: the negative-delay branch is tested on every call,
        # including the extremely common delay=0 urgent wakeup.
        if delay < 0:
            raise RuntimeError(f"cannot schedule in the past (delay={delay})")
        return self.queue.push(self.now + delay, callback, args, priority)

    def signal(self) -> LegacySignal:
        return LegacySignal(self)

    def run(self, until: Optional[float] = None) -> None:
        while True:
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            call = self.queue.pop()
            self.now = call.time
            call.callback(*call.args)
        if until is not None and until > self.now:
            self.now = until
