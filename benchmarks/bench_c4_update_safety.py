"""Experiment C4 (Section 3.2): update safety of a running control app.

A cruise-control app is updated while the vehicle drives (SiL closed
loop in spirit; here the control function runs as a platform app and we
observe its activation stream).  Strategies compared:

* staged (paper): zero functional gap;
* stop-update-restart: the function is down for verify+flash+restart;
* naive synchronized switch with clock skew 0 / 20 / 50 ms.

Metric: the longest interval without a running instance ("control gap"),
and released control activations vs. nominal.
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.core import AppState, DynamicPlatform, UpdateOrchestrator
from repro.hw import centralized_topology
from repro.model import AppModel, Asil
from repro.osal import TaskSpec
from repro.security import TrustStore, build_package
from repro.sim import Simulator

RUN_TIME = 3.0
PERIOD = 0.01


def ctl_app(version=(1, 0)):
    return AppModel(
        name="cruise",
        tasks=(TaskSpec(name="cruise_loop", period=PERIOD, wcet=0.001),),
        asil=Asil.C, memory_kib=64, image_kib=256, version=version,
    )


def run_strategy(strategy: str, clock_skew: float = 0.0):
    sim = Simulator()
    store = TrustStore()
    store.generate_key("oem")
    platform = DynamicPlatform(
        sim, centralized_topology(n_platforms=2), trust_store=store
    )
    orchestrator = UpdateOrchestrator(platform)
    platform.install(build_package(ctl_app(), store, "oem"), "platform_0")
    sim.run()
    platform.start_app("cruise", "platform_0")
    # sample the "is the function alive" predicate at 1 ms resolution
    gaps = []
    state = {"down_since": None, "longest": 0.0}

    def probe():
        alive = bool(platform.running_instances("cruise"))
        if not alive and state["down_since"] is None:
            state["down_since"] = sim.now
        if alive and state["down_since"] is not None:
            state["longest"] = max(
                state["longest"], sim.now - state["down_since"]
            )
            state["down_since"] = None
        if sim.now < RUN_TIME:
            sim.schedule(0.001, probe)

    probe()
    new_pkg = build_package(ctl_app(version=(1, 1)), store, "oem")
    reports = []
    if strategy == "staged":
        sim.at(0.5, lambda: orchestrator.staged_update(
            "cruise", "platform_0", new_pkg).add_callback(reports.append))
    elif strategy == "stop_restart":
        sim.at(0.5, lambda: orchestrator.stop_update_restart(
            "cruise", "platform_0", new_pkg).add_callback(reports.append))
    else:
        orchestrator.naive_switch(
            "cruise", "platform_0", new_pkg, switch_at=0.5,
            clock_skew=clock_skew,
        ).add_callback(reports.append)
    sim.run(until=RUN_TIME + 0.1)
    if state["down_since"] is not None:
        state["longest"] = max(state["longest"], sim.now - state["down_since"])
    # count completed control activations across all instances ever
    # (torn-down instances leave their finished jobs on the cores)
    node = platform.node("platform_0")
    released = sum(
        sum(1 for j in core.completed_jobs if j.task.name == "cruise_loop")
        for core in node.cores
    )
    report = reports[0] if reports else None
    return {
        "gap": state["longest"],
        "released": released,
        "update_ok": bool(report and report.success),
        "reported_downtime": report.downtime if report else float("nan"),
    }


@pytest.mark.benchmark(group="c4")
def test_c4_update_safety(benchmark):
    scenarios = [
        ("staged", 0.0),
        ("stop_restart", 0.0),
        ("naive skew=0ms", 0.0),
        ("naive skew=20ms", 0.020),
        ("naive skew=50ms", 0.050),
    ]

    def sweep():
        out = {}
        for name, skew in scenarios:
            key = "staged" if name == "staged" else (
                "stop_restart" if name == "stop_restart" else "naive"
            )
            out[name] = run_strategy(key, clock_skew=skew)
        return out

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    nominal = int(RUN_TIME / PERIOD)
    rows = []
    for name, r in table.items():
        rows.append((
            name,
            f"{r['gap'] * 1e3:.1f} ms",
            f"{r['reported_downtime'] * 1e3:.1f} ms",
            f"{r['released']}/{nominal}",
            "ok" if r["update_ok"] else "FAILED",
        ))
    print_table(
        "C4: control gap per update strategy (period = 10 ms)",
        ["strategy", "observed gap", "reported downtime", "activations",
         "update"],
        rows,
        width=18,
    )
    assert table["staged"]["update_ok"]
    # staged: never a probe without a running instance
    assert table["staged"]["gap"] == 0.0
    # stop/restart: a real gap, dominated by the image flash
    assert table["stop_restart"]["gap"] > 0.05
    # naive: the gap grows with clock skew
    assert (
        table["naive skew=50ms"]["reported_downtime"]
        > table["naive skew=0ms"]["reported_downtime"] + 0.04
    )
    # staged releases (close to) the nominal number of activations
    assert table["staged"]["released"] >= nominal - 2