#!/usr/bin/env python3
"""Fault-soak benchmark: determinism check + idle-injector overhead.

Two gates, both of which fail the process (exit 1) when violated:

1. **Determinism** — the seeded chaos scenario is built and soaked twice
   from the same ``(plan, seed)``; the fault timelines and condensed
   outcomes must be byte-identical.  Any divergence means hidden global
   state leaked into the fault path.

2. **Idle overhead** — a message-heavy soak is timed with no injector
   and with an *armed but idle* injector (every fault scheduled far
   beyond the horizon, so no hook is ever installed).  The armed-idle
   run must stay within ``MAX_OVERHEAD_PCT`` of the baseline: the fault
   layer's cost when unused is one ``None`` test per delivery.

Writes ``BENCH_faults.json`` at the repo root (CI uploads it as an
artifact next to the other BENCH files).
"""

import argparse
import json
import os
import platform
import sys
from time import perf_counter

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.faults import (  # noqa: E402
    FaultCampaignSpec,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    build_chaos_scenario,
    campaign_outcome,
)
from repro.hw import BusSpec, EcuSpec, Topology  # noqa: E402
from repro.middleware import Endpoint, Message, MessageType, ServiceRegistry  # noqa: E402
from repro.network import VehicleNetwork  # noqa: E402
from repro.sim import Simulator  # noqa: E402

MAX_OVERHEAD_PCT = 5.0

CHAOS_PLAN = FaultPlan(
    name="soak",
    faults=(
        FaultSpec(kind="ecu_crash", target="platform_0", start=0.1, duration=0.15),
        FaultSpec(kind="bus_outage", target="eth_backbone", start=0.05, duration=0.08),
        FaultSpec(
            kind="frame_drop", target="eth_ring", start=0.06,
            duration=0.04, probability=0.5, count=3, period=0.12, jitter=0.01,
        ),
        FaultSpec(
            kind="task_overrun", target="platform_1", start=0.2,
            duration=0.1, magnitude=0.5,
        ),
        FaultSpec(
            kind="clock_drift", target="platform_1", start=0.3,
            duration=0.1, magnitude=0.01,
        ),
    ),
)


def run_chaos_once(seed: int, soak_time: float):
    spec = FaultCampaignSpec(plan=CHAOS_PLAN, soak_time=soak_time)
    sim = Simulator()
    scenario = build_chaos_scenario(sim, spec, seed)
    sim.run(until=sim.now + soak_time)
    outcome = campaign_outcome("soak", scenario)
    return tuple(scenario["injector"].timeline), outcome


def check_determinism(seed: int, soak_time: float) -> dict:
    first_timeline, first_outcome = run_chaos_once(seed, soak_time)
    second_timeline, second_outcome = run_chaos_once(seed, soak_time)
    identical = (
        first_timeline == second_timeline and first_outcome == second_outcome
    )
    return {
        "seed": seed,
        "soak_time": soak_time,
        "timeline_events": len(first_timeline),
        "failovers": first_outcome.failovers,
        "rpc_calls": first_outcome.rpc_calls,
        "timelines_identical": first_timeline == second_timeline,
        "outcomes_identical": first_outcome == second_outcome,
        "identical": identical,
    }


def message_soak(n_messages: int, with_idle_injector: bool) -> float:
    """Wall-clock seconds to pump ``n_messages`` through one segment."""
    topo = Topology()
    topo.add_bus(BusSpec("eth", "ethernet", 1e9))
    for name in ("e0", "e1"):
        topo.add_ecu(EcuSpec(name, ports=(("eth0", "ethernet"),)))
        topo.attach(name, "eth0", "eth")
    sim = Simulator()
    net = VehicleNetwork(sim, topo)
    registry = ServiceRegistry()
    endpoints = {n: Endpoint(sim, net, n, registry) for n in ("e0", "e1")}
    endpoints["e1"].on_message(0x10, MessageType.NOTIFICATION, lambda m: None)
    if with_idle_injector:
        # armed, but every occurrence is far beyond the soak horizon:
        # no hook is ever installed, so this measures the pure cost of
        # having the fault layer present
        idle_plan = FaultPlan(name="idle", faults=(
            FaultSpec(kind="frame_drop", target="eth", start=1e6),
            FaultSpec(kind="bus_outage", target="eth", start=1e6),
        ))
        FaultInjector(sim, idle_plan, 0, network=net).arm()

    def sender():
        for _ in range(n_messages):
            endpoints["e0"].send(Message(
                service_id=0x10, method_id=1,
                msg_type=MessageType.NOTIFICATION,
                payload_bytes=64, src="e0", dst="e1",
            ))
            yield 1e-5

    sim.process(sender())
    t0 = perf_counter()
    sim.run(until=(n_messages + 10) * 1e-5)
    elapsed = perf_counter() - t0
    assert net.bus("eth").frames_delivered == n_messages
    return elapsed


def check_overhead(n_messages: int, repeats: int, max_batches: int = 3) -> dict:
    # Shared-runner wall-clock noise (CPU steal bursts) routinely exceeds
    # the sub-1% effect being measured, so the estimator is the *median of
    # per-pair ratios*: each armed run is divided by the baseline run
    # taken immediately before it.  A noise burst skews a pair only if it
    # hits exactly one half, and the median discards such pairs.  When a
    # batch still looks like a breach, more pairs are accumulated — a
    # real overhead persists across batches, a noise spike washes out.
    pair_ratios = []
    baseline_runs = []
    armed_runs = []
    for _ in range(max_batches):
        for _ in range(repeats):
            baseline_runs.append(message_soak(n_messages, False))
            armed_runs.append(message_soak(n_messages, True))
            pair_ratios.append(armed_runs[-1] / baseline_runs[-1])
        median_ratio = sorted(pair_ratios)[len(pair_ratios) // 2]
        overhead_pct = (median_ratio - 1.0) * 100.0
        if overhead_pct < MAX_OVERHEAD_PCT:
            break
    return {
        "messages": n_messages,
        "repeats": len(pair_ratios),
        "baseline_seconds": round(min(baseline_runs), 4),
        "armed_idle_seconds": round(min(armed_runs), 4),
        "overhead_pct": round(overhead_pct, 2),
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "within_budget": overhead_pct < MAX_OVERHEAD_PCT,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small configs for CI smoke runs")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out-dir", default=REPO_ROOT)
    args = parser.parse_args(argv)

    soak_time = 0.5 if args.smoke else 2.0
    n_messages = 20_000 if args.smoke else 100_000
    repeats = 3 if args.smoke else 5

    print(f"determinism soak (seed {args.seed}, {soak_time}s twice) ...")
    determinism = check_determinism(args.seed, soak_time)
    print(f"  {determinism['timeline_events']} timeline events, "
          f"{determinism['failovers']} failovers, "
          f"identical={determinism['identical']}")

    print(f"idle-injector overhead ({n_messages:,} messages x {repeats}) ...")
    overhead = check_overhead(n_messages, repeats)
    print(f"  baseline {overhead['baseline_seconds']}s, "
          f"armed-idle {overhead['armed_idle_seconds']}s "
          f"({overhead['overhead_pct']:+.2f}%, budget "
          f"{MAX_OVERHEAD_PCT:.0f}%)")

    payload = {
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "mode": "smoke" if args.smoke else "full",
        "determinism": determinism,
        "idle_overhead": overhead,
    }
    out_path = os.path.join(args.out_dir, "BENCH_faults.json")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path}")

    if not determinism["identical"]:
        print("FAIL: fault timeline diverged between identical seeded runs",
              file=sys.stderr)
        return 1
    if not overhead["within_budget"]:
        print(f"FAIL: idle injector overhead {overhead['overhead_pct']}% "
              f"exceeds {MAX_OVERHEAD_PCT}% budget", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
