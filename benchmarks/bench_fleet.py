#!/usr/bin/env python
"""Fleet-backend benchmark: sharded vehicles/s, identity, memory, halt.

Measures the :mod:`repro.fleet` campaign backend end to end and writes
``BENCH_fleet.json`` at the repo root:

* **throughput** — vehicles/s at workers=1 (inline) vs. workers=N over
  one warm pool, forking every vehicle from its variant's snapshotted
  base world.  The committed floor is deliberately low (~25 % of the
  measured rate) so slower CI runners gate on real regressions, not on
  hardware; like the PR 6 exec gates, the floor is only enforced on
  multi-core runners.
* **identity** — the determinism matrix on a small fleet: sharded ≡
  unsharded ≡ rebuilt, byte-compared on the merged digest JSON.
* **scale** — the O(shards) memory bound: peak RSS after a small fleet
  vs. after a 100x larger fleet, same process, workers=1 so every
  vehicle world is built and dropped in-parent.  The large run is also
  the headline ≥10^5-vehicle measurement.
* **halt** — the staged-rollout demo: a campaign whose new version
  carries an injected task-overrun regression must halt at the canary
  wave and roll it back.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py           # full run
    PYTHONPATH=src python benchmarks/bench_fleet.py --smoke   # CI-sized

Pass ``--gate-fleet BENCH_fleet.json`` to gate against the committed
report: any ``results_identical: false`` or ``halted: false`` fails the
run unconditionally; vehicles/s below 90 % of the committed floor fails
too, but only on multi-core runners.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import resource
import sys
from time import perf_counter

sys.path.insert(0, os.path.dirname(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

from repro.exec.pool import ParallelExecutor, get_inline_executor  # noqa: E402
from repro.fleet import (  # noqa: E402
    FleetCampaignSpec,
    FleetSpec,
    build_fleet_snapshots,
    run_fleet,
    run_fleet_campaign,
)


def _spec(size: int, **kwargs) -> FleetSpec:
    kwargs.setdefault("soak_time", 0.1)
    return FleetSpec(name="bench", size=size, master_seed=20, **kwargs)


def _peak_rss_kib() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


# -- scale: the O(shards) memory bound + headline run --------------------


def bench_scale(*, smoke: bool) -> dict:
    """Peak RSS may not double while the fleet grows 100x."""
    small_size = 50 if smoke else 1_000
    large_size = small_size * 100
    executor = get_inline_executor()

    snapshots = build_fleet_snapshots(_spec(small_size), tags=("old",))
    gc.collect()
    run_fleet(_spec(small_size), executor=executor, snapshots=snapshots)
    rss_small = _peak_rss_kib()

    spec = _spec(large_size)
    gc.collect()
    start = perf_counter()
    large = run_fleet(spec, executor=executor, snapshots=snapshots)
    elapsed = perf_counter() - start
    rss_large = _peak_rss_kib()

    growth = rss_large / rss_small if rss_small else float("inf")
    return {
        "small_fleet": small_size,
        "large_fleet": large_size,
        "fleet_growth_factor": large_size // small_size,
        "rss_after_small_kib": rss_small,
        "rss_after_large_kib": rss_large,
        "rss_growth": round(growth, 3),
        "rss_bounded_2x": growth < 2.0,
        "large_shards": large.shards,
        "large_seconds": round(elapsed, 2),
        "large_vehicles_per_sec": round(large_size / elapsed, 1),
        "large_miss_ratio": round(large.digest.miss_ratio, 6),
        "large_releases": large.digest.releases,
    }


# -- throughput: workers=1 vs workers=N ----------------------------------


def bench_throughput(*, smoke: bool) -> dict:
    size = 400 if smoke else 20_000
    workers = min(4, os.cpu_count() or 1)
    spec = _spec(size)
    snapshots = build_fleet_snapshots(spec, tags=("old",))

    inline = get_inline_executor()
    gc.collect()
    start = perf_counter()
    serial = run_fleet(spec, executor=inline, snapshots=snapshots)
    serial_seconds = perf_counter() - start

    if workers > 1:
        pool = ParallelExecutor(workers=workers, master_seed=0)
        try:
            pool.warm_up()
            gc.collect()
            start = perf_counter()
            parallel = run_fleet(spec, executor=pool, snapshots=snapshots)
            parallel_seconds = perf_counter() - start
        finally:
            pool.close()
        identical = (
            json.dumps(serial.digest_json, sort_keys=True)
            == json.dumps(parallel.digest_json, sort_keys=True)
        )
    else:
        parallel_seconds = serial_seconds
        identical = True

    rate_w1 = size / serial_seconds
    rate_wn = size / parallel_seconds
    cpu_count = os.cpu_count() or 1
    return {
        "vehicles": size,
        "workers": workers,
        "effective_workers": min(workers, cpu_count),
        "w1_seconds": round(serial_seconds, 2),
        "wn_seconds": round(parallel_seconds, 2),
        "vehicles_per_sec_w1": round(rate_w1, 1),
        "vehicles_per_sec_wn": round(rate_wn, 1),
        "speedup": round(rate_wn / rate_w1, 2),
        # floor committed at ~25% of the measured serial rate; the gate
        # checks 90% of this, and only on multi-core runners
        "vehicles_per_sec_floor": round(rate_w1 * 0.25, 1),
        "speedup_gate": "enforced" if cpu_count >= 2 else "advisory",
        "results_identical": identical,
    }


# -- identity: the determinism matrix ------------------------------------


def bench_identity(*, smoke: bool) -> dict:
    size = 24 if smoke else 60
    spec = _spec(size, soak_time=0.05)
    snapshots = build_fleet_snapshots(spec, tags=("old",))
    inline = get_inline_executor()

    reference = json.dumps(
        run_fleet(spec, executor=inline, snapshots=snapshots,
                  shard_size=size).digest_json,
        sort_keys=True,
    )
    combos = []
    for shard_size in (3, 7):
        combos.append((
            f"fork shard_size={shard_size}",
            json.dumps(
                run_fleet(spec, executor=inline, snapshots=snapshots,
                          shard_size=shard_size).digest_json,
                sort_keys=True,
            ),
        ))
    combos.append((
        "rebuild unsharded",
        json.dumps(
            run_fleet(spec, executor=inline, fork=False,
                      shard_size=size).digest_json,
            sort_keys=True,
        ),
    ))
    pool = ParallelExecutor(workers=2, master_seed=0)
    try:
        combos.append((
            "fork workers=2 shard_size=5",
            json.dumps(
                run_fleet(spec, executor=pool, snapshots=snapshots,
                          shard_size=5).digest_json,
                sort_keys=True,
            ),
        ))
    finally:
        pool.close()
    divergent = [name for name, digest in combos if digest != reference]
    return {
        "vehicles": size,
        "combinations": len(combos) + 1,
        "divergent": divergent,
        "results_identical": not divergent,
    }


# -- halt: staged rollout catches the injected regression ----------------


def bench_halt(*, smoke: bool) -> dict:
    size = 200 if smoke else 2_000
    spec = FleetCampaignSpec(
        fleet=FleetSpec(name="bench_halt", size=size, master_seed=20,
                        soak_time=0.05, regression_overrun=30.0),
        stages=(0.01, 0.1, 1.0),
    )
    result = run_fleet_campaign(spec)
    new_waves = [w for w in result.waves if w.tag == "new"]
    rollbacks = [w for w in result.waves if w.tag == "old"]
    canary = new_waves[0]
    return {
        "fleet": size,
        "halted": result.halted,
        "rolled_back": result.rolled_back,
        "vehicles_updated": result.vehicles_updated,
        "vehicles_spared": size - (canary.stop - canary.start),
        "canary_vehicles": canary.stop - canary.start,
        "canary_miss_ratio": round(canary.miss_ratio, 4),
        "rollback_miss_ratio": (
            round(rollbacks[0].miss_ratio, 4) if rollbacks else None
        ),
        "halt_threshold": spec.halt_miss_ratio,
    }


# -- report plumbing ----------------------------------------------------


def _environment() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def _write(path: str, payload: dict) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {path}")


def _load_fleet_floor(path):
    with open(path) as fh:
        committed = json.load(fh)
    return committed.get("throughput", {}).get("vehicles_per_sec_floor")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small configs for CI smoke runs")
    parser.add_argument("--out-dir", default=REPO_ROOT,
                        help="directory for BENCH_fleet.json "
                             "(default: repo root)")
    parser.add_argument(
        "--gate-fleet", metavar="PATH", default=None,
        help="committed BENCH_fleet.json to gate against: any "
             "results_identical=false or halted=false fails "
             "unconditionally; vehicles/s below 90%% of the committed "
             "floor fails too, on multi-core runners only")
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    committed_floor = (_load_fleet_floor(args.gate_fleet)
                       if args.gate_fleet else None)

    print(f"scale / memory bound ({mode})...")
    scale = bench_scale(smoke=args.smoke)
    print(
        f"  {scale['large_fleet']:,} vehicles in {scale['large_seconds']}s "
        f"({scale['large_vehicles_per_sec']:,} vehicles/s), RSS "
        f"{scale['rss_after_small_kib']}→{scale['rss_after_large_kib']} KiB "
        f"({scale['rss_growth']}x for {scale['fleet_growth_factor']}x fleet)"
    )

    print(f"\nthroughput w1 vs wN ({mode})...")
    throughput = bench_throughput(smoke=args.smoke)
    print(
        f"  w1 {throughput['vehicles_per_sec_w1']:,}/s, "
        f"w{throughput['workers']} {throughput['vehicles_per_sec_wn']:,}/s "
        f"({throughput['speedup']}x, identical="
        f"{throughput['results_identical']})"
    )

    print(f"\nidentity matrix ({mode})...")
    identity = bench_identity(smoke=args.smoke)
    print(
        f"  {identity['combinations']} combinations, identical="
        f"{identity['results_identical']}"
    )

    print(f"\nstaged-rollout halt demo ({mode})...")
    halt = bench_halt(smoke=args.smoke)
    print(
        f"  canary miss ratio {halt['canary_miss_ratio']} > "
        f"{halt['halt_threshold']} → halted={halt['halted']}, "
        f"{halt['vehicles_spared']:,} vehicles spared"
    )

    sections = {
        "scale": scale,
        "throughput": throughput,
        "identity": identity,
        "halt": halt,
    }
    vehicles_total = (
        scale["small_fleet"] + scale["large_fleet"]
        + throughput["vehicles"] * (2 if throughput["workers"] > 1 else 1)
        + identity["vehicles"] * identity["combinations"]
        + halt["fleet"]
    )
    _write(os.path.join(args.out_dir, "BENCH_fleet.json"), {
        "environment": _environment(),
        "mode": mode,
        "vehicles_simulated_total": vehicles_total,
        **sections,
    })

    failures = []
    for name in ("throughput", "identity"):
        if not sections[name]["results_identical"]:
            failures.append(f"{name}: sharded digest diverged")
    if not halt["halted"] or not halt["rolled_back"]:
        failures.append("halt: injected regression did not halt the rollout")
    if not scale["rss_bounded_2x"]:
        failures.append(
            f"scale: peak RSS grew {scale['rss_growth']}x while the fleet "
            f"grew {scale['fleet_growth_factor']}x"
        )
    if committed_floor is not None and (os.cpu_count() or 1) >= 2:
        measured = throughput["vehicles_per_sec_w1"]
        if measured < committed_floor * 0.9:
            failures.append(
                f"vehicles/s {measured} regressed below 90% of the "
                f"committed floor {committed_floor} "
                f"({committed_floor * 0.9:.1f})"
            )
    if failures:
        print("\nFAILED: " + "; ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
