"""Experiment C12 (Section 3.1 / refs [6], [19]): admission control
predictions match reality.

Random app arrival sequences are offered to one platform node.  Every
admitted set then runs in simulation; the experiment checks both
directions of soundness:

* **safety** — no admitted configuration ever misses a deterministic
  deadline in simulation;
* **non-vacuousness** — rejected apps would genuinely have overloaded
  the core (shown by force-running one rejected configuration on an
  unprotected core and observing the miss).
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.core import AdmissionController, DynamicPlatform
from repro.hw import centralized_topology
from repro.model import AppModel, Asil
from repro.osal import (
    Core,
    Criticality,
    FixedPriorityPolicy,
    PeriodicSource,
)
from repro.security import TrustStore, build_package
from repro.sim import RngStreams, Simulator
from repro.workloads import synthetic_app

RUN_TIME = 1.0


def offer_sequence(seed: int, n_apps: int, util_each: float):
    """Install/start apps one by one on a single-core zone; simulate."""
    sim = Simulator()
    store = TrustStore()
    store.generate_key("oem")
    platform = DynamicPlatform(
        sim, centralized_topology(n_platforms=1), trust_store=store,
        nda_budget_share=0.3,
    )
    platform.setup_update_masters(["platform_0"])
    streams = RngStreams(seed)
    # tiny images keep the CAN transfer through the update master short
    apps = [
        synthetic_app(
            streams, f"s{seed}_a{i}", n_tasks=1, utilization=util_each,
            asil=Asil.C, memory_kib=4.0,
        )
        for i in range(n_apps)
    ]
    admitted, rejected = [], []
    node = "zone_sensor_0"  # weak single core: speed 0.4
    for app in apps:
        platform.install(build_package(app, store, "oem"), node)
        sim.run(until=sim.now + 2.0)
        try:
            platform.start_app(app.name, node, core_index=0)
            admitted.append(app)
        except Exception:
            rejected.append(app)
    sim.run(until=sim.now + RUN_TIME)
    misses = platform.total_deterministic_misses()
    return {
        "admitted": len(admitted),
        "rejected": len(rejected),
        "misses": misses,
        "rejected_apps": rejected,
        "admitted_apps": admitted,
    }


def force_run(apps, speed=0.4):
    """Run all apps' tasks on an unprotected FP core; count misses."""
    sim = Simulator()
    core = Core(sim, "c", speed, FixedPriorityPolicy())
    sources = []
    for app in apps:
        for task in app.tasks:
            sources.append(PeriodicSource(sim, core, task, horizon=RUN_TIME))
    sim.run(until=RUN_TIME + 0.5)
    return sum(s.miss_count() + s.unfinished_past_deadline(sim.now) for s in sources)


@pytest.mark.benchmark(group="c12")
def test_c12_admission(benchmark):
    seeds = (1, 2, 3, 4, 5)

    def sweep():
        results = [offer_sequence(seed, n_apps=8, util_each=0.06) for seed in seeds]
        # non-vacuousness probe on the first sequence with a rejection
        probe_misses = None
        for r in results:
            if r["rejected_apps"]:
                probe_misses = force_run(r["admitted_apps"] + r["rejected_apps"])
                break
        return results, probe_misses

    results, probe_misses = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for seed, r in zip(seeds, results):
        rows.append((
            seed, r["admitted"], r["rejected"], r["misses"],
        ))
    print_table(
        "C12: admission decisions vs simulated deadline misses",
        ["seed", "admitted", "rejected", "misses (admitted set)"],
        rows,
        width=18,
    )
    if probe_misses is not None:
        print(f"  force-running a rejected configuration: {probe_misses} misses\n")
    for r in results:
        assert r["misses"] == 0, "an admitted set missed deadlines"
        assert r["admitted"] > 0
    assert any(r["rejected"] for r in results), "nothing was ever rejected"
    assert probe_misses is not None and probe_misses > 0
