"""Experiment A2 (Section 2.3 / ref [20]): runtime reconfiguration.

"The deployment of a function to a hardware can depend on the installed
applications and current load of every hardware component in the
vehicle."  We overload one platform node, let the reconfiguration
manager rebalance, and measure: the proposal quality (load before/after),
the migration's functional gap (must be zero), and the end-to-end
migration duration as a function of the app's state size.
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.core import DynamicPlatform, ReconfigurationManager
from repro.hw import BusSpec, CryptoCapability, EcuSpec, OsClass, Topology
from repro.model import AppModel, Asil
from repro.osal import TaskSpec
from repro.security import TrustStore, build_package
from repro.sim import Simulator


def two_node_world():
    topo = Topology()
    topo.add_bus(BusSpec("eth", "ethernet", 1e9, tsn_capable=True))
    for i in range(2):
        topo.add_ecu(EcuSpec(
            f"platform_{i}", cpu_mhz=200.0, cores=1, memory_kib=1 << 18,
            flash_kib=1 << 20, has_mmu=True, os_class=OsClass.POSIX_RT,
            crypto=CryptoCapability.ACCELERATED,
            ports=(("eth0", "ethernet"),),
        ))
        topo.attach(f"platform_{i}", "eth0", "eth")
    sim = Simulator()
    store = TrustStore()
    store.generate_key("oem")
    platform = DynamicPlatform(sim, topo, trust_store=store)
    return sim, store, platform


def migration_run(state_entries: int):
    sim, store, platform = two_node_world()
    manager = ReconfigurationManager(platform)
    app = AppModel(
        name="mover",
        tasks=(TaskSpec(name="mover_loop", period=0.01, wcet=0.001),),
        asil=Asil.C, memory_kib=64, image_kib=128,
    )
    for node in ("platform_0", "platform_1"):
        platform.install(build_package(app, store, "oem"), node)
    sim.run()
    instance = platform.start_app("mover", "platform_0")
    for i in range(state_entries):
        instance.internal_state[f"k{i}"] = i
    gaps = []

    def probe():
        if not platform.running_instances("mover"):
            gaps.append(sim.now)
        if sim.now < 1.0:
            sim.schedule(0.0005, probe)

    probe()
    reports = []
    sim.at(0.1, lambda: manager.migrate(
        "mover", "platform_0", "platform_1").add_callback(reports.append))
    sim.run(until=1.1)
    report = reports[0]
    return {
        "duration": report.duration,
        "gap_samples": len(gaps),
        "success": report.success,
        "landed": platform.where_is("mover") == ["platform_1"],
    }


def rebalance_run():
    sim, store, platform = two_node_world()
    manager = ReconfigurationManager(platform)
    apps = []
    for i, util in enumerate((0.25, 0.3, 0.15)):
        app = AppModel(
            name=f"fn{i}",
            tasks=(TaskSpec(name=f"fn{i}_t", period=0.01, wcet=0.01 * util),),
            asil=Asil.C, memory_kib=32, image_kib=64,
        )
        apps.append(app)
        for node in ("platform_0", "platform_1"):
            platform.install(build_package(app, store, "oem"), node)
    sim.run()
    for app in apps:
        platform.start_app(app.name, "platform_0")
    before = manager.node_det_utilization("platform_0")
    manager.rebalance(threshold=0.5)
    sim.run(until=sim.now + 1.0)
    after_0 = manager.node_det_utilization("platform_0")
    after_1 = manager.node_det_utilization("platform_1")
    return before, after_0, after_1


@pytest.mark.benchmark(group="a2")
def test_a2_migration(benchmark):
    state_sizes = (0, 1000, 100_000)

    def sweep():
        migrations = [(n, migration_run(n)) for n in state_sizes]
        balance = rebalance_run()
        return migrations, balance

    migrations, (before, after_0, after_1) = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    rows = [
        (n, f"{r['duration'] * 1e3:.2f} ms", r["gap_samples"],
         "yes" if r["landed"] else "NO")
        for n, r in migrations
    ]
    print_table(
        "A2a: live migration duration vs app state size",
        ["state entries", "duration", "gap samples", "landed"],
        rows,
    )
    print_table(
        "A2b: load rebalancing (worst-core deterministic utilization)",
        ["overloaded before", "source after", "target after"],
        [(f"{before:.2f}", f"{after_0:.2f}", f"{after_1:.2f}")],
        width=18,
    )
    for _n, r in migrations:
        assert r["success"] and r["landed"]
        assert r["gap_samples"] == 0  # zero functional gap
    # more state -> longer migration (sync time dominates)
    assert migrations[-1][1]["duration"] > migrations[0][1]["duration"]
    assert before > 0.5
    assert after_0 < before
    assert after_1 > 0.0
