"""Shared table-printing helpers for the experiment benchmarks.

Every benchmark regenerates one experiment from EXPERIMENTS.md and prints
its rows in a uniform format so the outputs can be diffed against the
recorded results.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def print_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence], *, width: int = 14
) -> None:
    """Print one experiment table with a banner."""
    print()
    print(f"=== {title} ===")
    header_line = " | ".join(f"{h:>{width}}" for h in headers)
    print(header_line)
    print("-" * len(header_line))
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:>{width}.6g}")
            else:
                cells.append(f"{str(value):>{width}}")
        print(" | ".join(cells))
    print()


def fmt_ratio(numerator: float, denominator: float) -> str:
    """'12.3x' style ratio, guarding the zero denominator."""
    if denominator <= 0:
        return "inf"
    return f"{numerator / denominator:.1f}x"


def print_obs_digest(sim, *, title: str = "observability digest", top: int = 10) -> None:
    """Print the observability digest of a simulator (metrics + profile +
    trace), using :mod:`repro.obs.report` so benchmark output and the
    machine-readable JSON stay consistent."""
    from repro.obs.report import render_for

    print()
    print(render_for(sim, title=title, top=top))
    print()


def write_obs_json(sim, path: str) -> dict:
    """Dump a simulator's observability digest to ``path`` as JSON."""
    from repro.obs.report import digest_for
    import json

    report = digest_for(sim)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return report
