"""Shared table-printing helpers for the experiment benchmarks.

Every benchmark regenerates one experiment from EXPERIMENTS.md and prints
its rows in a uniform format so the outputs can be diffed against the
recorded results.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def print_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence], *, width: int = 14
) -> None:
    """Print one experiment table with a banner."""
    print()
    print(f"=== {title} ===")
    header_line = " | ".join(f"{h:>{width}}" for h in headers)
    print(header_line)
    print("-" * len(header_line))
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:>{width}.6g}")
            else:
                cells.append(f"{str(value):>{width}}")
        print(" | ".join(cells))
    print()


def fmt_ratio(numerator: float, denominator: float) -> str:
    """'12.3x' style ratio, guarding the zero denominator."""
    if denominator <= 0:
        return "inf"
    return f"{numerator / denominator:.1f}x"
