"""Experiment C6 (Section 3.3): fail-operational through redundancy.

A safety-critical control app runs with 1..3 instances.  An ECU failure
is injected; we measure the control-function interruption (time without a
serving primary) as a function of replica count and heartbeat period, and
show that without a standby the function is simply lost.
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.core import DynamicPlatform, RedundancyManager
from repro.hw import centralized_topology
from repro.model import AppModel, Asil
from repro.osal import TaskSpec
from repro.security import TrustStore, build_package
from repro.sim import Simulator


def ctl_app():
    return AppModel(
        name="steerer",
        tasks=(TaskSpec(name="steer_loop", period=0.005, wcet=0.0005),),
        asil=Asil.D, memory_kib=64, image_kib=128,
    )


def run_failover(n_replicas: int, heartbeat: float):
    sim = Simulator()
    store = TrustStore()
    store.generate_key("oem")
    platform = DynamicPlatform(
        sim, centralized_topology(n_platforms=3), trust_store=store
    )
    app = ctl_app()
    nodes = [f"platform_{i}" for i in range(n_replicas)]
    for node in nodes:
        platform.install(build_package(app, store, "oem"), node)
    sim.run()
    manager = RedundancyManager(platform, heartbeat_period=heartbeat)
    replica_set = manager.deploy("steerer", nodes, service_id=0x600)
    sim.run(until=0.1)
    platform.fail_node("platform_0")
    failure_time = sim.now
    sim.run(until=1.0)
    if replica_set.failovers:
        event = replica_set.failovers[0]
        return {
            "interruption": event.interruption,
            "survived": True,
            "serving": replica_set.primary.node_name,
        }
    return {
        "interruption": float("inf"),
        "survived": bool(platform.running_instances("steerer")),
        "serving": None,
    }


@pytest.mark.benchmark(group="c6")
def test_c6_failover(benchmark):
    configs = [
        (1, 0.005),
        (2, 0.005),
        (2, 0.020),
        (3, 0.005),
    ]

    def sweep():
        return [(n, hb, run_failover(n, hb)) for n, hb in configs]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for n, hb, r in results:
        interruption = (
            "function lost" if r["interruption"] == float("inf")
            else f"{r['interruption'] * 1e3:.2f} ms"
        )
        rows.append((
            n, f"{hb * 1e3:.0f} ms", interruption,
            r["serving"] or "-",
        ))
    print_table(
        "C6: control interruption after ECU failure",
        ["replicas", "heartbeat", "interruption", "new primary"],
        rows,
    )
    single = results[0][2]
    assert not single["survived"]  # no redundancy -> function lost
    for n, hb, r in results[1:]:
        assert r["survived"]
        # interruption bounded by heartbeat + promotion work
        assert r["interruption"] <= hb + 0.002 + 1e-9
    # faster heartbeat -> faster recovery
    fast = results[1][2]["interruption"]
    slow = results[2][2]["interruption"]
    assert fast <= slow
