"""Benchmark-suite configuration: make `_tables` importable and force -s
style output so the experiment tables are visible in benchmark runs."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
