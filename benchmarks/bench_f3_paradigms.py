"""Experiment F3 (Figure 3 / Section 2.1): the three communication
paradigms deliver their distinct semantics and latency profiles.

One producer/server ECU and one consumer ECU on 100 Mbit/s Ethernet:

* event — publish latency per payload size (one-way);
* message — RPC round-trip latency (two-way);
* stream — per-sample in-order playout latency at 30 Hz.
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.hw import BusSpec, EcuSpec, Topology
from repro.middleware import (
    Endpoint,
    EventConsumer,
    EventProducer,
    RpcClient,
    RpcServer,
    ServiceRegistry,
    StreamSink,
    StreamSource,
)
from repro.network import VehicleNetwork
from repro.sim import Simulator


def world():
    topo = Topology()
    topo.add_bus(BusSpec("eth", "ethernet", 100e6))
    for name in ("prod", "cons"):
        topo.add_ecu(EcuSpec(name, ports=(("eth0", "ethernet"),)))
        topo.attach(name, "eth0", "eth")
    sim = Simulator()
    net = VehicleNetwork(sim, topo)
    registry = ServiceRegistry()
    eps = {n: Endpoint(sim, net, n, registry) for n in ("prod", "cons")}
    return sim, eps


def measure_event(payload_bytes: int, n: int = 50):
    sim, eps = world()
    producer = EventProducer(eps["prod"], 0x100, 1, provider_app="p")
    latencies = []
    EventConsumer(
        eps["cons"], 0x100, 1, client_app="c", on_data=lambda m: None
    )
    sim.run()

    def publish(k=0):
        if k >= n:
            return
        t0 = sim.now
        for sig in producer.publish("x", payload_bytes):
            sig.add_callback(lambda _m, t0=t0: latencies.append(sim.now - t0))
        sim.schedule(0.001, publish, k + 1)

    publish()
    sim.run()
    return sum(latencies) / len(latencies)


def measure_rpc(payload_bytes: int, n: int = 50):
    sim, eps = world()
    server = RpcServer(eps["prod"], 0x200, provider_app="p")
    server.register_method(1, lambda req: ("ok", payload_bytes))
    client = RpcClient(eps["cons"], 0x200, client_app="c")
    latencies = []

    def call(k=0):
        if k >= n:
            return
        t0 = sim.now
        client.call(1, payload_bytes=payload_bytes).add_callback(
            lambda _r, t0=t0: latencies.append(sim.now - t0)
        )
        sim.schedule(0.001, call, k + 1)

    call()
    sim.run()
    return sum(latencies) / len(latencies)


def measure_stream(payload_bytes: int, n: int = 50):
    sim, eps = world()
    source = StreamSource(
        eps["prod"], 0x300, 1, provider_app="p",
        sample_bytes=payload_bytes, period=0.033,
    )
    sink = StreamSink(eps["cons"], 0x300, 1, client_app="c")
    source.start("cons", n_samples=n)
    sim.run(until=n * 0.033 + 1.0)
    latencies = sink.playout_latencies()
    assert len(latencies) == n
    assert [m.sequence for m in sink.released] == list(range(n))
    return sum(latencies) / len(latencies)


@pytest.mark.benchmark(group="f3")
def test_f3_paradigms(benchmark):
    sizes = (64, 512, 4096, 32768)

    def sweep():
        return {
            "event": [measure_event(s) for s in sizes],
            "message(RPC)": [measure_rpc(s) for s in sizes],
            "stream": [measure_stream(s) for s in sizes],
        }

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for paradigm, values in table.items():
        for size, latency in zip(sizes, values):
            rows.append((paradigm, size, f"{latency * 1e6:.1f} us"))
    print_table(
        "F3: mean delivery latency per paradigm and payload",
        ["paradigm", "payload B", "latency"],
        rows,
        width=16,
    )
    for i in range(len(sizes)):
        # two-way RPC costs more than one-way event at equal payload
        assert table["message(RPC)"][i] > table["event"][i]
    # latency grows with payload for every paradigm
    for values in table.values():
        assert values[-1] > values[0]
