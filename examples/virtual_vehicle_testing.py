#!/usr/bin/env python3
"""Virtual-vehicle testing (Section 2.4): find controller bugs in MiL/SiL
long before hardware exists.

Runs the XiL suite over a nominal cruise controller and three seeded bug
variants, then demonstrates an ACC scenario with a braking lead vehicle,
plus a fault-injection run (sensor dropout).
"""

from repro.xil import (
    AccController,
    AccScenario,
    BuggyCruiseController,
    CruiseController,
    FaultInjector,
    LeadVehicle,
    LongitudinalPlant,
    LoopAssertions,
    XilTestCase,
    XilTestSuite,
    run_mil,
    run_vil,
)


def main() -> None:
    nominal = LoopAssertions(
        max_overshoot=2.0, max_settling_time=110.0, max_steady_state_error=0.5
    )
    tight = LoopAssertions(
        max_overshoot=2.0, max_settling_time=110.0, max_steady_state_error=0.5
    )
    suite = XilTestSuite([
        XilTestCase("nominal_mil", lambda: CruiseController(25.0),
                    assertions=nominal, level="MiL", duration=120.0),
        XilTestCase("nominal_sil", lambda: CruiseController(25.0),
                    assertions=nominal, level="SiL", duration=120.0),
        XilTestCase("bug_sign", lambda: BuggyCruiseController(25.0, "sign"),
                    assertions=tight, level="MiL", duration=120.0),
        XilTestCase("bug_windup", lambda: BuggyCruiseController(25.0, "windup"),
                    assertions=tight, level="MiL", duration=120.0),
        XilTestCase("bug_gain", lambda: BuggyCruiseController(25.0, "gain"),
                    assertions=tight, level="MiL", duration=120.0),
    ])
    failures = suite.run()
    print(suite.report())
    print(f"\n{failures} of {len(suite.cases)} cases failed "
          "(exactly the seeded bugs).")

    # ACC scenario: lead vehicle brakes from 25 to 10 m/s at t=30s
    print("\nACC scenario: lead car brakes hard at t=30s")
    controller = AccController(set_speed_mps=30.0, time_gap_s=1.8)
    scenario = AccScenario(
        plant=LongitudinalPlant(speed_mps=25.0),
        lead=LeadVehicle([(30.0, 25.0), (300.0, 10.0)], initial_gap_m=55.0),
    )
    dt = 0.01
    for _step in range(20000):
        u = controller.compute(scenario.plant.speed_mps, scenario.gap(), dt)
        scenario.step(u, dt)
    print(f"  collided: {scenario.collided}")
    print(f"  minimum gap: {scenario.min_gap_m:.1f} m")
    print(f"  final ego speed: {scenario.plant.speed_mps:.1f} m/s "
          "(matched the lead)")
    assert not scenario.collided

    # fault injection: 10 s sensor dropout mid-cruise
    print("\nfault injection: speed sensor reads 0 from t=40s to t=50s")
    faults = FaultInjector()
    faults.sensor_dropout_window = (40.0, 50.0)
    result = run_mil(
        CruiseController(25.0), LongitudinalPlant(), duration=90.0,
        faults=faults,
    )
    worst = max(
        s for t, s in zip(result.times, result.speeds) if 40.0 < t < 60.0
    )
    print(f"  worst overspeed during dropout: {worst:.1f} m/s "
          f"(target 25.0) -> a monitor must catch this before an HiL rig "
          "ever sees it")

    # ViL: the same controller as a dynamic-platform app, sensing and
    # actuating over the simulated vehicle network
    print("\nViL: controller deployed on the virtual ECU, closed over "
          "the network")
    vil = run_vil(CruiseController(25.0), duration=40.0)
    print(f"  final speed: {vil.loop.speeds[-1]:.1f} m/s (target 25.0)")
    print(f"  control deadline misses on the platform: "
          f"{vil.deterministic_misses}")
    print(f"  sensor events: {vil.sensor_events}, "
          f"actuation events: {vil.actuation_events}")
    print(f"  realtime factor: {vil.loop.realtime_factor:.0f}x")
    assert vil.deterministic_misses == 0


if __name__ == "__main__":
    main()
