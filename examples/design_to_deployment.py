#!/usr/bin/env python3
"""From model to running vehicle: the integrated toolchain of Section 2.

1. describe the system with the DSLs (the realistic app catalog);
2. let the verification engine reject a bad mapping;
3. run design space exploration to find a good one;
4. generate middleware configuration + code stubs from the model;
5. derive the access-control matrix (Section 4.2) and enforce it;
6. bring the chosen deployment up on the dynamic platform.
"""

from repro.core import DynamicPlatform
from repro.dse import MappingProblem, genetic_search
from repro.hw import centralized_topology
from repro.model import Deployment, generate_config, generate_stub, verify
from repro.security import AccessControlMatrix, TrustStore, build_package
from repro.sim import RngStreams, Simulator
from repro.workloads import reference_system


def main() -> None:
    # 1. model
    model = reference_system(centralized_topology(n_platforms=2))
    print(f"system model: {len(model.apps)} apps, "
          f"{len(model.interfaces)} interfaces")
    assert model.structural_violations() == []

    # 2. the verification engine catches a bad idea
    bad = Deployment()
    for app in model.apps:
        bad.place(app.name, "head_unit")  # everything on the infotainment!
    result = verify(model, bad)
    print(f"\nnaive all-on-head-unit mapping: {len(result.errors)} errors, e.g.")
    for violation in result.errors[:3]:
        print(f"  - {violation}")

    # 3. DSE finds a verified mapping
    problem = MappingProblem(model)
    search = genetic_search(
        RngStreams(2024) and problem, RngStreams(2024),
        population=24, generations=15,
    )
    assert search.found_feasible
    deployment = problem.decode(search.best.genome)
    print(f"\nDSE: feasible mapping found after {search.evaluations} "
          f"evaluations (cost {search.best.evaluation.cost:.0f}, "
          f"{len(search.archive)} Pareto points)")
    for app in model.apps:
        placement = deployment.placement(app.name)
        print(f"  {app.name:24s} -> {placement.ecu}.core{placement.core}")
    assert verify(model, deployment).ok

    # 4. generated artifacts
    config = generate_config(model)
    print(f"\ngenerated middleware config: {len(config.service_ids)} service ids")
    stub = generate_stub(model, "acc")
    print("generated stub for 'acc':")
    for line in stub.splitlines()[:8]:
        print(f"  {line}")

    # 5. model-derived access control
    acm = AccessControlMatrix.from_config(config)
    brake_sid = config.service_id("brake_request")
    print(f"\nACL: acc->brake_request allowed: {acm.allows('acc', brake_sid)}")
    print(f"ACL: media_server->brake_request allowed: "
          f"{acm.allows('media_server', brake_sid)}")

    # 6. bring it up
    sim = Simulator()
    store = TrustStore()
    store.generate_key("oem")
    platform = DynamicPlatform(
        sim, centralized_topology(n_platforms=2), trust_store=store
    )
    acm.install_on(platform.registry)
    started = 0
    for app in model.apps:
        placement = deployment.placement(app.name)
        installed = []
        platform.install(
            build_package(app, store, "oem"), placement.ecu
        ).add_callback(installed.append)
        while not installed:  # crypto time scales with the image size
            sim.run(until=sim.now + 5.0)
        assert installed == [True]
        platform.start_app(app.name, placement.ecu, core_index=placement.core)
        started += 1
    sim.run(until=sim.now + 1.0)
    misses = platform.total_deterministic_misses()
    print(f"\nplatform up: {started} apps running, "
          f"deterministic deadline misses after 1 s: {misses}")
    assert misses == 0
    print("design-to-deployment OK")


if __name__ == "__main__":
    main()
