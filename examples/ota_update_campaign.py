#!/usr/bin/env python3
"""OTA update campaign: staged vs stop/restart vs naive switch vs the
firmware-image status quo.

A cruise-control application is updated while the (simulated) vehicle is
in motion.  The script prints, per strategy, the longest interval during
which no instance of the function was running — and contrasts it with
today's whole-firmware-image reflash at the dealership.
"""

from repro.baselines import FirmwareImageUpdater
from repro.core import DynamicPlatform, UpdateOrchestrator
from repro.hw import centralized_topology
from repro.model import AppModel, Asil
from repro.osal import TaskSpec
from repro.security import TrustStore, build_package
from repro.sim import Simulator


def cruise_app(version=(1, 0)) -> AppModel:
    return AppModel(
        name="cruise",
        tasks=(TaskSpec(name="cruise_loop", period=0.01, wcet=0.001),),
        asil=Asil.C, memory_kib=128, image_kib=512, version=version,
    )


def run_strategy(strategy: str, clock_skew: float = 0.0) -> float:
    """Returns the longest observed control gap (s)."""
    sim = Simulator()
    store = TrustStore()
    store.generate_key("oem")
    platform = DynamicPlatform(
        sim, centralized_topology(n_platforms=2), trust_store=store
    )
    orchestrator = UpdateOrchestrator(platform)
    platform.install(build_package(cruise_app(), store, "oem"), "platform_0")
    sim.run()
    platform.start_app("cruise", "platform_0")

    longest = [0.0]
    down_since = [None]

    def probe():
        alive = bool(platform.running_instances("cruise"))
        if not alive and down_since[0] is None:
            down_since[0] = sim.now
        if alive and down_since[0] is not None:
            longest[0] = max(longest[0], sim.now - down_since[0])
            down_since[0] = None
        if sim.now < 3.0:
            sim.schedule(0.001, probe)

    probe()
    new_pkg = build_package(cruise_app((1, 1)), store, "oem")
    if strategy == "staged":
        sim.at(0.5, lambda: orchestrator.staged_update(
            "cruise", "platform_0", new_pkg))
    elif strategy == "stop_restart":
        sim.at(0.5, lambda: orchestrator.stop_update_restart(
            "cruise", "platform_0", new_pkg))
    else:
        orchestrator.naive_switch(
            "cruise", "platform_0", new_pkg,
            switch_at=0.5, clock_skew=clock_skew,
        )
    sim.run(until=3.2)
    return longest[0]


def main() -> None:
    print("updating a live 100 Hz control function (3 s drive):\n")
    for label, strategy, skew in (
        ("staged update (paper, Section 3.2)", "staged", 0.0),
        ("stop - update - restart", "stop_restart", 0.0),
        ("naive coordinated switch, no skew", "naive", 0.0),
        ("naive coordinated switch, 50 ms skew", "naive", 0.05),
    ):
        gap = run_strategy(strategy, skew)
        print(f"  {label:42s} control gap = {gap * 1e3:7.1f} ms")

    # the status quo: reflash the whole ECU at the dealership
    sim = Simulator()
    updater = FirmwareImageUpdater(sim)
    reports = []
    updater.update("cruise_ecu", firmware_image_kib=2048).add_callback(
        reports.append
    )
    sim.run()
    print(f"  {'firmware-image reflash (status quo)':42s} "
          f"control gap = {reports[0].downtime * 1e3:7.1f} ms "
          "(vehicle parked)")
    print("\nthe staged strategy is the only one with zero functional gap.")


if __name__ == "__main__":
    main()
