#!/usr/bin/env python3
"""Fail-operational drive: a steering function survives an ECU failure.

The paper (Section 3.3): for an autonomous vehicle "the fail-safe state
... is not necessarily a safe shutdown", so the platform instantiates the
function on several ECUs and fails over.  This script deploys a steering
app on three platform computers, kills the primary mid-drive, and prints
the recorded failover timeline.
"""

from repro.core import DynamicPlatform, RedundancyManager
from repro.hw import centralized_topology
from repro.model import AppModel, Asil
from repro.osal import TaskSpec
from repro.security import TrustStore, build_package
from repro.sim import Simulator


def main() -> None:
    sim = Simulator()
    store = TrustStore()
    store.generate_key("oem")
    platform = DynamicPlatform(
        sim, centralized_topology(n_platforms=3), trust_store=store
    )
    app = AppModel(
        name="steer_by_wire",
        tasks=(TaskSpec(name="steer_loop", period=0.005, wcet=0.0008),),
        asil=Asil.D, memory_kib=128, image_kib=256,
    )
    nodes = ["platform_0", "platform_1", "platform_2"]
    for node in nodes:
        platform.install(build_package(app, store, "oem"), node)
    sim.run()

    manager = RedundancyManager(platform, heartbeat_period=0.005)
    replica_set = manager.deploy("steer_by_wire", nodes, service_id=0x0500)
    replica_set.primary.internal_state["steering_angle"] = 2.5
    print(f"[{sim.now:7.3f}s] primary: {replica_set.primary.qualified_name}, "
          f"{len(replica_set.standbys)} hot standbys")

    sim.run(until=0.5)
    print(f"[{sim.now:7.3f}s] injecting failure of platform_0 ...")
    platform.fail_node("platform_0")
    sim.run(until=1.0)

    event = replica_set.failovers[0]
    print(f"[{sim.now:7.3f}s] failover complete:")
    print(f"  failed node     : {event.failed_node}")
    print(f"  new primary     : {event.new_primary_node}")
    print(f"  detected after  : "
          f"{(event.detection_time - event.failure_time) * 1e3:.2f} ms")
    print(f"  interruption    : {event.interruption * 1e3:.2f} ms "
          f"(vs 5 ms control period)")
    state = replica_set.primary.internal_state
    print(f"  replicated state: steering_angle={state.get('steering_angle')}")
    print(f"  service registry now points at "
          f"{platform.registry.find(0x0500).ecu}")

    print(f"[{sim.now:7.3f}s] second failure: killing {event.new_primary_node} ...")
    platform.fail_node(event.new_primary_node)
    sim.run(until=1.5)
    print(f"  surviving primary: {replica_set.primary.qualified_name}")
    assert replica_set.primary.node_name == "platform_2"
    print("fail-operational drive OK: the function never shut down")


if __name__ == "__main__":
    main()
