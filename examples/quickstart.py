#!/usr/bin/env python3
"""Quickstart: bring up a dynamic platform, install a signed app, run it.

This walks the paper's core loop end to end in ~50 lines:

1. build a centralized E/E topology (two platform computers on TSN);
2. start the dynamic platform with a trust store;
3. package + sign a deterministic control application;
4. install it over the air (signature verified on the ECU);
5. start it (admission control runs automatically);
6. let the vehicle "drive" for two simulated seconds;
7. read the runtime monitor's certification evidence.
"""

from repro.core import DynamicPlatform, RuntimeMonitor
from repro.hw import centralized_topology
from repro.model import AppModel, Asil
from repro.osal import TaskSpec
from repro.security import TrustStore, build_package
from repro.sim import Simulator, Tracer


def main() -> None:
    # 1-2. world + platform
    tracer = Tracer()
    sim = Simulator(tracer=tracer)
    store = TrustStore()
    store.generate_key("oem_release_key")
    platform = DynamicPlatform(
        sim, centralized_topology(n_platforms=2), trust_store=store
    )
    monitor = RuntimeMonitor(sim)

    # 3. a deterministic 100 Hz control app, ASIL C
    app = AppModel(
        name="lane_keeper",
        tasks=(
            TaskSpec(
                name="lane_loop", period=0.01, wcet=0.002,
                deadline=0.008, jitter_tolerance=0.001,
            ),
        ),
        asil=Asil.C,
        memory_kib=256,
        image_kib=1024,
    )
    package = build_package(app, store, "oem_release_key")
    monitor.watch(app.tasks[0])

    # 4. over-the-air install: signature checked on the target ECU
    platform.install(package, "platform_0").add_callback(
        lambda ok: print(f"[{sim.now:8.4f}s] install verified: {ok}")
    )
    sim.run()

    # 5. start (admission control checks schedulability, memory, OS class)
    instance = platform.start_app("lane_keeper", "platform_0")
    print(f"[{sim.now:8.4f}s] {instance.qualified_name} -> {instance.state.value}")

    # 6. drive
    sim.run(until=2.0)

    # 7. evidence
    stats = monitor.stats("lane_loop")
    print(f"[{sim.now:8.4f}s] releases={stats.releases} "
          f"completions={stats.completions} "
          f"deadline_misses={stats.deadline_misses} "
          f"max_jitter={stats.max_jitter * 1e6:.1f}us")
    assert stats.deadline_misses == 0
    print("quickstart OK: the app ran deterministically on the platform")


if __name__ == "__main__":
    main()
