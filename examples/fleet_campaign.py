#!/usr/bin/env python3
"""Fleet OTA campaign: monitoring-gated waves and automatic rollback.

The paper's Section 3.4 loop, end to end: runtime monitors detect faults,
reports reach the manufacturer, and updates roll out (or roll back) in
response.  A ten-vehicle fleet receives a regressive update; the first
wave's monitors catch the deadline overruns, the campaign aborts, the
wave rolls back, and eight vehicles never see the bad version.
"""

from repro.core import CampaignManager, Fleet
from repro.model import AppModel, Asil
from repro.osal import TaskSpec
from repro.security import TrustStore
from repro.sim import Simulator, Tracer


def version(v, *, buggy=False):
    task = (
        TaskSpec(name="lk_bug", period=0.01, wcet=0.009, deadline=0.001)
        if buggy
        else TaskSpec(name="lk_loop", period=0.01, wcet=0.001, deadline=0.008)
    )
    return AppModel(
        name="lane_keeper", tasks=(task,), asil=Asil.C,
        memory_kib=128, image_kib=256, version=v,
    )


def main() -> None:
    sim = Simulator(tracer=Tracer())
    store = TrustStore()
    store.generate_key("oem_release_key")
    fleet = Fleet(sim, store, size=10)
    fleet.deploy_everywhere(version((1, 0)), "oem_release_key")
    sim.run(until=sim.now + 0.5)
    print(f"fleet of {len(fleet.vehicles)} vehicles on lane_keeper v1.0\n")

    manager = CampaignManager(
        fleet, "oem_release_key", wave_size=2, soak_time=1.0,
        abort_regression_ratio=0.5,
    )
    print("rolling out v1.1 (which, unknown to the OEM, overruns its "
          "deadline)...")
    result = manager.rollout(version((1, 0)), version((1, 1), buggy=True))
    for wave in result.waves:
        print(f"  wave {wave.wave}: vehicles {wave.vehicle_indices} "
              f"updated={wave.updated} regressions={wave.regressions}")
    print(f"  campaign aborted: {result.aborted}, "
          f"wave rolled back: {result.rolled_back}")
    versions = fleet.versions("lane_keeper")
    spared = sum(1 for v in versions.values() if v == (1, 0))
    print(f"  vehicles on v1.0 after rollback: {spared}/10\n")

    sim.run(until=sim.now + 1.0)  # let fault reports reach the backend
    reports = sum(len(v.backend.received) for v in fleet.vehicles)
    print(f"fault reports at the manufacturer backend: {reports}")
    print("the OEM fixes the bug and ships v1.2 ...\n")

    result2 = manager.rollout(version((1, 0)), version((1, 2)))
    print(f"v1.2 campaign: {len(result2.waves)} waves, "
          f"aborted={result2.aborted}, "
          f"updated={result2.vehicles_updated}/10")
    assert result2.vehicles_updated == 10
    print("\nfleet campaign OK: the monitoring loop contained the bad "
          "update and delivered the fix")


if __name__ == "__main__":
    main()
