#!/usr/bin/env python
"""Fleet-scale staged rollout: sharded digests, canary halt, rollback.

The OEM-backend loop from the paper's Section 3.4, at fleet scale: a
few thousand simulated vehicles (drawn from a four-trim variant space)
receive a staged OTA update in canary → cohort → fleet waves.  Every
wave is sharded over the executor, each vehicle forks its variant's
snapshotted base world, and shards reduce to constant-size mergeable
digests — memory stays O(shards) no matter how large the fleet.

Two campaigns run:

1. a **healthy** update, which walks all three waves to completion;
2. a **buggy** update (an injected task-overrun regression), which the
   canary wave's merged digest catches — the campaign halts, rolls the
   canary back to the old version, and the rest of the fleet never sees
   the bad build.

A third act submits more campaigns than the backend admits, showing the
admission control that protects the shared worker pool.

Run with::

    PYTHONPATH=src python examples/fleet_rollout.py
"""

import json

from repro.fleet import (
    CampaignAdmission,
    FleetCampaignSpec,
    FleetService,
    FleetSpec,
    run_fleet_campaign,
)

FLEET_SIZE = 2_000


def show_waves(result):
    for wave in result.waves:
        label = "rollback" if wave.tag == "old" else f"wave {wave.wave}"
        print(
            f"  {label:<9} vehicles [{wave.start:>5}, {wave.stop:>5})  "
            f"miss ratio {wave.miss_ratio:.4f}"
            f"{'  ← HALT' if wave.halted else ''}"
        )


def main() -> None:
    print(f"=== healthy rollout over {FLEET_SIZE} vehicles ===")
    healthy = FleetCampaignSpec(
        fleet=FleetSpec(size=FLEET_SIZE, master_seed=7, soak_time=0.05),
        stages=(0.01, 0.1, 1.0),
        halt_miss_ratio=0.05,
    )
    result = run_fleet_campaign(healthy)
    show_waves(result)
    print(
        f"  halted={result.halted}  "
        f"updated={result.vehicles_updated}/{FLEET_SIZE}"
    )
    digest = result.campaign_digest
    print(
        f"  campaign digest: {digest['releases']} releases, "
        f"miss ratio {digest['miss_ratio']:.4f}, "
        f"response p95 {digest['response']['p95'] * 1e3:.2f} ms"
    )
    print(f"  variants: {json.dumps(digest['variants'])}")
    print(f"  worst vehicles: {digest['worst'][:3]}")

    print("\n=== buggy rollout (injected overrun regression) ===")
    buggy = FleetCampaignSpec(
        fleet=FleetSpec(size=FLEET_SIZE, master_seed=7, soak_time=0.05,
                        regression_overrun=30.0),
        stages=(0.01, 0.1, 1.0),
        halt_miss_ratio=0.05,
    )
    result = run_fleet_campaign(buggy)
    show_waves(result)
    canary = result.waves[0]
    spared = FLEET_SIZE - (canary.stop - canary.start)
    print(
        f"  halted={result.halted} rolled_back={result.rolled_back} — "
        f"{spared} vehicles never saw the bad build"
    )

    print("\n=== admission control over the shared pool ===")
    service = FleetService(
        admission=CampaignAdmission(max_active=1, max_queued=1)
    )
    small = FleetCampaignSpec(
        fleet=FleetSpec(size=40, master_seed=1, soak_time=0.02,
                        spike_probability=0.0),
        stages=(0.1, 1.0),
    )
    for _ in range(3):
        ticket, state = service.submit(small)
        print(f"  {ticket}: {state}")
    done = service.run_until_idle()
    print(f"  completed: {sorted(done)} "
          f"(rejected {service.admission.rejected})")


if __name__ == "__main__":
    main()
