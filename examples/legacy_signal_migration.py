#!/usr/bin/env python3
"""Migrating a legacy signal database to service-oriented interfaces.

Section 2 of the paper describes today's pain: signals defined by bit
offsets, described differently per ECU, some not documented at all.
This script takes a representative body-domain catalog, migrates every
documented signal to an owned, versioned event interface, reports the
undocumented tail — and then actually *runs* one migrated interface over
the simulated network to show the result is executable, not just
paperwork.
"""

from repro.hw import BusSpec, EcuSpec, Topology
from repro.middleware import (
    Endpoint,
    EventConsumer,
    EventProducer,
    ServiceRegistry,
)
from repro.model import legacy_body_catalog, migrate_catalog
from repro.network import VehicleNetwork
from repro.sim import Simulator


def main() -> None:
    catalog = legacy_body_catalog()
    print(f"legacy catalog: {len(catalog.signals)} signals in "
          f"{len({s.frame_id for s in catalog.signals})} CAN frames")
    print("undocumented:", ", ".join(s.name for s in catalog.undocumented()))

    report = migrate_catalog(catalog)
    print()
    print(report.summary())
    print()
    for interface in report.interfaces:
        reqs = interface.requirements
        print(f"  {interface.name:24s} owner={interface.owner:12s} "
              f"{interface.payload_bytes} B @ "
              f"{1 / reqs.period:.0f} Hz" if reqs.period else "")

    # prove a migrated interface runs: vehicle_speed as an event service
    print("\nrunning sig_vehicle_speed over simulated Ethernet:")
    topo = Topology()
    topo.add_bus(BusSpec("eth", "ethernet", 100e6))
    for name in ("esp_ecu", "dash_ecu"):
        topo.add_ecu(EcuSpec(name, ports=(("eth0", "ethernet"),)))
        topo.attach(name, "eth0", "eth")
    sim = Simulator()
    net = VehicleNetwork(sim, topo)
    registry = ServiceRegistry()
    esp = Endpoint(sim, net, "esp_ecu", registry)
    dash = Endpoint(sim, net, "dash_ecu", registry)

    speed_interface = next(
        i for i in report.interfaces if i.name == "sig_vehicle_speed"
    )
    producer = EventProducer(esp, 0x1000, 1, provider_app=speed_interface.owner)
    received = []
    EventConsumer(
        dash, 0x1000, 1, client_app="dashboard",
        on_data=lambda m: received.append((sim.now, m.payload)),
    )
    sim.run()

    def publish(k=0):
        if k >= 5:
            return
        producer.publish(
            {"speed_kmh": 50 + k}, speed_interface.payload_bytes
        )
        sim.schedule(speed_interface.requirements.period, publish, k + 1)

    publish()
    sim.run()
    for t, payload in received:
        print(f"  [{t * 1e3:7.3f} ms] dashboard <- {payload}")
    assert len(received) == 5
    print("\nmigration OK: the legacy signal now travels as a typed, owned "
          "event service")


if __name__ == "__main__":
    main()
