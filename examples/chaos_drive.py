#!/usr/bin/env python3
"""Seeded chaos run: a redundant control service under a fault plan.

Builds the standard chaos scenario — three platform computers on a
redundant ring, a replicated control service under heartbeat
supervision, an RPC client with retries — and injects a declarative
fault plan on top: the primary crashes and reboots, the backbone flaps,
frames are dropped, a core jitters and its clock drifts.

Everything is driven by one master seed: run the script twice with the
same seed and the fault timeline is byte-identical.

Usage:  PYTHONPATH=src python examples/chaos_drive.py [seed]
"""

import sys

from repro.faults import (
    FaultCampaignSpec,
    FaultPlan,
    FaultSpec,
    build_chaos_scenario,
    build_resilience_report,
)
from repro.sim import Simulator

CHAOS_PLAN = FaultPlan(
    name="drive_chaos",
    description="crash + bus flap + frame loss + timing faults",
    faults=(
        FaultSpec(kind="ecu_crash", target="platform_0", start=0.10, duration=0.15),
        FaultSpec(kind="bus_outage", target="eth_backbone", start=0.05, duration=0.08),
        FaultSpec(
            kind="frame_drop", target="eth_ring", start=0.06,
            duration=0.04, probability=0.5, count=3, period=0.12, jitter=0.01,
        ),
        FaultSpec(
            kind="task_jitter", target="platform_1", start=0.20,
            duration=0.10, magnitude=0.002,
        ),
        FaultSpec(
            kind="clock_drift", target="platform_1", start=0.30,
            duration=0.10, magnitude=0.01,
        ),
    ),
)


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    spec = FaultCampaignSpec(plan=CHAOS_PLAN, soak_time=0.5, breaker_threshold=3)
    sim = Simulator()
    scenario = build_chaos_scenario(sim, spec, seed)
    print(f"seed {seed}: injecting {len(CHAOS_PLAN)} declared faults "
          f"over a {spec.soak_time}s soak ...")
    sim.run(until=sim.now + spec.soak_time)

    injector = scenario["injector"]
    print("\nFault timeline:")
    for time, kind, target, action in injector.timeline:
        print(f"  [{time:7.4f}s] {kind:<13} {target:<14} {action}")

    report = build_resilience_report(
        injector=injector,
        redundancy=scenario["manager"],
        clients=(scenario["client"],),
        registry=scenario["platform"].registry,
        degradation=scenario["platform"].degradation,
    )
    print()
    print(report.render())
    client = scenario["client"]
    served = scenario["successes"][0]
    print(f"\nThe service answered {served}/{client.calls_made} calls "
          f"({report.rpc_retries} retried) through crash, outage and loss.")


if __name__ == "__main__":
    main()
