"""Chaos campaigns: scenario wiring, reports, serial ≡ parallel."""

import pickle

import pytest

from repro.errors import ExecutionError
from repro.exec.pool import ParallelExecutor
from repro.faults import (
    FaultCampaignSpec,
    FaultPlan,
    FaultSpec,
    build_chaos_scenario,
    build_resilience_report,
    campaign_outcome,
    redundant_ring_topology,
    run_fault_campaign,
)
from repro.sim import Simulator

CRASH_PLAN = FaultPlan(
    name="crash_primary",
    faults=(
        FaultSpec(kind="ecu_crash", target="platform_0", start=0.1, duration=0.2),
    ),
)

MIXED_PLAN = FaultPlan(
    name="mixed",
    faults=(
        FaultSpec(kind="ecu_crash", target="platform_0", start=0.1, duration=0.15),
        FaultSpec(
            kind="frame_drop", target="eth_backbone", start=0.05,
            duration=0.04, probability=0.6, count=3, period=0.1, jitter=0.01,
        ),
        FaultSpec(
            kind="task_jitter", target="platform_1", start=0.2,
            duration=0.1, magnitude=0.002,
        ),
    ),
)


class TestTopology:
    def test_ring_has_two_segments_per_node(self):
        topo = redundant_ring_topology(3)
        assert {b.name for b in topo.buses} == {"eth_backbone", "eth_ring"}
        assert len(topo.ecus) == 3

    def test_ring_needs_two_platforms(self):
        with pytest.raises(ExecutionError):
            redundant_ring_topology(1)


class TestScenario:
    def test_crash_triggers_failover_and_service_survives(self):
        spec = FaultCampaignSpec(plan=CRASH_PLAN, soak_time=0.5)
        sim = Simulator()
        scenario = build_chaos_scenario(sim, spec, 3)
        sim.run(until=sim.now + spec.soak_time)
        outcome = campaign_outcome("rep0", scenario)
        assert outcome.failovers == 1
        assert all(0 < i < 0.05 for i in outcome.interruptions)
        # the failover is fast enough that no call is ever lost for good
        assert outcome.rpc_calls > 20
        assert outcome.rpc_successes == outcome.rpc_calls
        assert outcome.rpc_failures == 0
        assert outcome.success_ratio == 1.0

    def test_resilience_report_aggregates_scenario(self):
        spec = FaultCampaignSpec(plan=MIXED_PLAN, soak_time=0.4)
        sim = Simulator()
        scenario = build_chaos_scenario(sim, spec, 3)
        sim.run(until=sim.now + spec.soak_time)
        report = build_resilience_report(
            injector=scenario["injector"],
            redundancy=scenario["manager"],
            clients=(scenario["client"],),
            registry=scenario["platform"].registry,
            degradation=scenario["platform"].degradation,
        )
        assert report.plan == "mixed"
        assert report.faults_declared == 3
        assert report.timeline_events == len(scenario["injector"].timeline)
        assert report.failovers == 1
        assert report.worst_interruption >= report.mean_interruption > 0
        assert report.rpc_attempts >= report.rpc_calls
        digest = report.to_digest()
        assert digest["activations"]["ecu_crash"] == 2  # crash + reboot
        assert "ecu_crash" in report.render()

    def test_outcome_is_picklable(self):
        spec = FaultCampaignSpec(plan=CRASH_PLAN, soak_time=0.3)
        sim = Simulator()
        scenario = build_chaos_scenario(sim, spec, 3)
        sim.run(until=sim.now + spec.soak_time)
        outcome = campaign_outcome("rep0", scenario)
        assert pickle.loads(pickle.dumps(outcome)) == outcome

    def test_spec_validation(self):
        with pytest.raises(ExecutionError):
            FaultCampaignSpec(plan=CRASH_PLAN, n_nodes=1)
        with pytest.raises(ExecutionError):
            FaultCampaignSpec(plan=CRASH_PLAN, replicas=5)
        with pytest.raises(ExecutionError):
            FaultCampaignSpec(plan=CRASH_PLAN, soak_time=0.0)


class TestCampaign:
    SPEC = FaultCampaignSpec(plan=MIXED_PLAN, soak_time=0.4)

    def test_repeat_run_is_byte_identical(self):
        first = run_fault_campaign(self.SPEC, replications=3, master_seed=11)
        second = run_fault_campaign(self.SPEC, replications=3, master_seed=11)
        assert first.outcomes == second.outcomes
        assert first.digest == second.digest

    def test_parallel_equals_serial(self):
        serial = run_fault_campaign(self.SPEC, replications=4, master_seed=11)
        with ParallelExecutor(workers=2, master_seed=11) as executor:
            parallel = run_fault_campaign(
                self.SPEC, replications=4, executor=executor, master_seed=11
            )
        assert serial.outcomes == parallel.outcomes

    def test_different_seed_changes_outcomes(self):
        a = run_fault_campaign(self.SPEC, replications=2, master_seed=11)
        b = run_fault_campaign(self.SPEC, replications=2, master_seed=12)
        assert a.outcomes != b.outcomes

    def test_result_helpers(self):
        result = run_fault_campaign(self.SPEC, replications=2, master_seed=11)
        assert result.worst_interruption() > 0
        assert result.total_timeline_events() == sum(
            len(o.timeline) for o in result.outcomes
        )

    def test_needs_at_least_one_replication(self):
        with pytest.raises(ExecutionError):
            run_fault_campaign(self.SPEC, replications=0)
