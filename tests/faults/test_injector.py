"""Per-kind behaviour and determinism of the FaultInjector."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultInjector, FaultPlan, FaultSpec, redundant_ring_topology
from repro.hw import BusSpec, EcuSpec, Topology
from repro.middleware import Endpoint, Message, MessageType, ServiceRegistry
from repro.network import VehicleNetwork
from repro.osal import Core, FixedPriorityPolicy, PeriodicSource, TaskSpec
from repro.security.crypto import TrustStore
from repro.sim import Simulator


def eth_world():
    """Two ECUs on one Ethernet segment, plus endpoints."""
    topo = Topology()
    topo.add_bus(BusSpec("eth", "ethernet", 100e6))
    for name in ("e0", "e1"):
        topo.add_ecu(EcuSpec(name, ports=(("eth0", "ethernet"),)))
        topo.attach(name, "eth0", "eth")
    sim = Simulator()
    net = VehicleNetwork(sim, topo)
    registry = ServiceRegistry()
    endpoints = {n: Endpoint(sim, net, n, registry) for n in ("e0", "e1")}
    return sim, net, endpoints


def notification(src="e0", dst="e1", payload_bytes=64):
    return Message(
        service_id=0x10, method_id=1, msg_type=MessageType.NOTIFICATION,
        payload_bytes=payload_bytes, src=src, dst=dst,
    )


def core_world():
    sim = Simulator()
    core = Core(sim, "core0", 1.0, FixedPriorityPolicy())
    return sim, core


def small_platform(sim, n=2):
    from repro.core.platform import DynamicPlatform

    store = TrustStore()
    store.generate_key("oem")
    return DynamicPlatform(sim, redundant_ring_topology(n), trust_store=store)


class TestFrameFaults:
    def test_drop_window_swallows_frames(self):
        sim, net, eps = eth_world()
        got = []
        eps["e1"].on_message(0x10, MessageType.NOTIFICATION, got.append)
        plan = FaultPlan(name="drop", faults=(
            FaultSpec(kind="frame_drop", target="eth", start=0.0, duration=0.01),
        ))
        FaultInjector(sim, plan, 1, network=net).arm()
        done = eps["e0"].send(notification())
        sim.run()
        assert not done.fired
        assert got == []
        assert net.bus("eth").frames_dropped == 1
        assert net.bus("eth").frames_delivered == 0

    def test_corrupt_frames_delivered_but_discarded(self):
        sim, net, eps = eth_world()
        got = []
        eps["e1"].on_message(0x10, MessageType.NOTIFICATION, got.append)
        plan = FaultPlan(name="corrupt", faults=(
            FaultSpec(kind="frame_corrupt", target="eth", start=0.0, duration=0.01),
        ))
        FaultInjector(sim, plan, 1, network=net).arm()
        eps["e0"].send(notification())
        sim.run()
        # the bus delivered the bits, but the receiver's CRC check rejects
        assert net.bus("eth").frames_delivered == 1
        assert net.bus("eth").frames_corrupted == 1
        assert eps["e1"].frames_discarded == 1
        assert got == []

    def test_delay_window_adds_exact_latency(self):
        times = []
        for delayed in (False, True):
            sim, net, eps = eth_world()
            eps["e1"].on_message(
                0x10, MessageType.NOTIFICATION, lambda m: times.append(sim.now)
            )
            if delayed:
                plan = FaultPlan(name="delay", faults=(
                    FaultSpec(
                        kind="frame_delay", target="eth", start=0.0,
                        duration=0.01, magnitude=0.004,
                    ),
                ))
                FaultInjector(sim, plan, 1, network=net).arm()
            eps["e0"].send(notification())
            sim.run()
        baseline, faulted = times
        assert faulted == pytest.approx(baseline + 0.004)

    def test_window_close_restores_zero_overhead_path(self):
        sim, net, eps = eth_world()
        got = []
        eps["e1"].on_message(0x10, MessageType.NOTIFICATION, got.append)
        plan = FaultPlan(name="drop", faults=(
            FaultSpec(kind="frame_drop", target="eth", start=0.0, duration=0.005),
        ))
        injector = FaultInjector(sim, plan, 1, network=net).arm()
        sim.run(until=0.006)
        assert net.bus("eth")._fault_hook is None
        eps["e0"].send(notification())
        sim.run()
        assert len(got) == 1
        actions = injector.counts_by_action()
        assert actions == {"window_open": 1, "window_close": 1}

    def test_probability_gates_per_frame(self):
        sim, net, eps = eth_world()
        plan = FaultPlan(name="lossy", faults=(
            FaultSpec(
                kind="frame_drop", target="eth", start=0.0,
                duration=1.0, probability=0.5,
            ),
        ))
        FaultInjector(sim, plan, 1, network=net).arm()

        def sender():
            for _ in range(40):
                eps["e0"].send(notification())
                yield 0.001

        sim.process(sender())
        sim.run(until=0.5)
        bus = net.bus("eth")
        assert 0 < bus.frames_dropped < 40
        assert bus.frames_dropped + bus.frames_delivered == 40


class TestBusOutage:
    def test_outage_and_repair_bump_route_epoch(self):
        sim, net, eps = eth_world()
        plan = FaultPlan(name="outage", faults=(
            FaultSpec(kind="bus_outage", target="eth", start=0.01, duration=0.02),
        ))
        injector = FaultInjector(sim, plan, 1, network=net).arm()
        epoch = net.route_epoch
        sim.run(until=0.02)
        assert "eth" in net._failed_buses
        sim.run(until=0.05)
        assert "eth" not in net._failed_buses
        assert net.route_epoch == epoch + 2
        assert [e[3] for e in injector.timeline] == ["outage", "repair"]

    def test_outage_on_downed_bus_is_skipped(self):
        sim, net, eps = eth_world()
        plan = FaultPlan(name="double", faults=(
            FaultSpec(kind="bus_outage", target="eth", start=0.01),
            FaultSpec(kind="bus_outage", target="eth", start=0.02),
        ))
        injector = FaultInjector(sim, plan, 1, network=net).arm()
        sim.run(until=0.03)
        assert [e[3] for e in injector.timeline] == ["outage", "skipped"]


class TestEcuCrash:
    def test_crash_and_reboot(self):
        sim = Simulator()
        platform = small_platform(sim)
        plan = FaultPlan(name="crash", faults=(
            FaultSpec(kind="ecu_crash", target="platform_0", start=0.01, duration=0.02),
        ))
        injector = FaultInjector(sim, plan, 1, platform=platform).arm()
        sim.run(until=0.02)
        assert platform.node("platform_0").failed
        sim.run(until=0.05)
        assert not platform.node("platform_0").failed
        assert [e[3] for e in injector.events_of_kind("ecu_crash")] == [
            "crash", "reboot",
        ]

    def test_crash_on_failed_node_is_skipped(self):
        sim = Simulator()
        platform = small_platform(sim)
        plan = FaultPlan(name="crash2", faults=(
            FaultSpec(kind="ecu_crash", target="platform_0", start=0.01),
            FaultSpec(kind="ecu_crash", target="platform_0", start=0.02),
        ))
        injector = FaultInjector(sim, plan, 1, platform=platform).arm()
        sim.run(until=0.03)
        assert [e[3] for e in injector.timeline] == ["crash", "skipped"]


class TestTaskFaults:
    def test_overrun_stretches_execution(self):
        sim, core = core_world()
        task = TaskSpec(name="t", period=0.01, wcet=0.002)
        PeriodicSource(sim, core, task, horizon=0.1)
        plan = FaultPlan(name="overrun", faults=(
            FaultSpec(
                kind="task_overrun", target="core0", start=0.045,
                duration=0.02, magnitude=1.0,
            ),
        ))
        injector = FaultInjector(sim, plan, 1, cores=(core,)).arm()
        sim.run()
        hit = [j for j in core.completed_jobs if 0.045 <= j.release_time < 0.065]
        clean = [j for j in core.completed_jobs if j.release_time < 0.045]
        assert hit and clean
        assert all(j.response_time == pytest.approx(0.004) for j in hit)
        assert all(j.response_time == pytest.approx(0.002) for j in clean)
        assert core.fault_perturb is None  # window closed
        assert len(injector.events_of_kind("task_overrun")) == len(hit) + 2

    def test_jitter_delays_release_but_not_deadline(self):
        sim, core = core_world()
        task = TaskSpec(name="t", period=0.01, wcet=0.002)
        PeriodicSource(sim, core, task, horizon=0.1)
        plan = FaultPlan(name="jitter", faults=(
            FaultSpec(
                kind="task_jitter", target="core0", start=0.045,
                duration=0.02, magnitude=0.003,
            ),
        ))
        injector = FaultInjector(sim, plan, 7, cores=(core,)).arm()
        sim.run()
        hit = [j for j in core.completed_jobs if 0.045 <= j.release_time < 0.065]
        assert hit
        # start is pushed past the nominal release; the deadline stays
        # anchored at the nominal activation instant
        for job in hit:
            assert job.start_time > job.release_time
            assert job.absolute_deadline == pytest.approx(
                job.release_time + task.effective_deadline
            )
        assert injector.counts_by_action()["jitter"] == len(hit)

    def test_node_target_reaches_all_platform_cores(self):
        sim = Simulator()
        platform = small_platform(sim)
        plan = FaultPlan(name="node_overrun", faults=(
            FaultSpec(
                kind="task_overrun", target="platform_0", start=0.0,
                duration=0.01, magnitude=0.5,
            ),
        ))
        FaultInjector(sim, plan, 1, platform=platform).arm()
        sim.run(until=0.005)
        for core in platform.node("platform_0").cores:
            assert core.fault_perturb is not None
        sim.run(until=0.02)
        for core in platform.node("platform_0").cores:
            assert core.fault_perturb is None


class TestClockDrift:
    def test_drift_stretches_activation_grid(self):
        sim, core = core_world()
        task = TaskSpec(name="t", period=0.01, wcet=0.001)
        source = PeriodicSource(sim, core, task, horizon=0.3)
        plan = FaultPlan(name="drift", faults=(
            FaultSpec(
                kind="clock_drift", target="core0", start=0.1,
                duration=0.1, magnitude=0.5,
            ),
        ))
        injector = FaultInjector(sim, plan, 1, cores=(core,)).arm()
        sim.run()
        in_window = [
            j for j in source.jobs if 0.1 <= j.release_time < 0.2
        ]
        before = [j for j in source.jobs if j.release_time < 0.1]
        # a 50 % slow clock fits ~6-7 periods where 10 nominally fit
        assert len(before) == 10
        assert len(in_window) < 8
        assert core.clock_drift == 0.0  # drift cleared after the window
        assert [e[3] for e in injector.timeline] == ["drift_on", "drift_off"]


class TestArming:
    def test_unknown_targets_rejected(self):
        sim, net, _ = eth_world()
        bad_bus = FaultPlan(name="b", faults=(
            FaultSpec(kind="frame_drop", target="nosuchbus", start=0.0),
        ))
        with pytest.raises(ConfigurationError, match="unknown bus"):
            FaultInjector(sim, bad_bus, 1, network=net).arm()
        bad_core = FaultPlan(name="c", faults=(
            FaultSpec(kind="task_jitter", target="ghost", start=0.0, magnitude=0.1),
        ))
        with pytest.raises(ConfigurationError, match="unknown core"):
            FaultInjector(sim, bad_core, 1, network=net).arm()
        needs_platform = FaultPlan(name="d", faults=(
            FaultSpec(kind="ecu_crash", target="e0", start=0.0),
        ))
        with pytest.raises(ConfigurationError, match="need a platform"):
            FaultInjector(sim, needs_platform, 1, network=net).arm()

    def test_disarm_cancels_and_removes_hooks(self):
        sim, net, eps = eth_world()
        got = []
        eps["e1"].on_message(0x10, MessageType.NOTIFICATION, got.append)
        plan = FaultPlan(name="drop", faults=(
            FaultSpec(kind="frame_drop", target="eth", start=0.0, duration=1.0),
        ))
        injector = FaultInjector(sim, plan, 1, network=net).arm()
        sim.run(until=0.001)
        assert net.bus("eth")._fault_hook is not None
        injector.disarm()
        assert net.bus("eth")._fault_hook is None
        eps["e0"].send(notification())
        sim.run()
        assert len(got) == 1

    def test_arm_is_idempotent(self):
        sim, net, _ = eth_world()
        plan = FaultPlan(name="o", faults=(
            FaultSpec(kind="bus_outage", target="eth", start=0.01),
        ))
        injector = FaultInjector(sim, plan, 1, network=net)
        injector.arm().arm()
        sim.run(until=0.02)
        assert len(injector.timeline) == 1


class TestDeterminism:
    PLAN = FaultPlan(
        name="det",
        faults=(
            FaultSpec(
                kind="frame_drop", target="eth", start=0.0,
                duration=0.05, probability=0.4, count=3, period=0.06,
                jitter=0.005,
            ),
            FaultSpec(
                kind="frame_delay", target="eth", start=0.02,
                duration=0.01, magnitude=0.002,
            ),
        ),
    )

    def _run(self, seed):
        sim, net, eps = eth_world()
        injector = FaultInjector(sim, self.PLAN, seed, network=net).arm()

        def sender():
            for _ in range(100):
                eps["e0"].send(notification())
                yield 0.002

        sim.process(sender())
        sim.run(until=0.25)
        return tuple(injector.timeline)

    def test_same_plan_and_seed_give_identical_timeline(self):
        assert self._run(42) == self._run(42)

    def test_different_seed_gives_different_timeline(self):
        assert self._run(42) != self._run(43)
