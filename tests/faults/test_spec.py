"""Validation and value semantics of FaultSpec / FaultPlan."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FAULT_KINDS,
    KIND_BUS_OUTAGE,
    KIND_CLOCK_DRIFT,
    KIND_ECU_CRASH,
    KIND_FRAME_DELAY,
    KIND_FRAME_DROP,
    KIND_TASK_JITTER,
    KIND_TASK_OVERRUN,
    FaultPlan,
    FaultSpec,
)


class TestFaultSpec:
    def test_minimal_spec(self):
        spec = FaultSpec(kind=KIND_ECU_CRASH, target="n0", start=0.1)
        assert spec.permanent
        assert not spec.intermittent

    def test_duration_marks_transient(self):
        spec = FaultSpec(kind=KIND_ECU_CRASH, target="n0", start=0.1, duration=0.05)
        assert not spec.permanent

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultSpec(kind="meteor_strike", target="n0", start=0.0)

    def test_empty_target_rejected(self):
        with pytest.raises(ConfigurationError, match="needs a target"):
            FaultSpec(kind=KIND_ECU_CRASH, target="", start=0.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError, match="start time"):
            FaultSpec(kind=KIND_ECU_CRASH, target="n0", start=-1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError, match="duration"):
            FaultSpec(kind=KIND_ECU_CRASH, target="n0", start=0.0, duration=-0.1)

    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError, match="probability"):
            FaultSpec(kind=KIND_FRAME_DROP, target="bus", start=0.0, probability=1.5)

    def test_recurring_needs_period(self):
        with pytest.raises(ConfigurationError, match="positive period"):
            FaultSpec(kind=KIND_ECU_CRASH, target="n0", start=0.0, count=3)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ConfigurationError, match="jitter"):
            FaultSpec(kind=KIND_ECU_CRASH, target="n0", start=0.0, jitter=-0.01)

    @pytest.mark.parametrize(
        "kind",
        [KIND_FRAME_DELAY, KIND_TASK_OVERRUN, KIND_TASK_JITTER, KIND_CLOCK_DRIFT],
    )
    def test_magnitude_kinds_need_magnitude(self, kind):
        with pytest.raises(ConfigurationError, match="magnitude"):
            FaultSpec(kind=kind, target="x", start=0.0)

    def test_recurring_windows_must_not_self_overlap(self):
        with pytest.raises(ConfigurationError, match="overlap"):
            FaultSpec(
                kind=KIND_FRAME_DROP, target="bus", start=0.0,
                duration=0.2, count=3, period=0.1,
            )
        # touching exactly (duration == period) is fine
        FaultSpec(
            kind=KIND_FRAME_DROP, target="bus", start=0.0,
            duration=0.1, count=3, period=0.1,
        )

    def test_specs_are_hashable_and_picklable(self):
        spec = FaultSpec(
            kind=KIND_FRAME_DELAY, target="bus", start=0.1,
            duration=0.05, magnitude=0.001,
        )
        assert spec == pickle.loads(pickle.dumps(spec))
        assert hash(spec) == hash(pickle.loads(pickle.dumps(spec)))

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS:
            FaultSpec(kind=kind, target="x", start=0.0, magnitude=0.1)


class TestFaultPlan:
    def test_plan_needs_name(self):
        with pytest.raises(ConfigurationError, match="needs a name"):
            FaultPlan(name="")

    def test_plan_coerces_faults_to_tuple(self):
        spec = FaultSpec(kind=KIND_ECU_CRASH, target="n0", start=0.0)
        plan = FaultPlan(name="p", faults=[spec])
        assert isinstance(plan.faults, tuple)
        assert len(plan) == 1

    def test_plan_rejects_non_spec_entries(self):
        with pytest.raises(ConfigurationError, match="non-FaultSpec"):
            FaultPlan(name="p", faults=("not a spec",))

    def test_of_kind_and_targets(self):
        plan = FaultPlan(
            name="p",
            faults=(
                FaultSpec(kind=KIND_ECU_CRASH, target="n1", start=0.0),
                FaultSpec(kind=KIND_BUS_OUTAGE, target="b0", start=0.0),
                FaultSpec(kind=KIND_ECU_CRASH, target="n0", start=0.1),
            ),
        )
        assert len(plan.of_kind(KIND_ECU_CRASH)) == 2
        assert plan.targets() == ("b0", "n0", "n1")

    def test_plan_is_picklable(self):
        plan = FaultPlan(
            name="p",
            faults=(FaultSpec(kind=KIND_ECU_CRASH, target="n0", start=0.0),),
        )
        assert pickle.loads(pickle.dumps(plan)) == plan
