"""Tests for FlexRay segments inside a VehicleNetwork (auto slot plan)."""


from repro.hw import BusSpec, EcuSpec, Topology
from repro.network import FlexRayBus, TrafficClass, VehicleNetwork
from repro.sim import Simulator


def flexray_world():
    topo = Topology()
    topo.add_bus(BusSpec("fr", "flexray", 10e6))
    for name in ("chassis_a", "chassis_b", "chassis_c"):
        topo.add_ecu(EcuSpec(name, ports=(("fr0", "flexray"),)))
        topo.attach(name, "fr0", "fr")
    sim = Simulator()
    net = VehicleNetwork(sim, topo)
    return sim, net


class TestAutoSlotAssignment:
    def test_every_ecu_gets_a_slot(self):
        sim, net = flexray_world()
        bus = net.bus("fr")
        assert isinstance(bus, FlexRayBus)
        for name in ("chassis_a", "chassis_b", "chassis_c"):
            assert bus.slot_of(name) is not None

    def test_slots_are_distinct(self):
        sim, net = flexray_world()
        bus = net.bus("fr")
        slots = [bus.slot_of(n) for n in ("chassis_a", "chassis_b", "chassis_c")]
        assert len(set(slots)) == 3

    def test_deterministic_send_works_out_of_the_box(self):
        sim, net = flexray_world()
        got = []
        net.register_receiver("chassis_b", lambda f: got.append(sim.now))
        done = net.send(
            "chassis_a", "chassis_b", 16,
            traffic_class=TrafficClass.DETERMINISTIC,
        )
        sim.run(until=0.05)
        assert done.fired
        assert got

    def test_deterministic_latency_bounded_by_cycle(self):
        sim, net = flexray_world()
        latencies = []

        def send_one(k=0):
            if k >= 5:
                return
            net.send(
                "chassis_a", "chassis_b", 16,
                traffic_class=TrafficClass.DETERMINISTIC,
            ).add_callback(lambda f: latencies.append(f.latency))
            sim.schedule(0.011, send_one, k + 1)

        send_one()
        sim.run(until=0.2)
        assert len(latencies) == 5
        cycle = net.bus("fr").config.cycle_length
        assert all(lat <= cycle + 1e-9 for lat in latencies)

    def test_nondeterministic_uses_dynamic_segment(self):
        sim, net = flexray_world()
        done = net.send("chassis_a", "chassis_c", 64, priority=5)
        sim.run(until=0.05)
        assert done.fired
        bus = net.bus("fr")
        assert bus.dynamic_frames_sent >= 1
