"""Tests for the FlexRay TDMA bus simulator."""

import pytest

from repro.errors import ConfigurationError, NetworkError
from repro.network import FlexRayBus, FlexRayConfig, Frame, TrafficClass
from repro.sim import Simulator


def make_bus(**cfg):
    sim = Simulator()
    config = FlexRayConfig(**cfg) if cfg else FlexRayConfig(
        cycle_length=0.005, static_slots=4, static_slot_length=0.0005,
        slot_payload_bytes=32,
    )
    bus = FlexRayBus(sim, "fr0", 10e6, config=config)
    return sim, bus


def det_frame(src, size=16, **kw):
    return Frame(
        src=src, dst=None, payload_bytes=size,
        traffic_class=TrafficClass.DETERMINISTIC, **kw
    )


def dyn_frame(src, size=16, prio=10, **kw):
    return Frame(
        src=src, dst=None, payload_bytes=size, priority=prio,
        traffic_class=TrafficClass.NON_DETERMINISTIC, **kw
    )


class TestConfig:
    def test_segment_lengths(self):
        cfg = FlexRayConfig(0.005, 32, 0.0001, 32)
        assert cfg.static_segment_length == pytest.approx(0.0032)
        assert cfg.dynamic_segment_length == pytest.approx(0.0018)

    def test_static_segment_must_fit_cycle(self):
        with pytest.raises(ConfigurationError):
            FlexRayConfig(cycle_length=0.001, static_slots=32,
                          static_slot_length=0.0001)

    def test_invalid_slot_count(self):
        with pytest.raises(ConfigurationError):
            FlexRayConfig(static_slots=0)

    def test_slot_start(self):
        cfg = FlexRayConfig(0.005, 4, 0.0005, 32)
        assert cfg.slot_start(0, 0) == 0.0
        assert cfg.slot_start(2, 3) == pytest.approx(2 * 0.005 + 3 * 0.0005)


class TestSlotAssignment:
    def test_double_assignment_rejected(self):
        sim, bus = make_bus()
        bus.assign_slot(0, "a")
        with pytest.raises(ConfigurationError):
            bus.assign_slot(0, "b")

    def test_out_of_range_slot_rejected(self):
        sim, bus = make_bus()
        with pytest.raises(ConfigurationError):
            bus.assign_slot(99, "a")

    def test_slot_of_lookup(self):
        sim, bus = make_bus()
        bus.assign_slot(2, "a")
        assert bus.slot_of("a") == 2
        assert bus.slot_of("stranger") is None

    def test_deterministic_frame_without_slot_rejected(self):
        sim, bus = make_bus()
        with pytest.raises(NetworkError):
            bus.submit(det_frame("nobody"))

    def test_oversized_static_frame_rejected(self):
        sim, bus = make_bus()
        bus.assign_slot(0, "a")
        with pytest.raises(NetworkError):
            bus.submit(det_frame("a", size=64))


class TestStaticSegment:
    def test_frame_sent_in_owned_slot(self):
        sim, bus = make_bus()
        bus.assign_slot(1, "a")
        done = bus.submit(det_frame("a"))
        sim.run(until=0.01)
        assert done.fired
        # delivered at the end of slot 1: 2 * 0.0005
        assert done.value.delivered_at == pytest.approx(0.001)

    def test_deterministic_latency_is_jitter_free(self):
        """Frames submitted at the same cycle phase see identical latency."""
        sim, bus = make_bus()
        bus.assign_slot(0, "a")
        latencies = []
        for k in range(3):
            sim.at(
                k * 0.005 + 0.0041,  # just after slot 0 of cycle k
                lambda: bus.submit(det_frame("a")).add_callback(
                    lambda f: latencies.append(f.latency)
                ),
            )
        sim.run(until=0.03)
        assert len(latencies) == 3
        assert max(latencies) - min(latencies) < 1e-9

    def test_two_senders_use_their_own_slots(self):
        sim, bus = make_bus()
        bus.assign_slot(0, "a")
        bus.assign_slot(2, "b")
        da = bus.submit(det_frame("a"))
        db = bus.submit(det_frame("b"))
        sim.run(until=0.01)
        assert da.value.delivered_at == pytest.approx(0.0005)
        assert db.value.delivered_at == pytest.approx(0.0015)


class TestDynamicSegment:
    def test_dynamic_frames_wait_for_dynamic_segment(self):
        sim, bus = make_bus()
        done = bus.submit(dyn_frame("x"))
        sim.run(until=0.01)
        assert done.fired
        # static segment is 4*0.0005 = 0.002; dynamic starts after that
        assert done.value.delivered_at >= 0.002

    def test_dynamic_priority_order(self):
        sim, bus = make_bus()
        order = []
        for prio, tag in ((30, "low"), (5, "high"), (20, "mid")):
            bus.submit(dyn_frame("x", prio=prio, size=100)).add_callback(
                lambda f, tag=tag: order.append(tag)
            )
        sim.run(until=0.02)
        assert order == ["high", "mid", "low"]

    def test_large_dynamic_frame_defers_to_next_cycle(self):
        sim, bus = make_bus()
        # 3 ms dynamic window at 10 Mbit/s = 3750 bytes; one 1900-byte frame
        # fits, two do not fit in the same cycle
        first = bus.submit(dyn_frame("x", size=1900, prio=1))
        second = bus.submit(dyn_frame("x", size=1900, prio=2))
        sim.run(until=0.02)
        assert first.value.delivered_at < 0.005
        assert second.value.delivered_at > 0.005
        assert bus.dynamic_deferrals >= 1

    def test_mixed_traffic_isolation(self):
        """Bulk dynamic load cannot delay a static (deterministic) frame —
        the paper's FlexRay partitioning argument (Section 5.3)."""
        sim, bus = make_bus()
        bus.assign_slot(0, "det")
        for _ in range(20):
            bus.submit(dyn_frame("bulk", size=800, prio=1))
        done = bus.submit(det_frame("det"))
        sim.run(until=0.05)
        # still the very first slot of the next cycle
        assert done.value.delivered_at == pytest.approx(0.0005)

    def test_bus_goes_idle_when_drained(self):
        sim, bus = make_bus()
        bus.assign_slot(0, "a")
        bus.submit(det_frame("a"))
        sim.run(until=0.1)
        queue_empty_time = sim.now
        assert queue_empty_time == 0.1
        # engine restarts on a new submit after idling
        done = bus.submit(det_frame("a"))
        sim.run(until=0.2)
        assert done.fired
