"""Tests for the route cache and gateway rerouting under bus failures.

The cache is keyed on ``(src, dst, frozenset(failed_buses))``, so entries
computed under one failure set never leak into another; ``fail_bus`` /
``repair_bus`` switch the active key instead of flushing, which also makes
previously seen failure sets warm again.  Hit/miss behaviour is observable
through the ``net.route_cache.{hit,miss}`` metrics.
"""

import pytest

from repro.errors import ConfigurationError
from repro.hw import BusSpec, EcuSpec, Topology
from repro.network import VehicleNetwork
from repro.obs.metrics import MetricsRegistry
from repro.sim import Simulator


def ring_topology():
    """Two CAN islands bridged by a redundant pair of Ethernet backbones.

    ``sensor -can_a- gw1 =eth_main|eth_alt= gw2 -can_b- actuator``; the
    camera sits on ``eth_main`` only, so it loses all connectivity when
    the main backbone fails.
    """
    topo = Topology("ring")
    topo.add_bus(BusSpec("can_a", "can", 500_000.0))
    topo.add_bus(BusSpec("can_b", "can", 500_000.0))
    topo.add_bus(BusSpec("eth_main", "ethernet", 100e6))
    topo.add_bus(BusSpec("eth_alt", "ethernet", 100e6))
    topo.add_ecu(EcuSpec("sensor", ports=(("can0", "can"),)))
    topo.add_ecu(EcuSpec("actuator", ports=(("can0", "can"),)))
    topo.add_ecu(EcuSpec("cam", ports=(("eth0", "ethernet"),)))
    for gw in ("gw1", "gw2"):
        topo.add_ecu(
            EcuSpec(
                gw,
                ports=(
                    ("can0", "can"),
                    ("eth0", "ethernet"),
                    ("eth1", "ethernet"),
                ),
            )
        )
    topo.attach("sensor", "can0", "can_a")
    topo.attach("gw1", "can0", "can_a")
    topo.attach("actuator", "can0", "can_b")
    topo.attach("gw2", "can0", "can_b")
    topo.attach("gw1", "eth0", "eth_main")
    topo.attach("gw2", "eth0", "eth_main")
    topo.attach("cam", "eth0", "eth_main")
    topo.attach("gw1", "eth1", "eth_alt")
    topo.attach("gw2", "eth1", "eth_alt")
    return topo


def make_net():
    sim = Simulator(metrics=MetricsRegistry(enabled=True))
    net = VehicleNetwork(sim, ring_topology())
    return sim, net


def cache_counts(sim):
    metrics = sim.metrics
    return (
        metrics.counter("net.route_cache.hit").value,
        metrics.counter("net.route_cache.miss").value,
    )


class TestRouteCache:
    def test_repeated_sends_hit_cache(self):
        sim, net = make_net()
        for _ in range(5):
            net.send("sensor", "actuator", 8, priority=0x100)
        sim.run()
        hits, misses = cache_counts(sim)
        assert misses == 1
        assert hits == 4

    def test_distinct_pairs_miss_separately(self):
        sim, net = make_net()
        net.send("sensor", "actuator", 8, priority=0x100)
        net.send("actuator", "sensor", 8, priority=0x100)
        net.send("sensor", "actuator", 8, priority=0x100)
        sim.run()
        hits, misses = cache_counts(sim)
        assert misses == 2  # each direction is its own key
        assert hits == 1

    def test_failure_switches_key_and_detour_is_cached(self):
        sim, net = make_net()
        net.send("sensor", "actuator", 8, priority=0x100)
        sim.run()
        net.fail_bus("eth_main")
        got = []
        net.register_receiver("actuator", lambda f: got.append(f.label))
        net.send("sensor", "actuator", 8, priority=0x100, label="detour")
        net.send("sensor", "actuator", 8, priority=0x100, label="detour2")
        sim.run()
        assert got == ["detour", "detour2"]
        hits, misses = cache_counts(sim)
        # healthy route: 1 miss; degraded route: 1 miss + 1 hit
        assert misses == 2
        assert hits == 1
        assert net.reroutes == 2  # every degraded-mode send, cached or not

    def test_repair_restores_cached_healthy_route(self):
        sim, net = make_net()
        net.send("sensor", "actuator", 8, priority=0x100)
        net.fail_bus("eth_main")
        net.send("sensor", "actuator", 8, priority=0x100)
        net.repair_bus("eth_main")
        net.send("sensor", "actuator", 8, priority=0x100)
        sim.run()
        hits, misses = cache_counts(sim)
        # the healthy-route entry survives the fail/repair cycle
        assert misses == 2
        assert hits == 1
        # and a second outage reuses the cached detour
        net.fail_bus("eth_main")
        net.send("sensor", "actuator", 8, priority=0x100)
        sim.run()
        assert cache_counts(sim) == (2, 2)

    def test_detour_avoids_failed_bus(self):
        sim, net = make_net()
        net.fail_bus("eth_main")
        specs = net.route_buses("sensor", "actuator")
        names = [spec.name for spec in specs]
        assert "eth_main" not in names
        assert "eth_alt" in names

    def test_no_surviving_path_raises(self):
        sim, net = make_net()
        net.fail_bus("eth_main")
        with pytest.raises(ConfigurationError):
            net.send("cam", "actuator", 8, priority=0x100)

    def test_route_epoch_bumps_only_on_membership_change(self):
        sim, net = make_net()
        epoch = net.route_epoch
        net.fail_bus("eth_main")
        assert net.route_epoch == epoch + 1
        net.fail_bus("eth_main")  # already failed: no change
        assert net.route_epoch == epoch + 1
        net.repair_bus("eth_alt")  # was never failed: no change
        assert net.route_epoch == epoch + 1
        net.repair_bus("eth_main")
        assert net.route_epoch == epoch + 2

    def test_invalidate_routes_forces_recompute(self):
        sim, net = make_net()
        net.send("sensor", "actuator", 8, priority=0x100)
        net.invalidate_routes()
        net.send("sensor", "actuator", 8, priority=0x100)
        sim.run()
        assert cache_counts(sim) == (0.0, 2.0)

    def test_route_buses_uses_frozen_bus_name_set(self):
        sim, net = make_net()
        assert net._bus_names == frozenset(
            ("can_a", "can_b", "eth_main", "eth_alt")
        )
        specs = net.route_buses("sensor", "actuator")
        assert [spec.name for spec in specs] == ["can_a", "eth_main", "can_b"]
