"""Tests for multi-segment routing through gateways."""

import pytest

from repro.errors import ConfigurationError, NetworkError
from repro.hw import BusSpec, EcuSpec, Topology
from repro.network import (
    GATEWAY_LATENCY,
    CanBus,
    EthernetBus,
    FlexRayBus,
    TrafficClass,
    TsnBus,
    VehicleNetwork,
    build_bus,
)
from repro.sim import Simulator


def two_segment_topology():
    topo = Topology("t")
    topo.add_bus(BusSpec("can_a", "can", 500_000.0))
    topo.add_bus(BusSpec("eth_b", "ethernet", 100e6))
    topo.add_ecu(EcuSpec("sensor", ports=(("can0", "can"),)))
    topo.add_ecu(EcuSpec("gw", ports=(("can0", "can"), ("eth0", "ethernet"))))
    topo.add_ecu(EcuSpec("brain", ports=(("eth0", "ethernet"),)))
    topo.attach("sensor", "can0", "can_a")
    topo.attach("gw", "can0", "can_a")
    topo.attach("gw", "eth0", "eth_b")
    topo.attach("brain", "eth0", "eth_b")
    return topo


class TestBuildBus:
    def test_builds_matching_simulators(self):
        sim = Simulator()
        assert isinstance(build_bus(sim, BusSpec("c", "can", 5e5)), CanBus)
        assert isinstance(build_bus(sim, BusSpec("f", "flexray", 1e7)), FlexRayBus)
        assert isinstance(build_bus(sim, BusSpec("e", "ethernet", 1e8)), EthernetBus)
        tsn = build_bus(sim, BusSpec("t", "ethernet", 1e9, tsn_capable=True))
        assert isinstance(tsn, TsnBus)


class TestVehicleNetwork:
    def test_same_segment_delivery(self):
        sim = Simulator()
        net = VehicleNetwork(sim, two_segment_topology())
        got = []
        net.register_receiver("gw", lambda f: got.append(f.label))
        net.send("sensor", "gw", 8, priority=0x100, label="hello")
        sim.run()
        assert got == ["hello"]

    def test_cross_segment_delivery_via_gateway(self):
        sim = Simulator()
        net = VehicleNetwork(sim, two_segment_topology())
        got = []
        net.register_receiver("brain", lambda f: got.append((sim.now, f.label)))
        done = net.send("sensor", "brain", 8, priority=0x100, label="x")
        sim.run()
        assert done.fired
        assert got[0][1] == "x"
        # must include CAN time + gateway latency + Ethernet time
        assert got[0][0] > GATEWAY_LATENCY
        assert net.gateway_forwards == 1

    def test_unroutable_send_raises(self):
        topo = two_segment_topology()
        topo.add_ecu(EcuSpec("island"))
        sim = Simulator()
        net = VehicleNetwork(sim, topo)
        with pytest.raises(ConfigurationError):
            net.send("sensor", "island", 8)

    def test_deterministic_class_pins_ethernet_pcp7(self):
        sim = Simulator()
        net = VehicleNetwork(sim, two_segment_topology())
        seen = []
        net.register_receiver("brain", lambda f: seen.append(f.priority))
        net.send(
            "gw", "brain", 100,
            traffic_class=TrafficClass.DETERMINISTIC, priority=0x001,
        )
        sim.run()
        assert seen == [7]

    def test_nondeterministic_priority_mapping(self):
        sim = Simulator()
        net = VehicleNetwork(sim, two_segment_topology())
        seen = []
        net.register_receiver("brain", lambda f: seen.append(f.priority))
        net.send("gw", "brain", 100, priority=0)      # most urgent -> PCP 6
        net.send("gw", "brain", 100, priority=2047)   # least urgent -> PCP 0
        sim.run()
        assert seen == [6, 0]

    def test_unregistered_receiver_drops_silently(self):
        sim = Simulator()
        net = VehicleNetwork(sim, two_segment_topology())
        done = net.send("sensor", "gw", 8, priority=0x50)
        sim.run()
        assert done.fired  # delivery signal still fires

    def test_unregister_receiver(self):
        sim = Simulator()
        net = VehicleNetwork(sim, two_segment_topology())
        got = []
        net.register_receiver("gw", lambda f: got.append(1))
        net.unregister_receiver("gw")
        net.send("sensor", "gw", 8, priority=0x50)
        sim.run()
        assert got == []

    def test_payload_object_carried_end_to_end(self):
        sim = Simulator()
        net = VehicleNetwork(sim, two_segment_topology())
        got = []
        net.register_receiver("brain", lambda f: got.append(f.payload))
        net.send("sensor", "brain", 8, priority=0x10, payload={"v": 42})
        sim.run()
        assert got == [{"v": 42}]

    def test_unknown_bus_lookup_raises(self):
        sim = Simulator()
        net = VehicleNetwork(sim, two_segment_topology())
        with pytest.raises(NetworkError):
            net.bus("nope")

    def test_frame_counters(self):
        sim = Simulator()
        net = VehicleNetwork(sim, two_segment_topology())
        net.register_receiver("brain", lambda f: None)
        net.send("sensor", "brain", 8, priority=0x10)
        sim.run()
        assert net.total_frames_delivered() == 2  # one per segment
