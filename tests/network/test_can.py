"""Tests for the CAN bus simulator."""

import pytest

from repro.errors import NetworkError
from repro.network import CanBus, Frame, can_frame_bits
from repro.sim import Simulator


def make_bus(bitrate=500_000.0):
    sim = Simulator()
    bus = CanBus(sim, "can0", bitrate)
    return sim, bus


def frame(src="a", dst=None, size=8, can_id=0x100, **kw):
    return Frame(src=src, dst=dst, payload_bytes=size, priority=can_id, **kw)


class TestFrameTiming:
    def test_frame_bits_formula(self):
        # 0 bytes: 47 + 0 + floor(33/4)=8 -> 55
        assert can_frame_bits(0) == 55
        # 8 bytes: 47 + 64 + floor(97/4)=24 -> 135
        assert can_frame_bits(8) == 135

    def test_oversized_payload_rejected(self):
        with pytest.raises(NetworkError):
            can_frame_bits(9)

    def test_single_frame_latency(self):
        sim, bus = make_bus(bitrate=500_000.0)
        done = bus.submit(frame(size=8))
        sim.run()
        assert done.fired
        assert done.value.latency == pytest.approx(135 / 500_000.0)


class TestArbitration:
    def test_lower_id_wins(self):
        sim, bus = make_bus()
        order = []
        # submit at the same instant; bus idle -> first grabs the wire
        first = bus.submit(frame(can_id=0x300, size=8))
        low = bus.submit(frame(can_id=0x010, size=8))
        high = bus.submit(frame(can_id=0x700, size=8))
        for sig, tag in ((first, "first"), (low, "low"), (high, "high")):
            sig.add_callback(lambda _f, tag=tag: order.append(tag))
        sim.run()
        # the started frame finishes, then the low id beats the high id
        assert order == ["first", "low", "high"]

    def test_non_preemptive_blocking(self):
        """An urgent frame waits for a started lower-priority frame."""
        sim, bus = make_bus(bitrate=500_000.0)
        bulk_done = bus.submit(frame(can_id=0x7FF, size=8))
        urgent_latency = []
        sim.schedule(
            0.00001,
            lambda: bus.submit(frame(can_id=0x001, size=1)).add_callback(
                lambda f: urgent_latency.append(f.latency)
            ),
        )
        sim.run()
        assert bulk_done.fired
        # the urgent frame had to wait out most of the bulk frame
        assert urgent_latency[0] > bus.wire_time(can_frame_bits(1) / 8.0)

    def test_worst_case_blocking_bound(self):
        sim, bus = make_bus(bitrate=500_000.0)
        assert bus.worst_case_blocking() == pytest.approx(135 / 500_000.0)

    def test_invalid_identifier_rejected(self):
        sim, bus = make_bus()
        with pytest.raises(NetworkError):
            bus.submit(frame(can_id=0x800))
        with pytest.raises(NetworkError):
            bus.submit(frame(can_id=-1))

    def test_fifo_among_same_id_frames(self):
        sim, bus = make_bus()
        tags = []
        bus.submit(frame(can_id=0x100, size=8))  # occupies the bus
        for tag in ("x", "y"):
            bus.submit(frame(can_id=0x200, size=1, label=tag)).add_callback(
                lambda f: tags.append(f.label)
            )
        sim.run()
        assert tags == ["x", "y"]

    def test_heap_tie_break_by_submit_sequence_under_contention(self):
        """Equal identifiers drain strictly in submission order even when
        interleaved with other priorities — pins the heap's (id, seq) key."""
        sim, bus = make_bus()
        tags = []
        bus.submit(frame(can_id=0x400, size=8, label="first"))  # on the wire
        for tag in ("a", "b"):
            bus.submit(frame(can_id=0x200, size=1, label=tag))
        bus.submit(frame(can_id=0x100, size=1, label="urgent"))
        for tag in ("c", "d"):
            bus.submit(frame(can_id=0x200, size=1, label=tag))
        for node in ("rx",):
            bus.add_listener(node, lambda f: tags.append(f.label))
        sim.run()
        assert tags == ["first", "urgent", "a", "b", "c", "d"]

    def test_arbitration_losses_count_first_loss_only(self):
        """A frame stuck behind heavy traffic for many rounds is one loss,
        not one loss per round it spent waiting (regression: the old
        sort-per-round accounting recounted survivors every round)."""
        sim, bus = make_bus()
        bus.submit(frame(can_id=0x100, size=8))  # starts unopposed
        bus.submit(frame(can_id=0x200, size=8))
        bus.submit(frame(can_id=0x300, size=8))
        bus.submit(frame(can_id=0x400, size=8))
        sim.run()
        # round 1: 0x200 wins, 0x300 + 0x400 lose for the first time;
        # rounds 2-3: no frame loses for the first time again
        assert bus.arbitration_losses == 2

    def test_arbitration_losses_count_late_arrivals(self):
        sim, bus = make_bus()
        bus.submit(frame(can_id=0x100, size=8))
        bus.submit(frame(can_id=0x200, size=8))
        # a third frame submitted mid-transmission loses its first round
        # against 0x200 once the bus goes idle
        sim.schedule(0.00005, lambda: bus.submit(frame(can_id=0x300, size=8)))
        sim.run()
        assert bus.arbitration_losses == 1


class TestDelivery:
    def test_broadcast_reaches_all_but_sender(self):
        sim, bus = make_bus()
        seen = []
        for node in ("a", "b", "c"):
            bus.add_listener(node, lambda f, node=node: seen.append(node))
        bus.submit(frame(src="a", dst=None))
        sim.run()
        assert sorted(seen) == ["b", "c"]

    def test_unicast_reaches_only_destination(self):
        sim, bus = make_bus()
        seen = []
        for node in ("a", "b", "c"):
            bus.add_listener(node, lambda f, node=node: seen.append(node))
        bus.submit(frame(src="a", dst="c"))
        sim.run()
        assert seen == ["c"]

    def test_removed_listener_not_called(self):
        sim, bus = make_bus()
        seen = []
        bus.add_listener("b", lambda f: seen.append("b"))
        bus.remove_listener("b")
        bus.submit(frame(src="a"))
        sim.run()
        assert seen == []

    def test_stats_accumulate(self):
        sim, bus = make_bus()
        bus.submit(frame(size=8))
        bus.submit(frame(size=4))
        sim.run()
        assert bus.frames_delivered == 2
        assert bus.bytes_delivered == 12

    def test_delivery_trace_recorded(self):
        from repro.sim import Tracer

        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        bus = CanBus(sim, "can0", 500e3)
        bus.submit(frame(label="t1"))
        sim.run()
        entries = tracer.select("net.delivery", label="t1")
        assert len(entries) == 1
        assert entries[0]["bus"] == "can0"

    def test_utilization_saturation(self):
        """At 100% offered load the bus stays busy back to back."""
        sim, bus = make_bus(bitrate=500_000.0)
        n = 50
        for i in range(n):
            bus.submit(frame(can_id=0x100 + i, size=8))
        sim.run()
        per_frame = (135 + 3) / 500_000.0
        assert sim.now == pytest.approx(n * per_frame, rel=0.01)
