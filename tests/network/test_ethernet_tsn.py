"""Tests for switched Ethernet and the TSN time-aware shaper."""

import pytest

from repro.errors import ConfigurationError, NetworkError
from repro.network import EthernetBus, Frame, GateControlList, GateEntry, TsnBus, ethernet_wire_bytes
from repro.sim import Simulator


def eth_frame(src="a", dst="b", size=100, pcp=0, **kw):
    return Frame(src=src, dst=dst, payload_bytes=size, priority=pcp, **kw)


class TestWireFormat:
    def test_min_frame_padding(self):
        assert ethernet_wire_bytes(1) == 38 + 46

    def test_normal_frame(self):
        assert ethernet_wire_bytes(1000) == 1038

    def test_mtu_enforced(self):
        with pytest.raises(NetworkError):
            ethernet_wire_bytes(1501)


class TestEthernetBus:
    def test_single_frame_latency(self):
        sim = Simulator()
        bus = EthernetBus(sim, "eth0", 100e6)
        done = bus.submit(eth_frame(size=1000))
        sim.run()
        assert done.value.latency == pytest.approx(1038 * 8 / 100e6)

    def test_strict_priority_dequeue(self):
        sim = Simulator()
        bus = EthernetBus(sim, "eth0", 100e6)
        order = []
        bus.submit(eth_frame(size=1500, pcp=0, label="first"))  # grabs port
        for pcp, tag in ((0, "low"), (7, "high"), (3, "mid")):
            bus.submit(eth_frame(size=100, pcp=pcp, label=tag)).add_callback(
                lambda f: order.append(f.label)
            )
        sim.run()
        assert order == ["high", "mid", "low"]

    def test_ports_do_not_interfere(self):
        """Full-duplex switch: traffic to b does not delay traffic to c."""
        sim = Simulator()
        bus = EthernetBus(sim, "eth0", 100e6)
        for _ in range(10):
            bus.submit(eth_frame(dst="b", size=1500))
        done = bus.submit(eth_frame(dst="c", size=100))
        sim.run()
        assert done.value.latency == pytest.approx(
            ethernet_wire_bytes(100) * 8 / 100e6
        )

    def test_invalid_pcp_rejected(self):
        sim = Simulator()
        bus = EthernetBus(sim, "eth0", 100e6)
        with pytest.raises(NetworkError):
            bus.submit(eth_frame(pcp=8))

    def test_broadcast_fans_out(self):
        sim = Simulator()
        bus = EthernetBus(sim, "eth0", 100e6)
        seen = []
        for node in ("a", "b", "c"):
            bus.add_listener(node, lambda f, node=node: seen.append(node))
        done = bus.submit(eth_frame(src="a", dst=None))
        sim.run()
        assert sorted(seen) == ["b", "c"]
        assert done.fired

    def test_broadcast_with_no_receivers_completes(self):
        sim = Simulator()
        bus = EthernetBus(sim, "eth0", 100e6)
        done = bus.submit(eth_frame(src="a", dst=None))
        sim.run()
        assert done.fired

    def test_port_backlog_visibility(self):
        sim = Simulator()
        bus = EthernetBus(sim, "eth0", 100e6)
        for _ in range(5):
            bus.submit(eth_frame(dst="b", size=1500))
        assert bus.port_backlog("b") == 4  # one in flight
        assert bus.port_backlog("never_used") == 0


class TestGateControlList:
    def test_empty_gcl_rejected(self):
        with pytest.raises(ConfigurationError):
            GateControlList([])

    def test_entry_validation(self):
        with pytest.raises(ConfigurationError):
            GateEntry(frozenset({9}), 0.001)
        with pytest.raises(ConfigurationError):
            GateEntry(frozenset({1}), 0.0)

    def test_tas_split_shape(self):
        gcl = GateControlList.tas_split(0.001, 0.0002, (7,))
        assert gcl.cycle == pytest.approx(0.001)
        assert gcl.entries[0].open_priorities == frozenset({7})
        assert 7 not in gcl.entries[1].open_priorities

    def test_state_at_walks_entries(self):
        gcl = GateControlList.tas_split(0.001, 0.0002, (7,))
        open_set, remaining = gcl.state_at(0.0001)
        assert open_set == frozenset({7})
        assert remaining == pytest.approx(0.0001)
        open_set, _ = gcl.state_at(0.0005)
        assert 7 not in open_set

    def test_state_wraps_cycles(self):
        gcl = GateControlList.tas_split(0.001, 0.0002, (7,))
        open_set, _ = gcl.state_at(0.0031)
        assert open_set == frozenset({7})

    def test_next_open_current_window(self):
        gcl = GateControlList.tas_split(0.001, 0.0002, (7,))
        assert gcl.next_open(0.00005, 7) == pytest.approx(0.00005)

    def test_next_open_waits_for_window(self):
        gcl = GateControlList.tas_split(0.001, 0.0002, (7,))
        assert gcl.next_open(0.0005, 7) == pytest.approx(0.001)
        assert gcl.next_open(0.00005, 0) == pytest.approx(0.0002)

    def test_never_open_priority_raises(self):
        gcl = GateControlList([GateEntry(frozenset({7}), 0.001)])
        with pytest.raises(ConfigurationError):
            gcl.next_open(0.0, 3)


class TestTsnBus:
    def make(self, critical_window=0.0002, cycle=0.001):
        sim = Simulator()
        gcl = GateControlList.tas_split(cycle, critical_window, (7,))
        bus = TsnBus(sim, "tsn0", 100e6, gcl=gcl)
        return sim, bus

    def test_critical_frame_waits_for_its_window(self):
        sim, bus = self.make()
        # submit during the best-effort window
        done = []
        sim.at(0.0005, lambda: bus.submit(eth_frame(pcp=7, size=100)).add_callback(done.append))
        sim.run(until=0.002)
        frame = done[0]
        assert frame.delivered_at >= 0.001  # start of next critical window

    def test_best_effort_guard_band(self):
        """A best-effort frame that does not fit before the critical window
        must defer past it (no straddling)."""
        sim, bus = self.make(critical_window=0.0002, cycle=0.001)
        # best-effort window is 0.0002..0.001; submit a 1500B frame at a time
        # when it cannot finish before 0.001
        done = []
        sim.at(0.00095, lambda: bus.submit(eth_frame(pcp=0, size=1500)).add_callback(done.append))
        sim.run(until=0.003)
        frame = done[0]
        # must start only at 0.0012 (after the next critical window)
        assert frame.delivered_at >= 0.0012
        assert bus.total_gate_deferrals() >= 1

    def test_deterministic_isolated_from_bulk(self):
        """The C3 claim: bulk PCP0 traffic cannot delay PCP7 beyond its
        next gate window."""
        sim, bus = self.make(critical_window=0.0002, cycle=0.001)
        for _ in range(50):
            bus.submit(eth_frame(pcp=0, size=1500))
        latencies = []
        sim.at(
            0.0021,  # just past a critical window start
            lambda: bus.submit(eth_frame(pcp=7, size=100)).add_callback(
                lambda f: latencies.append(f.latency)
            ),
        )
        sim.run(until=0.01)
        # in-window transmission: only the frame's own wire time
        assert latencies[0] <= 0.0002

    def test_oversized_frame_for_gate_rejected(self):
        sim = Simulator()
        gcl = GateControlList.tas_split(0.0002, 0.00001, (7,))
        bus = TsnBus(sim, "tsn0", 10e6, gcl=gcl)  # 10 Mbit/s: 1500B = 1.2ms
        with pytest.raises(NetworkError):
            bus.submit(eth_frame(pcp=7, size=1500))

    def test_plain_ethernet_has_interference_tsn_does_not(self):
        """Head-to-head: same load, gated vs ungated (ablation D-comm)."""

        def run(bus_cls, **kw):
            sim = Simulator()
            bus = bus_cls(sim, "x", 100e6, **kw)
            bus.submit(eth_frame(pcp=0, size=1500))  # blocks the port
            lat = []
            sim.schedule(
                1e-6,
                lambda: bus.submit(eth_frame(pcp=7, size=100)).add_callback(
                    lambda f: lat.append(f.latency)
                ),
            )
            sim.run(until=0.01)
            return lat[0]

        gcl = GateControlList.tas_split(0.001, 0.0005, (7,))
        eth_latency = run(EthernetBus)
        tsn_latency = run(TsnBus, gcl=gcl)
        # ungated: waits for the full 1500B frame (non-preemptive block);
        # gated: bulk frame cannot start unless it fits before the window,
        # so the critical frame goes out inside its protected window.
        wire_100 = ethernet_wire_bytes(100) * 8 / 100e6
        assert eth_latency > wire_100 * 2
        assert tsn_latency < eth_latency
