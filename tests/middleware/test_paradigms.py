"""Integration tests: endpoints + paradigms over a simulated network."""


from repro.hw import BusSpec, EcuSpec, Topology
from repro.middleware import Endpoint, EventConsumer, EventProducer, Message, MessageType, ReturnCode, RpcClient, RpcServer, ServiceRegistry, StreamSink, StreamSource
from repro.network import VehicleNetwork
from repro.sim import Simulator


def eth_world(n_ecus=3):
    """n ECUs on one 100 Mbit/s Ethernet segment."""
    topo = Topology()
    topo.add_bus(BusSpec("eth", "ethernet", 100e6))
    names = [f"e{i}" for i in range(n_ecus)]
    for name in names:
        topo.add_ecu(EcuSpec(name, ports=(("eth0", "ethernet"),)))
        topo.attach(name, "eth0", "eth")
    sim = Simulator()
    net = VehicleNetwork(sim, topo)
    registry = ServiceRegistry()
    endpoints = {name: Endpoint(sim, net, name, registry) for name in names}
    return sim, net, registry, endpoints


def can_world():
    """Two ECUs on a 500 kbit/s CAN segment."""
    topo = Topology()
    topo.add_bus(BusSpec("can", "can", 500e3))
    for name in ("e0", "e1"):
        topo.add_ecu(EcuSpec(name, ports=(("can0", "can"),)))
        topo.attach(name, "can0", "can")
    sim = Simulator()
    net = VehicleNetwork(sim, topo)
    registry = ServiceRegistry()
    endpoints = {n: Endpoint(sim, net, n, registry) for n in ("e0", "e1")}
    return sim, net, registry, endpoints


class TestEndpoint:
    def test_message_delivery_and_dispatch(self):
        sim, net, reg, eps = eth_world()
        got = []
        eps["e1"].on_message(0x10, MessageType.NOTIFICATION, lambda m: got.append(m))
        m = Message(
            service_id=0x10, method_id=1, msg_type=MessageType.NOTIFICATION,
            payload_bytes=64, src="e0", dst="e1", payload="data",
        )
        done = eps["e0"].send(m)
        sim.run()
        assert done.fired
        assert got[0].payload == "data"

    def test_local_delivery_is_instant(self):
        sim, net, reg, eps = eth_world()
        got = []
        eps["e0"].on_message(0x10, MessageType.NOTIFICATION, lambda m: got.append(sim.now))
        m = Message(
            service_id=0x10, method_id=1, msg_type=MessageType.NOTIFICATION,
            payload_bytes=64, src="e0", dst="e0",
        )
        eps["e0"].send(m)
        sim.run()
        assert got == [0.0]

    def test_large_message_segments_on_can(self):
        sim, net, reg, eps = can_world()
        got = []
        eps["e1"].on_message(0x10, MessageType.NOTIFICATION, lambda m: got.append(sim.now))
        m = Message(
            service_id=0x10, method_id=1, msg_type=MessageType.NOTIFICATION,
            payload_bytes=100, src="e0", dst="e1",
        )
        eps["e0"].send(m)
        sim.run()
        assert len(got) == 1
        # (100 + 16 header) / 7 per frame = 17 frames
        assert net.bus("can").frames_delivered == 17

    def test_small_message_single_frame_on_ethernet(self):
        sim, net, reg, eps = eth_world()
        m = Message(
            service_id=0x10, method_id=1, msg_type=MessageType.NOTIFICATION,
            payload_bytes=100, src="e0", dst="e1",
        )
        eps["e0"].send(m)
        sim.run()
        assert net.bus("eth").frames_delivered == 1

    def test_default_handler_catches_unregistered(self):
        sim, net, reg, eps = eth_world()
        got = []
        eps["e1"].on_any_message(lambda m: got.append(m.service_id))
        m = Message(
            service_id=0x77, method_id=1, msg_type=MessageType.NOTIFICATION,
            payload_bytes=8, src="e0", dst="e1",
        )
        eps["e0"].send(m)
        sim.run()
        assert got == [0x77]

    def test_detached_endpoint_receives_nothing(self):
        sim, net, reg, eps = eth_world()
        got = []
        eps["e1"].on_any_message(lambda m: got.append(1))
        eps["e1"].detach()
        m = Message(
            service_id=0x10, method_id=1, msg_type=MessageType.NOTIFICATION,
            payload_bytes=8, src="e0", dst="e1",
        )
        eps["e0"].send(m)
        sim.run()
        assert got == []

    def test_reattach_restores_delivery(self):
        sim, net, reg, eps = eth_world()
        got = []
        eps["e1"].on_any_message(lambda m: got.append(1))
        eps["e1"].detach()
        eps["e1"].reattach()
        m = Message(
            service_id=0x10, method_id=1, msg_type=MessageType.NOTIFICATION,
            payload_bytes=8, src="e0", dst="e1",
        )
        eps["e0"].send(m)
        sim.run()
        assert got == [1]

    def test_discover_round_trip_has_latency(self):
        sim, net, reg, eps = eth_world()
        EventProducer(eps["e1"], 0x20, 1, provider_app="prod")
        found = []
        eps["e0"].discover(0x20).add_callback(lambda o: found.append((sim.now, o)))
        sim.run()
        assert found
        t, offer = found[0]
        assert offer.ecu == "e1"
        assert t > 0.0  # FIND/OFFER round trip took network time

    def test_discover_local_service_instant(self):
        sim, net, reg, eps = eth_world()
        EventProducer(eps["e0"], 0x20, 1, provider_app="prod")
        found = []
        eps["e0"].discover(0x20).add_callback(lambda o: found.append(sim.now))
        sim.run()
        assert found == [0.0]


class TestEventParadigm:
    def test_publish_reaches_subscriber(self):
        sim, net, reg, eps = eth_world()
        producer = EventProducer(eps["e0"], 0x100, 1, provider_app="speedo")
        got = []
        EventConsumer(
            eps["e1"], 0x100, 1, client_app="dash",
            on_data=lambda m: got.append(m.payload),
        )
        sim.run()  # let subscription settle
        producer.publish({"speed": 88}, payload_bytes=8)
        sim.run()
        assert got == [{"speed": 88}]

    def test_multiple_subscribers_all_receive(self):
        sim, net, reg, eps = eth_world(4)
        producer = EventProducer(eps["e0"], 0x100, 1, provider_app="p")
        counters = {name: [] for name in ("e1", "e2", "e3")}
        for name in counters:
            EventConsumer(
                eps[name], 0x100, 1, client_app=f"c_{name}",
                on_data=lambda m, name=name: counters[name].append(m),
            )
        sim.run()
        signals = producer.publish("x", 8)
        assert len(signals) == 3
        sim.run()
        assert all(len(v) == 1 for v in counters.values())

    def test_publish_without_subscribers_is_legal(self):
        sim, net, reg, eps = eth_world()
        producer = EventProducer(eps["e0"], 0x100, 1, provider_app="p")
        assert producer.publish("x", 8) == []

    def test_subscribe_ack_round_trip(self):
        sim, net, reg, eps = eth_world()
        EventProducer(eps["e0"], 0x100, 1, provider_app="p")
        consumer = EventConsumer(
            eps["e1"], 0x100, 1, client_app="c", on_data=lambda m: None
        )
        sim.run()
        assert consumer.subscribed.fired

    def test_unsubscribed_client_stops_receiving(self):
        sim, net, reg, eps = eth_world()
        producer = EventProducer(eps["e0"], 0x100, 1, provider_app="p")
        got = []
        consumer = EventConsumer(
            eps["e1"], 0x100, 1, client_app="c", on_data=lambda m: got.append(m)
        )
        sim.run()
        consumer.unsubscribe()
        producer.publish("x", 8)
        sim.run()
        assert got == []


class TestRpcParadigm:
    def test_request_response(self):
        sim, net, reg, eps = eth_world()
        server = RpcServer(eps["e0"], 0x200, provider_app="door")
        server.register_method(1, lambda req: ("unlocked", 8))
        client = RpcClient(eps["e1"], 0x200, client_app="key")
        got = []
        client.call(1, payload="unlock").add_callback(lambda r: got.append(r))
        sim.run()
        assert got[0].payload == "unlocked"
        assert got[0].return_code is ReturnCode.OK
        assert server.calls_served == 1

    def test_unknown_method_returns_error(self):
        sim, net, reg, eps = eth_world()
        RpcServer(eps["e0"], 0x200, provider_app="p")
        client = RpcClient(eps["e1"], 0x200, client_app="c")
        got = []
        client.call(99).add_callback(lambda r: got.append(r))
        sim.run()
        assert got[0].return_code is ReturnCode.UNKNOWN_METHOD

    def test_server_latency_modelled(self):
        sim, net, reg, eps = eth_world()
        server = RpcServer(eps["e0"], 0x200, provider_app="p")
        server.register_method(1, lambda req: "ok", latency=0.005)
        client = RpcClient(eps["e1"], 0x200, client_app="c")
        got = []
        client.call(1).add_callback(lambda r: got.append(sim.now))
        sim.run()
        assert got[0] > 0.005

    def test_timeout_fires_none(self):
        sim, net, reg, eps = eth_world()
        server = RpcServer(eps["e0"], 0x200, provider_app="p")
        server.register_method(1, lambda req: "late", latency=0.5)
        client = RpcClient(eps["e1"], 0x200, client_app="c")
        got = []
        client.call(1, timeout=0.01).add_callback(lambda r: got.append(r))
        sim.run()
        assert got[0] is None
        assert client.timeouts == 1

    def test_concurrent_calls_correlated_by_session(self):
        sim, net, reg, eps = eth_world()
        server = RpcServer(eps["e0"], 0x200, provider_app="p")
        server.register_method(1, lambda req: (f"r:{req.payload}", 8))
        client = RpcClient(eps["e1"], 0x200, client_app="c")
        got = {}
        for tag in ("a", "b", "c"):
            client.call(1, payload=tag).add_callback(
                lambda r, tag=tag: got.__setitem__(tag, r.payload)
            )
        sim.run()
        assert got == {"a": "r:a", "b": "r:b", "c": "r:c"}


class TestStreamParadigm:
    def test_samples_arrive_in_order(self):
        sim, net, reg, eps = eth_world()
        source = StreamSource(
            eps["e0"], 0x300, 1, provider_app="camera",
            sample_bytes=1000, period=0.001,
        )
        sink = StreamSink(eps["e1"], 0x300, 1, client_app="viewer")
        source.start("e1", n_samples=10)
        sim.run(until=0.1)
        assert len(sink.released) == 10
        assert [m.sequence for m in sink.released] == list(range(10))
        assert sink.samples_pending == 0

    def test_playout_latencies_positive_and_bounded(self):
        sim, net, reg, eps = eth_world()
        source = StreamSource(
            eps["e0"], 0x300, 1, provider_app="cam",
            sample_bytes=1000, period=0.001,
        )
        sink = StreamSink(eps["e1"], 0x300, 1, client_app="v")
        source.start("e1", n_samples=5)
        sim.run(until=0.1)
        lats = sink.playout_latencies()
        assert len(lats) == 5
        assert all(0 < lat < 0.001 for lat in lats)

    def test_stop_halts_stream(self):
        sim, net, reg, eps = eth_world()
        source = StreamSource(
            eps["e0"], 0x300, 1, provider_app="cam",
            sample_bytes=100, period=0.001,
        )
        sink = StreamSink(eps["e1"], 0x300, 1, client_app="v")
        source.start("e1")
        sim.schedule(0.0045, source.stop)
        sim.run(until=0.05)
        assert len(sink.released) == 5  # t=0,1,2,3,4 ms

    def test_out_of_order_sample_held_back(self):
        """Manually inject a gap: sample 1 before sample 0."""
        sim, net, reg, eps = eth_world()
        sink = StreamSink(eps["e1"], 0x300, 1, client_app="v")
        m1 = Message(
            service_id=0x300, method_id=1, msg_type=MessageType.STREAM_SAMPLE,
            payload_bytes=10, src="e0", dst="e1", sequence=1,
        )
        m0 = Message(
            service_id=0x300, method_id=1, msg_type=MessageType.STREAM_SAMPLE,
            payload_bytes=10, src="e0", dst="e1", sequence=0,
        )
        sink._on_sample(m1)
        assert sink.released == []
        assert sink.samples_pending == 1
        sink._on_sample(m0)
        assert [m.sequence for m in sink.released] == [0, 1]
