"""Tests for the batched segmented-transfer fast path.

``Endpoint._transmit`` hands a whole message to
``VehicleNetwork.send_segments``: one route resolution per message, one
countdown latch for completion, one shared forwarder per gateway hop.
These tests pin the observable contract — reassembly, latch firing, and
segment-plan invalidation across failure epochs.
"""

import pytest

from repro.errors import ConfigurationError
from repro.hw import BusSpec, EcuSpec, Topology
from repro.middleware import Endpoint, Message, MessageType, QoS, ServiceRegistry
from repro.network import VehicleNetwork
from repro.sim import Simulator


def bridged_world():
    """CAN island bridged to an Ethernet pair with a redundant backbone."""
    topo = Topology("bridged")
    topo.add_bus(BusSpec("can_a", "can", 500_000.0))
    topo.add_bus(BusSpec("eth_main", "ethernet", 100e6))
    topo.add_bus(BusSpec("eth_alt", "ethernet", 100e6))
    topo.add_ecu(EcuSpec("sensor", ports=(("can0", "can"),)))
    topo.add_ecu(
        EcuSpec(
            "gw",
            ports=(("can0", "can"), ("eth0", "ethernet"), ("eth1", "ethernet")),
        )
    )
    topo.add_ecu(
        EcuSpec("brain", ports=(("eth0", "ethernet"), ("eth1", "ethernet")))
    )
    topo.attach("sensor", "can0", "can_a")
    topo.attach("gw", "can0", "can_a")
    topo.attach("gw", "eth0", "eth_main")
    topo.attach("brain", "eth0", "eth_main")
    topo.attach("gw", "eth1", "eth_alt")
    topo.attach("brain", "eth1", "eth_alt")
    sim = Simulator()
    net = VehicleNetwork(sim, topo)
    registry = ServiceRegistry()
    endpoints = {
        name: Endpoint(sim, net, name, registry)
        for name in ("sensor", "gw", "brain")
    }
    return sim, net, endpoints


def msg(size, src="sensor", dst="brain", **kw):
    defaults = dict(
        service_id=0x42,
        method_id=1,
        msg_type=MessageType.NOTIFICATION,
        payload_bytes=size,
    )
    defaults.update(kw)
    return Message(src=src, dst=dst, **defaults)


class TestSegmentedTransfer:
    def test_multi_segment_message_reassembles_once(self):
        sim, net, endpoints = bridged_world()
        received = []
        endpoints["brain"].on_any_message(received.append)
        # 100 B + 16 B header over a CAN-limited route: 17 ISO-TP segments
        done = endpoints["sensor"].send(msg(100), QoS(priority=0x100))
        sim.run()
        assert len(received) == 1
        assert received[0].payload_bytes == 100
        assert done.fired
        assert done.value is received[0]
        assert endpoints["brain"].messages_received == 1

    def test_latch_fires_after_last_segment(self):
        from repro.sim import Tracer

        tracer = Tracer(enabled=True)
        sim = Simulator(tracer=tracer)
        __, plain_net, __ = bridged_world()
        net = VehicleNetwork(sim, plain_net.topology)
        registry = ServiceRegistry()
        endpoints = {
            name: Endpoint(sim, net, name, registry)
            for name in ("sensor", "brain")
        }
        fired_at = []
        done = endpoints["sensor"].send(msg(100), QoS(priority=0x100))
        done.add_callback(lambda _m: fired_at.append(sim.now))
        sim.run()
        # every segment crossed the CAN leg before the latch could fire
        can_deliveries = tracer.select("net.delivery", bus="can_a")
        assert len(can_deliveries) == 17
        assert len(fired_at) == 1
        assert fired_at[0] > max(entry.time for entry in can_deliveries)

    def test_interleaved_messages_reassemble_independently(self):
        sim, net, endpoints = bridged_world()
        received = []
        endpoints["brain"].on_any_message(lambda m: received.append(m.session_id))
        first = msg(50)
        second = msg(50)
        endpoints["sensor"].send(first, QoS(priority=0x100))
        endpoints["sensor"].send(second, QoS(priority=0x100))
        sim.run()
        assert sorted(received) == sorted([first.session_id, second.session_id])

    def test_segment_plan_tracks_failure_epoch(self):
        sim, net, endpoints = bridged_world()
        sender = endpoints["gw"]
        # gw -> brain rides Ethernet: big segments
        assert sender._segment_plan("gw", "brain") == (1400, False)
        plan_key = ("gw", "brain")
        epoch_before = sender._segment_plans[plan_key][0]
        net.fail_bus("eth_main")
        # cached plan is stale now; the next lookup recomputes on eth_alt
        assert sender._segment_plan("gw", "brain") == (1400, False)
        assert sender._segment_plans[plan_key][0] == epoch_before + 1

    def test_delivery_survives_backbone_failover(self):
        sim, net, endpoints = bridged_world()
        received = []
        endpoints["brain"].on_any_message(received.append)
        endpoints["sensor"].send(msg(40), QoS(priority=0x100))
        sim.run()
        net.fail_bus("eth_main")
        endpoints["sensor"].send(msg(40), QoS(priority=0x100))
        sim.run()
        assert len(received) == 2
        assert net.reroutes > 0
        # the detour actually carried the second message
        assert net.bus("eth_alt").frames_delivered > 0

    def test_unroutable_message_raises_synchronously(self):
        sim, net, endpoints = bridged_world()
        net.fail_bus("eth_main")
        net.fail_bus("eth_alt")
        with pytest.raises(ConfigurationError):
            endpoints["sensor"].send(msg(8), QoS(priority=0x100))


class TestSendSegmentsLatch:
    def test_signal_fires_with_final_frame(self):
        sim, net, endpoints = bridged_world()
        done = net.send_segments(
            "sensor", "brain", [8, 8, 8], priority=0x100, label="batch"
        )
        sim.run()
        assert done.fired
        assert done.value.label == "batch"
        # all three segments crossed both legs
        assert net.bus("can_a").frames_delivered == 3
        assert net.gateway_forwards == 3

    def test_empty_batch_fires_with_none(self):
        sim, net, endpoints = bridged_world()
        done = net.send_segments("sensor", "brain", [], priority=0x100)
        sim.run()
        assert done.fired
        assert done.value is None

    def test_single_route_resolution_per_batch(self):
        from repro.obs.metrics import MetricsRegistry

        __, plain_net, __ = bridged_world()
        sim = Simulator(metrics=MetricsRegistry(enabled=True))
        net = VehicleNetwork(sim, plain_net.topology)
        net.send_segments("sensor", "brain", [8] * 10, priority=0x100)
        sim.run()
        assert sim.metrics.counter("net.route_cache.miss").value == 1
        assert sim.metrics.counter("net.route_cache.hit").value == 0
