"""Tests for DDS-style durability and deadline QoS extensions."""

import pytest

from repro.errors import ConfigurationError
from repro.hw import BusSpec, EcuSpec, Topology
from repro.middleware import (
    DeadlineMonitor,
    DurableEventProducer,
    Endpoint,
    EventConsumer,
    ServiceRegistry,
)
from repro.network import VehicleNetwork
from repro.sim import Simulator


def world(n=3):
    topo = Topology()
    topo.add_bus(BusSpec("eth", "ethernet", 100e6))
    names = [f"e{i}" for i in range(n)]
    for name in names:
        topo.add_ecu(EcuSpec(name, ports=(("eth0", "ethernet"),)))
        topo.attach(name, "eth0", "eth")
    sim = Simulator()
    net = VehicleNetwork(sim, topo)
    registry = ServiceRegistry()
    eps = {name: Endpoint(sim, net, name, registry) for name in names}
    return sim, eps


class TestDurableProducer:
    def test_late_joiner_receives_retained_sample(self):
        sim, eps = world()
        producer = DurableEventProducer(
            eps["e0"], 0x100, 1, provider_app="p", history_depth=1
        )
        producer.publish({"gear": "D"}, 8)  # nobody listening yet
        sim.run()
        got = []
        EventConsumer(
            eps["e1"], 0x100, 1, client_app="late",
            on_data=lambda m: got.append(m.payload),
        )
        sim.run()
        assert got == [{"gear": "D"}]
        assert producer.replays == 1

    def test_history_depth_bounds_replay(self):
        sim, eps = world()
        producer = DurableEventProducer(
            eps["e0"], 0x100, 1, provider_app="p", history_depth=2
        )
        for value in (1, 2, 3, 4):
            producer.publish(value, 8)
        sim.run()
        got = []
        EventConsumer(
            eps["e1"], 0x100, 1, client_app="late",
            on_data=lambda m: got.append(m.payload),
        )
        sim.run()
        assert got == [3, 4]  # only the last two, oldest first

    def test_existing_subscribers_not_replayed(self):
        sim, eps = world()
        producer = DurableEventProducer(
            eps["e0"], 0x100, 1, provider_app="p"
        )
        early = []
        EventConsumer(
            eps["e1"], 0x100, 1, client_app="early",
            on_data=lambda m: early.append(m.payload),
        )
        sim.run()
        producer.publish("x", 8)
        sim.run()
        late = []
        EventConsumer(
            eps["e2"], 0x100, 1, client_app="late",
            on_data=lambda m: late.append(m.payload),
        )
        sim.run()
        assert early == ["x"]  # live delivery only, no duplicate replay
        assert late == ["x"]   # replayed retained sample

    def test_live_publication_still_fans_out(self):
        sim, eps = world()
        producer = DurableEventProducer(eps["e0"], 0x100, 1, provider_app="p")
        got = []
        EventConsumer(
            eps["e1"], 0x100, 1, client_app="c",
            on_data=lambda m: got.append(m.payload),
        )
        sim.run()
        producer.publish("live", 8)
        sim.run()
        assert got == ["live"]

    def test_invalid_history_depth(self):
        sim, eps = world()
        with pytest.raises(ConfigurationError):
            DurableEventProducer(
                eps["e0"], 0x100, 1, provider_app="p", history_depth=0
            )


class TestDeadlineMonitor:
    def publish_at(self, sim, producer, times):
        for t in times:
            sim.at(t, lambda: producer.publish("v", 8))

    def test_regular_cadence_no_violations(self):
        sim, eps = world()
        producer = DurableEventProducer(eps["e0"], 0x100, 1, provider_app="p")
        monitor = DeadlineMonitor(eps["e1"], 0x100, deadline=0.02)
        EventConsumer(eps["e1"], 0x100, 1, client_app="c", on_data=lambda m: None)
        sim.run()
        self.publish_at(sim, producer, [0.1 + k * 0.01 for k in range(10)])
        sim.run(until=0.5)
        # no violation while the cadence held; the watchdog legitimately
        # flags the silence after the final sample (producer stopped)
        during_active = [v for v in monitor.violations if v.time < 0.195]
        assert during_active == []
        assert len(monitor.violations) <= 1

    def test_gap_between_samples_detected(self):
        sim, eps = world()
        producer = DurableEventProducer(eps["e0"], 0x100, 1, provider_app="p")
        monitor = DeadlineMonitor(eps["e1"], 0x100, deadline=0.02)
        EventConsumer(eps["e1"], 0x100, 1, client_app="c", on_data=lambda m: None)
        sim.run()
        self.publish_at(sim, producer, [0.1, 0.11, 0.2])  # 90 ms gap
        sim.run(until=0.5)
        gap_violations = [v for v in monitor.violations if v.gap > 0.05]
        assert gap_violations

    def test_silent_topic_detected_by_watchdog(self):
        sim, eps = world()
        producer = DurableEventProducer(eps["e0"], 0x100, 1, provider_app="p")
        monitor = DeadlineMonitor(eps["e1"], 0x100, deadline=0.02)
        EventConsumer(eps["e1"], 0x100, 1, client_app="c", on_data=lambda m: None)
        sim.run()
        self.publish_at(sim, producer, [0.1])  # one sample, then silence
        sim.run(until=0.5)
        assert len(monitor.violations) >= 1

    def test_violation_callback_invoked(self):
        sim, eps = world()
        producer = DurableEventProducer(eps["e0"], 0x100, 1, provider_app="p")
        seen = []
        DeadlineMonitor(
            eps["e1"], 0x100, deadline=0.02, on_violation=seen.append
        )
        EventConsumer(eps["e1"], 0x100, 1, client_app="c", on_data=lambda m: None)
        sim.run()
        self.publish_at(sim, producer, [0.1])
        sim.run(until=0.5)
        assert seen and seen[0].deadline == 0.02

    def test_invalid_deadline(self):
        sim, eps = world()
        with pytest.raises(ConfigurationError):
            DeadlineMonitor(eps["e0"], 0x100, deadline=0.0)


class TestBusFailover:
    def ring_world(self):
        """Two ECUs joined by two redundant Ethernet segments (ring)."""
        topo = Topology()
        topo.add_bus(BusSpec("eth_a", "ethernet", 100e6))
        topo.add_bus(BusSpec("eth_b", "ethernet", 100e6))
        for name in ("left", "right"):
            topo.add_ecu(EcuSpec(
                name, ports=(("eth0", "ethernet"), ("eth1", "ethernet")),
            ))
            topo.attach(name, "eth0", "eth_a")
            topo.attach(name, "eth1", "eth_b")
        sim = Simulator()
        net = VehicleNetwork(sim, topo)
        return sim, net

    def test_traffic_survives_segment_failure(self):
        sim, net = self.ring_world()
        got = []
        net.register_receiver("right", lambda f: got.append(sim.now))
        net.send("left", "right", 100, priority=0x100)
        sim.run()
        assert len(got) == 1
        net.fail_bus("eth_a")
        net.send("left", "right", 100, priority=0x100)
        sim.run()
        assert len(got) == 2
        assert net.reroutes >= 1
        assert net.bus("eth_b").frames_delivered >= 1

    def test_no_redundancy_means_no_path(self):
        from repro.errors import ConfigurationError

        sim, net = self.ring_world()
        net.fail_bus("eth_a")
        net.fail_bus("eth_b")
        with pytest.raises(ConfigurationError):
            net.send("left", "right", 100)

    def test_repair_restores_route(self):
        sim, net = self.ring_world()
        net.fail_bus("eth_a")
        net.fail_bus("eth_b")
        net.repair_bus("eth_a")
        got = []
        net.register_receiver("right", lambda f: got.append(1))
        net.send("left", "right", 100, priority=0x100)
        sim.run()
        assert got == [1]
        assert net.failed_buses == ["eth_b"]
