"""Tests for the wire format and the service registry."""

import pytest

from repro.errors import ConfigurationError, NetworkError, SecurityError
from repro.middleware import (
    HEADER_BYTES,
    Message,
    MessageType,
    ServiceOffer,
    ServiceRegistry,
    segment_payload_for,
    segments_needed,
)


def msg(**kw):
    defaults = dict(
        service_id=0x1234,
        method_id=1,
        msg_type=MessageType.NOTIFICATION,
        payload_bytes=100,
        src="a",
        dst="b",
    )
    defaults.update(kw)
    return Message(**defaults)


class TestWire:
    def test_total_bytes_includes_header(self):
        assert msg(payload_bytes=100).total_bytes == 100 + HEADER_BYTES

    def test_negative_payload_rejected(self):
        with pytest.raises(NetworkError):
            msg(payload_bytes=-1)

    def test_session_ids_unique(self):
        assert msg().session_id != msg().session_id

    def test_segment_payloads(self):
        assert segment_payload_for("can") == 7
        assert segment_payload_for("ethernet") == 1400
        assert segment_payload_for("flexray") == 254
        with pytest.raises(NetworkError):
            segment_payload_for("lin")

    def test_segments_needed(self):
        assert segments_needed(7, 7) == 1
        assert segments_needed(8, 7) == 2
        assert segments_needed(0, 7) == 1
        assert segments_needed(1400 * 3, 1400) == 3

    def test_invalid_segment_size(self):
        with pytest.raises(NetworkError):
            segments_needed(10, 0)


class TestRegistry:
    def offer(self, sid=0x10, iid=1, ecu="e1", app="p"):
        return ServiceOffer(service_id=sid, instance_id=iid, ecu=ecu, provider_app=app)

    def test_offer_and_find(self):
        reg = ServiceRegistry()
        reg.offer(self.offer())
        found = reg.find(0x10)
        assert found.ecu == "e1"

    def test_find_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            ServiceRegistry().find(0x99)

    def test_withdraw(self):
        reg = ServiceRegistry()
        reg.offer(self.offer())
        reg.withdraw(0x10, 1)
        with pytest.raises(ConfigurationError):
            reg.find(0x10)

    def test_withdraw_all_of_ecu(self):
        reg = ServiceRegistry()
        reg.offer(self.offer(sid=0x10, ecu="dead"))
        reg.offer(self.offer(sid=0x11, ecu="dead"))
        reg.offer(self.offer(sid=0x12, ecu="alive"))
        assert reg.withdraw_all_of_ecu("dead") == 2
        assert len(reg.offers) == 1

    def test_lowest_instance_preferred(self):
        reg = ServiceRegistry()
        reg.offer(self.offer(iid=2, ecu="backup"))
        reg.offer(self.offer(iid=1, ecu="primary"))
        assert reg.find(0x10).ecu == "primary"

    def test_instances_of_sorted(self):
        reg = ServiceRegistry()
        reg.offer(self.offer(iid=3, ecu="c"))
        reg.offer(self.offer(iid=1, ecu="a"))
        assert [o.ecu for o in reg.instances_of(0x10)] == ["a", "c"]

    def test_binding_guard_denies(self):
        reg = ServiceRegistry()
        reg.offer(self.offer())
        reg.set_binding_guard(lambda app, ecu, sid: app == "trusted")
        assert reg.find(0x10, client_app="trusted").ecu == "e1"
        with pytest.raises(SecurityError):
            reg.find(0x10, client_app="malware")
        assert reg.denied_bindings == 1

    def test_guard_cleared(self):
        reg = ServiceRegistry()
        reg.offer(self.offer())
        reg.set_binding_guard(lambda *a: False)
        reg.set_binding_guard(None)
        reg.find(0x10, client_app="anyone")

    def test_subscribe_and_query(self):
        reg = ServiceRegistry()
        reg.subscribe(0x10, 1, "appA", "e2")
        subs = reg.subscribers(0x10, 1)
        assert len(subs) == 1 and subs[0].client_app == "appA"

    def test_subscribe_idempotent(self):
        reg = ServiceRegistry()
        reg.subscribe(0x10, 1, "appA", "e2")
        reg.subscribe(0x10, 1, "appA", "e2")
        assert len(reg.subscribers(0x10, 1)) == 1

    def test_unsubscribe_deactivates(self):
        reg = ServiceRegistry()
        reg.subscribe(0x10, 1, "appA", "e2")
        reg.unsubscribe(0x10, 1, "appA")
        assert reg.subscribers(0x10, 1) == []

    def test_resubscribe_after_unsubscribe(self):
        reg = ServiceRegistry()
        reg.subscribe(0x10, 1, "appA", "e2")
        reg.unsubscribe(0x10, 1, "appA")
        reg.subscribe(0x10, 1, "appA", "e2")
        assert len(reg.subscribers(0x10, 1)) == 1

    def test_subscription_guard_enforced(self):
        reg = ServiceRegistry()
        reg.set_binding_guard(lambda app, ecu, sid: False)
        with pytest.raises(SecurityError):
            reg.subscribe(0x10, 1, "appA", "e2")

    def test_subscriptions_of_client(self):
        reg = ServiceRegistry()
        reg.subscribe(0x10, 1, "appA", "e2")
        reg.subscribe(0x11, 1, "appA", "e2")
        reg.subscribe(0x10, 1, "appB", "e3")
        assert len(reg.subscriptions_of("appA")) == 2
