"""RPC hardening: retries, backoff, deadline budgets, circuit breakers."""

import pytest

from repro.errors import ConfigurationError
from repro.hw import BusSpec, EcuSpec, Topology
from repro.middleware import (
    CircuitBreaker,
    Endpoint,
    RetryPolicy,
    RpcClient,
    RpcServer,
    ServiceOffer,
    ServiceRegistry,
)
from repro.network import VehicleNetwork
from repro.sim import Simulator


def rpc_world():
    topo = Topology()
    topo.add_bus(BusSpec("eth", "ethernet", 100e6))
    for name in ("e0", "e1"):
        topo.add_ecu(EcuSpec(name, ports=(("eth0", "ethernet"),)))
        topo.attach(name, "eth0", "eth")
    sim = Simulator()
    net = VehicleNetwork(sim, topo)
    registry = ServiceRegistry()
    endpoints = {n: Endpoint(sim, net, n, registry) for n in ("e0", "e1")}
    server = RpcServer(endpoints["e1"], 0x30, provider_app="srv")
    server.register_method(1, lambda request: ("pong", 8))
    client = RpcClient(endpoints["e0"], 0x30, client_app="cli")
    return sim, net, registry, client


def drop_next(net, n):
    """Install a hook that drops the next ``n`` frames on the bus."""
    budget = [n]

    def hook(bus, frame):
        if budget[0] > 0:
            budget[0] -= 1
            return ("drop",)
        return None

    net.bus("eth")._fault_hook = hook


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(deadline=0.0)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff=0.01, backoff_factor=2.0)
        assert policy.backoff_for(1) == pytest.approx(0.01)
        assert policy.backoff_for(2) == pytest.approx(0.02)
        assert policy.backoff_for(3) == pytest.approx(0.04)

    def test_retry_requires_timeout(self):
        sim, net, registry, client = rpc_world()
        with pytest.raises(ConfigurationError, match="timeout"):
            client.call(1, retry=RetryPolicy())


class TestRetries:
    def test_retry_recovers_from_lost_attempts(self):
        sim, net, registry, client = rpc_world()
        drop_next(net, 2)
        result = client.call(
            1, timeout=0.01, retry=RetryPolicy(max_attempts=3, backoff=0.001)
        )
        sim.run()
        assert result.fired
        assert result.value is not None
        assert result.value.payload == "pong"
        assert client.calls_made == 1
        assert client.attempts_made == 3
        assert client.timeouts == 2
        assert client.retries == 2
        assert client.failures == 0

    def test_exhausted_retries_fire_none(self):
        sim, net, registry, client = rpc_world()
        drop_next(net, 100)
        result = client.call(
            1, timeout=0.01, retry=RetryPolicy(max_attempts=3, backoff=0.001)
        )
        sim.run()
        assert result.fired
        assert result.value is None
        assert client.attempts_made == 3
        assert client.failures == 1

    def test_deadline_budget_caps_total_time(self):
        sim, net, registry, client = rpc_world()
        drop_next(net, 100)
        # per-attempt timeout 10 ms, 5 attempts allowed, but only 18 ms
        # total budget: the budget must cut the ladder short
        result = client.call(
            1,
            timeout=0.01,
            retry=RetryPolicy(max_attempts=5, backoff=0.001, deadline=0.018),
        )
        sim.run()
        assert result.fired
        assert result.value is None
        assert client.attempts_made < 5
        assert sim.now <= 0.018 + 1e-9

    def test_deadline_clips_last_attempt_timeout(self):
        sim, net, registry, client = rpc_world()
        drop_next(net, 100)
        result = client.call(
            1,
            timeout=0.1,
            retry=RetryPolicy(max_attempts=2, backoff=0.001, deadline=0.05),
        )
        sim.run()
        assert result.value is None
        # the second attempt's 100 ms timeout was clipped to the remaining
        # budget, so the whole call resolved within the 50 ms deadline
        assert sim.now <= 0.05 + 1e-9

    def test_unoffered_service_with_retry_fails_soft(self):
        sim, net, registry, client = rpc_world()
        registry._offers.clear()
        result = client.call(
            1, timeout=0.01, retry=RetryPolicy(max_attempts=2, backoff=0.001)
        )
        sim.run()
        assert result.fired
        assert result.value is None
        assert client.failures == 1

    def test_unoffered_service_without_retry_still_raises(self):
        sim, net, registry, client = rpc_world()
        registry._offers.clear()
        with pytest.raises(ConfigurationError):
            client.call(1, timeout=0.01)

    def test_plain_call_without_policy_unchanged(self):
        sim, net, registry, client = rpc_world()
        result = client.call(1)
        sim.run()
        assert result.value.payload == "pong"
        assert client.attempts_made == 1


class TestExpireCancellation:
    def test_response_cancels_pending_timeout(self):
        """A served call must not leave its timeout timer in the heap.

        With the timer cancelled, the simulation ends as soon as the
        response lands — long before the 1 s timeout would have fired.
        """
        sim, net, registry, client = rpc_world()
        result = client.call(1, timeout=1.0)
        sim.run()
        assert result.value is not None
        assert client.timeouts == 0
        assert sim.now < 0.1
        assert len(sim.queue) == 0

    def test_soak_leaves_no_dead_timers(self):
        sim, net, registry, client = rpc_world()

        def caller():
            for _ in range(50):
                yield client.call(1, timeout=1.0)
                yield 0.001

        sim.process(caller())
        sim.run()
        assert client.calls_made == 50
        assert client.timeouts == 0
        assert len(sim.queue) == 0
        assert sim.now < 0.5


class TestCircuitBreakerUnit:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=0.5)
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(0.1)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.times_opened == 1

    def test_open_fast_fails_until_reset(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.5)
        breaker.record_failure(0.0)
        assert not breaker.allow(0.1)
        assert breaker.fast_failures == 1
        # reset timer elapsed: exactly one probe goes through
        assert breaker.allow(0.6)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow(0.6)  # second caller held back

    def test_half_open_probe_outcome(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.5)
        breaker.record_failure(0.0)
        breaker.allow(0.6)
        breaker.record_success(0.6)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(1.0)
        breaker.allow(1.6)
        breaker.record_failure(1.6)  # failed probe re-opens immediately
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.times_opened == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(reset_timeout=0.0)


class TestBreakerIntegration:
    def _dead_service_world(self):
        """An offered service nobody actually serves: every call times out."""
        topo = Topology()
        topo.add_bus(BusSpec("eth", "ethernet", 100e6))
        for name in ("e0", "e1"):
            topo.add_ecu(EcuSpec(name, ports=(("eth0", "ethernet"),)))
            topo.attach(name, "eth0", "eth")
        sim = Simulator()
        net = VehicleNetwork(sim, topo)
        registry = ServiceRegistry()
        registry.configure_breakers(failure_threshold=2, reset_timeout=0.1)
        endpoints = {n: Endpoint(sim, net, n, registry) for n in ("e0", "e1")}
        registry.offer(
            ServiceOffer(service_id=0x31, instance_id=1, ecu="e1", provider_app="ghost")
        )
        client = RpcClient(endpoints["e0"], 0x31, client_app="cli")
        return sim, net, registry, client

    def test_breaker_opens_and_fast_fails(self):
        sim, net, registry, client = self._dead_service_world()
        for _ in range(2):
            client.call(1, timeout=0.01)
        sim.run()
        assert client.timeouts == 2
        assert registry.breakers_opened() == 1
        frames_before = net.bus("eth").frames_delivered
        result = client.call(1, timeout=0.01)
        sim.run()
        # the open breaker fast-failed the call without touching the bus
        assert result.value is None
        assert client.breaker_fastfails == 1
        assert net.bus("eth").frames_delivered == frames_before
        assert registry.breaker_fast_failures() == 1

    def test_half_open_probe_goes_out_after_reset(self):
        sim, net, registry, client = self._dead_service_world()
        for _ in range(2):
            client.call(1, timeout=0.01)
        sim.run()
        breaker = registry.breaker_for(0x31, "e1")
        assert breaker.state == CircuitBreaker.OPEN
        frames_before = net.bus("eth").frames_delivered
        sim.schedule(0.2, lambda: client.call(1, timeout=0.01))
        sim.run()
        # after the reset timeout the probe attempt reached the network
        assert net.bus("eth").frames_delivered > frames_before
        assert breaker.state == CircuitBreaker.OPEN  # probe timed out too

    def test_unconfigured_registry_has_no_breakers(self):
        sim, net, registry, client = rpc_world()
        assert registry.breaker_for(0x30, "e1") is None
        assert registry.breakers_opened() == 0
