"""Tests for schedulability analysis, including agreement with simulation."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulingError
from repro.osal import (
    Core,
    FixedPriorityPolicy,
    PeriodicSource,
    TaskSpec,
    analyse_task_set,
    first_fit_partition,
    hyperperiod,
    is_schedulable_edf,
    is_schedulable_fp,
    is_schedulable_tt,
    liu_layland_bound,
    response_time_analysis,
    rm_priority_order,
    scaled_utilization,
)
from repro.sim import Simulator


def task(name, period, wcet, **kw):
    return TaskSpec(name=name, period=period, wcet=wcet, **kw)


class TestBounds:
    def test_liu_layland_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(0.8284, abs=1e-3)
        assert liu_layland_bound(1000) == pytest.approx(math.log(2), abs=1e-3)

    def test_invalid_n(self):
        with pytest.raises(SchedulingError):
            liu_layland_bound(0)

    def test_scaled_utilization(self):
        tasks = [task("a", 0.01, 0.005)]
        assert scaled_utilization(tasks, 2.0) == pytest.approx(0.25)
        with pytest.raises(SchedulingError):
            scaled_utilization(tasks, 0.0)


class TestRta:
    def test_classic_example(self):
        # Well-known 3-task RTA example (periods 100/175/350ms scaled to s)
        tasks = [
            task("t1", 0.100, 0.035),
            task("t2", 0.175, 0.040),
            task("t3", 0.350, 0.100),
        ]
        r = response_time_analysis(tasks)
        assert r["t1"] == pytest.approx(0.035)
        assert r["t2"] == pytest.approx(0.075)
        # t3: 100 + interference; fixpoint = 100+2*35+2*40 = 250? iterate:
        # R0=100 -> I = ceil(100/100)*35 + ceil(100/175)*40 = 75 -> 175
        # R=175 -> I = 2*35 + 1*40 = 110 -> 210
        # R=210 -> I = 3*35+2*40 = 185 -> 285
        # R=285 -> I = 3*35+2*40 = 185 -> 285 fixpoint
        assert r["t3"] == pytest.approx(0.285)

    def test_unschedulable_marked_inf(self):
        tasks = [task("a", 0.01, 0.006), task("b", 0.015, 0.009)]
        r = response_time_analysis(tasks)
        assert math.isinf(r["b"])

    def test_priority_order_helper(self):
        tasks = [task("slow", 0.1, 0.001), task("fast", 0.01, 0.001)]
        assert [t.name for t in rm_priority_order(tasks)] == ["fast", "slow"]

    def test_rta_matches_simulation(self):
        """Analysis worst case must bound (and for synchronous release,
        match) the simulated worst response time."""
        tasks = [
            task("t1", 0.010, 0.002),
            task("t2", 0.020, 0.006),
            task("t3", 0.040, 0.008),
        ]
        predicted = response_time_analysis(tasks)
        sim = Simulator()
        core = Core(sim, "c", 1.0, FixedPriorityPolicy())
        sources = {
            t.name: PeriodicSource(sim, core, t, horizon=hyperperiod(tasks) * 2)
            for t in tasks
        }
        sim.run(until=hyperperiod(tasks) * 2 + 0.05)
        for name, source in sources.items():
            observed = source.max_response_time()
            assert observed <= predicted[name] + 1e-9
            # synchronous release: the critical instant occurs at t=0
            assert observed == pytest.approx(predicted[name], rel=1e-6)


class TestSchedulabilityTests:
    def test_fp_rejects_overload(self):
        tasks = [task("a", 0.01, 0.008), task("b", 0.01, 0.008)]
        assert not is_schedulable_fp(tasks)

    def test_fp_accepts_light_load(self):
        tasks = [task("a", 0.01, 0.002), task("b", 0.02, 0.002)]
        assert is_schedulable_fp(tasks)

    def test_edf_exact_at_full_utilization(self):
        # non-harmonic periods at U=1.0: EDF fine, RM fails
        tasks = [task("a", 0.01, 0.005), task("b", 0.014, 0.007)]
        assert is_schedulable_edf(tasks)
        assert not is_schedulable_fp(tasks)  # RM misses at U=1

    def test_edf_density_with_constrained_deadlines(self):
        tasks = [task("a", 0.01, 0.004, deadline=0.005)]
        assert is_schedulable_edf(tasks)
        tasks2 = [
            task("a", 0.01, 0.004, deadline=0.005),
            task("b", 0.01, 0.004, deadline=0.005),
        ]
        assert not is_schedulable_edf(tasks2)

    def test_tt_feasibility(self):
        tasks = [task("a", 0.01, 0.003), task("b", 0.02, 0.004)]
        assert is_schedulable_tt(tasks)
        assert not is_schedulable_tt([task("x", 0.01, 0.009), task("y", 0.01, 0.009)])

    def test_empty_sets_schedulable(self):
        assert is_schedulable_fp([])
        assert is_schedulable_edf([])

    def test_analyse_task_set_report(self):
        report = analyse_task_set([task("a", 0.01, 0.002)])
        assert report.schedulable
        assert report.utilization == pytest.approx(0.2)
        assert report.response_times["a"] == pytest.approx(0.002)

    def test_faster_core_rescues_unschedulable_set(self):
        tasks = [task("a", 0.01, 0.008), task("b", 0.01, 0.008)]
        assert not is_schedulable_fp(tasks, speed_factor=1.0)
        assert is_schedulable_fp(tasks, speed_factor=2.0)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from([0.005, 0.01, 0.02, 0.05, 0.1]),
                st.floats(min_value=0.05, max_value=0.5),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_liu_layland_implies_rta(self, raw):
        """Any set under the Liu-Layland bound must pass exact RTA."""
        tasks = [
            task(f"t{i}", period, round(period * u_frac, 9))
            for i, (period, u_frac) in enumerate(raw)
        ]
        tasks = [t for t in tasks if t.wcet > 0]
        if not tasks:
            return
        if sum(t.utilization for t in tasks) <= liu_layland_bound(len(tasks)):
            assert is_schedulable_fp(tasks)

    @given(st.floats(min_value=0.1, max_value=4.0))
    @settings(max_examples=30, deadline=None)
    def test_property_speed_scaling_monotone(self, speed):
        """If a set is schedulable at speed s, it stays schedulable at
        any s' >= s."""
        tasks = [task("a", 0.01, 0.004), task("b", 0.02, 0.007)]
        if is_schedulable_fp(tasks, speed):
            assert is_schedulable_fp(tasks, speed * 1.5)


class TestPartitioning:
    def test_fits_on_enough_cores(self):
        tasks = [task(f"t{i}", 0.01, 0.004) for i in range(4)]  # U=1.6 total
        bins = first_fit_partition(tasks, [1.0, 1.0])
        assert bins is not None
        assert sum(len(b) for b in bins) == 4
        for i, b in enumerate(bins):
            assert is_schedulable_fp(b, 1.0)

    def test_returns_none_when_impossible(self):
        tasks = [task(f"t{i}", 0.01, 0.008) for i in range(4)]
        assert first_fit_partition(tasks, [1.0, 1.0]) is None

    def test_heterogeneous_cores(self):
        tasks = [task(f"t{i}", 0.01, 0.006) for i in range(4)]
        assert first_fit_partition(tasks, [1.0]) is None
        assert first_fit_partition(tasks, [4.0]) is not None
