"""Tests for the process/memory-protection model."""

import pytest

from repro.errors import ConfigurationError
from repro.hw import EcuSpec, EcuState
from repro.osal import MemoryManager


def manager(mmu=True, memory=1024):
    state = EcuState(EcuSpec("e", memory_kib=memory, has_mmu=mmu))
    return MemoryManager(state)


class TestProcessLifecycle:
    def test_spawn_allocates_memory(self):
        mm = manager()
        mm.spawn("p1", 100)
        assert mm.ecu_state.memory_used_kib == 100
        assert mm.memory_in_use_kib() == 100

    def test_duplicate_spawn_rejected(self):
        mm = manager()
        mm.spawn("p1", 10)
        with pytest.raises(ConfigurationError):
            mm.spawn("p1", 10)

    def test_kill_releases_memory(self):
        mm = manager()
        mm.spawn("p1", 100)
        mm.kill("p1")
        assert mm.ecu_state.memory_used_kib == 0

    def test_kill_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            manager().kill("ghost")

    def test_oversubscription_rejected(self):
        mm = manager(memory=100)
        mm.spawn("p1", 80)
        with pytest.raises(ConfigurationError):
            mm.spawn("p2", 30)

    def test_residents_tracked(self):
        mm = manager()
        proc = mm.spawn("p1", 10, resident="appA")
        proc.add_resident("appB")
        assert proc.residents == {"appA", "appB"}
        proc.remove_resident("appA")
        assert proc.residents == {"appB"}


class TestIsolation:
    def test_mmu_gives_private_spaces(self):
        mm = manager(mmu=True)
        mm.spawn("p1", 10)
        mm.spawn("p2", 10)
        assert len(mm.isolation_groups()) == 2

    def test_no_mmu_shares_one_space(self):
        mm = manager(mmu=False)
        mm.spawn("p1", 10)
        mm.spawn("p2", 10)
        assert len(mm.isolation_groups()) == 1

    def test_wild_write_contained_by_mmu(self):
        """The paper's MMU requirement: with memory protection the blast
        radius of a stray write is the faulty process alone."""
        mm = manager(mmu=True)
        mm.spawn("victim", 10)
        mm.spawn("faulty", 10)
        corrupted = mm.wild_write("faulty")
        assert corrupted == ["faulty"]
        assert not mm.process("victim").corrupted

    def test_wild_write_spreads_without_mmu(self):
        mm = manager(mmu=False)
        mm.spawn("victim", 10)
        mm.spawn("faulty", 10)
        corrupted = mm.wild_write("faulty")
        assert sorted(corrupted) == ["faulty", "victim"]
        assert mm.process("victim").corrupted

    def test_wild_write_unknown_process(self):
        with pytest.raises(ConfigurationError):
            manager().wild_write("ghost")

    def test_wild_write_counter(self):
        mm = manager(mmu=True)
        mm.spawn("p", 10)
        mm.wild_write("p")
        mm.wild_write("p")
        assert mm.wild_writes == 2
