"""Tests for time-table synthesis and the time-triggered executive."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulingError
from repro.osal import Criticality, Job, TableSlot, TaskSpec, TimeTable, TimeTriggeredExecutive, synthesize_table
from repro.sim import Simulator


def task(name, period, wcet, **kw):
    return TaskSpec(name=name, period=period, wcet=wcet, **kw)


def nda(name, period, wcet):
    return TaskSpec(
        name=name, period=period, wcet=wcet,
        criticality=Criticality.NON_DETERMINISTIC,
    )


class TestTimeTable:
    def test_overlap_rejected(self):
        with pytest.raises(SchedulingError):
            TimeTable(
                [TableSlot(0.0, 0.002, "a"), TableSlot(0.001, 0.002, "b")],
                cycle=0.01,
            )

    def test_slot_past_cycle_rejected(self):
        with pytest.raises(SchedulingError):
            TimeTable([TableSlot(0.009, 0.002, "a")], cycle=0.01)

    def test_invalid_slot(self):
        with pytest.raises(SchedulingError):
            TableSlot(-0.001, 0.002, "a")
        with pytest.raises(SchedulingError):
            TableSlot(0.0, 0.0, "a")

    def test_utilization_and_idle_windows(self):
        table = TimeTable(
            [TableSlot(0.0, 0.002, "a"), TableSlot(0.005, 0.001, "b")],
            cycle=0.01,
        )
        assert table.utilization == pytest.approx(0.3)
        assert table.idle_windows() == [
            (pytest.approx(0.002), pytest.approx(0.005)),
            (pytest.approx(0.006), pytest.approx(0.01)),
        ]

    def test_slots_for(self):
        table = TimeTable([TableSlot(0.0, 0.001, "a")], cycle=0.01)
        assert len(table.slots_for("a")) == 1
        assert table.slots_for("missing") == []


class TestSynthesis:
    def test_feasible_set_produces_valid_table(self):
        tasks = [task("a", 0.005, 0.001), task("b", 0.010, 0.002)]
        table = synthesize_table(tasks)
        assert table.cycle == pytest.approx(0.01)
        assert len(table.slots_for("a")) == 2  # two releases per hyperperiod
        assert len(table.slots_for("b")) == 1

    def test_slots_respect_release_and_deadline(self):
        tasks = [task("a", 0.005, 0.001, offset=0.002)]
        table = synthesize_table(tasks)
        for slot in table.slots_for("a"):
            assert slot.offset >= 0.002 - 1e-12

    def test_infeasible_raises(self):
        with pytest.raises(SchedulingError):
            synthesize_table([task("a", 0.01, 0.009), task("b", 0.01, 0.009)])

    def test_rejects_nondeterministic_tasks(self):
        with pytest.raises(SchedulingError):
            synthesize_table([nda("x", 0.01, 0.001)])

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            synthesize_table([])

    def test_speed_factor_shrinks_slots(self):
        tasks = [task("a", 0.01, 0.004)]
        slow = synthesize_table(tasks, speed_factor=1.0)
        fast = synthesize_table(tasks, speed_factor=4.0)
        assert fast.slots[0].duration == pytest.approx(slow.slots[0].duration / 4)

    def test_work_factor_reported(self):
        out = []
        synthesize_table([task("a", 0.005, 0.001), task("b", 0.01, 0.002)],
                         work_factor_out=out)
        assert out and out[0] > 0

    @given(
        st.lists(
            st.tuples(
                st.sampled_from([0.005, 0.01, 0.02]),
                st.floats(min_value=0.02, max_value=0.25),
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_synthesized_tables_meet_all_deadlines(self, raw):
        """Each task receives exactly its demand within the hyperperiod,
        nothing overlaps (TimeTable construction enforces it), and the
        simulation validator confirms every deadline is met."""
        from repro.core import validate_by_simulation

        tasks = [
            task(f"t{i}", p, round(p * u, 9)) for i, (p, u) in enumerate(raw)
        ]
        try:
            table = synthesize_table(tasks)
        except SchedulingError:
            return  # infeasible draws are fine
        cycle = table.cycle
        for t in tasks:
            slots = table.slots_for(t.name)
            releases = 0
            k = 0
            while t.offset + k * t.period < cycle - 1e-12:
                releases += 1
                k += 1
            total = sum(s.duration for s in slots)
            assert total == pytest.approx(releases * t.wcet)
            assert all(s.offset >= t.offset - 1e-9 for s in slots)
        assert validate_by_simulation(table, tasks)


class TestExecutive:
    def make_job(self, t, now=0.0, speed=1.0):
        return Job(
            task=t,
            release_time=now,
            absolute_deadline=now + t.effective_deadline,
            remaining=t.wcet / speed,
        )

    def test_job_runs_in_its_slot(self):
        sim = Simulator()
        t = task("a", 0.01, 0.002)
        table = synthesize_table([t])
        execu = TimeTriggeredExecutive(sim, "ecu0", table)
        execu.submit(self.make_job(t))
        sim.run(until=0.02)
        assert len(execu.completed_jobs) == 1
        job = execu.completed_jobs[0]
        assert job.finish_time == pytest.approx(0.002)
        assert not job.missed_deadline

    def test_unknown_task_rejected(self):
        sim = Simulator()
        table = synthesize_table([task("a", 0.01, 0.002)])
        execu = TimeTriggeredExecutive(sim, "ecu0", table)
        with pytest.raises(SchedulingError):
            execu.submit(self.make_job(task("stranger", 0.01, 0.001)))

    def test_empty_slot_skipped(self):
        sim = Simulator()
        table = synthesize_table([task("a", 0.01, 0.002)])
        execu = TimeTriggeredExecutive(sim, "ecu0", table)
        sim.run(until=0.025)
        assert execu.skipped_slots >= 2

    def test_background_jobs_fill_idle(self):
        sim = Simulator()
        t = task("a", 0.01, 0.002)
        table = synthesize_table([t])
        execu = TimeTriggeredExecutive(sim, "ecu0", table)
        bg = self.make_job(nda("bg", 1.0, 0.005))
        execu.submit(bg)
        sim.run(until=0.02)
        assert bg.finished
        # the DA slot was empty this cycle, so background borrowed it and
        # ran 0..0.005 without interruption
        assert bg.finish_time == pytest.approx(0.005)

    def test_background_never_delays_slot(self):
        """Freedom of interference: DA slot timing is unaffected by bulk
        background load."""
        sim = Simulator()
        t = task("a", 0.01, 0.002)
        table = synthesize_table([t])
        execu = TimeTriggeredExecutive(sim, "ecu0", table)
        for i in range(10):
            execu.submit(self.make_job(nda(f"bulk{i}", 1.0, 0.02)))
        sim.schedule(0.01, lambda: execu.submit(self.make_job(t, now=0.01)))
        sim.run(until=0.025)
        da_jobs = [j for j in execu.completed_jobs if j.task.name == "a"]
        assert da_jobs and da_jobs[0].finish_time == pytest.approx(0.012)

    def test_background_disabled(self):
        sim = Simulator()
        table = synthesize_table([task("a", 0.01, 0.002)])
        execu = TimeTriggeredExecutive(sim, "ecu0", table, serve_background=False)
        bg = self.make_job(nda("bg", 1.0, 0.001))
        execu.submit(bg)
        sim.run(until=0.05)
        assert not bg.finished

    def test_stop_halts_executive(self):
        sim = Simulator()
        t = task("a", 0.01, 0.002)
        table = synthesize_table([t])
        execu = TimeTriggeredExecutive(sim, "ecu0", table)
        sim.schedule(0.015, execu.stop)
        sim.schedule(0.02, lambda: execu.submit(self.make_job(t, now=0.02)))
        sim.run(until=0.06)
        late = [j for j in execu.completed_jobs if j.release_time >= 0.02]
        assert late == []

    def test_rr_rotation_among_background_jobs(self):
        sim = Simulator()
        table = synthesize_table([task("a", 0.01, 0.001)])
        execu = TimeTriggeredExecutive(sim, "ecu0", table)
        b1 = self.make_job(nda("b1", 1.0, 0.012))
        b2 = self.make_job(nda("b2", 1.0, 0.012))
        execu.submit(b1)
        execu.submit(b2)
        sim.run(until=0.04)
        assert b1.finished and b2.finished
        # they interleaved across idle windows: finish within one cycle
        assert abs(b1.finish_time - b2.finish_time) < 0.011
