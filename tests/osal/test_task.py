"""Tests for the task/job model and hyperperiod math."""

import pytest

from repro.errors import ConfigurationError
from repro.osal import Criticality, Job, TaskSpec, hyperperiod, total_utilization


def task(name="t", period=0.01, wcet=0.002, **kw):
    return TaskSpec(name=name, period=period, wcet=wcet, **kw)


class TestTaskSpec:
    def test_defaults(self):
        t = task()
        assert t.effective_deadline == t.period
        assert t.utilization == pytest.approx(0.2)
        assert t.is_deterministic

    def test_explicit_deadline(self):
        t = task(deadline=0.005)
        assert t.effective_deadline == 0.005

    def test_scaled_utilization(self):
        assert task().scaled_utilization(2.0) == pytest.approx(0.1)

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            task(period=0.0)

    def test_invalid_wcet(self):
        with pytest.raises(ConfigurationError):
            task(wcet=0.0)

    def test_wcet_exceeding_period(self):
        with pytest.raises(ConfigurationError):
            task(period=0.001, wcet=0.002)

    def test_negative_offset(self):
        with pytest.raises(ConfigurationError):
            task(offset=-1.0)

    def test_nondeterministic_flag(self):
        t = task(criticality=Criticality.NON_DETERMINISTIC)
        assert not t.is_deterministic


class TestJob:
    def make_job(self, **kw):
        defaults = dict(
            task=task(), release_time=1.0, absolute_deadline=1.01, remaining=0.002
        )
        defaults.update(kw)
        return Job(**defaults)

    def test_response_time(self):
        j = self.make_job()
        j.finish_time = 1.004
        assert j.response_time == pytest.approx(0.004)

    def test_response_before_finish_raises(self):
        with pytest.raises(ConfigurationError):
            _ = self.make_job().response_time

    def test_start_jitter(self):
        j = self.make_job()
        j.start_time = 1.0005
        assert j.start_jitter == pytest.approx(0.0005)

    def test_missed_deadline_logic(self):
        j = self.make_job()
        j.finish_time = 1.02
        assert j.missed_deadline
        j2 = self.make_job()
        j2.finish_time = 1.01
        assert not j2.missed_deadline

    def test_unfinished_job_not_missed(self):
        assert not self.make_job().missed_deadline

    def test_job_ids_unique(self):
        assert self.make_job().job_id != self.make_job().job_id


class TestHyperperiod:
    def test_simple_lcm(self):
        tasks = [task("a", period=0.004), task("b", period=0.006, wcet=0.001)]
        assert hyperperiod(tasks) == pytest.approx(0.012)

    def test_float_periods_handled(self):
        tasks = [task("a", period=0.005), task("b", period=0.003, wcet=0.001)]
        assert hyperperiod(tasks) == pytest.approx(0.015)

    def test_single_task(self):
        assert hyperperiod([task(period=0.02)]) == pytest.approx(0.02)

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            hyperperiod([])

    def test_total_utilization(self):
        tasks = [task("a", period=0.01, wcet=0.002), task("b", period=0.02, wcet=0.01)]
        assert total_utilization(tasks) == pytest.approx(0.7)
