"""Tests for the preemptive core model and scheduling policies."""

import pytest

from repro.osal import (
    BudgetServer,
    Core,
    Criticality,
    EdfPolicy,
    FairSharePolicy,
    FifoPolicy,
    FixedPriorityPolicy,
    MixedCriticalityPolicy,
    PeriodicSource,
    TaskSpec,
)
from repro.sim import Simulator


def det_task(name, period, wcet, **kw):
    return TaskSpec(name=name, period=period, wcet=wcet, **kw)


def nda_task(name, period, wcet, **kw):
    kw.setdefault("criticality", Criticality.NON_DETERMINISTIC)
    return TaskSpec(name=name, period=period, wcet=wcet, **kw)


def make_core(policy, speed=1.0):
    sim = Simulator()
    core = Core(sim, "core0", speed, policy)
    return sim, core


class TestFixedPriority:
    def test_single_job_runs_to_completion(self):
        sim, core = make_core(FixedPriorityPolicy())
        t = det_task("a", 0.01, 0.003)
        job = core.submit_task_activation(t, 0.003)
        sim.run()
        assert job.finished
        assert job.finish_time == pytest.approx(0.003)

    def test_higher_priority_preempts(self):
        sim, core = make_core(FixedPriorityPolicy())
        low = det_task("low", 0.1, 0.01)
        high = det_task("high", 0.01, 0.002)
        low_job = core.submit_task_activation(low, 0.01)
        high_jobs = []
        sim.schedule(0.005, lambda: high_jobs.append(
            core.submit_task_activation(high, 0.002)))
        sim.run()
        assert high_jobs[0].finish_time == pytest.approx(0.007)
        # low resumed and finished late by exactly the preemption time
        assert low_job.finish_time == pytest.approx(0.012)
        assert low_job.preemptions == 1

    def test_rate_monotonic_default_order(self):
        sim, core = make_core(FixedPriorityPolicy())
        slow = det_task("slow", 0.1, 0.01)
        fast = det_task("fast", 0.01, 0.001)
        core.submit_task_activation(slow, 0.01)
        fast_job = core.submit_task_activation(fast, 0.001)
        sim.run()
        # fast (shorter period) ran first despite arriving second
        assert fast_job.finish_time == pytest.approx(0.001)

    def test_explicit_priority_overrides_rm(self):
        sim, core = make_core(FixedPriorityPolicy())
        a = det_task("a", 0.01, 0.001, priority=5)
        b = det_task("b", 0.1, 0.001, priority=1)
        job_a = core.submit_task_activation(a, 0.001)
        job_b = core.submit_task_activation(b, 0.001)
        sim.run()
        assert job_b.finish_time < job_a.finish_time

    def test_speed_factor_scales_execution(self):
        sim, core = make_core(FixedPriorityPolicy(), speed=2.0)
        t = det_task("a", 0.01, 0.004)
        source = PeriodicSource(sim, core, t, horizon=0.005)
        sim.run(until=0.02)
        assert source.finished_jobs()[0].response_time == pytest.approx(0.002)

    def test_utilization_observed(self):
        sim, core = make_core(FixedPriorityPolicy())
        t = det_task("a", 0.01, 0.005)
        PeriodicSource(sim, core, t, horizon=0.1)
        sim.run(until=0.1)
        assert core.utilization_observed() == pytest.approx(0.5, abs=0.05)


class TestEdf:
    def test_earliest_deadline_runs_first(self):
        sim, core = make_core(EdfPolicy())
        tight = det_task("tight", 0.02, 0.001, deadline=0.003)
        loose = det_task("loose", 0.02, 0.001, deadline=0.02)
        loose_job = core.submit_task_activation(loose, 0.001)
        tight_job = core.submit_task_activation(tight, 0.001)
        sim.run()
        assert tight_job.finish_time < loose_job.finish_time

    def test_edf_meets_full_utilization(self):
        """EDF schedules U=1.0 sets that RM cannot."""
        sim, core = make_core(EdfPolicy())
        t1 = det_task("t1", 0.010, 0.005)
        t2 = det_task("t2", 0.020, 0.010)
        s1 = PeriodicSource(sim, core, t1, horizon=0.2)
        s2 = PeriodicSource(sim, core, t2, horizon=0.2)
        sim.run(until=0.25)
        assert s1.miss_count() == 0
        assert s2.miss_count() == 0


class TestFifo:
    def test_no_preemption(self):
        sim, core = make_core(FifoPolicy())
        long = det_task("long", 0.1, 0.01)
        urgent = det_task("urgent", 0.005, 0.001)
        long_job = core.submit_task_activation(long, 0.01)
        urgent_jobs = []
        sim.schedule(0.001, lambda: urgent_jobs.append(
            core.submit_task_activation(urgent, 0.001)))
        sim.run()
        assert long_job.preemptions == 0
        assert urgent_jobs[0].finish_time == pytest.approx(0.011)


class TestFairShare:
    def test_round_robin_interleaves(self):
        sim, core = make_core(FairSharePolicy(quantum=0.001))
        a = nda_task("a", 1.0, 0.003)
        b = nda_task("b", 1.0, 0.003)
        ja = core.submit_task_activation(a, 0.003)
        jb = core.submit_task_activation(b, 0.003)
        sim.run()
        # both finish around the same time: the core was shared
        assert ja.finish_time == pytest.approx(0.005)
        assert jb.finish_time == pytest.approx(0.006)

    def test_deterministic_task_gets_no_privilege(self):
        """The C1 claim: a GPOS scheduler delays DA tasks under load."""
        sim, core = make_core(FairSharePolicy(quantum=0.001))
        da = det_task("da", 0.01, 0.001, deadline=0.002)
        for i in range(8):
            core.submit_task_activation(nda_task(f"bulk{i}", 1.0, 0.01), 0.01)
        da_job = core.submit_task_activation(da, 0.001)
        sim.run()
        assert da_job.missed_deadline

    def test_invalid_quantum(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            FairSharePolicy(quantum=0.0)


class TestMixedCriticality:
    def test_da_protected_from_nda_load(self):
        """The F2 claim: with the platform policy, DA deadlines hold."""
        sim, core = make_core(MixedCriticalityPolicy())
        da = det_task("ctl", 0.01, 0.002, deadline=0.005)
        src = PeriodicSource(sim, core, da, horizon=0.5)
        for i in range(4):
            PeriodicSource(
                sim, core, nda_task(f"bulk{i}", 0.02, 0.015), horizon=0.5
            )
        sim.run(until=0.6)
        assert src.miss_count() == 0
        assert src.miss_ratio(sim.now) == 0.0

    def test_background_nda_starves_without_server(self):
        sim, core = make_core(MixedCriticalityPolicy(server=None))
        da = det_task("ctl", 0.01, 0.0099)  # ~99% DA load
        PeriodicSource(sim, core, da, horizon=0.3)
        nda = core.submit_task_activation(nda_task("app", 1.0, 0.05), 0.05)
        sim.run(until=0.3)
        assert not nda.finished  # starved

    def test_budget_server_guarantees_nda_progress(self):
        server = BudgetServer(capacity=0.004, period=0.01)
        sim, core = make_core(MixedCriticalityPolicy(server=server))
        da = det_task("ctl", 0.01, 0.005)
        src = PeriodicSource(sim, core, da, horizon=0.5)
        nda = core.submit_task_activation(nda_task("app", 1.0, 0.05), 0.05)
        sim.run(until=0.5)
        assert src.miss_count() == 0
        assert nda.finished  # got its budget share

    def test_budget_server_caps_nda_interference(self):
        server = BudgetServer(capacity=0.002, period=0.01)
        sim, core = make_core(MixedCriticalityPolicy(server=server))
        # saturating NDA load, but budget caps it at 20%
        PeriodicSource(
            sim, core, nda_task("bulk", 0.01, 0.009), horizon=0.5
        )
        sim.run(until=0.5)
        assert core.utilization_observed() <= 0.25

    def test_invalid_budget_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            BudgetServer(capacity=0.02, period=0.01)
        with pytest.raises(ConfigurationError):
            BudgetServer(capacity=0.0, period=0.01)


class TestCoreLifecycle:
    def test_halt_drops_work(self):
        sim, core = make_core(FixedPriorityPolicy())
        job = core.submit_task_activation(det_task("a", 0.01, 0.005), 0.005)
        sim.schedule(0.001, core.halt)
        sim.run()
        assert not job.finished
        assert core.halted

    def test_halted_core_rejects_jobs(self):
        sim, core = make_core(FixedPriorityPolicy())
        core.halt()
        core.submit_task_activation(det_task("a", 0.01, 0.001), 0.001)
        sim.run()
        assert core.completed_jobs == []

    def test_resume_after_halt(self):
        sim, core = make_core(FixedPriorityPolicy())
        core.halt()
        core.resume()
        job = core.submit_task_activation(det_task("a", 0.01, 0.001), 0.001)
        sim.run()
        assert job.finished

    def test_cancel_jobs_of_task(self):
        sim, core = make_core(FixedPriorityPolicy())
        job1 = core.submit_task_activation(det_task("x", 0.1, 0.01), 0.01)
        job2 = core.submit_task_activation(det_task("x", 0.1, 0.01), 0.01)
        removed = core.cancel_jobs_of("x")
        assert removed == 2
        sim.run()
        assert not job1.finished and not job2.finished

    def test_completion_listener_invoked(self):
        sim, core = make_core(FixedPriorityPolicy())
        seen = []
        core.on_completion(lambda j: seen.append(j.task.name))
        core.submit_task_activation(det_task("z", 0.01, 0.001), 0.001)
        sim.run()
        assert seen == ["z"]


class TestPeriodicSource:
    def test_releases_every_period(self):
        sim, core = make_core(FixedPriorityPolicy())
        src = PeriodicSource(sim, core, det_task("a", 0.01, 0.001), horizon=0.05)
        sim.run(until=0.1)
        assert len(src.jobs) == 5

    def test_offset_honoured(self):
        sim, core = make_core(FixedPriorityPolicy())
        t = det_task("a", 0.01, 0.001, offset=0.003)
        src = PeriodicSource(sim, core, t, horizon=0.05)
        sim.run(until=0.06)
        assert src.jobs[0].release_time == pytest.approx(0.003)

    def test_stop_ceases_releases(self):
        sim, core = make_core(FixedPriorityPolicy())
        src = PeriodicSource(sim, core, det_task("a", 0.01, 0.001))
        sim.schedule(0.025, src.stop)
        sim.run(until=0.1)
        assert len(src.jobs) == 3

    def test_activation_jitter_applied(self):
        sim, core = make_core(FixedPriorityPolicy())
        src = PeriodicSource(
            sim, core, det_task("a", 0.01, 0.001),
            activation_jitter=0.001, jitter_draw=lambda: 0.5, horizon=0.05,
        )
        sim.run(until=0.1)
        assert src.jobs[0].release_time == pytest.approx(0.0005)

    def test_metrics_helpers(self):
        sim, core = make_core(FixedPriorityPolicy())
        src = PeriodicSource(sim, core, det_task("a", 0.01, 0.002), horizon=0.05)
        sim.run(until=0.1)
        assert src.miss_count() == 0
        assert src.miss_ratio(sim.now) == 0.0
        assert src.max_response_time() == pytest.approx(0.002)


class TestHistoryTrimming:
    """job_history_limit bounds retained jobs without losing aggregates."""

    def test_core_completed_jobs_capped(self):
        sim, core = make_core(FixedPriorityPolicy())
        core.job_history_limit = 4
        PeriodicSource(sim, core, det_task("a", 0.01, 0.002), horizon=0.2)
        sim.run(until=0.25)
        assert len(core.completed_jobs) == 4
        # aggregates still cover the whole run, not just the window
        assert core.busy_time == pytest.approx(20 * 0.002)

    def test_source_metrics_exact_across_trim(self):
        sim, core = make_core(FixedPriorityPolicy())
        core.job_history_limit = 4
        # wcet > deadline: every single job misses
        missing = det_task("m", 0.01, 0.004, deadline=0.003)
        src = PeriodicSource(sim, core, missing, horizon=0.2)
        sim.run(until=0.25)
        assert len(src.jobs) <= 5  # trimmed on release, one may be in flight
        assert src.released == 20
        assert src.miss_count() == 20
        assert src.miss_ratio(sim.now) == pytest.approx(1.0)

    def test_unlimited_by_default(self):
        sim, core = make_core(FixedPriorityPolicy())
        src = PeriodicSource(sim, core, det_task("a", 0.01, 0.002), horizon=0.2)
        sim.run(until=0.25)
        assert core.job_history_limit is None
        assert len(src.jobs) == 20
        assert len(core.completed_jobs) == 20
        assert src.released == 20
