"""Tests for the redundancy manager, runtime monitor and platform services."""

import pytest

from repro.errors import ConfigurationError, PlatformError
from repro.core import (
    BackendLink,
    DiagnosisService,
    DynamicPlatform,
    LoggingService,
    PersistenceService,
    RedundancyManager,
    RuntimeMonitor,
)
from repro.hw import centralized_topology
from repro.model import AppModel, Asil
from repro.osal import Core, FixedPriorityPolicy, PeriodicSource, TaskSpec
from repro.security import TrustStore, build_package
from repro.sim import Simulator, Tracer


def ctl_app(name="ctl"):
    return AppModel(
        name=name,
        tasks=(TaskSpec(name=f"{name}_loop", period=0.01, wcet=0.001),),
        asil=Asil.D, memory_kib=64, image_kib=128,
    )


def replicated_platform():
    sim = Simulator()
    store = TrustStore()
    store.generate_key("oem")
    platform = DynamicPlatform(
        sim, centralized_topology(n_platforms=3), trust_store=store
    )
    app = ctl_app()
    for node in ("platform_0", "platform_1", "platform_2"):
        platform.install(build_package(app, store, "oem"), node)
    sim.run()
    manager = RedundancyManager(platform, heartbeat_period=0.005)
    return sim, platform, manager


class TestRedundancy:
    def test_deploy_starts_all_replicas(self):
        sim, platform, manager = replicated_platform()
        replica_set = manager.deploy(
            "ctl", ["platform_0", "platform_1", "platform_2"], service_id=0x500
        )
        sim.run(until=0.05)
        assert replica_set.primary.node_name == "platform_0"
        assert len(replica_set.standbys) == 2
        assert platform.registry.find(0x500).ecu == "platform_0"

    def test_failover_promotes_standby(self):
        sim, platform, manager = replicated_platform()
        replica_set = manager.deploy(
            "ctl", ["platform_0", "platform_1"], service_id=0x500
        )
        sim.run(until=0.05)
        platform.fail_node("platform_0")
        sim.run(until=0.2)
        assert replica_set.primary.node_name == "platform_1"
        assert platform.registry.find(0x500).ecu == "platform_1"
        assert len(replica_set.failovers) == 1

    def test_failover_interruption_bounded(self):
        """Fail-operational: interruption <= heartbeat + promotion."""
        sim, platform, manager = replicated_platform()
        replica_set = manager.deploy("ctl", ["platform_0", "platform_1"])
        sim.run(until=0.0501)
        platform.fail_node("platform_0")
        sim.run(until=0.3)
        event = replica_set.failovers[0]
        assert event.interruption <= manager.heartbeat_period + 0.002 + 1e-9

    def test_state_replicated_to_standby(self):
        sim, platform, manager = replicated_platform()
        replica_set = manager.deploy("ctl", ["platform_0", "platform_1"])
        sim.run(until=0.02)
        replica_set.primary.internal_state["x"] = 123
        sim.run(until=0.3)  # sync period elapses
        platform.fail_node("platform_0")
        sim.run(until=0.4)
        assert replica_set.primary.node_name == "platform_1"
        assert replica_set.primary.internal_state.get("x") == 123

    def test_no_standby_means_function_lost(self):
        """The baseline: a single instance dies with its ECU."""
        sim, platform, manager = replicated_platform()
        replica_set = manager.deploy("ctl", ["platform_0"])
        sim.run(until=0.05)
        platform.fail_node("platform_0")
        sim.run(until=0.2)
        assert replica_set.exhausted
        assert platform.running_instances("ctl") == []

    def test_double_failure_second_standby_takes_over(self):
        sim, platform, manager = replicated_platform()
        replica_set = manager.deploy(
            "ctl", ["platform_0", "platform_1", "platform_2"]
        )
        sim.run(until=0.05)
        platform.fail_node("platform_0")
        sim.run(until=0.1)
        platform.fail_node("platform_1")
        sim.run(until=0.2)
        assert replica_set.primary.node_name == "platform_2"
        assert len(replica_set.failovers) == 2

    def test_duplicate_deploy_rejected(self):
        sim, platform, manager = replicated_platform()
        manager.deploy("ctl", ["platform_0"])
        with pytest.raises(PlatformError):
            manager.deploy("ctl", ["platform_1"])


class TestRuntimeMonitor:
    def loaded_core(self, util_ok=True):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        core = Core(sim, "c", 1.0, FixedPriorityPolicy())
        wcet = 0.002 if util_ok else 0.009
        victim = TaskSpec(
            name="victim", period=0.01, wcet=wcet, deadline=0.008,
            jitter_tolerance=0.002,
        )
        hog = TaskSpec(name="hog", period=0.01, wcet=0.006, priority=0)
        monitor = RuntimeMonitor(sim)
        monitor.watch(victim)
        PeriodicSource(sim, core, victim, horizon=0.5)
        PeriodicSource(sim, core, hog, horizon=0.5)
        return sim, monitor

    def test_healthy_task_raises_no_faults(self):
        sim, monitor = self.loaded_core(util_ok=True)
        sim.run(until=0.6)
        assert monitor.faults_of_kind("deadline") == []
        stats = monitor.stats("victim")
        assert stats.completions >= 49
        assert stats.miss_ratio == 0.0

    def test_deadline_fault_detected(self):
        sim, monitor = self.loaded_core(util_ok=False)
        sim.run(until=0.6)
        assert len(monitor.faults_of_kind("deadline")) > 0
        assert monitor.stats("victim").miss_ratio > 0.0

    def test_jitter_fault_detected(self):
        sim, monitor = self.loaded_core(util_ok=False)
        sim.run(until=0.6)
        # the hog (priority 0) delays the victim's start beyond 2ms
        assert len(monitor.faults_of_kind("jitter")) > 0

    def test_backend_receives_fault_reports(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        backend = BackendLink(sim, uplink_latency=0.1)
        monitor = RuntimeMonitor(sim, backend=backend)
        core = Core(sim, "c", 1.0, FixedPriorityPolicy())
        bad = TaskSpec(name="bad", period=0.01, wcet=0.009, deadline=0.001)
        monitor.watch(bad)
        PeriodicSource(sim, core, bad, horizon=0.05)
        sim.run(until=0.5)
        assert len(backend.received) > 0
        assert backend.received[0].kind == "deadline"

    def test_disconnected_backend_drops_reports(self):
        sim = Simulator(tracer=Tracer())
        backend = BackendLink(sim)
        backend.connected = False
        monitor = RuntimeMonitor(sim, backend=backend)
        core = Core(sim, "c", 1.0, FixedPriorityPolicy())
        bad = TaskSpec(name="bad", period=0.01, wcet=0.009, deadline=0.001)
        monitor.watch(bad)
        PeriodicSource(sim, core, bad, horizon=0.03)
        sim.run(until=0.5)
        assert backend.received == []
        assert monitor.faults  # still recorded locally

    def test_unwatched_tasks_ignored(self):
        sim = Simulator(tracer=Tracer())
        monitor = RuntimeMonitor(sim)
        core = Core(sim, "c", 1.0, FixedPriorityPolicy())
        PeriodicSource(
            sim, core, TaskSpec(name="anon", period=0.01, wcet=0.001),
            horizon=0.05,
        )
        sim.run(until=0.1)
        assert monitor.trace_events_processed == 0

    def test_memory_check(self):
        from repro.core import PlatformNode
        from repro.hw import EcuSpec
        from repro.middleware import ServiceRegistry
        from repro.network import VehicleNetwork
        from repro.hw import Topology

        sim = Simulator(tracer=Tracer())
        topo = Topology()
        topo.add_ecu(EcuSpec("e", memory_kib=100, has_mmu=True))
        net = VehicleNetwork(sim, topo)
        node = PlatformNode(sim, topo.ecu("e"), net, ServiceRegistry())
        monitor = RuntimeMonitor(sim)
        assert monitor.check_memory(node) is None
        node.state.allocate_memory(99)
        fault = monitor.check_memory(node)
        assert fault is not None and fault.kind == "memory"

    def test_certification_report(self):
        sim, monitor = self.loaded_core(util_ok=True)
        sim.run(until=0.6)
        report = monitor.certification_report()
        assert "victim" in report
        assert report["victim"]["completions"] > 0
        assert report["victim"]["miss_ratio"] == 0.0


class TestServices:
    def test_logging_levels(self):
        sim = Simulator()
        log = LoggingService(sim, min_level="info")
        log.log("app", "debug", "hidden")
        log.log("app", "error", "visible")
        assert log.dropped == 1
        assert len(log.records) == 1
        assert log.records_at_least("warning")[0].message == "visible"

    def test_logging_invalid_level(self):
        with pytest.raises(ConfigurationError):
            LoggingService(Simulator(), min_level="chatty")
        log = LoggingService(Simulator())
        with pytest.raises(ConfigurationError):
            log.log("a", "verbose", "x")

    def test_persistence_versioning(self):
        sim = Simulator()
        store = PersistenceService(sim)
        assert store.put("cfg", {"gain": 1}) == 1
        assert store.put("cfg", {"gain": 2}) == 2
        assert store.get("cfg") == {"gain": 2}
        assert store.rollback("cfg") == {"gain": 1}
        assert store.version_count("cfg") == 1

    def test_persistence_rollback_limits(self):
        store = PersistenceService(Simulator())
        with pytest.raises(ConfigurationError):
            store.rollback("missing")
        store.put("k", 1)
        with pytest.raises(ConfigurationError):
            store.rollback("k")

    def test_persistence_default(self):
        store = PersistenceService(Simulator())
        assert store.get("nope", default="d") == "d"

    def test_diagnosis_dtc_accumulation(self):
        sim = Simulator()
        diag = DiagnosisService(sim)
        diag.report("P0300", freeze_frame={"rpm": 3000})
        sim.schedule(1.0, lambda: diag.report("P0300"))
        sim.run()
        dtcs = diag.dtcs()
        assert len(dtcs) == 1
        assert dtcs[0].count == 2
        assert dtcs[0].last_seen == 1.0
        assert diag.clear() == 1
        assert diag.dtcs() == []
