"""Tests for communication admission (bus headroom)."""

import pytest

from repro.core import (
    BusLoadTracker,
    admit_communication,
    offered_load_of,
)
from repro.hw import BusSpec, EcuSpec, Topology
from repro.model import (
    AppModel,
    Deployment,
    InterfaceDef,
    InterfaceKind,
    InterfaceRequirements,
    Primitive,
    RequiredInterface,
    SystemModel,
)
from repro.model.types import ArrayType
from repro.network import Frame, VehicleNetwork
from repro.sim import Simulator


def slow_can_world():
    topo = Topology()
    topo.add_bus(BusSpec("can", "can", 500e3))
    for name in ("a", "b"):
        topo.add_ecu(EcuSpec(name, ports=(("can0", "can"),)))
        topo.attach(name, "can0", "can")
    model = SystemModel(topo)
    model.add_app(AppModel(name="producer", provides=("feed",)))
    model.add_app(AppModel(name="consumer", requires=(RequiredInterface("feed"),)))
    return topo, model


def add_feed(model, payload_type, period):
    model.add_interface(InterfaceDef(
        name="feed", kind=InterfaceKind.EVENT, owner="producer",
        data_type=payload_type,
        requirements=InterfaceRequirements(period=period),
    ))


class TestOfferedLoad:
    def test_cross_ecu_load_counted(self):
        topo, model = slow_can_world()
        add_feed(model, Primitive("uint64"), period=0.01)  # 6.4 kbit/s
        deployment = Deployment().place("producer", "a").place("consumer", "b")
        load = offered_load_of(model, "producer", deployment)
        assert load["can"] == pytest.approx(8 * 8 / 0.01)

    def test_local_communication_is_free(self):
        topo, model = slow_can_world()
        add_feed(model, Primitive("uint64"), period=0.01)
        deployment = Deployment().place("producer", "a").place("consumer", "a")
        assert offered_load_of(model, "producer", deployment) == {}

    def test_consumer_side_also_counted(self):
        topo, model = slow_can_world()
        add_feed(model, Primitive("uint64"), period=0.01)
        deployment = Deployment().place("producer", "a").place("consumer", "b")
        load = offered_load_of(model, "consumer", deployment)
        assert "can" in load


class TestAdmitCommunication:
    def test_light_traffic_admitted(self):
        topo, model = slow_can_world()
        add_feed(model, Primitive("uint64"), period=0.01)
        deployment = Deployment().place("producer", "a").place("consumer", "b")
        assert admit_communication(model, "producer", deployment)

    def test_heavy_traffic_rejected(self):
        topo, model = slow_can_world()
        # 1 KiB every 10 ms = ~820 kbit/s >> 500 kbit/s CAN
        add_feed(model, ArrayType(Primitive("uint8"), 1024), period=0.01)
        deployment = Deployment().place("producer", "a").place("consumer", "b")
        decision = admit_communication(model, "producer", deployment)
        assert not decision
        assert "can" in decision.reasons[0]

    def test_observed_load_shrinks_headroom(self):
        """Unmodelled background traffic counts against new admissions."""
        topo, model = slow_can_world()
        # planned load alone would fit: ~40% of the bus
        add_feed(model, ArrayType(Primitive("uint8"), 256), period=0.01)
        deployment = Deployment().place("producer", "a").place("consumer", "b")
        sim = Simulator()
        net = VehicleNetwork(sim, topo)
        tracker = BusLoadTracker(sim, net, window=0.5, sample_period=0.05)

        def blast():
            net.bus("can").submit(
                Frame(src="a", dst="b", payload_bytes=8, priority=0x200)
            )
            if sim.now < 2.0:
                sim.schedule(0.0004, blast)  # ~close to saturation

        blast()
        sim.run(until=2.0)
        assert tracker.observed_utilization("can") > 0.4
        decision = admit_communication(
            model, "producer", deployment, tracker=tracker
        )
        assert not decision

    def test_tracker_idle_bus_reads_zero(self):
        topo, model = slow_can_world()
        sim = Simulator()
        net = VehicleNetwork(sim, topo)
        tracker = BusLoadTracker(sim, net, window=0.5, sample_period=0.05)
        sim.run(until=1.0)
        assert tracker.observed_bps("can") == 0.0
        tracker.stop()
        sim.run(until=1.2)
