"""Fault-record buffering while the backend link is absent or down."""

from repro.core import BackendLink, RuntimeMonitor
from repro.sim import Simulator


def fault(monitor, i):
    return monitor._fault(monitor.sim.now, f"t{i}", "deadline", "missed")


class TestBacklogBuffering:
    def test_faults_buffered_without_backend(self):
        sim = Simulator()
        monitor = RuntimeMonitor(sim)
        for i in range(3):
            fault(monitor, i)
        assert monitor.backlog_size == 3
        assert len(monitor.faults) == 3

    def test_attach_backend_flushes_in_detection_order(self):
        sim = Simulator()
        monitor = RuntimeMonitor(sim)
        for i in range(3):
            fault(monitor, i)
        backend = BackendLink(sim, uplink_latency=0.01)
        monitor.attach_backend(backend)
        assert monitor.backlog_size == 0
        sim.run()
        assert [r.task for r in backend.received] == ["t0", "t1", "t2"]

    def test_link_down_buffers_then_reconnect_flushes(self):
        sim = Simulator()
        backend = BackendLink(sim, uplink_latency=0.01)
        monitor = RuntimeMonitor(sim, backend=backend)
        backend.connected = False
        fault(monitor, 0)
        fault(monitor, 1)
        assert monitor.backlog_size == 2
        assert backend.received == []
        backend.connected = True
        # the next fault drains the backlog first, keeping uplink order
        fault(monitor, 2)
        assert monitor.backlog_size == 0
        sim.run()
        assert [r.task for r in backend.received] == ["t0", "t1", "t2"]

    def test_explicit_flush_after_reconnect(self):
        sim = Simulator()
        backend = BackendLink(sim, uplink_latency=0.01)
        monitor = RuntimeMonitor(sim, backend=backend)
        backend.connected = False
        fault(monitor, 0)
        backend.connected = True
        assert monitor.flush_backlog() == 1
        assert monitor.backlog_size == 0
        sim.run()
        assert len(backend.received) == 1

    def test_flush_is_noop_while_down(self):
        sim = Simulator()
        backend = BackendLink(sim, uplink_latency=0.01)
        monitor = RuntimeMonitor(sim, backend=backend)
        backend.connected = False
        fault(monitor, 0)
        assert monitor.flush_backlog() == 0
        assert monitor.backlog_size == 1


class TestBacklogBounds:
    def test_overflow_evicts_oldest_and_counts(self):
        sim = Simulator()
        monitor = RuntimeMonitor(sim, backlog_limit=2)
        for i in range(4):
            fault(monitor, i)
        assert monitor.backlog_size == 2
        assert monitor.backlog_dropped == 2
        backend = BackendLink(sim, uplink_latency=0.01)
        monitor.attach_backend(backend)
        sim.run()
        # only the newest two survived the bounded buffer
        assert [r.task for r in backend.received] == ["t2", "t3"]

    def test_connected_backend_never_touches_backlog(self):
        sim = Simulator()
        backend = BackendLink(sim, uplink_latency=0.01)
        monitor = RuntimeMonitor(sim, backend=backend, backlog_limit=1)
        for i in range(5):
            fault(monitor, i)
        assert monitor.backlog_size == 0
        assert monitor.backlog_dropped == 0
        sim.run()
        assert len(backend.received) == 5
