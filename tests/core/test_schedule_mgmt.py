"""Tests for the cloud-based schedule management framework (ref [21])."""


from repro.core import ComputeSite, ScheduleManagementFramework, validate_by_simulation
from repro.hw import EcuSpec
from repro.osal import TaskSpec, synthesize_table
from repro.sim import Simulator


def tasks_ok():
    return [
        TaskSpec(name="a", period=0.005, wcet=0.001),
        TaskSpec(name="b", period=0.010, wcet=0.002),
        TaskSpec(name="c", period=0.020, wcet=0.004),
    ]


def tasks_overloaded():
    return [
        TaskSpec(name="x", period=0.01, wcet=0.009),
        TaskSpec(name="y", period=0.01, wcet=0.009),
    ]


class TestComputeSites:
    def test_backend_vastly_faster_than_ecu(self):
        backend = ComputeSite.backend()
        ecu = ComputeSite.on_ecu(EcuSpec("legacy", cpu_mhz=200.0))
        assert backend.rate / ecu.rate > 100


class TestSynthesis:
    def test_backend_synthesis_returns_validated_table(self):
        sim = Simulator()
        framework = ScheduleManagementFramework(sim)
        outcomes = []
        framework.synthesize(tasks_ok(), ComputeSite.backend()).add_callback(
            outcomes.append
        )
        sim.run()
        outcome = outcomes[0]
        assert outcome.feasible
        assert outcome.validated
        assert outcome.table is not None

    def test_on_ecu_synthesis_slower(self):
        """C2: the same synthesis takes orders of magnitude longer on-ECU."""
        def run(site):
            sim = Simulator()
            framework = ScheduleManagementFramework(sim)
            outcomes = []
            framework.synthesize(
                tasks_ok(), site, validate=False
            ).add_callback(outcomes.append)
            sim.run()
            return outcomes[0]

        backend = run(ComputeSite.backend())
        on_ecu = run(ComputeSite.on_ecu(EcuSpec("legacy", cpu_mhz=200.0)))
        assert on_ecu.synthesis_time > backend.synthesis_time * 100
        assert on_ecu.feasible == backend.feasible

    def test_infeasible_set_reported(self):
        sim = Simulator()
        framework = ScheduleManagementFramework(sim)
        outcomes = []
        framework.synthesize(
            tasks_overloaded(), ComputeSite.backend()
        ).add_callback(outcomes.append)
        sim.run()
        assert not outcomes[0].feasible
        assert outcomes[0].table is None
        assert outcomes[0].error

    def test_outcomes_recorded(self):
        sim = Simulator()
        framework = ScheduleManagementFramework(sim)
        framework.synthesize(tasks_ok(), ComputeSite.backend())
        sim.run()
        assert len(framework.outcomes) == 1


class TestValidation:
    def test_good_table_validates(self):
        table = synthesize_table(tasks_ok())
        assert validate_by_simulation(table, tasks_ok())

    def test_validation_catches_wrong_speed_assumption(self):
        """A table synthesized for a fast core fails validation against a
        slow one — the 'test against the current configuration of the
        installing vehicle' step doing its job."""
        table = synthesize_table(tasks_ok(), speed_factor=4.0)
        assert validate_by_simulation(table, tasks_ok(), speed_factor=4.0)
        # same table driven by a core 4x slower: jobs overrun their slots
        assert not validate_by_simulation(table, tasks_ok(), speed_factor=1.0)
