"""Tests for runtime reconfiguration: live migration and load balancing."""

import pytest

from repro.errors import AdmissionError, PlatformError, UpdateError
from repro.core import DynamicPlatform, ReconfigurationManager
from repro.middleware import ServiceOffer
from repro.model import AppModel, Asil
from repro.osal import TaskSpec
from repro.security import TrustStore, build_package
from repro.sim import Simulator


def det_app(name="mover", util=0.1, memory=64.0):
    return AppModel(
        name=name,
        tasks=(TaskSpec(name=f"{name}_loop", period=0.01, wcet=0.01 * util),),
        asil=Asil.C, memory_kib=memory, image_kib=128,
    )


def small_topology(n_platforms=2):
    """Reference-speed (200 MHz) platform nodes so utilizations bite."""
    from repro.hw import BusSpec, EcuSpec, OsClass, Topology

    topo = Topology()
    topo.add_bus(BusSpec("eth", "ethernet", 1e9, tsn_capable=True))
    for i in range(n_platforms):
        topo.add_ecu(EcuSpec(
            f"platform_{i}", cpu_mhz=200.0, cores=1, memory_kib=1 << 18,
            flash_kib=1 << 20, has_mmu=True, os_class=OsClass.POSIX_RT,
            crypto=__import__("repro.hw", fromlist=["CryptoCapability"]).CryptoCapability.ACCELERATED,
            ports=(("eth0", "ethernet"),),
        ))
        topo.attach(f"platform_{i}", "eth0", "eth")
    return topo


def setup(n_platforms=2, install_everywhere=True):
    sim = Simulator()
    store = TrustStore()
    store.generate_key("oem")
    platform = DynamicPlatform(
        sim, small_topology(n_platforms), trust_store=store
    )
    manager = ReconfigurationManager(platform)
    app = det_app()
    nodes = [f"platform_{i}" for i in range(n_platforms)]
    targets = nodes if install_everywhere else nodes[:1]
    for node in targets:
        platform.install(build_package(app, store, "oem"), node)
    sim.run()
    platform.start_app("mover", "platform_0")
    return sim, store, platform, manager


class TestMigration:
    def test_migrate_moves_instance(self):
        sim, store, platform, manager = setup()
        reports = []
        manager.migrate("mover", "platform_0", "platform_1").add_callback(
            reports.append
        )
        sim.run(until=sim.now + 1.0)
        report = reports[0]
        assert report.success
        assert platform.where_is("mover") == ["platform_1"]
        assert report.downtime == 0.0

    def test_source_resources_released(self):
        sim, store, platform, manager = setup()
        source = platform.node("platform_0")
        manager.migrate("mover", "platform_0", "platform_1")
        sim.run(until=sim.now + 1.0)
        assert source.state.memory_used_kib == 0.0
        assert source.instances_of("mover") == []

    def test_state_travels_with_the_app(self):
        sim, store, platform, manager = setup()
        old = platform.node("platform_0").instance("mover", 1)
        old.internal_state["odometer"] = 12345
        manager.migrate("mover", "platform_0", "platform_1")
        sim.run(until=sim.now + 1.0)
        new = platform.node("platform_1").instance("mover", 1)
        assert new.internal_state["odometer"] == 12345

    def test_service_offers_follow(self):
        sim, store, platform, manager = setup()
        platform.registry.offer(
            ServiceOffer(0x700, 1, "platform_0", "mover")
        )
        manager.migrate("mover", "platform_0", "platform_1")
        sim.run(until=sim.now + 1.0)
        assert platform.registry.find(0x700).ecu == "platform_1"

    def test_function_available_throughout(self):
        sim, store, platform, manager = setup()
        gaps = []

        def probe():
            if not platform.running_instances("mover"):
                gaps.append(sim.now)
            if sim.now < 1.0:
                sim.schedule(0.001, probe)

        probe()
        sim.schedule(0.1, lambda: manager.migrate(
            "mover", "platform_0", "platform_1"))
        sim.run(until=1.1)
        assert gaps == []

    def test_same_node_rejected(self):
        sim, store, platform, manager = setup()
        with pytest.raises(UpdateError):
            manager.migrate("mover", "platform_0", "platform_0")

    def test_missing_target_image_rejected(self):
        sim, store, platform, manager = setup(install_everywhere=False)
        with pytest.raises(PlatformError):
            manager.migrate("mover", "platform_0", "platform_1")

    def test_stopped_app_rejected(self):
        sim, store, platform, manager = setup()
        platform.stop_app("mover", "platform_0")
        with pytest.raises(UpdateError):
            manager.migrate("mover", "platform_0", "platform_1")

    def test_target_admission_enforced(self):
        sim, store, platform, manager = setup()
        # saturate platform_1's single core with deterministic load
        hog = det_app(name="hog", util=0.65, memory=16)
        platform.install(build_package(hog, store, "oem"), "platform_1")
        sim.run(until=sim.now + 1.0)
        platform.start_app("hog", "platform_1", core_index=0)
        with pytest.raises(AdmissionError):
            manager.migrate("mover", "platform_0", "platform_1")


class TestLoadBalancing:
    def test_utilization_reporting(self):
        sim, store, platform, manager = setup()
        assert manager.node_det_utilization("platform_0") > 0.0
        assert manager.node_det_utilization("platform_1") == 0.0

    def test_no_proposals_when_balanced(self):
        sim, store, platform, manager = setup()
        assert manager.propose_rebalance(threshold=0.6) == []

    def test_overload_produces_proposal(self):
        sim, store, platform, manager = setup()
        # overload one core of platform_0 beyond the threshold
        extra = det_app(name="heavy", util=0.55, memory=16)
        platform.install(build_package(extra, store, "oem"), "platform_0")
        sim.run(until=sim.now + 1.0)
        node = platform.node("platform_0")
        core_of_mover = node.cores.index(node.instance("mover", 1).core)
        platform.start_app("heavy", "platform_0", core_index=core_of_mover)
        proposals = manager.propose_rebalance(threshold=0.6)
        assert proposals
        app, source, target = proposals[0]
        assert source == "platform_0"
        assert target != "platform_0"
        # the lightest app is proposed for migration
        assert app == "mover"

    def test_rebalance_executes_and_relieves(self):
        sim, store, platform, manager = setup()
        extra = det_app(name="heavy", util=0.55, memory=16)
        platform.install(build_package(extra, store, "oem"), "platform_0")
        sim.run(until=sim.now + 1.0)
        node = platform.node("platform_0")
        core_of_mover = node.cores.index(node.instance("mover", 1).core)
        platform.start_app("heavy", "platform_0", core_index=core_of_mover)
        before = manager.node_det_utilization("platform_0")
        signals = manager.rebalance(threshold=0.6)
        assert signals
        sim.run(until=sim.now + 1.0)
        after = manager.node_det_utilization("platform_0")
        assert after < before
        assert platform.where_is("mover") == ["platform_1"]

    def test_rebalance_ships_image_if_missing(self):
        sim, store, platform, manager = setup(install_everywhere=False)
        extra = det_app(name="heavy", util=0.55, memory=16)
        platform.install(build_package(extra, store, "oem"), "platform_0")
        sim.run(until=sim.now + 1.0)
        node = platform.node("platform_0")
        core_of_mover = node.cores.index(node.instance("mover", 1).core)
        platform.start_app("heavy", "platform_0", core_index=core_of_mover)
        signals = manager.rebalance(threshold=0.6)
        assert signals
        sim.run(until=sim.now + 1.0)
        assert platform.node("platform_1").has_image("mover")
        assert platform.where_is("mover") == ["platform_1"]
