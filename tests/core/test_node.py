"""Direct tests for PlatformNode: images, processes, instance management."""

import pytest

from repro.errors import ConfigurationError, PlatformError
from repro.core import AppState, PlatformNode
from repro.hw import BusSpec, EcuSpec, OsClass, Topology
from repro.middleware import ServiceRegistry
from repro.model import AppModel, Asil
from repro.network import VehicleNetwork
from repro.osal import TaskSpec
from repro.sim import Simulator


def make_node(mmu=True, memory=4096, cores=2):
    topo = Topology()
    topo.add_bus(BusSpec("eth", "ethernet", 1e9))
    topo.add_ecu(EcuSpec(
        "n0", cpu_mhz=400, cores=cores, memory_kib=memory, flash_kib=8192,
        has_mmu=mmu, os_class=OsClass.POSIX_RT,
        ports=(("eth0", "ethernet"),),
    ))
    topo.attach("n0", "eth0", "eth")
    sim = Simulator()
    net = VehicleNetwork(sim, topo)
    node = PlatformNode(sim, topo.ecu("n0"), net, ServiceRegistry())
    return sim, node


def app(name="a", memory=64.0, own_process=True):
    return AppModel(
        name=name,
        tasks=(TaskSpec(name=f"{name}_t", period=0.01, wcet=0.001),),
        asil=Asil.B, memory_kib=memory, image_kib=128,
        own_process=own_process,
    )


class TestImages:
    def test_store_and_drop(self):
        sim, node = make_node()
        node.store_image("a", 128)
        assert node.has_image("a")
        assert node.state.flash_used_kib == 128
        node.drop_image("a")
        assert not node.has_image("a")
        assert node.state.flash_used_kib == 0

    def test_replacing_image_frees_old_flash(self):
        sim, node = make_node()
        node.store_image("a", 128)
        node.store_image("a", 256)  # update: bigger image
        assert node.state.flash_used_kib == 256

    def test_flash_exhaustion(self):
        sim, node = make_node()
        with pytest.raises(ConfigurationError):
            node.store_image("huge", 1 << 20)

    def test_drop_unknown_is_noop(self):
        sim, node = make_node()
        node.drop_image("ghost")


class TestInstances:
    def test_instantiate_allocates_process_memory(self):
        sim, node = make_node()
        node.instantiate(app("a", memory=100))
        assert node.state.memory_used_kib == 100
        assert len(node.memory.processes) == 1

    def test_duplicate_instance_rejected(self):
        sim, node = make_node()
        node.instantiate(app("a"))
        with pytest.raises(PlatformError):
            node.instantiate(app("a"))

    def test_same_app_different_instance_ids(self):
        sim, node = make_node()
        node.instantiate(app("a"), instance_id=1)
        node.instantiate(app("a"), instance_id=2)
        assert len(node.instances_of("a")) == 2

    def test_invalid_core_rejected(self):
        sim, node = make_node(cores=2)
        with pytest.raises(ConfigurationError):
            node.instantiate(app("a"), core_index=5)

    def test_tear_down_releases_memory(self):
        sim, node = make_node()
        node.instantiate(app("a", memory=100))
        node.tear_down("a")
        assert node.state.memory_used_kib == 0
        with pytest.raises(PlatformError):
            node.instance("a")

    def test_tear_down_unknown_raises(self):
        sim, node = make_node()
        with pytest.raises(PlatformError):
            node.tear_down("ghost")

    def test_tear_down_stops_running_instance(self):
        sim, node = make_node()
        instance = node.instantiate(app("a"))
        instance.start()
        sim.run(until=0.05)
        assert instance.is_running
        node.tear_down("a")
        assert instance.state is AppState.STOPPED

    def test_shared_process_apps(self):
        sim, node = make_node()
        node.instantiate(app("a", own_process=False))
        node.instantiate(app("b", own_process=False))
        groups = node.memory.isolation_groups()
        shared = [g for g in groups if len(g) >= 1]
        assert len(node.memory.processes) == 1
        proc = node.memory.processes[0]
        assert proc.residents == {"a", "b"}

    def test_shared_process_teardown_keeps_others(self):
        sim, node = make_node()
        node.instantiate(app("a", own_process=False, memory=50))
        node.instantiate(app("b", own_process=False, memory=50))
        before = node.state.memory_used_kib
        node.tear_down("a")
        assert node.state.memory_used_kib == before - 50
        assert node.memory.processes[0].residents == {"b"}

    def test_failed_node_rejects_instantiation(self):
        sim, node = make_node()
        node.fail()
        with pytest.raises(PlatformError):
            node.instantiate(app("a"))


class TestFailureSemantics:
    def test_fail_returns_running_victims(self):
        sim, node = make_node()
        running = node.instantiate(app("a"))
        running.start()
        idle = node.instantiate(app("b"))
        sim.run(until=0.02)
        victims = node.fail()
        assert running in victims
        assert idle not in victims

    def test_deterministic_tasks_on_core_tracks_running_only(self):
        sim, node = make_node()
        instance = node.instantiate(app("a"), core_index=0)
        assert node.deterministic_tasks_on_core(0) == []
        instance.start()
        sim.run(until=0.02)
        assert len(node.deterministic_tasks_on_core(0)) == 1
        assert node.deterministic_tasks_on_core(1) == []
        instance.stop()
        assert node.deterministic_tasks_on_core(0) == []

    def test_memory_headroom(self):
        sim, node = make_node(memory=1000)
        node.instantiate(app("a", memory=400))
        assert node.memory_headroom_kib() == 600
