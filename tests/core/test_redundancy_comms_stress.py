"""Failover under concurrent communication stress.

The primary's node crashes at the same instant the Ethernet backbone
goes down.  The heartbeat supervision must still detect the failure and
promote a standby, while every frame — heartbeat bookkeeping, the
service re-offer, client RPC — is rerouted over the ring segment via the
route-cache epoch invalidation introduced with the comms fast path.
"""

from repro.faults import (
    FaultCampaignSpec,
    FaultPlan,
    FaultSpec,
    build_chaos_scenario,
)
from repro.sim import Simulator

FAULT_TIME = 0.1

STRESS_PLAN = FaultPlan(
    name="crash_plus_backbone_loss",
    faults=(
        # both permanent, both at the same instant: the failover races
        # the reroute
        FaultSpec(kind="ecu_crash", target="platform_0", start=FAULT_TIME),
        FaultSpec(kind="bus_outage", target="eth_backbone", start=FAULT_TIME),
    ),
)


def stressed_world():
    spec = FaultCampaignSpec(plan=STRESS_PLAN, soak_time=0.5)
    sim = Simulator()
    scenario = build_chaos_scenario(sim, spec, 5)
    return sim, spec, scenario


class TestFailoverUnderCommsStress:
    def test_failover_completes_while_backbone_is_down(self):
        sim, spec, scenario = stressed_world()
        sim.run(until=sim.now + spec.soak_time)
        manager = scenario["manager"]
        failovers = manager.all_failovers()
        assert len(failovers) == 1
        event = failovers[0]
        assert event.failed_node == "platform_0"
        assert event.new_primary_node == "platform_1"
        # detection is bounded by the heartbeat period, promotion by the
        # fixed promotion latency — the bus outage must not stretch either
        assert event.detection_time - event.failure_time <= spec.heartbeat_period + 1e-9
        assert event.interruption < 2 * spec.heartbeat_period

    def test_route_epoch_bumped_and_traffic_rerouted(self):
        sim, spec, scenario = stressed_world()
        net = scenario["platform"].network
        probes = {}

        def snapshot():
            probes["epoch"] = net.route_epoch
            probes["ring"] = net.bus("eth_ring").frames_delivered
            probes["backbone"] = net.bus("eth_backbone").frames_delivered

        sim.schedule(FAULT_TIME - 0.001, snapshot)
        sim.run(until=sim.now + spec.soak_time)
        # fail_bus (and the node loss) invalidated every cached route
        assert net.route_epoch > probes["epoch"]
        assert "eth_backbone" in net._failed_buses
        # all post-fault traffic detoured over the ring segment
        assert net.bus("eth_ring").frames_delivered > probes["ring"]
        assert net.bus("eth_backbone").frames_delivered == probes["backbone"]

    def test_service_keeps_answering_after_reroute(self):
        sim, spec, scenario = stressed_world()
        successes = scenario["successes"]
        at_fault = {}
        sim.schedule(FAULT_TIME, lambda: at_fault.setdefault("n", successes[0]))
        sim.run(until=sim.now + spec.soak_time)
        client = scenario["client"]
        # calls before the fault succeeded on the backbone, calls after it
        # on the ring — and the retry policy hid the transition
        assert at_fault["n"] > 5
        assert successes[0] > at_fault["n"] + 10
        assert client.failures == 0
