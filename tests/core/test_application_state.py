"""Regression tests for application state hand-over isolation.

``adopt_state`` used to take ``dict(snapshot)`` — a shallow copy that
shared nested mutable values (lists, dicts) between the donor and the
adopter.  A failed-over replica or freshly updated instance mutating its
state then silently corrupted its donor's.  Hand-over must deep-copy.
"""

from repro.core.application import AppInstance, AppState
from repro.model.applications import AppModel
from repro.osal import Core, FixedPriorityPolicy
from repro.sim import Simulator


def make_instance(sim, name="app", instance_id=1):
    core = Core(sim, f"core{instance_id}", 1.0, FixedPriorityPolicy())
    return AppInstance(sim, AppModel(name=name), "node", core,
                       instance_id=instance_id)


class TestAdoptStateIsolation:
    def test_nested_containers_are_not_shared(self):
        sim = Simulator()
        donor = make_instance(sim, instance_id=1)
        donor.internal_state = {
            "history": [1, 2, 3],
            "config": {"gain": 0.5, "limits": [0.0, 1.0]},
        }
        adopter = make_instance(sim, instance_id=2)
        adopter.adopt_state(donor.snapshot_state())

        adopter.internal_state["history"].append(99)
        adopter.internal_state["config"]["gain"] = 9.9
        adopter.internal_state["config"]["limits"][0] = -5.0

        assert donor.internal_state["history"] == [1, 2, 3]
        assert donor.internal_state["config"]["gain"] == 0.5
        assert donor.internal_state["config"]["limits"] == [0.0, 1.0]

    def test_adopting_a_raw_dict_does_not_alias_it(self):
        sim = Simulator()
        adopter = make_instance(sim)
        raw = {"buffer": [0] * 4}
        adopter.adopt_state(raw)
        adopter.internal_state["buffer"][0] = 7
        assert raw["buffer"] == [0, 0, 0, 0]

    def test_snapshot_state_is_itself_isolated(self):
        sim = Simulator()
        donor = make_instance(sim)
        donor.internal_state = {"window": [1.0]}
        snap = donor.snapshot_state()
        donor.internal_state["window"].append(2.0)
        assert snap == {"window": [1.0]}

    def test_state_survives_lifecycle(self):
        sim = Simulator()
        instance = make_instance(sim)
        instance.adopt_state({"k": {"v": 1}})
        instance.start()
        sim.run(until=0.01)
        assert instance.state is AppState.RUNNING
        assert instance.internal_state == {"k": {"v": 1}}
