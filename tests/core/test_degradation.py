"""Declared degradation modes and fault-rate driven activation."""

import pytest

from repro.core import DegradationMode, RuntimeMonitor
from repro.core.platform import DynamicPlatform
from repro.errors import PlatformError
from repro.faults import redundant_ring_topology
from repro.model.applications import AppModel
from repro.osal.task import TaskSpec
from repro.security.crypto import TrustStore
from repro.security.package import build_package
from repro.sim import Simulator


def app(name):
    return AppModel(
        name=name,
        tasks=(TaskSpec(name=f"{name}_loop", period=0.01, wcet=0.001),),
        memory_kib=64,
        image_kib=128,
    )


def degradable_platform():
    sim = Simulator()
    store = TrustStore()
    store.generate_key("oem")
    platform = DynamicPlatform(sim, redundant_ring_topology(2), trust_store=store)
    for name in ("comfort", "limp"):
        platform.install(build_package(app(name), store, "oem"), "platform_0")
    sim.run()
    platform.start_app("comfort", "platform_0")
    platform.degradation.declare(
        DegradationMode(
            name="limp_home",
            stop_apps=(("comfort", "platform_0"),),
            start_apps=(("limp", "platform_0"),),
            description="shed comfort, keep minimal drive",
        )
    )
    return sim, platform


class TestModeTransitions:
    def test_enter_swaps_app_sets(self):
        sim, platform = degradable_platform()
        assert platform.degradation.enter("limp_home")
        assert platform.degradation.is_active("limp_home")
        assert platform.where_is("comfort") == []
        assert platform.where_is("limp") == ["platform_0"]
        assert platform.degradation.entries == 1

    def test_exit_restores_original_set(self):
        sim, platform = degradable_platform()
        platform.degradation.enter("limp_home")
        assert platform.degradation.exit("limp_home")
        assert platform.where_is("comfort") == ["platform_0"]
        assert platform.where_is("limp") == []
        assert platform.degradation.exits == 1
        actions = [e.action for e in platform.degradation.events]
        assert actions == ["enter", "exit"]

    def test_enter_is_idempotent(self):
        sim, platform = degradable_platform()
        assert platform.degradation.enter("limp_home")
        assert not platform.degradation.enter("limp_home")
        assert platform.degradation.entries == 1

    def test_exit_of_inactive_mode_is_noop(self):
        sim, platform = degradable_platform()
        assert not platform.degradation.exit("limp_home")
        assert platform.degradation.exits == 0

    def test_undeclared_mode_rejected(self):
        sim, platform = degradable_platform()
        with pytest.raises(PlatformError, match="not declared"):
            platform.degradation.enter("ghost_mode")

    def test_unapplicable_actions_counted_not_fatal(self):
        sim, platform = degradable_platform()
        platform.degradation.declare(
            DegradationMode(
                name="broken",
                start_apps=(("never_installed", "platform_0"),),
            )
        )
        assert platform.degradation.enter("broken")
        assert platform.degradation.skipped_actions == 1


class TestFaultRateWatch:
    def test_high_fault_rate_enters_then_recovery_exits(self):
        sim, platform = degradable_platform()
        monitor = RuntimeMonitor(sim)
        platform.degradation.watch(
            monitor, "limp_home", fault_rate_threshold=100.0, window=0.01
        )

        def fault_storm():
            yield 0.02
            for _ in range(20):
                monitor._fault(sim.now, "t", "deadline", "missed")
                yield 0.002

        sim.process(fault_storm())
        sim.run(until=0.2)
        degradation = platform.degradation
        assert degradation.entries == 1
        assert degradation.exits == 1
        enter, exit_ = degradation.events
        assert enter.trigger == "fault_rate"
        assert enter.fault_rate >= 100.0
        assert exit_.trigger == "fault_rate"
        assert exit_.fault_rate <= 50.0  # hysteresis: half the threshold
        assert not degradation.is_active("limp_home")

    def test_manual_entry_not_auto_exited(self):
        sim, platform = degradable_platform()
        monitor = RuntimeMonitor(sim)
        platform.degradation.watch(
            monitor, "limp_home", fault_rate_threshold=100.0, window=0.01
        )
        platform.degradation.enter("limp_home")  # operator decision
        sim.run(until=0.1)
        # zero fault rate, but the watch must not override the operator
        assert platform.degradation.is_active("limp_home")

    def test_watch_validation(self):
        sim, platform = degradable_platform()
        monitor = RuntimeMonitor(sim)
        with pytest.raises(PlatformError):
            platform.degradation.watch(
                monitor, "ghost", fault_rate_threshold=1.0
            )
        with pytest.raises(PlatformError):
            platform.degradation.watch(
                monitor, "limp_home", fault_rate_threshold=0.0
            )
        with pytest.raises(PlatformError):
            platform.degradation.watch(
                monitor, "limp_home", fault_rate_threshold=1.0,
                recovery_factor=2.0,
            )
