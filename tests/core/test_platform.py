"""Tests for the dynamic platform: install, admission, lifecycle, failure."""

import pytest

from repro.errors import AdmissionError, PlatformError, SecurityError
from repro.hw import centralized_topology
from repro.model import AppModel, Asil
from repro.core import AppState, DynamicPlatform
from repro.osal import Criticality, TaskSpec
from repro.security import TrustStore, build_package, forged_package
from repro.sim import Simulator


def det_app(name="ctl", period=0.01, wcet=0.001, memory=64.0):
    return AppModel(
        name=name,
        tasks=(TaskSpec(name=f"{name}_loop", period=period, wcet=wcet),),
        asil=Asil.C,
        memory_kib=memory,
        image_kib=128,
    )


def nda_app(name="info", memory=64.0):
    return AppModel(
        name=name,
        tasks=(TaskSpec(
            name=f"{name}_work", period=0.05, wcet=0.01,
            criticality=Criticality.NON_DETERMINISTIC,
        ),),
        memory_kib=memory,
        image_kib=128,
    )


def make_platform(**kw):
    sim = Simulator()
    store = TrustStore()
    store.generate_key("oem")
    platform = DynamicPlatform(
        sim, centralized_topology(n_platforms=2), trust_store=store, **kw
    )
    return sim, store, platform


class TestInstall:
    def test_valid_package_installs(self):
        sim, store, platform = make_platform()
        pkg = build_package(det_app(), store, "oem")
        outcome = []
        platform.install(pkg, "platform_0").add_callback(outcome.append)
        sim.run()
        assert outcome == [True]
        assert platform.node("platform_0").has_image("ctl")

    def test_tampered_package_rejected(self):
        sim, store, platform = make_platform()
        pkg = build_package(det_app(), store, "oem").tampered()
        outcome = []
        platform.install(pkg, "platform_0").add_callback(outcome.append)
        sim.run()
        assert outcome == [False]
        assert not platform.node("platform_0").has_image("ctl")
        assert platform.installs_rejected == 1

    def test_forged_package_rejected(self):
        sim, store, platform = make_platform()
        outcome = []
        platform.install(forged_package(det_app()), "platform_0").add_callback(
            outcome.append
        )
        sim.run()
        assert outcome == [False]

    def test_weak_ecu_requires_update_master(self):
        sim, store, platform = make_platform()
        pkg = build_package(det_app(memory=16), store, "oem")
        with pytest.raises(SecurityError):
            platform.install(pkg, "zone_sensor_0")

    def test_weak_ecu_install_via_update_master(self):
        sim, store, platform = make_platform()
        platform.setup_update_masters(["platform_0", "platform_1"])
        pkg = build_package(det_app(memory=16), store, "oem")
        outcome = []
        platform.install(pkg, "zone_sensor_0").add_callback(
            lambda ok: outcome.append((sim.now, ok))
        )
        sim.run()
        assert outcome[0][1] is True
        assert outcome[0][0] > 0  # verification + transfer took time
        assert platform.node("zone_sensor_0").has_image("ctl")

    def test_update_master_failover(self):
        sim, store, platform = make_platform()
        group = platform.setup_update_masters(["platform_0", "platform_1"])
        group.masters[0].fail()
        pkg = build_package(det_app(memory=16), store, "oem")
        outcome = []
        platform.install(pkg, "zone_sensor_0").add_callback(outcome.append)
        sim.run()
        assert outcome == [True]
        assert group.failovers >= 1

    def test_all_masters_down_raises(self):
        sim, store, platform = make_platform()
        group = platform.setup_update_masters(["platform_0"])
        group.masters[0].fail()
        pkg = build_package(det_app(memory=16), store, "oem")
        with pytest.raises(SecurityError):
            platform.install(pkg, "zone_sensor_0")


class TestLifecycle:
    def install_and_run(self, platform, sim, store, app, node="platform_0"):
        pkg = build_package(app, store, "oem")
        platform.install(pkg, node)
        sim.run()
        return platform.start_app(app.name, node)

    def test_start_requires_install(self):
        sim, store, platform = make_platform()
        with pytest.raises(PlatformError):
            platform.start_app("ghost", "platform_0")

    def test_start_runs_tasks(self):
        sim, store, platform = make_platform()
        instance = self.install_and_run(platform, sim, store, det_app())
        sim.run(until=sim.now + 0.1)
        assert instance.is_running
        assert instance.jobs_released() >= 9
        assert instance.deadline_misses() == 0

    def test_stop_ceases_execution(self):
        sim, store, platform = make_platform()
        instance = self.install_and_run(platform, sim, store, det_app())
        sim.run(until=sim.now + 0.05)
        platform.stop_app("ctl", "platform_0")
        released = instance.jobs_released()
        sim.run(until=sim.now + 0.05)
        assert instance.state is AppState.STOPPED
        # a handful may have been released before stop; none after
        assert instance.jobs_released() == released

    def test_uninstall_frees_resources(self):
        sim, store, platform = make_platform()
        self.install_and_run(platform, sim, store, det_app())
        node = platform.node("platform_0")
        assert node.state.memory_used_kib > 0
        platform.uninstall("ctl", "platform_0")
        assert node.state.memory_used_kib == 0
        assert not node.has_image("ctl")

    def test_where_is_tracks_instances(self):
        sim, store, platform = make_platform()
        self.install_and_run(platform, sim, store, det_app())
        assert platform.where_is("ctl") == ["platform_0"]

    def test_restart_after_stop(self):
        sim, store, platform = make_platform()
        instance = self.install_and_run(platform, sim, store, det_app())
        platform.stop_app("ctl", "platform_0")
        platform.node("platform_0").tear_down("ctl", 1)
        instance2 = platform.start_app("ctl", "platform_0")
        sim.run(until=sim.now + 0.05)
        assert instance2.is_running


class TestAdmission:
    def test_overload_rejected(self):
        sim, store, platform = make_platform()
        platform.setup_update_masters(["platform_0"])
        heavy = AppModel(
            name="heavy",
            tasks=(TaskSpec(name="h", period=0.01, wcet=0.0095),),
            asil=Asil.C, memory_kib=64, image_kib=64,
        )
        pkg = build_package(heavy, store, "oem")
        platform.install(pkg, "zone_sensor_1")
        sim.run()
        # zone sensor: 80 MHz -> speed 0.4; wcet 9.5ms/0.4 = 23.75ms > period
        with pytest.raises(AdmissionError):
            platform.start_app("heavy", "zone_sensor_1")
        assert platform.admission.rejected_count >= 1

    def test_admitted_on_fast_node(self):
        sim, store, platform = make_platform()
        heavy = AppModel(
            name="heavy",
            tasks=(TaskSpec(name="h", period=0.01, wcet=0.005),),
            asil=Asil.C, memory_kib=64, image_kib=64,
        )
        pkg = build_package(heavy, store, "oem")
        platform.install(pkg, "platform_0")
        sim.run()
        instance = platform.start_app("heavy", "platform_0")
        assert instance.is_running or instance.state is AppState.STARTING

    def test_memory_exhaustion_rejected(self):
        sim, store, platform = make_platform()
        hog = AppModel(name="hog", memory_kib=1 << 23, image_kib=64)
        pkg = build_package(hog, store, "oem")
        platform.install(pkg, "platform_1")
        sim.run()
        with pytest.raises(AdmissionError, match="memory"):
            platform.start_app("hog", "platform_1")

    def test_da_on_gp_os_rejected(self):
        sim, store, platform = make_platform()
        pkg = build_package(det_app(), store, "oem")
        platform.install(pkg, "head_unit")
        sim.run()
        with pytest.raises(AdmissionError, match="non-real-time"):
            platform.start_app("ctl", "head_unit")

    def test_nda_on_gp_os_accepted(self):
        sim, store, platform = make_platform()
        pkg = build_package(nda_app(), store, "oem")
        platform.install(pkg, "head_unit")
        sim.run()
        instance = platform.start_app("info", "head_unit")
        sim.run(until=sim.now + 0.1)
        assert instance.is_running

    def test_best_core_spreads_load(self):
        """Apps too heavy to share a core land on distinct cores."""
        sim, store, platform = make_platform()
        platform.setup_update_masters(["platform_0"])
        # zone sensor speed factor 0.4: 2ms wcet -> 5ms/10ms = 50% per core,
        # above the 70% share only pairwise (2 x 50% > 70%)
        app = AppModel(
            name="ctl0",
            tasks=(TaskSpec(name="c0", period=0.01, wcet=0.002),),
            asil=Asil.C, memory_kib=16, image_kib=16,
        )
        platform.install(build_package(app, store, "oem"), "zone_sensor_0")
        sim.run()
        platform.start_app("ctl0", "zone_sensor_0")
        # second heavy app would exceed the single core's share
        app2 = AppModel(
            name="ctl_extra",
            tasks=(TaskSpec(name="cx", period=0.01, wcet=0.002),),
            asil=Asil.C, memory_kib=16, image_kib=16,
        )
        platform.install(build_package(app2, store, "oem"), "zone_sensor_0")
        sim.run(until=sim.now + 6.0)  # bounded: an app is already running
        with pytest.raises(AdmissionError):
            platform.start_app("ctl_extra", "zone_sensor_0")


class TestNodeFailure:
    def test_fail_kills_instances_and_offers(self):
        sim, store, platform = make_platform()
        pkg = build_package(det_app(), store, "oem")
        platform.install(pkg, "platform_0")
        sim.run()
        instance = platform.start_app("ctl", "platform_0")
        sim.run(until=sim.now + 0.02)
        victims = platform.fail_node("platform_0")
        assert instance in victims
        assert instance.state is AppState.FAILED
        assert platform.where_is("ctl") == []

    def test_recovered_node_accepts_new_work(self):
        sim, store, platform = make_platform()
        pkg = build_package(det_app(), store, "oem")
        platform.install(pkg, "platform_0")
        sim.run()
        platform.start_app("ctl", "platform_0")
        platform.fail_node("platform_0")
        platform.recover_node("platform_0")
        node = platform.node("platform_0")
        node.tear_down("ctl", 1)
        instance = platform.start_app("ctl", "platform_0")
        sim.run(until=sim.now + 0.05)
        assert instance.is_running
