"""Tests for the update orchestrator (staged, stop-restart, naive switch)."""

import pytest

from repro.errors import UpdateError
from repro.core import AppState, DynamicPlatform, UpdateOrchestrator
from repro.hw import centralized_topology
from repro.model import AppModel, Asil
from repro.osal import TaskSpec
from repro.security import TrustStore, build_package
from repro.sim import Simulator


def ctl_app(version=(1, 0)):
    return AppModel(
        name="ctl",
        tasks=(TaskSpec(name="ctl_loop", period=0.01, wcet=0.001),),
        asil=Asil.C, memory_kib=64, image_kib=128, version=version,
    )


def setup():
    sim = Simulator()
    store = TrustStore()
    store.generate_key("oem")
    platform = DynamicPlatform(
        sim, centralized_topology(n_platforms=2), trust_store=store
    )
    orchestrator = UpdateOrchestrator(platform)
    pkg = build_package(ctl_app(), store, "oem")
    platform.install(pkg, "platform_0")
    sim.run()
    instance = platform.start_app("ctl", "platform_0")
    instance.internal_state["integrator"] = 42.5
    return sim, store, platform, orchestrator, instance


class TestStagedUpdate:
    def test_zero_downtime(self):
        sim, store, platform, orch, old = setup()
        new_pkg = build_package(ctl_app(version=(1, 1)), store, "oem")
        reports = []
        orch.staged_update("ctl", "platform_0", new_pkg).add_callback(reports.append)
        sim.run(until=sim.now + 1.0)
        report = reports[0]
        assert report.success
        assert report.downtime == 0.0
        assert report.strategy == "staged"

    def test_state_synchronised_to_new_instance(self):
        sim, store, platform, orch, old = setup()
        new_pkg = build_package(ctl_app(version=(1, 1)), store, "oem")
        orch.staged_update("ctl", "platform_0", new_pkg)
        sim.run(until=sim.now + 1.0)
        node = platform.node("platform_0")
        new_instance = node.instance("ctl", instance_id=2)
        assert new_instance.is_running
        assert new_instance.internal_state["integrator"] == 42.5

    def test_old_instance_torn_down(self):
        sim, store, platform, orch, old = setup()
        new_pkg = build_package(ctl_app(version=(1, 1)), store, "oem")
        orch.staged_update("ctl", "platform_0", new_pkg)
        sim.run(until=sim.now + 1.0)
        assert old.state is AppState.STOPPED
        node = platform.node("platform_0")
        assert len(node.instances_of("ctl")) == 1

    def test_double_memory_during_update(self):
        """The paper's stated disadvantage (C5): the app is instantiated
        twice while the update is in flight."""
        sim, store, platform, orch, old = setup()
        node = platform.node("platform_0")
        base_memory = node.state.memory_used_kib
        peaks = []
        new_pkg = build_package(ctl_app(version=(1, 1)), store, "oem")
        orch.staged_update("ctl", "platform_0", new_pkg, startup_latency=0.05)
        sim.schedule(0.06, lambda: peaks.append(node.state.memory_used_kib))
        sim.run(until=sim.now + 1.0)
        assert peaks[0] == pytest.approx(base_memory * 2)
        assert node.state.memory_used_kib == pytest.approx(base_memory)

    def test_function_never_stops_running(self):
        """At every sampled instant, at least one ctl instance is RUNNING."""
        sim, store, platform, orch, old = setup()
        gaps = []

        def probe():
            if not platform.running_instances("ctl"):
                gaps.append(sim.now)
            if sim.now < 2.0:
                sim.schedule(0.002, probe)

        sim.run(until=sim.now + 0.05)
        new_pkg = build_package(ctl_app(version=(1, 1)), store, "oem")
        orch.staged_update("ctl", "platform_0", new_pkg)
        probe()
        sim.run(until=2.1)
        assert gaps == []

    def test_tampered_update_aborts_cleanly(self):
        sim, store, platform, orch, old = setup()
        bad = build_package(ctl_app(version=(1, 1)), store, "oem").tampered()
        reports = []
        orch.staged_update("ctl", "platform_0", bad).add_callback(reports.append)
        sim.run(until=sim.now + 1.0)
        assert not reports[0].success
        assert old.is_running  # the old version keeps serving

    def test_update_of_stopped_app_rejected(self):
        sim, store, platform, orch, old = setup()
        platform.stop_app("ctl", "platform_0")
        new_pkg = build_package(ctl_app(version=(1, 1)), store, "oem")
        with pytest.raises(UpdateError):
            orch.staged_update("ctl", "platform_0", new_pkg)


class TestStopUpdateRestart:
    def test_downtime_measured(self):
        sim, store, platform, orch, old = setup()
        new_pkg = build_package(ctl_app(version=(1, 1)), store, "oem")
        reports = []
        orch.stop_update_restart("ctl", "platform_0", new_pkg).add_callback(
            reports.append
        )
        sim.run(until=sim.now + 5.0)
        report = reports[0]
        assert report.success
        assert report.downtime > 0.0  # verify + flash + restart all down

    def test_downtime_exceeds_staged(self):
        sim, store, platform, orch, old = setup()
        new_pkg = build_package(ctl_app(version=(1, 1)), store, "oem")
        r1 = []
        orch.stop_update_restart("ctl", "platform_0", new_pkg).add_callback(r1.append)
        sim.run(until=sim.now + 5.0)
        assert r1[0].downtime > 0.01  # flash write alone is 128KiB / 2MBps


class TestNaiveSwitch:
    def test_zero_skew_still_has_startup_gap(self):
        sim, store, platform, orch, old = setup()
        new_pkg = build_package(ctl_app(version=(1, 1)), store, "oem")
        reports = []
        orch.naive_switch(
            "ctl", "platform_0", new_pkg, switch_at=1.0, clock_skew=0.0,
            startup_latency=0.02,
        ).add_callback(reports.append)
        sim.run(until=sim.now + 5.0)
        assert reports[0].downtime == pytest.approx(0.02, abs=1e-6)

    def test_positive_skew_widens_gap(self):
        sim, store, platform, orch, old = setup()
        new_pkg = build_package(ctl_app(version=(1, 1)), store, "oem")
        reports = []
        orch.naive_switch(
            "ctl", "platform_0", new_pkg, switch_at=1.0, clock_skew=0.05,
            startup_latency=0.02,
        ).add_callback(reports.append)
        sim.run(until=sim.now + 5.0)
        assert reports[0].downtime == pytest.approx(0.07, abs=1e-6)

    def test_switch_in_past_rejected(self):
        sim, store, platform, orch, old = setup()
        new_pkg = build_package(ctl_app(version=(1, 1)), store, "oem")
        with pytest.raises(UpdateError):
            orch.naive_switch("ctl", "platform_0", new_pkg, switch_at=-1.0)


class TestUpdatePath:
    def multi_setup(self):
        sim = Simulator()
        store = TrustStore()
        store.generate_key("oem")
        platform = DynamicPlatform(
            sim, centralized_topology(n_platforms=2), trust_store=store
        )
        orch = UpdateOrchestrator(platform)
        apps = []
        for i in range(3):
            app = AppModel(
                name=f"fn{i}",
                tasks=(TaskSpec(name=f"fn{i}_t", period=0.01, wcet=0.0005),),
                asil=Asil.C, memory_kib=32, image_kib=64,
            )
            apps.append(app)
            platform.install(build_package(app, store, "oem"), "platform_0")
        sim.run()
        for app in apps:
            platform.start_app(app.name, "platform_0")
        return sim, store, platform, orch, apps

    def test_path_updates_all_steps(self):
        sim, store, platform, orch, apps = self.multi_setup()
        steps = [
            (app.name, "platform_0", build_package(app.bumped(), store, "oem"))
            for app in apps
        ]
        results = []
        orch.update_path(steps).add_callback(results.append)
        sim.run(until=sim.now + 5.0)
        reports = results[0]
        assert len(reports) == 3
        assert all(r.success for r in reports)

    def test_failed_verification_stops_path(self):
        sim, store, platform, orch, apps = self.multi_setup()
        verified = []

        def verify_step(app_name):
            verified.append(app_name)
            return app_name != "fn1"  # fn1's check fails

        steps = [
            (app.name, "platform_0", build_package(app.bumped(), store, "oem"))
            for app in apps
        ]
        results = []
        orch.update_path(steps, verify_step=verify_step).add_callback(results.append)
        sim.run(until=sim.now + 5.0)
        reports = results[0]
        assert len(reports) == 2  # fn2 never attempted
        assert verified == ["fn0", "fn1"]

    def test_bad_package_stops_path(self):
        sim, store, platform, orch, apps = self.multi_setup()
        steps = [
            (apps[0].name, "platform_0",
             build_package(apps[0].bumped(), store, "oem")),
            (apps[1].name, "platform_0",
             build_package(apps[1].bumped(), store, "oem").tampered()),
            (apps[2].name, "platform_0",
             build_package(apps[2].bumped(), store, "oem")),
        ]
        results = []
        orch.update_path(steps).add_callback(results.append)
        sim.run(until=sim.now + 5.0)
        reports = results[0]
        assert len(reports) == 2
        assert reports[0].success and not reports[1].success
