"""Tests for fleet OTA campaigns with monitor-gated waves and rollback."""

import pytest

from repro.errors import UpdateError
from repro.core import CampaignManager, Fleet
from repro.model import AppModel, Asil
from repro.osal import TaskSpec
from repro.security import TrustStore
from repro.sim import Simulator, Tracer


def healthy_app(version=(1, 0)):
    return AppModel(
        name="fn",
        tasks=(TaskSpec(
            name="fn_loop", period=0.01, wcet=0.001, deadline=0.008,
        ),),
        asil=Asil.C, memory_kib=64, image_kib=128, version=version,
    )


def buggy_app(version=(1, 1)):
    """The 'regression': the new version's task overruns its deadline
    even on the fleet's 5x-reference cores (scaled wcet 1.8 ms > 1 ms)."""
    return AppModel(
        name="fn",
        tasks=(TaskSpec(
            name="fn_loop_v2", period=0.01, wcet=0.009, deadline=0.001,
        ),),
        asil=Asil.C, memory_kib=64, image_kib=128, version=version,
    )


def make_fleet(size=4):
    sim = Simulator(tracer=Tracer())
    store = TrustStore()
    store.generate_key("oem")
    fleet = Fleet(sim, store, size=size)
    fleet.deploy_everywhere(healthy_app(), "oem")
    sim.run(until=sim.now + 0.5)
    return sim, store, fleet


class TestFleet:
    def test_fleet_deploys_to_all_vehicles(self):
        sim, store, fleet = make_fleet(size=3)
        versions = fleet.versions("fn")
        assert all(v == (1, 0) for v in versions.values())

    def test_vehicle_monitors_are_independent(self):
        sim, store, fleet = make_fleet(size=2)
        assert all(v.fault_count() == 0 for v in fleet.vehicles)

    def test_minimum_size_enforced(self):
        sim = Simulator()
        store = TrustStore()
        with pytest.raises(UpdateError):
            Fleet(sim, store, size=0)


class TestRollout:
    def test_healthy_update_reaches_whole_fleet(self):
        sim, store, fleet = make_fleet(size=4)
        manager = CampaignManager(fleet, "oem", wave_size=2, soak_time=0.5)
        result = manager.rollout(healthy_app(), healthy_app(version=(1, 1)))
        assert not result.aborted
        assert result.vehicles_updated == 4
        assert len(result.waves) == 2
        assert all(
            v == (1, 1) for v in fleet.versions("fn").values()
        )

    def test_waves_respect_wave_size(self):
        sim, store, fleet = make_fleet(size=5)
        manager = CampaignManager(fleet, "oem", wave_size=2, soak_time=0.2)
        result = manager.rollout(healthy_app(), healthy_app(version=(1, 1)))
        assert [len(w.vehicle_indices) for w in result.waves] == [2, 2, 1]

    def test_regression_aborts_and_rolls_back(self):
        """The Section 3.4 loop: the buggy version's deadline faults are
        detected by the wave's monitors; the campaign stops after wave 1
        and the wave rolls back, sparing the rest of the fleet."""
        sim, store, fleet = make_fleet(size=4)
        manager = CampaignManager(
            fleet, "oem", wave_size=2, soak_time=0.5,
            abort_regression_ratio=0.5,
        )
        result = manager.rollout(healthy_app(), buggy_app())
        assert result.aborted
        assert result.rolled_back
        assert len(result.waves) == 1
        assert result.waves[0].regressions >= 1
        versions = fleet.versions("fn")
        # wave-1 vehicles rolled back; later vehicles never updated
        assert all(v == (1, 0) for v in versions.values())

    def test_faults_reach_manufacturer_backend(self):
        sim, store, fleet = make_fleet(size=2)
        manager = CampaignManager(
            fleet, "oem", wave_size=2, soak_time=0.5,
        )
        manager.rollout(healthy_app(), buggy_app())
        sim.run(until=sim.now + 1.0)  # uplink latency
        assert any(v.backend.received for v in fleet.vehicles)

    def test_mixed_version_fleet_rolls_back_per_vehicle(self):
        """Rollback must restore each vehicle's *own* prior version.

        Vehicle 0 already runs a newer healthy build than the rest of
        the fleet (a prior partial rollout).  When the buggy campaign
        aborts, vehicle 0 must return to its (1, 2) build — not be
        downgraded to the shared ``old_app`` (1, 0) the campaign was
        told about.
        """
        from repro.core.update import UpdateOrchestrator
        from repro.security.package import build_package

        sim, store, fleet = make_fleet(size=3)
        pioneer = fleet.vehicles[0]
        package = build_package(healthy_app(version=(1, 2)), store, "oem")
        UpdateOrchestrator(pioneer.platform).staged_update(
            "fn", pioneer.node_name, package
        )
        sim.run(until=sim.now + 0.5)
        assert fleet.versions("fn")[0] == (1, 2)

        manager = CampaignManager(
            fleet, "oem", wave_size=3, soak_time=0.5,
            abort_regression_ratio=0.3,
        )
        result = manager.rollout(healthy_app(), buggy_app(version=(2, 0)))
        assert result.aborted and result.rolled_back
        versions = fleet.versions("fn")
        assert versions[0] == (1, 2)  # per-vehicle prior, not old_app
        assert versions[1] == (1, 0)
        assert versions[2] == (1, 0)

    def test_wrong_app_name_rejected(self):
        sim, store, fleet = make_fleet(size=1)
        manager = CampaignManager(fleet, "oem")
        other = AppModel(name="other", memory_kib=16, image_kib=16)
        with pytest.raises(UpdateError):
            manager.rollout(healthy_app(), other)

    def test_invalid_wave_size(self):
        sim, store, fleet = make_fleet(size=1)
        with pytest.raises(UpdateError):
            CampaignManager(fleet, "oem", wave_size=0)


class TestPlanWaves:
    def test_fixed_size_partition(self):
        from repro.core import plan_waves

        assert plan_waves(5, wave_size=2) == [(0, 2), (2, 4), (4, 5)]
        assert plan_waves(4, wave_size=4) == [(0, 4)]
        assert plan_waves(0, wave_size=2) == []

    def test_staged_canary_cohort_fleet(self):
        from repro.core import plan_waves

        assert plan_waves(1000, stages=(0.01, 0.1, 1.0)) == [
            (0, 10), (10, 100), (100, 1000),
        ]

    def test_staged_small_fleet_grows_every_wave(self):
        from repro.core import plan_waves

        waves = plan_waves(3, stages=(0.01, 0.1, 1.0))
        assert waves == [(0, 1), (1, 2), (2, 3)]

    def test_staged_covers_everyone_even_without_full_stage(self):
        from repro.core import plan_waves

        waves = plan_waves(10, stages=(0.1, 0.5))
        assert waves[-1][1] == 10

    def test_exactly_one_strategy_required(self):
        from repro.core import plan_waves

        with pytest.raises(UpdateError):
            plan_waves(10)
        with pytest.raises(UpdateError):
            plan_waves(10, wave_size=2, stages=(0.5, 1.0))
        with pytest.raises(UpdateError):
            plan_waves(10, stages=(0.0, 1.0))
