"""Parallelism must never change results (the Menard et al. bar).

For each fan-out site — DSE engines, fleet-campaign sweeps, XiL scenario
batteries — the same master seed must yield identical results for
workers in {1, 2, 4}, including when a worker crash forces a retry.
"""

import pytest

from repro.core import CampaignJob, CampaignSpec, sweep_campaigns
from repro.dse import (
    MappingProblem,
    annealing_search,
    genetic_search,
    random_search,
)
from repro.exec import ParallelExecutor
from repro.hw import BusSpec, EcuSpec, OsClass, Topology
from repro.model import AppModel, Asil, SystemModel
from repro.osal import TaskSpec
from repro.sim import RngStreams
from repro.xil import ScenarioSpec, run_battery

WORKER_COUNTS = [1, 2, 4]


def make_model(n_apps=4, n_ecus=3):
    topo = Topology()
    topo.add_bus(BusSpec("eth", "ethernet", 1e9, tsn_capable=True))
    for i in range(n_ecus):
        topo.add_ecu(EcuSpec(
            f"e{i}", cpu_mhz=800, cores=2, memory_kib=1 << 18,
            flash_kib=1 << 20, has_mmu=True, os_class=OsClass.POSIX_RT,
            ports=(("eth0", "ethernet"),), unit_cost=50.0 + 10 * i,
        ))
        topo.attach(f"e{i}", "eth0", "eth")
    model = SystemModel(topo)
    for i in range(n_apps):
        model.add_app(AppModel(
            name=f"app{i}",
            tasks=(TaskSpec(name=f"t{i}", period=0.01, wcet=0.002),),
            asil=Asil.C, memory_kib=64, image_kib=64,
        ))
    return model


def archive_fingerprint(result):
    """Canonical, order-sensitive view of a search outcome."""
    return (
        result.engine,
        result.evaluations,
        result.best.genome,
        result.best.evaluation,
        [(c.genome, c.evaluation) for c in result.archive.members],
    )


class TestDseDeterminism:
    def run_engine(self, fn, workers, **kwargs):
        problem = MappingProblem(make_model())
        if workers == 0:
            return archive_fingerprint(fn(problem, RngStreams(21), **kwargs))
        with ParallelExecutor(workers=workers, master_seed=0) as executor:
            return archive_fingerprint(
                fn(problem, RngStreams(21), executor=executor, **kwargs)
            )

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_random_search_matches_plain_serial(self, workers):
        reference = self.run_engine(random_search, 0, budget=40)
        assert self.run_engine(random_search, workers, budget=40) == reference

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_ga_matches_plain_serial(self, workers):
        kwargs = dict(population=10, generations=4)
        reference = self.run_engine(genetic_search, 0, **kwargs)
        assert self.run_engine(genetic_search, workers, **kwargs) == reference

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_sa_neighbourhood_matches_plain_serial(self, workers):
        kwargs = dict(budget=40, neighbourhood=4)
        reference = self.run_engine(annealing_search, 0, **kwargs)
        assert self.run_engine(annealing_search, workers, **kwargs) == reference

    def test_sa_neighbourhood_one_unchanged_from_legacy_sequence(self):
        """neighbourhood=1 must replay the historical SA trajectory
        (same stream draws in the same order)."""
        a = annealing_search(
            MappingProblem(make_model()), RngStreams(3), budget=60
        )
        b = annealing_search(
            MappingProblem(make_model()), RngStreams(3), budget=60,
            neighbourhood=1,
        )
        assert archive_fingerprint(a) == archive_fingerprint(b)


CAMPAIGN_SPEC = CampaignSpec(
    fleet_size=2,
    soak_time=0.3,
    target_wcet=0.004,
    target_wcet_jitter=0.004,
    target_deadline=0.002,
)


class TestCampaignDeterminism:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_sweep_outcomes_identical(self, workers):
        reference = sweep_campaigns(
            CAMPAIGN_SPEC, replications=4, master_seed=17
        )
        with ParallelExecutor(workers=workers, master_seed=17) as executor:
            swept = sweep_campaigns(
                CAMPAIGN_SPEC, replications=4, executor=executor
            )
        assert swept.outcomes == reference.outcomes
        assert repr(swept.outcomes) == repr(reference.outcomes)

    def test_replications_differ_from_each_other(self):
        """The jitter stream actually diversifies replications."""
        result = sweep_campaigns(CAMPAIGN_SPEC, replications=4, master_seed=17)
        wcets = {o.target_wcet for o in result.outcomes}
        assert len(wcets) == 4

    def test_merged_digest_covers_all_replications(self):
        result = sweep_campaigns(CAMPAIGN_SPEC, replications=3, master_seed=1)
        assert result.digest["exec"]["jobs"] == 3
        events = result.digest["metrics"]["counter"]["sim.events"]["value"]
        assert events > 0


SCENARIOS = [
    ScenarioSpec(name="nominal", duration=8.0, max_settling_time=None,
                 max_steady_state_error=30.0),
    ScenarioSpec(name="sil", level="SiL", duration=4.0,
                 max_settling_time=None, max_steady_state_error=30.0),
    ScenarioSpec(name="dropout", duration=8.0,
                 sensor_dropout_window=(2.0, 3.0),
                 max_settling_time=None, max_steady_state_error=30.0),
    ScenarioSpec(name="stuck", duration=8.0, actuator_stuck_at=0.2,
                 max_settling_time=None, max_steady_state_error=0.01),
]


class TestXilDeterminism:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_battery_verdicts_identical(self, workers):
        reference = run_battery(SCENARIOS)
        with ParallelExecutor(workers=workers) as executor:
            battery = run_battery(SCENARIOS, executor=executor)
        assert battery.verdicts == reference.verdicts
        assert repr(battery.verdicts) == repr(reference.verdicts)

    def test_battery_distinguishes_pass_and_fail(self):
        result = run_battery(SCENARIOS)
        by_name = {v.name: v for v in result.verdicts}
        assert by_name["stuck"].passed is False  # impossible SSE bound
        assert result.failures >= 1


class TestWarmPoolMatrixDeterminism:
    """workers x chunk_size x warm-pool reuse, at the fan-out-site level."""

    @pytest.mark.parametrize("chunk_size", [1, 3, None])
    def test_sweep_digests_identical_across_matrix(self, chunk_size):
        reference = sweep_campaigns(
            CAMPAIGN_SPEC, replications=4, master_seed=17
        )
        for workers in WORKER_COUNTS:
            with ParallelExecutor(workers=workers, master_seed=17,
                                  chunk_size=chunk_size) as executor:
                first = sweep_campaigns(
                    CAMPAIGN_SPEC, replications=4, executor=executor
                )
                # second batch reuses the same warm pool (and, with
                # chunk_size=None, a trained cost model)
                second = sweep_campaigns(
                    CAMPAIGN_SPEC, replications=4, executor=executor
                )
            assert first.outcomes == reference.outcomes
            assert second.outcomes == reference.outcomes
            assert first.digest == reference.digest
            assert second.digest == reference.digest


class FlakyCampaignJob(CampaignJob):
    """Crashes on its first attempt — exercises retry under fan-out."""

    def run(self, ctx):
        if ctx.attempt == 0:
            raise RuntimeError("injected worker crash")
        return super().run(ctx)


class TestCrashRetryDeterminism:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_retried_replication_matches_clean_run(self, workers):
        clean_jobs = [
            CampaignJob(f"campaign.rep{i}", CAMPAIGN_SPEC) for i in range(3)
        ]
        flaky_jobs = [
            CampaignJob("campaign.rep0", CAMPAIGN_SPEC),
            FlakyCampaignJob("campaign.rep1", CAMPAIGN_SPEC),
            CampaignJob("campaign.rep2", CAMPAIGN_SPEC),
        ]
        with ParallelExecutor(workers=1, master_seed=17) as executor:
            reference = executor.run(clean_jobs)
        with ParallelExecutor(workers=workers, master_seed=17,
                              retries=1) as executor:
            report = executor.run_jobs(flaky_jobs)
        assert report.failed == 0
        assert report.retried == 1
        assert report.values == reference
