"""Worker supervision tests: heartbeats, hang detection, SIGTERM→SIGKILL
escalation, idempotent chunk re-dispatch, and bounded pool teardown.

The scenarios here are the executor-level failure shapes the recovery
layer is built on: a *dead* worker (pipe EOF), a *hung* worker (alive
but silent — SIGSTOPped, so heartbeats stop while the pipe stays open)
and a worker that ignores SIGTERM outright.
"""

import os
import pickle
import signal
import time
from time import perf_counter

import pytest

from repro.errors import ExecutionError
from repro.exec import FunctionJob, ParallelExecutor, SimJob
from repro.exec import pool as pool_mod


def echo(ctx, x):
    return x * 3


def _proc_state(pid):
    """Single-letter /proc state of ``pid`` ('T' = stopped), or ''."""
    try:
        with open(f"/proc/{pid}/stat") as fh:
            return fh.read().rsplit(")", 1)[1].split()[0]
    except OSError:
        return ""


def _counter_value(executor, name):
    return executor.supervisor.snapshot()["counter"][name]["value"]


class StallOnceJob(SimJob):
    """SIGSTOPs its worker on the first run; completes on re-dispatch.

    A stopped process is the canonical *hung* worker: the pipe stays
    open (no EOF), the process is alive, but heartbeats stop — only the
    watchdog can tell it apart from a slow job.
    """

    def __init__(self, job_id, marker):
        self.job_id = job_id
        self.marker = marker

    def run(self, ctx):
        if not os.path.exists(self.marker):
            with open(self.marker, "w"):
                pass
            os.kill(os.getpid(), signal.SIGSTOP)
        return f"recovered:{ctx.seed}"


class ExitOnceJob(SimJob):
    """Kills its worker on the first run; completes on re-dispatch."""

    def __init__(self, job_id, marker):
        self.job_id = job_id
        self.marker = marker

    def run(self, ctx):
        if not os.path.exists(self.marker):
            with open(self.marker, "w"):
                pass
            os._exit(21)
        return f"survived:{ctx.seed}"


class AlwaysExitJob(SimJob):
    """A poison pill: kills every worker it ever lands on."""

    job_id = "poison"

    def run(self, ctx):
        os._exit(23)


class IgnoreTermSleepJob(SimJob):
    """Installs SIG_IGN for SIGTERM, then sleeps forever."""

    job_id = "ignore_term"

    def run(self, ctx):
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        time.sleep(120.0)
        return "woke"


class TestValidation:
    def test_heartbeat_timeout_must_exceed_period(self):
        with pytest.raises(ExecutionError):
            ParallelExecutor(
                workers=2, heartbeat_period=0.5, heartbeat_timeout=0.5
            )

    def test_heartbeat_timeout_requires_a_period(self):
        with pytest.raises(ExecutionError):
            ParallelExecutor(
                workers=2, heartbeat_period=0.0, heartbeat_timeout=1.0
            )

    def test_negative_knobs_rejected(self):
        with pytest.raises(ExecutionError):
            ParallelExecutor(workers=2, max_redispatches=-1)
        with pytest.raises(ExecutionError):
            ParallelExecutor(workers=2, shutdown_grace=-0.1)
        with pytest.raises(ExecutionError):
            ParallelExecutor(workers=2, heartbeat_period=-0.1)


class TestHangDetection:
    def test_hung_worker_is_killed_and_chunk_redispatched(self, tmp_path):
        marker = str(tmp_path / "stalled")
        ex = ParallelExecutor(
            workers=2, heartbeat_period=0.05, heartbeat_timeout=0.4,
            shutdown_grace=0.3,
        )
        try:
            ex.warm_up()
            jobs = [FunctionJob(f"j{i}", echo, i) for i in range(8)]
            jobs.append(StallOnceJob("stall", marker))
            report = ex.run_jobs(jobs)
            assert report.failed == 0
            stall = report.results[-1]
            assert stall.value == f"recovered:{stall.seed}"
            assert _counter_value(ex, "pool.supervisor.hangs") >= 1
            assert _counter_value(ex, "pool.supervisor.redispatches") >= 1
            assert _counter_value(ex, "pool.supervisor.restarts") >= 1
            # SIGTERM cannot reach a stopped process — the SIGKILL
            # escalation is what reaped it
            assert _counter_value(ex, "pool.supervisor.escalations") >= 1
        finally:
            ex.close()

    def test_slow_but_beating_job_is_not_declared_hung(self):
        ex = ParallelExecutor(
            workers=2, heartbeat_period=0.05, heartbeat_timeout=0.3,
            shutdown_grace=0.3,
        )
        try:
            ex.warm_up()
            from .test_warm_pool import SleepJob

            # sleeps twice the heartbeat timeout: a watchdog keyed on
            # job runtime would kill it; one keyed on beats must not
            report = ex.run_jobs([SleepJob("slow", 0.6)])
            assert report.failed == 0
            assert report.results[0].value == "slept"
            assert _counter_value(ex, "pool.supervisor.hangs") == 0
        finally:
            ex.close()


class TestRedispatch:
    def test_dead_worker_chunk_redispatched_idempotently(self, tmp_path):
        marker = str(tmp_path / "exited")
        ex = ParallelExecutor(workers=2, shutdown_grace=0.3)
        inline = ParallelExecutor(workers=1)
        try:
            jobs = [FunctionJob(f"j{i}", echo, i) for i in range(8)]
            reference = inline.run_jobs(
                jobs + [FunctionJob("extra", echo, 99)]
            ).values
            report = ex.run_jobs(
                jobs + [ExitOnceJob("extra", marker)]
            )
            assert report.failed == 0
            # chunk-mates of the dying job re-ran with their original
            # seeds and were recorded exactly once each
            assert report.values[:8] == reference[:8]
            assert report.results[-1].value.startswith("survived:")
            assert _counter_value(ex, "pool.supervisor.redispatches") >= 1
        finally:
            ex.close()

    def test_poison_pill_fails_after_redispatch_budget(self):
        ex = ParallelExecutor(
            workers=2, retries=0, max_redispatches=2, shutdown_grace=0.3,
        )
        try:
            report = ex.run_jobs(
                [FunctionJob(f"j{i}", echo, i) for i in range(4)]
                + [AlwaysExitJob()]
            )
            assert report.failed == 1
            poison = report.results[-1]
            assert "died" in poison.error
            assert "gave up after 2 redispatches" in poison.error
            # healthy chunk-mates still completed
            assert report.values[:4] == [0, 3, 6, 9]
        finally:
            ex.close()

    def test_redispatch_disabled_fails_immediately(self):
        ex = ParallelExecutor(
            workers=2, retries=0, max_redispatches=0, shutdown_grace=0.3,
        )
        try:
            report = ex.run_jobs([AlwaysExitJob()])
            assert report.failed == 1
            assert "died" in report.results[0].error
            assert _counter_value(ex, "pool.supervisor.redispatches") == 0
        finally:
            ex.close()


class TestBoundedTeardown:
    def test_close_escalates_past_sigterm_ignoring_worker(self):
        """A sleep-forever worker that ignores SIGTERM must not stall
        shutdown: close() is bounded by ~2x shutdown_grace and SIGKILLs
        the straggler (the atexit-hook regression)."""
        ex = ParallelExecutor(
            workers=2, shutdown_grace=0.3, heartbeat_period=0.0,
        )
        ex.warm_up()
        victim = ex._handles[0]
        payload = [(0, IgnoreTermSleepJob(), 0, 0)]
        victim.conn.send_bytes(
            pickle.dumps((None, None, payload), pickle.HIGHEST_PROTOCOL)
        )
        time.sleep(0.5)  # let the worker install SIG_IGN and sleep
        procs = [h.proc for h in ex._handles]
        start = perf_counter()
        ex.close()
        elapsed = perf_counter() - start
        assert elapsed < 5.0, f"teardown took {elapsed:.1f}s — unbounded"
        for proc in procs:
            proc.join(timeout=2.0)
            assert not proc.is_alive()
        assert _counter_value(ex, "pool.supervisor.escalations") >= 1

    def test_close_is_idempotent_and_cheap_when_empty(self):
        ex = ParallelExecutor(workers=2, shutdown_grace=0.3)
        ex.close()
        ex.close()
        assert ex._handles == []

    def test_kill_escalation_reported_by_handle(self):
        ex = ParallelExecutor(workers=2, shutdown_grace=0.2)
        ex.warm_up()
        try:
            handle = ex._handles[0]
            os.kill(handle.proc.pid, signal.SIGSTOP)
            deadline = perf_counter() + 5.0
            while _proc_state(handle.proc.pid) != "T":
                assert perf_counter() < deadline, "worker never stopped"
                time.sleep(0.01)
            # a stopped process defers SIGTERM -> kill() must escalate
            assert handle.kill(grace=0.2) is True
            assert not handle.proc.is_alive()
        finally:
            ex.close()


class TestSupervisorMetrics:
    def test_supervisor_snapshot_exposes_all_counters(self):
        ex = ParallelExecutor(workers=2)
        counters = ex.supervisor.snapshot()["counter"]
        assert set(counters) == {
            "pool.supervisor.restarts",
            "pool.supervisor.hangs",
            "pool.supervisor.redispatches",
            "pool.supervisor.escalations",
        }
        assert all(v["value"] == 0 for v in counters.values())

    def test_beats_do_not_confuse_ping(self):
        """Stale beats on the pipe are drained by ping() (warm_up after
        a busy period must still round-trip)."""
        ex = ParallelExecutor(workers=2, heartbeat_period=0.02)
        try:
            ex.warm_up()
            from .test_warm_pool import SleepJob

            ex.run_jobs([SleepJob(f"s{i}", 0.1) for i in range(2)])
            ex.warm_up()  # pings again; beats from the sleeps are stale
            assert all(h.ping() for h in ex._handles)
        finally:
            ex.close()


def test_worker_beats_only_while_busy():
    """An idle warm pool writes no beat frames (the pipe buffer of a
    long-idle pool must not fill with stale beats)."""
    ex = ParallelExecutor(workers=2, heartbeat_period=0.02)
    try:
        ex.warm_up()
        time.sleep(0.3)  # many periods of idleness
        for handle in ex._handles:
            assert not handle.conn.poll(0), "idle worker wrote to its pipe"
    finally:
        ex.close()


def test_module_frames_are_distinct():
    frames = {pool_mod._STOP, pool_mod._PING, pool_mod._PONG,
              pool_mod._BEAT, pool_mod._DIE}
    assert len(frames) == 5
