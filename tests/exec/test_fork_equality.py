"""Fork-per-variant must equal rebuild-per-variant, bit for bit.

Every fan-out site grew a fork path (shared warmed-up snapshot, variants
restore and run only their own half).  These tests pin the tentpole
guarantee: ``fork=True`` and ``fork=False`` produce identical outcomes
AND identical merged digests — same event counts, same metrics — for the
fault campaign, the fleet sweep and the XiL battery.
"""

from repro.core.campaign import CampaignSpec, sweep_campaigns
from repro.faults import FaultCampaignSpec, FaultPlan, FaultSpec
from repro.faults.campaign import run_fault_campaign
from repro.xil import ScenarioSpec, run_battery

CHAOS_SPEC = FaultCampaignSpec(
    plan=FaultPlan(
        name="eq",
        faults=(
            FaultSpec(kind="ecu_crash", target="platform_0", start=0.05,
                      duration=0.2),
            FaultSpec(kind="frame_drop", target="eth_backbone", start=0.02,
                      duration=0.2, probability=0.3),
        ),
    ),
    soak_time=0.3,
)

FLEET_SPEC = CampaignSpec(fleet_size=2, soak_time=0.3, target_wcet=0.004,
                          target_wcet_jitter=0.004, target_deadline=0.002)

SCENARIOS = [
    ScenarioSpec(name="nominal", level="SiL", duration=4.0),
    ScenarioSpec(name="dropout", level="SiL", duration=4.0,
                 sensor_dropout_window=(2.5, 3.0)),
    ScenarioSpec(name="stuck", level="SiL", duration=4.0,
                 sensor_stuck_at=10.0),  # ineligible: falls back to rebuild
    ScenarioSpec(name="mil", level="MiL", duration=4.0),
]


class TestFaultCampaignForkEquality:
    def test_outcomes_and_digest_identical(self):
        forked = run_fault_campaign(CHAOS_SPEC, replications=3,
                                    master_seed=11, fork=True)
        rebuilt = run_fault_campaign(CHAOS_SPEC, replications=3,
                                     master_seed=11, fork=False)
        assert forked.outcomes == rebuilt.outcomes
        assert forked.digest["metrics"] == rebuilt.digest["metrics"]


class TestFleetSweepForkEquality:
    def test_outcomes_and_digest_identical(self):
        forked = sweep_campaigns(FLEET_SPEC, replications=3,
                                 master_seed=11, fork=True)
        rebuilt = sweep_campaigns(FLEET_SPEC, replications=3,
                                  master_seed=11, fork=False)
        assert forked.outcomes == rebuilt.outcomes
        assert forked.digest["metrics"] == rebuilt.digest["metrics"]


class TestBatteryForkEquality:
    def test_verdicts_identical_including_ineligible_scenarios(self):
        forked = run_battery(SCENARIOS, master_seed=11, fork=True)
        rebuilt = run_battery(SCENARIOS, master_seed=11, fork=False)
        assert [v.name for v in forked.verdicts] == \
               [v.name for v in rebuilt.verdicts]
        for fv, rv in zip(forked.verdicts, rebuilt.verdicts):
            assert fv == rv  # overshoot/settling/error/samples bitwise equal
