"""Tests for the ParallelExecutor job machinery itself."""

import os

import pytest

from repro.errors import ExecutionError
from repro.exec import (
    FunctionJob,
    ParallelExecutor,
    SimJob,
    derive_job_seed,
)
from repro.obs.report import merge_digests


def echo_seed(ctx, tag):
    """Module-level so it pickles by reference."""
    ctx.metrics.counter("test.runs").inc()
    ctx.metrics.histogram("test.values").observe(float(len(tag)))
    return (tag, ctx.seed, ctx.rng().uniform("u", 0.0, 1.0))


class CrashingJob(SimJob):
    """Raises until the given attempt number is reached."""

    def __init__(self, job_id, succeed_on_attempt):
        self.job_id = job_id
        self.succeed_on_attempt = succeed_on_attempt

    def run(self, ctx):
        if ctx.attempt < self.succeed_on_attempt:
            raise RuntimeError(f"injected crash (attempt {ctx.attempt})")
        return ("recovered", ctx.seed, ctx.attempt)


def make_jobs(n=8):
    return [FunctionJob(f"job{i}", echo_seed, f"tag{i}") for i in range(n)]


class TestSeedDerivation:
    def test_seed_depends_on_master_and_id_only(self):
        a = derive_job_seed(1, "x")
        assert a == derive_job_seed(1, "x")
        assert a != derive_job_seed(2, "x")
        assert a != derive_job_seed(1, "y")

    def test_job_seeds_never_collide_with_stream_seeds(self):
        from repro.sim.rng import _derive_seed

        assert derive_job_seed(0, "a") != _derive_seed(0, "a")


class TestExecutorBasics:
    def test_empty_batch(self):
        with ParallelExecutor(workers=1) as ex:
            assert ex.run([]) == []

    def test_results_in_job_order(self):
        with ParallelExecutor(workers=2, master_seed=5) as ex:
            values = ex.run(make_jobs())
        assert [v[0] for v in values] == [f"tag{i}" for i in range(8)]

    def test_duplicate_job_ids_rejected(self):
        jobs = [FunctionJob("same", echo_seed, "a"),
                FunctionJob("same", echo_seed, "b")]
        with ParallelExecutor(workers=1) as ex:
            with pytest.raises(ExecutionError, match="duplicate"):
                ex.run(jobs)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ExecutionError):
            ParallelExecutor(workers=0)
        with pytest.raises(ExecutionError):
            ParallelExecutor(workers=1, retries=-1)

    def test_parallel_workers_use_other_processes(self):
        with ParallelExecutor(workers=2, chunk_size=1) as ex:
            report = ex.run_jobs(make_jobs(4))
        assert all(r.worker_pid != 0 for r in report.results)
        assert any(r.worker_pid != os.getpid() for r in report.results)


class TestDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_values_identical_across_worker_counts(self, workers):
        jobs = make_jobs(10)
        with ParallelExecutor(workers=1, master_seed=42) as ex:
            serial = ex.run(jobs)
        with ParallelExecutor(workers=workers, master_seed=42) as ex:
            parallel = ex.run(jobs)
        assert serial == parallel

    def test_chunking_never_affects_values(self):
        jobs = make_jobs(9)
        outputs = []
        for chunk_size in (1, 4, 100):
            with ParallelExecutor(workers=2, master_seed=7,
                                  chunk_size=chunk_size) as ex:
                outputs.append(ex.run(jobs))
        assert outputs[0] == outputs[1] == outputs[2]

    def test_master_seed_changes_values(self):
        jobs = make_jobs(3)
        with ParallelExecutor(workers=1, master_seed=1) as ex:
            a = ex.run(jobs)
        with ParallelExecutor(workers=1, master_seed=2) as ex:
            b = ex.run(jobs)
        assert a != b


class TestRetry:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_crash_once_recovers_with_same_seed(self, workers):
        jobs = [CrashingJob("flaky", 1), FunctionJob("ok", echo_seed, "x")]
        with ParallelExecutor(workers=workers, master_seed=9, retries=1) as ex:
            report = ex.run_jobs(jobs)
        assert report.failed == 0
        assert report.retried == 1
        flaky = report.results[0]
        assert flaky.attempts == 2
        assert flaky.value == ("recovered", derive_job_seed(9, "flaky"), 1)

    def test_retry_budget_exhausted_reports_error(self):
        with ParallelExecutor(workers=1, retries=1) as ex:
            report = ex.run_jobs([CrashingJob("doomed", 5)])
        assert report.failed == 1
        assert "injected crash" in report.results[0].error
        with ParallelExecutor(workers=1, retries=1) as ex:
            with pytest.raises(ExecutionError, match="doomed"):
                ex.run([CrashingJob("doomed", 5)])

    def test_crash_does_not_poison_chunk_mates(self):
        jobs = [FunctionJob("a", echo_seed, "a"), CrashingJob("bad", 99),
                FunctionJob("b", echo_seed, "b")]
        with ParallelExecutor(workers=1, retries=0) as ex:
            report = ex.run_jobs(jobs)
        assert [r.ok for r in report.results] == [True, False, True]


class TestDigestMerging:
    def test_counters_sum_across_jobs(self):
        with ParallelExecutor(workers=2, master_seed=0) as ex:
            report = ex.run_jobs(make_jobs(6))
        digest = report.merged_digest()
        assert digest["exec"]["jobs"] == 6
        assert digest["metrics"]["counter"]["test.runs"]["value"] == 6.0

    def test_histograms_merge_counts_and_extremes(self):
        with ParallelExecutor(workers=1, master_seed=0) as ex:
            report = ex.run_jobs(make_jobs(4))
        hist = report.merged_digest()["metrics"]["histogram"]["test.values"]
        assert hist["count"] == 4
        assert hist["min"] == 4.0  # len("tag0")
        assert "p95" not in hist  # quantiles cannot be merged exactly

    def test_merge_digests_handles_empty(self):
        merged = merge_digests([], jobs=0)
        assert merged["metrics"] == {}
        assert merged["exec"]["digests_merged"] == 0

    def test_gauges_take_max(self):
        merged = merge_digests([
            {"metrics": {"gauge": {"depth": {"value": 3.0}}}},
            {"metrics": {"gauge": {"depth": {"value": 7.0}}}},
            {"metrics": {"gauge": {"depth": {"value": 5.0}}}},
        ])
        assert merged["metrics"]["gauge"]["depth"]["value"] == 7.0
