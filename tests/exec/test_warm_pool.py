"""Warm-pool architecture tests: persistence, cost-model chunking,
deadline isolation, surgical worker rebuild, and error-path cleanup.

The determinism matrix here is the executor-level contract behind the
`BENCH_exec.json` gate: identical :class:`BatchReport` digests for
workers x chunk_size x consecutive warm-pool batches.
"""

import os
from collections import deque

import pytest

from repro.errors import ExecutionError
from repro.exec import (
    FunctionJob,
    ParallelExecutor,
    SimJob,
    get_inline_executor,
    warm_executor,
)
from repro.exec import pool as pool_mod


def echo_seed(ctx, tag):
    """Module-level so it pickles by reference."""
    ctx.metrics.counter("test.runs").inc()
    return (tag, ctx.seed, ctx.rng().uniform("u", 0.0, 1.0))


def read_shared(ctx, offset):
    return ctx.shared["base"] + offset if ctx.shared else None


class SleepJob(SimJob):
    def __init__(self, job_id, seconds):
        self.job_id = job_id
        self.seconds = seconds

    def run(self, ctx):
        import time

        time.sleep(self.seconds)
        return "slept"


class ExitJob(SimJob):
    """Kills its worker process outright (no exception to catch)."""

    job_id = "exit"

    def run(self, ctx):
        os._exit(17)


def make_jobs(n=10):
    return [FunctionJob(f"job{i}", echo_seed, f"tag{i}") for i in range(n)]


def fingerprint(report):
    return (report.values, report.failed, report.retried,
            report.merged_digest()["metrics"])


class TestDeterminismMatrix:
    def test_workers_chunking_and_warm_reuse_matrix(self):
        """workers x chunk_size x two consecutive warm batches must all
        produce identical BatchReport digests."""
        jobs = make_jobs(10)
        with ParallelExecutor(workers=1, master_seed=33) as ex:
            reference = fingerprint(ex.run_jobs(jobs))
        for workers in (1, 2, 4):
            for chunk_size in (1, 3, None):
                with ParallelExecutor(workers=workers, master_seed=33,
                                      chunk_size=chunk_size) as ex:
                    first = fingerprint(ex.run_jobs(jobs))
                    second = fingerprint(ex.run_jobs(jobs))  # warm reuse
                assert first == reference, (workers, chunk_size)
                assert second == reference, (workers, chunk_size)

    def test_cost_model_state_never_changes_results(self):
        """A warmed cost model (big chunks) must match the cold probe
        round (single-job chunks) bit for bit."""
        jobs = make_jobs(16)
        with ParallelExecutor(workers=2, master_seed=5) as ex:
            cold = ex.run_jobs(jobs).values
            ex._cost_ema = 1e-6  # force maximal chunks
            hot = ex.run_jobs(jobs).values
        assert cold == hot

    def test_per_run_master_seed_override(self):
        jobs = make_jobs(4)
        with ParallelExecutor(workers=1, master_seed=7) as configured:
            reference = configured.run_jobs(jobs).values
        with ParallelExecutor(workers=2, master_seed=0) as ex:
            override = ex.run_jobs(jobs, master_seed=7).values
            default = ex.run_jobs(jobs).values
        assert override == reference
        assert default != reference


class TestWarmPoolPersistence:
    def test_workers_persist_across_batches(self):
        with ParallelExecutor(workers=2, chunk_size=1) as ex:
            first = {r.worker_pid for r in ex.run_jobs(make_jobs(6)).results}
            second = {r.worker_pid for r in ex.run_jobs(make_jobs(6)).results}
        assert first == second
        assert os.getpid() not in first

    def test_warm_up_prespawns_before_first_batch(self):
        with ParallelExecutor(workers=2) as ex:
            assert ex._handles == []
            ex.warm_up()
            pids = [h.proc.pid for h in ex._handles]
            assert len(pids) == 2
            ex.run_jobs(make_jobs(4))
            assert [h.proc.pid for h in ex._handles] == pids

    def test_warm_up_inline_is_noop(self):
        with ParallelExecutor(workers=1) as ex:
            ex.warm_up()
            assert ex._handles == []

    def test_crashed_worker_rebuilt_transparently_on_next_run(self):
        """A worker that dies between batches is replaced on the next
        run without touching its healthy pool-mates."""
        with ParallelExecutor(workers=2, chunk_size=1) as ex:
            ex.warm_up()
            victim, survivor = ex._handles
            victim.proc.terminate()
            victim.proc.join(timeout=2.0)
            report = ex.run_jobs(make_jobs(6))
            assert report.failed == 0
            assert survivor in ex._handles

    def test_shared_warm_executor_is_cached_and_inline_singleton(self):
        a = warm_executor(workers=2)
        b = warm_executor(workers=2)
        assert a is b
        assert warm_executor(workers=3) is not a
        assert get_inline_executor() is get_inline_executor()
        assert get_inline_executor().workers == 1

    def test_shared_warm_executor_rejects_master_seed(self):
        with pytest.raises(ExecutionError, match="per run"):
            warm_executor(workers=2, master_seed=9)


class TestSharedContext:
    def test_context_reaches_every_job_once_per_worker(self):
        jobs = [FunctionJob(f"ctx{i}", read_shared, i) for i in range(8)]
        payload = {"base": 100}
        with ParallelExecutor(workers=2, chunk_size=1) as ex:
            first = ex.run_jobs(jobs, context=payload).values
            # same object: workers reuse their cached copy (one pickle
            # total per worker, asserted via the executor-side cache)
            token_before = ex._context_seq
            second = ex.run_jobs(jobs, context=payload).values
            assert ex._context_seq == token_before
            third = ex.run_jobs(jobs, context={"base": 200}).values
            assert ex._context_seq == token_before + 1
        assert first == second == [100 + i for i in range(8)]
        assert third == [200 + i for i in range(8)]

    def test_context_none_by_default_and_inline_passthrough(self):
        jobs = [FunctionJob("a", read_shared, 1)]
        with ParallelExecutor(workers=1) as ex:
            assert ex.run_jobs(jobs).values == [None]
            assert ex.run_jobs(jobs, context={"base": 5}).values == [6]


class TestDeadlineIsolation:
    def test_timed_out_chunk_fails_only_its_own_jobs(self):
        """The ISSUE regression: one hung chunk must not take down the
        batch, and only the hung worker is rebuilt."""
        jobs = [SleepJob("hang", 30.0)] + make_jobs(4)
        with ParallelExecutor(workers=2, chunk_size=1, job_timeout=0.4,
                              grace=0.2, retries=0) as ex:
            ex.warm_up()
            before = {h.proc.pid for h in ex._handles}
            report = ex.run_jobs(jobs)
            after = {h.proc.pid for h in ex._handles}
        assert report.failed == 1
        assert not report.results[0].ok
        assert "deadline" in report.results[0].error
        assert all(r.ok for r in report.results[1:])
        # exactly one worker was replaced; the other kept its slot warm
        assert len(before & after) == 1
        assert len(after) == 2

    def test_deadline_uses_configurable_grace(self):
        """chunk deadline = job_timeout * len(chunk) + grace (the old
        code hardwired +1.0 regardless of the docstring)."""
        with ParallelExecutor(workers=2, chunk_size=1, job_timeout=0.05,
                              grace=2.0, retries=0) as ex:
            # 0.6s sleep < 0.05 + 2.0 grace: must NOT time out
            report = ex.run_jobs([SleepJob("slow", 0.6)])
        assert report.failed == 0

    def test_pool_still_serves_after_timeout(self):
        with ParallelExecutor(workers=2, chunk_size=1, job_timeout=0.3,
                              grace=0.2, retries=0) as ex:
            ex.run_jobs([SleepJob("hang", 30.0)])
            report = ex.run_jobs(make_jobs(4))
        assert report.failed == 0

    def test_invalid_grace_rejected(self):
        with pytest.raises(ExecutionError, match="grace"):
            ParallelExecutor(workers=1, grace=-0.1)


class TestWorkerDeath:
    def test_dead_worker_fails_only_its_chunk_and_is_respawned(self):
        jobs = make_jobs(4) + [ExitJob()]
        with ParallelExecutor(workers=2, chunk_size=1, retries=0) as ex:
            report = ex.run_jobs(jobs)
            assert report.failed == 1
            assert "died" in report.results[4].error
            assert all(r.ok for r in report.results[:4])
            # next batch runs on the rebuilt pool
            assert ex.run_jobs(make_jobs(3)).failed == 0


class TestErrorPathCleanup:
    def test_run_jobs_exception_tears_down_half_submitted_pool(self,
                                                               monkeypatch):
        """An error escaping mid-batch must not leak worker processes
        (the old executor left its pool running when run_jobs raised
        outside a context manager)."""
        ex = ParallelExecutor(workers=2)
        ex.warm_up()
        procs = [h.proc for h in ex._handles]

        def boom(self, pending):
            raise RuntimeError("dispatch bug")

        monkeypatch.setattr(ParallelExecutor, "_carve", boom)
        with pytest.raises(RuntimeError, match="dispatch bug"):
            ex.run_jobs(make_jobs(4))
        assert ex._handles == []
        for proc in procs:
            proc.join(timeout=5.0)
            assert not proc.is_alive()
        monkeypatch.undo()
        # a second run transparently rebuilds the pool
        assert ex.run_jobs(make_jobs(4)).failed == 0
        ex.close()

    def test_close_is_idempotent_and_reaps_workers(self):
        ex = ParallelExecutor(workers=2)
        ex.warm_up()
        procs = [h.proc for h in ex._handles]
        ex.close()
        ex.close()
        assert ex._handles == []
        for proc in procs:
            assert not proc.is_alive()


class TestStartMethodSelection:
    def test_explicit_unknown_method_names_available(self):
        with pytest.raises(ExecutionError, match="available"):
            ParallelExecutor(workers=1, start_method="bogus")

    def test_preference_order_fork_first(self, monkeypatch):
        monkeypatch.setattr(pool_mod.multiprocessing,
                            "get_all_start_methods",
                            lambda: ["spawn", "forkserver", "fork"])
        assert ParallelExecutor(workers=1).start_method == "fork"

    def test_preference_falls_back_in_order(self, monkeypatch):
        monkeypatch.setattr(pool_mod.multiprocessing,
                            "get_all_start_methods",
                            lambda: ["spawn", "forkserver"])
        assert ParallelExecutor(workers=1).start_method == "forkserver"
        monkeypatch.setattr(pool_mod.multiprocessing,
                            "get_all_start_methods", lambda: ["spawn"])
        assert ParallelExecutor(workers=1).start_method == "spawn"

    def test_no_method_available_names_tried(self, monkeypatch):
        monkeypatch.setattr(pool_mod.multiprocessing,
                            "get_all_start_methods", lambda: [])
        with pytest.raises(ExecutionError, match="fork"):
            ParallelExecutor(workers=1)


class TestCostModel:
    def _payloads(self, n):
        return deque((i, None, 0, 0) for i in range(n))

    def test_probe_chunks_before_first_measurement(self):
        ex = ParallelExecutor(workers=4)
        assert len(ex._carve(self._payloads(100))) == 1

    def test_chunks_sized_to_target_seconds(self):
        ex = ParallelExecutor(workers=4, target_chunk_seconds=0.1)
        ex._cost_ema = 0.01  # 10ms jobs -> 10 jobs per chunk
        assert len(ex._carve(self._payloads(1000))) == 10

    def test_fair_share_cap_keeps_workers_busy(self):
        ex = ParallelExecutor(workers=4, target_chunk_seconds=10.0)
        ex._cost_ema = 0.001  # cost model alone would say 10_000
        pending = self._payloads(40)
        assert len(ex._carve(pending)) == 5  # ceil(40 / (4*2))

    def test_fixed_chunk_size_wins(self):
        ex = ParallelExecutor(workers=4, chunk_size=3)
        ex._cost_ema = 1.0
        assert len(ex._carve(self._payloads(100))) == 3

    def test_cost_hint_seeds_the_model(self):
        class HintedJob(SimJob):
            cost_hint = 0.02

        ex = ParallelExecutor(workers=4)
        ex._seed_cost_model([(0, HintedJob(), 0, 0)])
        assert ex._cost_ema == pytest.approx(0.02)

    def test_measurements_update_the_ema(self):
        ex = ParallelExecutor(workers=4)
        ex._observe_cost((0, True, None, None, 1, 0.01))
        first = ex._cost_ema
        assert first == pytest.approx(0.01)
        ex._observe_cost((1, True, None, None, 1, 0.03))
        assert ex._cost_ema > first
        ex._observe_cost((2, False, "err", None, 1, 99.0))  # failures ignored
        assert ex._cost_ema < 1.0

    def test_plan_batches_is_one_per_worker(self):
        ex = ParallelExecutor(workers=4)
        assert ex.plan_batches(100) == 4
        assert ex.plan_batches(2) == 2
        assert ex.plan_batches(0) == 0

    def test_invalid_cost_params_rejected(self):
        with pytest.raises(ExecutionError, match="chunk_size"):
            ParallelExecutor(workers=1, chunk_size=0)
        with pytest.raises(ExecutionError, match="target_chunk_seconds"):
            ParallelExecutor(workers=1, target_chunk_seconds=0.0)
