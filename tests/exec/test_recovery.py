"""Checkpoint store tests: atomic writes, integrity, fault points, and
checkpointed batch execution with skip-and-persist semantics."""

import json
import os
import pickle

import pytest

from repro.errors import ExecutionError
from repro.exec import FunctionJob, ParallelExecutor, get_inline_executor
from repro.exec.recovery import (
    CheckpointCrash,
    CheckpointSpec,
    CheckpointStore,
    FaultPoints,
    load_manifest,
    plan_key,
    run_jobs_checkpointed,
)


def square(ctx, x):
    return x * x


def draw(ctx, tag):
    ctx.metrics.counter("test.draws").inc()
    return (tag, ctx.rng().uniform("u", 0.0, 1.0))


def make_store(tmp_path, every_n=1, fault_points=None, plan=("p", 1)):
    spec = CheckpointSpec(dir=str(tmp_path / "ckpt"), every_n_shards=every_n)
    return CheckpointStore(
        spec, kind="test", plan=plan, fault_points=fault_points
    )


class TestCheckpointSpec:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ExecutionError):
            CheckpointSpec(dir="")
        with pytest.raises(ExecutionError):
            CheckpointSpec(dir="/tmp/x", every_n_shards=0)


class TestStoreRoundtrip:
    def test_add_flush_load(self, tmp_path):
        store = make_store(tmp_path)
        store.add("shard.0-10", {"misses": 3})
        store.add("shard.10-20", {"misses": 5})
        fresh = make_store(tmp_path)
        records = fresh.load()
        assert records == {
            "shard.0-10": {"misses": 3}, "shard.10-20": {"misses": 5}
        }
        assert fresh.loaded == 2 and fresh.discarded == 0

    def test_every_n_buffers_until_batch(self, tmp_path):
        store = make_store(tmp_path, every_n=3)
        ckpt_files = lambda: [  # noqa: E731 - tiny test-local helper
            n for n in os.listdir(store.spec.dir) if n.endswith(".ckpt")
        ]
        store.add("a", 1)
        store.add("b", 2)
        assert ckpt_files() == []  # buffered, not yet durable
        store.add("c", 3)
        assert len(ckpt_files()) == 3  # third add hit the batch size
        store.add("d", 4)
        store.flush()  # explicit flush writes the remainder
        assert len(ckpt_files()) == 4

    def test_record_overwrite_keeps_latest(self, tmp_path):
        store = make_store(tmp_path)
        store.add("k", "old")
        store.add("k", "new")
        assert make_store(tmp_path).load() == {"k": "new"}

    def test_record_names_are_deterministic_and_collision_free(
        self, tmp_path
    ):
        from repro.exec.recovery import _record_name

        assert _record_name("a/b") != _record_name("a:b")  # same sanitized
        assert _record_name("x") == _record_name("x")


class TestIntegrity:
    def test_tmp_files_are_ignored(self, tmp_path):
        store = make_store(tmp_path)
        store.add("good", 1)
        with open(os.path.join(store.spec.dir, "torn.ckpt.tmp"), "wb") as fh:
            fh.write(b"half a record")
        assert make_store(tmp_path).load() == {"good": 1}

    def test_corrupt_payload_is_discarded(self, tmp_path):
        store = make_store(tmp_path)
        store.add("good", 1)
        store.add("bad", 2)
        bad_path = None
        for name in os.listdir(store.spec.dir):
            if name.startswith("bad") and name.endswith(".ckpt"):
                bad_path = os.path.join(store.spec.dir, name)
        with open(bad_path, "rb") as fh:
            header = fh.readline()
        with open(bad_path, "wb") as fh:
            fh.write(header + b"corrupted payload bytes")
        fresh = make_store(tmp_path)
        assert fresh.load() == {"good": 1}
        assert fresh.discarded == 1

    def test_truncated_record_is_discarded(self, tmp_path):
        store = make_store(tmp_path)
        store.add("only", {"x": 1})
        (path,) = [
            os.path.join(store.spec.dir, n)
            for n in os.listdir(store.spec.dir) if n.endswith(".ckpt")
        ]
        with open(path, "r+b") as fh:
            fh.truncate(10)
        fresh = make_store(tmp_path)
        assert fresh.load() == {}
        assert fresh.discarded == 1

    def test_foreign_plan_records_rejected_at_open(self, tmp_path):
        make_store(tmp_path, plan=("p", 1))
        with pytest.raises(ExecutionError, match="different campaign"):
            make_store(tmp_path, plan=("p", 2))

    def test_plan_key_is_content_addressed(self):
        assert plan_key("k", (1, 2)) == plan_key("k", (1, 2))
        assert plan_key("k", (1, 2)) != plan_key("k", (1, 3))
        assert plan_key("a", (1, 2)) != plan_key("b", (1, 2))

    def test_manifest_validates(self, tmp_path):
        store = make_store(tmp_path)
        manifest = load_manifest(store.spec.dir)
        assert manifest["kind"] == "test"
        assert manifest["plan_key"] == store.plan_key
        assert pickle.loads(bytes.fromhex(manifest["plan_hex"])) == ("p", 1)
        with pytest.raises(ExecutionError, match="nothing to resume"):
            load_manifest(str(tmp_path / "nowhere"))

    def test_bad_schema_rejected(self, tmp_path):
        store = make_store(tmp_path)
        path = os.path.join(store.spec.dir, "manifest.json")
        with open(path) as fh:
            manifest = json.load(fh)
        manifest["schema"] = 99
        with open(path, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(ExecutionError, match="schema"):
            load_manifest(store.spec.dir)


class TestFaultPoints:
    def test_armed_point_crashes_on_schedule(self):
        fp = FaultPoints().arm("p", after=2)
        fp.hit("p")
        fp.hit("p")
        with pytest.raises(CheckpointCrash):
            fp.hit("p")
        fp.hit("p")  # disarmed after firing
        assert fp.hits["p"] == 4

    def test_unarmed_points_only_count(self):
        fp = FaultPoints()
        fp.hit("x")
        fp.hit("x")
        assert fp.hits == {"x": 2}

    def test_crash_before_rename_leaves_no_record(self, tmp_path):
        fp = FaultPoints().arm("checkpoint.tmp_written")
        store = make_store(tmp_path, fault_points=fp)
        with pytest.raises(CheckpointCrash):
            store.add("shard", {"x": 1})
        # the temp file may remain, but no *visible* record does — and a
        # resume recomputes the shard instead of trusting torn state
        assert make_store(tmp_path).load() == {}

    def test_crash_after_rename_keeps_the_record(self, tmp_path):
        fp = FaultPoints().arm("checkpoint.record_written")
        store = make_store(tmp_path, fault_points=fp)
        with pytest.raises(CheckpointCrash):
            store.add("shard", {"x": 1})
        assert make_store(tmp_path).load() == {"shard": {"x": 1}}


class TestRunJobsCheckpointed:
    def test_without_store_is_plain_run_jobs(self):
        jobs = [FunctionJob(f"j{i}", square, i) for i in range(5)]
        report = run_jobs_checkpointed(
            jobs, executor=get_inline_executor(), master_seed=3
        )
        assert report.values == [0, 1, 4, 9, 16]

    def test_second_run_loads_instead_of_recomputing(self, tmp_path):
        jobs = [FunctionJob(f"j{i}", draw, f"t{i}") for i in range(6)]
        ex = get_inline_executor()
        store = make_store(tmp_path)
        first = run_jobs_checkpointed(
            jobs, executor=ex, master_seed=5, store=store
        )
        again = run_jobs_checkpointed(
            jobs, executor=ex, master_seed=5, store=make_store(tmp_path)
        )
        assert again.values == first.values
        assert [r.digest for r in again.results] == [
            r.digest for r in first.results
        ]
        # loaded results are marked as replayed, not re-executed
        assert all(r.attempts == 0 for r in again.results)
        assert all(r.attempts == 1 for r in first.results)

    def test_partial_store_runs_only_missing_jobs(self, tmp_path):
        jobs = [FunctionJob(f"j{i}", draw, f"t{i}") for i in range(6)]
        ex = get_inline_executor()
        full_store = make_store(tmp_path)
        reference = run_jobs_checkpointed(
            jobs, executor=ex, master_seed=5, store=full_store
        )
        # drop half the records to simulate a mid-batch crash
        names = sorted(
            n for n in os.listdir(full_store.spec.dir)
            if n.endswith(".ckpt")
        )
        for name in names[:3]:
            os.remove(os.path.join(full_store.spec.dir, name))
        resumed = run_jobs_checkpointed(
            jobs, executor=ex, master_seed=5, store=make_store(tmp_path)
        )
        assert resumed.values == reference.values
        ran = [r for r in resumed.results if r.attempts > 0]
        assert len(ran) == 3  # exactly the missing ones re-ran

    def test_results_persist_mid_batch_not_only_at_the_end(self, tmp_path):
        """The on_result hook flushes shards as they complete: a crash
        after N completions must leave N durable records."""
        fp = FaultPoints().arm("checkpoint.record_written", after=2)
        store = make_store(tmp_path, fault_points=fp)
        jobs = [FunctionJob(f"j{i}", square, i) for i in range(6)]
        with pytest.raises(CheckpointCrash):
            run_jobs_checkpointed(
                jobs, executor=get_inline_executor(), master_seed=1,
                store=store,
            )
        assert len(make_store(tmp_path).load()) == 3

    def test_parallel_checkpointed_matches_inline(self, tmp_path):
        jobs = [FunctionJob(f"j{i}", draw, f"t{i}") for i in range(12)]
        reference = get_inline_executor().run_jobs(jobs, master_seed=9)
        ex = ParallelExecutor(workers=2, shutdown_grace=0.3)
        try:
            report = run_jobs_checkpointed(
                jobs, executor=ex, master_seed=9, store=make_store(tmp_path)
            )
        finally:
            ex.close()
        assert report.values == reference.values
        resumed = run_jobs_checkpointed(
            jobs, executor=get_inline_executor(), master_seed=9,
            store=make_store(tmp_path),
        )
        assert resumed.values == reference.values
        assert all(r.attempts == 0 for r in resumed.results)
