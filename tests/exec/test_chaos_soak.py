"""Chaos soak: a fleet campaign under continuous executor-level chaos
(random SIGKILLs and pipe EOFs), plus an injected checkpoint-write
crash, must resume to the byte-identical campaign digest of a clean run.

This is the end-to-end composition the recovery layer exists for: the
supervisor turns killed workers into re-dispatches, the checkpoint store
turns the crash into a skip-and-replay resume, and per-item seed
derivation makes both invisible to the digest.
"""

import json

import pytest

from repro.exec import ExecChaos, ParallelExecutor
from repro.exec.recovery import (
    CheckpointCrash,
    CheckpointSpec,
    FaultPoints,
    resume_campaign,
)
from repro.fleet import FleetCampaign, FleetCampaignSpec, FleetSpec, run_fleet_campaign

SOAK_SPEC = FleetCampaignSpec(
    fleet=FleetSpec(name="soak", size=120, soak_time=0.01, master_seed=31),
    stages=(0.1, 0.4, 1.0),
    shard_size=4,
)


def chaotic_executor(seed):
    return ParallelExecutor(
        workers=2,
        chunk_size=1,
        heartbeat_period=0.05,
        heartbeat_timeout=2.0,
        max_redispatches=8,
        shutdown_grace=0.3,
        chaos=ExecChaos(seed=seed, kill_every=5, eof_every=7),
    )


@pytest.fixture(scope="module")
def clean_digest():
    return json.dumps(
        run_fleet_campaign(SOAK_SPEC).campaign_digest, sort_keys=True
    )


def test_chaos_soak_digest_survives_kills_eofs_and_crash(
    tmp_path, clean_digest
):
    directory = str(tmp_path / "ckpt")
    # crash the checkpoint writer roughly 60% of the way through the
    # campaign's 32 shard records (12 + 8 rounding from the wave plan)
    fault_points = FaultPoints().arm("checkpoint.record_written", after=17)
    ex = chaotic_executor(seed=11)
    try:
        with pytest.raises(CheckpointCrash):
            FleetCampaign(
                SOAK_SPEC,
                executor=ex,
                checkpoint=CheckpointSpec(directory),
                fault_points=fault_points,
            ).run()
        # the chaos harness actually did its job before the crash
        assert ex.chaos.kills > 0, "chaos never killed a worker"
    finally:
        ex.close()

    resume_ex = chaotic_executor(seed=12)
    try:
        result = resume_campaign(directory, executor=resume_ex)
    finally:
        resume_ex.close()

    assert not result.halted
    assert result.vehicles_updated == SOAK_SPEC.fleet.size
    assert (
        json.dumps(result.campaign_digest, sort_keys=True) == clean_digest
    ), "resumed-under-chaos digest diverged from the clean baseline"


def test_chaos_alone_matches_clean_run(clean_digest):
    """Without any checkpoint crash, a chaos-ridden run is still
    byte-identical to the clean baseline (supervision is invisible)."""
    ex = chaotic_executor(seed=21)
    try:
        result = run_fleet_campaign(SOAK_SPEC, executor=ex)
        assert ex.chaos.kills > 0 or ex.chaos.eofs > 0
        snapshot = ex.supervisor.snapshot()["counter"]
        assert snapshot["pool.supervisor.redispatches"]["value"] > 0
        assert snapshot["pool.supervisor.restarts"]["value"] > 0
    finally:
        ex.close()
    assert json.dumps(result.campaign_digest, sort_keys=True) == clean_digest
