"""Tests for Resource, Store and ThroughputServer."""

import pytest

from repro.errors import SimulationError
from repro.sim import Resource, Simulator, Store, ThroughputServer, Timeout


class TestResource:
    def test_immediate_grant_when_free(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        grant = res.request()
        assert grant.fired
        assert res.in_use == 1

    def test_waiter_granted_on_release(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.request()
        second = res.request()
        assert not second.fired
        res.release()
        assert second.fired
        assert res.in_use == 1

    def test_priority_order_beats_fifo(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.request()
        low = res.request(priority=10)
        high = res.request(priority=1)
        res.release()
        assert high.fired and not low.fired

    def test_fifo_among_equal_priority(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.request()
        first = res.request(priority=5)
        second = res.request(priority=5)
        res.release()
        assert first.fired and not second.fired

    def test_capacity_two_grants_two(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        a, b, c = res.request(), res.request(), res.request()
        assert a.fired and b.fired and not c.fired

    def test_release_idle_raises(self):
        sim = Simulator()
        res = Resource(sim)
        with pytest.raises(SimulationError):
            res.release()

    def test_invalid_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)

    def test_queue_length(self):
        sim = Simulator()
        res = Resource(sim)
        res.request()
        res.request()
        res.request()
        assert res.queue_length == 2

    def test_process_usage_pattern(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []

        def worker(tag, hold):
            grant = res.request()
            yield grant
            log.append((sim.now, tag, "acquired"))
            yield Timeout(hold)
            res.release()

        sim.process(worker("a", 2.0))
        sim.process(worker("b", 1.0))
        sim.run()
        assert log == [(0.0, "a", "acquired"), (2.0, "b", "acquired")]


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        sig = store.get()
        assert sig.fired and sig.value == "x"

    def test_get_then_put_wakes_getter(self):
        sim = Simulator()
        store = Store(sim)
        sig = store.get()
        assert not sig.fired
        store.put("y")
        assert sig.fired and sig.value == "y"

    def test_fifo_ordering(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert store.get().value == 1
        assert store.get().value == 2

    def test_getters_fifo(self):
        sim = Simulator()
        store = Store(sim)
        g1, g2 = store.get(), store.get()
        store.put("a")
        assert g1.fired and not g2.fired

    def test_len_and_peek(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.peek_all() == [1, 2]
        assert len(store) == 2  # peek does not consume


class TestThroughputServer:
    def test_single_job_duration(self):
        sim = Simulator()
        server = ThroughputServer(sim, rate=100.0)  # 100 units/s
        done = server.submit(50.0)
        sim.run()
        assert done.fired
        assert sim.now == pytest.approx(0.5)

    def test_jobs_serialise(self):
        sim = Simulator()
        server = ThroughputServer(sim, rate=10.0)
        times = []
        for size in (10.0, 20.0):
            server.submit(size).add_callback(lambda _v: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(1.0), pytest.approx(3.0)]

    def test_overhead_added_per_job(self):
        sim = Simulator()
        server = ThroughputServer(sim, rate=10.0, overhead=0.5)
        server.submit(10.0)
        sim.run()
        assert sim.now == pytest.approx(1.5)

    def test_backlog_reporting(self):
        sim = Simulator()
        server = ThroughputServer(sim, rate=1.0)
        server.submit(4.0)
        assert server.backlog_seconds == pytest.approx(4.0)
        sim.run()
        assert server.backlog_seconds == 0.0
        assert server.jobs_done == 1

    def test_idle_gap_then_new_job(self):
        sim = Simulator()
        server = ThroughputServer(sim, rate=1.0)
        server.submit(1.0)
        sim.run()
        sim.schedule(5.0, lambda: server.submit(2.0))
        sim.run()
        assert sim.now == pytest.approx(1.0 + 5.0 + 2.0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(SimulationError):
            ThroughputServer(Simulator(), rate=0.0)

    def test_negative_size_rejected(self):
        server = ThroughputServer(Simulator(), rate=1.0)
        with pytest.raises(SimulationError):
            server.submit(-1.0)
