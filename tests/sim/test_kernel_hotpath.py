"""Ordering regressions for the kernel hot-path optimizations.

The ``sort_key`` precomputation, the ``schedule`` delay=0 fast path, the
batched ``Signal.fire`` waiter drain and the eager cancelled-entry pruning
are all pure performance changes: these tests pin down the observable
contracts — (time, priority, insertion-order) tie-breaking, waiter wake
order, and live-count accounting — that must survive them.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.sim.events import (
    PRIORITY_LATE,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    EventQueue,
    ScheduledCall,
)


class TestTieBreaking:
    def test_time_then_priority_then_insertion_order(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "late", priority=PRIORITY_LATE)
        sim.schedule(2.0, log.append, "t2")
        sim.schedule(1.0, log.append, "norm-a")
        sim.schedule(1.0, log.append, "urgent", priority=PRIORITY_URGENT)
        sim.schedule(1.0, log.append, "norm-b")
        sim.run()
        assert log == ["urgent", "norm-a", "norm-b", "late", "t2"]

    def test_sort_key_matches_attributes(self):
        call = ScheduledCall(2.5, 7, 42, lambda: None, ())
        assert call.sort_key == (call.time, call.priority, call.seq)

    def test_lt_orders_like_legacy_tuple_comparison(self):
        mk = lambda t, p, s: ScheduledCall(t, p, s, lambda: None, ())  # noqa: E731
        assert mk(1.0, 100, 0) < mk(2.0, 10, 1)  # time dominates
        assert mk(1.0, 10, 5) < mk(1.0, 100, 0)  # then priority
        assert mk(1.0, 100, 0) < mk(1.0, 100, 1)  # then insertion order

    def test_equal_time_events_fire_in_schedule_call_order(self):
        """Many same-instant events — the dominant delay=0 pattern."""
        sim = Simulator()
        log = []
        for i in range(50):
            sim.schedule(0.0, log.append, i)
        sim.run()
        assert log == list(range(50))


class TestZeroDelayFastPath:
    def test_zero_delay_runs_at_current_instant(self):
        sim = Simulator()
        seen = []

        def outer():
            sim.schedule(0.0, lambda: seen.append(sim.now))

        sim.schedule(3.0, outer)
        sim.run()
        assert seen == [3.0]

    def test_negative_delay_still_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1e-9, lambda: None)

    def test_zero_delay_honours_priority(self):
        sim = Simulator()
        log = []
        sim.schedule(0.0, log.append, "normal", priority=PRIORITY_NORMAL)
        sim.schedule(0.0, log.append, "urgent", priority=PRIORITY_URGENT)
        sim.run()
        assert log == ["urgent", "normal"]


class TestSignalFireOrdering:
    def test_waiters_wake_in_registration_order(self):
        sim = Simulator()
        signal = sim.signal("s")
        log = []
        for i in range(5):
            signal.add_callback(lambda v, i=i: log.append((i, v)))
        sim.schedule(1.0, signal.fire, "go")
        sim.run()
        assert log == [(i, "go") for i in range(5)]

    def test_single_waiter_path(self):
        sim = Simulator()
        signal = sim.signal()
        log = []
        signal.add_callback(log.append)
        signal.fire(7)
        sim.run()
        assert log == [7]

    def test_waiter_scheduling_runs_after_remaining_waiters(self):
        """An event scheduled *by* a waiter must not jump ahead of the
        waiters that registered before it — true both for the legacy
        one-push-per-waiter scheme and the batched drain."""
        sim = Simulator()
        signal = sim.signal()
        log = []

        def first(_value):
            log.append("first")
            sim.schedule(0.0, log.append, "spawned", priority=PRIORITY_URGENT)

        signal.add_callback(first)
        signal.add_callback(lambda _v: log.append("second"))
        signal.add_callback(lambda _v: log.append("third"))
        signal.fire()
        sim.run()
        assert log == ["first", "second", "third", "spawned"]

    def test_fire_with_no_waiters_schedules_nothing(self):
        sim = Simulator()
        signal = sim.signal()
        signal.fire()
        assert len(sim.queue) == 0

    def test_late_registration_still_fires_asynchronously(self):
        sim = Simulator()
        signal = sim.signal()
        signal.fire("v")
        log = []
        signal.add_callback(log.append)
        assert log == []  # never synchronous
        sim.run()
        assert log == ["v"]

    def test_interleaved_signals_keep_fire_order(self):
        sim = Simulator()
        a, b = sim.signal("a"), sim.signal("b")
        log = []
        for name, sig in (("a", a), ("b", b)):
            for i in range(3):
                sig.add_callback(lambda _v, n=name, i=i: log.append(f"{n}{i}"))
        sim.schedule(1.0, b.fire)
        sim.schedule(1.0, a.fire)
        sim.run()
        assert log == ["b0", "b1", "b2", "a0", "a1", "a2"]


class TestCancelledPruning:
    def test_len_counts_only_live_calls(self):
        queue = EventQueue()
        handles = [queue.push(float(i), lambda: None) for i in range(6)]
        assert len(queue) == 6
        handles[1].cancel()
        handles[1].cancel()  # idempotent
        assert len(queue) == 5

    def test_pruning_preserves_pop_order(self):
        queue = EventQueue()
        keep, drop = [], []
        for i in range(100):
            handle = queue.push(float(i % 10), lambda: None, (), i)
            (drop if i % 2 else keep).append(handle)
        for handle in drop:
            handle.cancel()
        assert len(queue) == len(keep)
        order = [queue.pop() for _ in range(len(queue))]
        assert order == sorted(order, key=lambda c: c.sort_key)
        assert set(order) == set(keep)

    def test_mass_cancel_shrinks_heap(self):
        queue = EventQueue()
        survivor = queue.push(5.0, lambda: None)
        doomed = [queue.push(1.0, lambda: None) for _ in range(200)]
        for handle in doomed:
            handle.cancel()
        # pruning must have physically removed the dead entries
        assert len(queue._heap) < 200
        assert len(queue) == 1
        assert queue.pop() is survivor

    def test_cancel_after_pop_does_not_skew_count(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        popped = queue.pop()
        assert popped is first
        popped.cancel()  # already out of the heap
        assert len(queue) == 1
        assert queue.peek_time() == 2.0

    def test_simulation_identical_with_heavy_cancellation(self):
        """End-to-end: a cancel-heavy run matches the analytic schedule."""
        sim = Simulator()
        log = []

        def tick(n):
            log.append((round(sim.now, 6), n))
            decoys = [sim.schedule(10.0, log.append, "never")
                      for _ in range(20)]
            for handle in decoys:
                handle.cancel()
            if n < 30:
                sim.schedule(0.1, tick, n + 1)

        sim.schedule(0.0, tick, 0)
        sim.run()
        assert log == [(round(0.1 * n, 6), n) for n in range(31)]


class TestQueueStats:
    def test_live_len_matches_len(self):
        queue = EventQueue()
        handles = [queue.push(float(i), lambda: None) for i in range(6)]
        handles[0].cancel()
        handles[1].cancel()
        assert queue.live_len() == len(queue) == 4
        assert queue.stats()["cancelled_in_heap"] == len(queue._heap) - 4

    def test_stats_track_compactions(self):
        queue = EventQueue()
        before = queue.stats()["compactions"]
        doomed = [queue.push(1.0, lambda: None) for _ in range(50)]
        queue.push(9.0, lambda: None)
        for handle in doomed:
            handle.cancel()
        stats = queue.stats()
        assert stats["compactions"] > before
        assert stats["live_len"] == 1
        # the heap only keeps dead weight below the prune threshold
        # (cancelled * 2 <= heap_len, or heap too small to bother)
        assert stats["heap_len"] < 10
        assert stats["cancelled_in_heap"] == stats["heap_len"] - 1

    def test_clear_uses_the_compaction_path(self):
        queue = EventQueue()
        for i in range(5):
            queue.push(float(i), lambda: None)
        before = queue.stats()["compactions"]
        queue.clear()
        stats = queue.stats()
        assert stats["compactions"] == before + 1
        assert stats["heap_len"] == stats["live_len"] == 0

    def test_sanitizer_style_observer_survives_prune(self):
        """Observers cache the heap *list object*; pruning must rebuild
        it in place, never swap in a fresh list."""
        queue = EventQueue()
        observed_heap = queue._heap
        doomed = [queue.push(1.0, lambda: None) for _ in range(32)]
        queue.push(2.0, lambda: None)
        for handle in doomed:
            handle.cancel()
        assert queue._heap is observed_heap
        assert len(observed_heap) < 10  # pruned in place, not swapped


class TestEventPooling:
    def test_pooled_pushes_reuse_objects(self):
        sim = Simulator()
        counter = {"n": 0}

        def bump():
            counter["n"] += 1
            if counter["n"] < 100:
                sim.post(0.01, bump)

        sim.post(0.0, bump)
        sim.run()
        stats = sim.queue.stats()
        assert counter["n"] == 100
        # steady state: one live pooled call recycled over and over
        assert stats["pool_creations"] <= 2
        assert stats["pool_reuses"] >= 98

    def test_pooled_dispatch_order_matches_unpooled(self):
        def drive(post):
            sim = Simulator()
            log = []
            def tick(n):
                log.append((round(sim.now, 6), n))
                if n < 50:
                    if post:
                        sim.post(0.01, tick, n + 1)
                    else:
                        sim.schedule(0.01, tick, n + 1)
            sim.schedule(0.0, tick, 0)
            sim.run()
            return log

        assert drive(post=True) == drive(post=False)

    def test_recycled_call_is_inert(self):
        queue = EventQueue()
        queue.push_pooled(1.0, lambda: None)
        call = queue.pop()
        queue.recycle(call)
        assert call.callback is None and call.args == ()
        assert not call.cancelled and not call.pooled
        assert call._entry[3] is None  # call<->entry cycle broken
        queue.push_pooled(2.0, lambda: 1)
        assert queue.stats()["pool_reuses"] == 1
