"""Snapshot/fork API tests and the snapshot determinism matrix.

The matrix is the correctness bar from PRs 2-3 applied to snapshots: a
chaos scenario with active fault windows and an open circuit breaker is
snapshotted at several points; restore + continue-to-end must reproduce
the straight run's trace byte for byte, and capturing must not perturb
the source world.
"""

import pickle

import pytest

from repro.faults import FaultCampaignSpec, FaultPlan, FaultSpec
from repro.faults.campaign import (
    build_chaos_base,
    campaign_outcome,
    start_chaos_workload,
)
from repro.sim import RngStreams, Simulator, Timeout, Tracer
from repro.sim.snapshot import SimSnapshot, SnapshotError, fork_world


def trace_json(sim):
    return [entry.to_json() for entry in sim.tracer.entries]


class Ticker:
    """Callback-style periodic component (snapshot-safe)."""

    def __init__(self, sim, period=0.1, limit=20):
        self.sim = sim
        self.period = period
        self.limit = limit
        self.ticks = 0
        sim.post(period, self._tick)

    def _tick(self):
        self.ticks += 1
        self.sim.trace("tick", n=self.ticks)
        if self.ticks < self.limit:
            self.sim.post(self.period, self._tick)


class TestForkApi:
    def test_fork_then_continue_matches_original(self):
        sim = Simulator(Tracer())
        ticker = Ticker(sim)
        sim.adopt("ticker", ticker)
        sim.run(until=0.55)

        fork = sim.fork()
        sim.run()
        fork.run()
        assert trace_json(fork) == trace_json(sim)
        assert fork.world["ticker"].ticks == ticker.ticks == 20

    def test_fork_is_independent(self):
        sim = Simulator(Tracer())
        Ticker(sim)
        sim.run(until=0.35)
        fork = sim.fork()
        fork.run()  # only the fork finishes
        assert sim.now == 0.35
        assert len(fork.tracer.entries) > len(sim.tracer.entries)

    def test_shared_structure_is_aliased_not_copied(self):
        sim = Simulator()
        topology = {"buses": ("a", "b")}  # stand-in for immutable structure
        sim.share(topology)
        holder = {"topo": topology, "state": [1, 2]}
        sim.adopt("holder", holder)
        fork = sim.fork()
        assert fork.world["holder"]["topo"] is topology
        assert fork.world["holder"]["state"] is not holder["state"]

    def test_fork_refused_while_running(self):
        sim = Simulator()
        failures = []

        def try_fork():
            try:
                sim.fork()
            except SnapshotError as exc:
                failures.append(exc)

        # the closure is the point: fork() must refuse mid-run anyway
        sim.post(0.1, try_fork)  # repro: allow[PICK511]
        sim.run()
        assert len(failures) == 1

    def test_fork_refused_with_live_generator_process(self):
        sim = Simulator()

        def forever():
            while True:
                yield Timeout(1.0)

        sim.process(forever(), name="spinner")
        sim.run(until=2.5)
        with pytest.raises(SnapshotError, match="spinner"):
            sim.fork()

    def test_fork_world_function_matches_method(self):
        sim = Simulator(Tracer())
        Ticker(sim)
        sim.run(until=0.35)
        a, b = fork_world(sim), sim.fork()
        a.run()
        b.run()
        assert trace_json(a) == trace_json(b)


class TestSnapshotApi:
    def test_snapshot_restores_many_independent_worlds(self):
        sim = Simulator(Tracer())
        Ticker(sim)
        sim.run(until=0.55)
        snap = sim.snapshot()
        assert snap.now == 0.55

        worlds = [snap.restore() for _ in range(3)]
        sim.run()
        for world in worlds:
            world.run()
            assert trace_json(world) == trace_json(sim)

    def test_restore_method_alias(self):
        sim = Simulator()
        snap = sim.snapshot()
        assert isinstance(sim.restore(snap), Simulator)

    def test_to_bytes_roundtrip(self):
        sim = Simulator(Tracer())
        Ticker(sim)
        sim.run(until=0.55)
        snap = sim.snapshot()
        shipped = SimSnapshot.from_bytes(snap.to_bytes())
        assert shipped.now == snap.now

        local, remote = snap.restore(), shipped.restore()
        local.run()
        remote.run()
        assert trace_json(remote) == trace_json(local)

    def test_snapshot_itself_pickles(self):
        # executors pickle the snapshot when shipping it as shared context
        sim = Simulator(Tracer())
        Ticker(sim)
        sim.run(until=0.55)
        snap = pickle.loads(pickle.dumps(sim.snapshot()))
        sim.run()
        world = snap.restore()
        world.run()
        assert trace_json(world) == trace_json(sim)

    def test_restored_world_has_empty_event_pool(self):
        sim = Simulator()
        Ticker(sim)  # Ticker uses sim.post -> pooled calls
        sim.run(until=1.05)
        assert sim.queue.stats()["pool_size"] > 0
        restored = sim.snapshot().restore()
        assert restored.queue.stats()["pool_size"] == 0
        created_before = restored.queue.stats()["pool_creations"]
        restored.run()  # pool refills from its own dispatches only
        # one fresh object at most: the first post-restore pooled push
        # finds the pool empty, everything after reuses it
        assert restored.queue.stats()["pool_creations"] - created_before <= 1


def chaos_matrix_spec():
    """Chaos with a primary crash, a long frame-drop window and circuit
    breaking — so snapshots land inside active fault windows and (late
    in the soak) after the client's breaker has opened."""
    plan = FaultPlan(
        name="matrix",
        faults=(
            FaultSpec(kind="ecu_crash", target="platform_0", start=0.05,
                      duration=0.3),
            FaultSpec(kind="frame_drop", target="eth_backbone", start=0.02,
                      duration=0.4, probability=0.5),
        ),
    )
    return FaultCampaignSpec(plan=plan, soak_time=0.5, breaker_threshold=2,
                             breaker_reset=0.4)


def build_chaos_world(spec, seed=77):
    sim = Simulator(Tracer())
    base = build_chaos_base(sim, spec)
    start_chaos_workload(sim, base, spec, RngStreams(seed))
    return sim, base


class TestSnapshotDeterminismMatrix:
    def test_scenario_is_actually_chaotic(self):
        spec = chaos_matrix_spec()
        sim, base = build_chaos_world(spec)
        sim.run(until=sim.now + spec.soak_time)
        outcome = campaign_outcome("straight", base)
        assert outcome.frames_dropped > 0
        assert outcome.breakers_opened >= 1
        assert len(outcome.timeline) >= 2

    def test_matrix_restore_continue_equals_straight_run(self):
        spec = chaos_matrix_spec()
        sim, _ = build_chaos_world(spec)
        start, end = sim.now, sim.now + spec.soak_time
        sim.run(until=end)
        straight = trace_json(sim)
        assert straight

        for fraction in (0.2, 0.5, 0.9):
            source, base = build_chaos_world(spec)
            source.run(until=start + fraction * spec.soak_time)
            snap = source.snapshot()
            if fraction == 0.5:
                # mid-soak: the crash/drop windows are open and faults
                # have fired, but the scenario is not over yet
                timeline = base["injector"].timeline
                assert 0 < len(timeline)

            restored = snap.restore()
            restored.run(until=end)
            assert trace_json(restored) == straight

            # capturing must not have perturbed the source world
            source.run(until=end)
            assert trace_json(source) == straight

    def test_fork_per_variant_equals_rebuild(self):
        # same world forked twice with the same workload seed stays
        # byte-identical; different seeds diverge (sanity check that the
        # workload actually consumes the per-variant stream)
        spec = chaos_matrix_spec()
        sim = Simulator(Tracer())
        build_chaos_base(sim, spec)
        snap = sim.snapshot()

        def soak(seed):
            world = snap.restore()
            start_chaos_workload(world, world.world["chaos"], spec,
                                 RngStreams(seed))
            world.run(until=world.now + spec.soak_time)
            return trace_json(world)

        assert soak(1) == soak(1)
        assert soak(1) != soak(2)
