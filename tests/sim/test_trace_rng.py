"""Tests for the tracer and deterministic RNG streams."""

from repro.sim import RngStreams, Simulator, Tracer


class TestTracer:
    def test_record_and_select(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        sim.trace("net", frame=1, bus="can0")
        sim.schedule(1.0, lambda: sim.trace("net", frame=2, bus="can1"))
        sim.run()
        assert len(tracer) == 2
        assert [e.time for e in tracer.iter_category("net")] == [0.0, 1.0]
        assert tracer.select("net", bus="can1")[0]["frame"] == 2

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        sim = Simulator(tracer=tracer)
        sim.trace("x", a=1)
        assert len(tracer) == 0

    def test_category_filter(self):
        tracer = Tracer(categories={"keep"})
        tracer.record(0.0, "keep", {"a": 1})
        tracer.record(0.0, "drop", {"a": 2})
        assert len(tracer) == 1

    def test_subscribe_listener(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(lambda e: seen.append(e.category))
        tracer.record(1.0, "evt", {})
        assert seen == ["evt"]

    def test_clear(self):
        tracer = Tracer()
        tracer.record(0.0, "a", {})
        tracer.clear()
        assert len(tracer) == 0

    def test_entry_get_default(self):
        tracer = Tracer()
        tracer.record(0.0, "a", {"x": 1})
        entry = tracer.entries[0]
        assert entry["x"] == 1
        assert entry.get("missing", "d") == "d"


class TestRngStreams:
    def test_same_seed_same_draws(self):
        a = RngStreams(42)
        b = RngStreams(42)
        assert [a.uniform("s", 0, 1) for _ in range(5)] == [
            b.uniform("s", 0, 1) for _ in range(5)
        ]

    def test_different_seeds_differ(self):
        a = RngStreams(1)
        b = RngStreams(2)
        assert a.uniform("s", 0, 1) != b.uniform("s", 0, 1)

    def test_streams_are_independent(self):
        """Drawing from stream X must not perturb stream Y."""
        a = RngStreams(7)
        b = RngStreams(7)
        # interleave extra draws on an unrelated stream in `a`
        a.uniform("noise", 0, 1)
        a_draw = a.uniform("target", 0, 1)
        b_draw = b.uniform("target", 0, 1)
        assert a_draw == b_draw

    def test_shuffle_does_not_mutate_input(self):
        streams = RngStreams(3)
        items = [1, 2, 3, 4, 5]
        out = streams.shuffle("s", items)
        assert items == [1, 2, 3, 4, 5]
        assert sorted(out) == items

    def test_normal_clamped_bounds(self):
        streams = RngStreams(5)
        for _ in range(100):
            v = streams.normal_clamped("s", 0.5, 10.0, 0.0, 1.0)
            assert 0.0 <= v <= 1.0

    def test_choice_and_expovariate(self):
        streams = RngStreams(9)
        assert streams.choice("c", ["only"]) == "only"
        assert streams.expovariate("e", 1.0) > 0.0
