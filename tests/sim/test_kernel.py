"""Tests for the discrete-event kernel (events, processes, signals)."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    PRIORITY_URGENT,
    EventQueue,
    Interrupted,
    Simulator,
    Timeout,
)


class TestEventQueue:
    def test_pop_orders_by_time(self):
        q = EventQueue()
        order = []
        q.push(2.0, order.append, ("b",))
        q.push(1.0, order.append, ("a",))
        q.push(3.0, order.append, ("c",))
        for _ in range(3):
            call = q.pop()
            call.callback(*call.args)
        assert order == ["a", "b", "c"]

    def test_same_time_orders_by_priority_then_insertion(self):
        q = EventQueue()
        q.push(1.0, lambda: None, (), priority=100)
        q.push(1.0, lambda: None, (), priority=10)
        q.push(1.0, lambda: None, (), priority=100)
        priorities = [q.pop().priority for _ in range(3)]
        assert priorities == [10, 100, 100]

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        call = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        call.cancel()
        assert q.pop().time == 2.0

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        call = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        call.cancel()
        assert q.peek_time() == 5.0

    def test_peek_time_empty_is_none(self):
        assert EventQueue().peek_time() is None


class TestSchedule:
    def test_schedule_advances_clock(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(1.0, lambda: None)

    def test_run_until_stops_clock_exactly(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(True))
        sim.run(until=3.0)
        assert sim.now == 3.0
        assert not fired
        sim.run()
        assert fired

    def test_run_until_advances_clock_even_with_empty_queue(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_cancelled_schedule_does_not_fire(self):
        sim = Simulator()
        fired = []
        call = sim.schedule(1.0, lambda: fired.append(True))
        call.cancel()
        sim.run()
        assert not fired

    def test_events_at_same_time_fire_in_insertion_order(self):
        sim = Simulator()
        order = []
        for tag in ("x", "y", "z"):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == ["x", "y", "z"]

    def test_urgent_priority_fires_first(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "normal")
        sim.schedule(1.0, order.append, "urgent", priority=PRIORITY_URGENT)
        sim.run()
        assert order == ["urgent", "normal"]


class TestProcess:
    def test_process_timeout_sequence(self):
        sim = Simulator()
        times = []

        def proc():
            times.append(sim.now)
            yield Timeout(1.0)
            times.append(sim.now)
            yield 2.5  # bare numbers work too
            times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [0.0, 1.0, 3.5]

    def test_process_return_value_in_result(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            return 42

        p = sim.process(proc())
        sim.run()
        assert p.result == 42
        assert not p.alive

    def test_waiting_on_signal_receives_value(self):
        sim = Simulator()
        sig = sim.signal()
        got = []

        def waiter():
            value = yield sig
            got.append(value)

        sim.process(waiter())
        sim.schedule(2.0, sig.fire, "payload")
        sim.run()
        assert got == ["payload"]

    def test_waiting_on_already_fired_signal_resumes(self):
        sim = Simulator()
        sig = sim.signal()
        sig.fire("early")
        got = []

        def waiter():
            value = yield sig
            got.append((sim.now, value))

        sim.process(waiter())
        sim.run()
        assert got == [(0.0, "early")]

    def test_waiting_on_process_gets_its_result(self):
        sim = Simulator()

        def child():
            yield Timeout(3.0)
            return "done"

        def parent():
            result = yield sim.process(child())
            return result

        p = sim.process(parent())
        sim.run()
        assert p.result == "done"
        assert sim.now == 3.0

    def test_interrupt_raises_inside_process(self):
        sim = Simulator()
        log = []

        def proc():
            try:
                yield Timeout(10.0)
            except Interrupted as exc:
                log.append((sim.now, exc.cause))

        p = sim.process(proc())
        sim.schedule(2.0, p.interrupt, "reason")
        sim.run()
        assert log == [(2.0, "reason")]
        assert sim.now == 2.0  # the 10s timeout never completed

    def test_unhandled_interrupt_terminates_cleanly(self):
        sim = Simulator()

        def proc():
            yield Timeout(10.0)

        p = sim.process(proc())
        sim.schedule(1.0, p.interrupt)
        sim.run()
        assert not p.alive
        assert p.error is None

    def test_interrupt_dead_process_is_noop(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)

        p = sim.process(proc())
        sim.run()
        p.interrupt()
        sim.run()
        assert not p.alive

    def test_crashing_process_surfaces_error(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            raise ValueError("boom")

        sim.process(proc())
        with pytest.raises(SimulationError, match="crashed"):
            sim.run()

    def test_yielding_garbage_is_an_error(self):
        sim = Simulator()

        def proc():
            yield "not a yieldable"

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_two_processes_interleave_deterministically(self):
        sim = Simulator()
        order = []

        def ticker(tag, period):
            while sim.now < 5.0:
                order.append((sim.now, tag))
                yield Timeout(period)

        sim.process(ticker("a", 2.0))
        sim.process(ticker("b", 3.0))
        sim.run(until=10.0)
        assert order == [
            (0.0, "a"),
            (0.0, "b"),
            (2.0, "a"),
            (3.0, "b"),
            (4.0, "a"),
        ]


class TestProcessLifecycleRegressions:
    """Regressions for the kernel lifecycle bugfixes (PR 1)."""

    def test_interrupt_before_start_cancels_initial_step(self):
        # Bug: the start event scheduled by Simulator.process() was not
        # tracked in _pending_wait, so interrupting a not-yet-started
        # process stepped the generator twice and double-fired `done`.
        sim = Simulator()
        body_ran = []

        def proc():
            body_ran.append(True)
            yield Timeout(1.0)

        p = sim.process(proc())
        p.interrupt("early")
        sim.run()  # must not raise "signal fired twice"
        assert not p.alive
        assert p.error is None
        assert not body_ran  # the body never executed

    def test_interrupt_before_start_fires_done_once(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)

        p = sim.process(proc())
        fired = []
        p.done.add_callback(fired.append)
        p.interrupt()
        sim.run()
        assert len(fired) == 1

    def test_interrupt_before_start_can_be_handled(self):
        # A generator that catches Interrupted at its first yield point
        # never runs, because the interrupt lands before the first step.
        sim = Simulator()

        def proc():
            try:
                yield Timeout(1.0)
            except Interrupted:
                return "handled"

        p = sim.process(proc())
        p.interrupt()
        sim.run()
        assert not p.alive
        assert p.result is None

    def test_multiple_crashes_all_drained(self):
        # Bug: _raise_crashes popped only the first crashed process, so
        # further entries lingered and resurfaced on a later, unrelated
        # run() call.  With several defused crashes pending at once, all
        # of them must be drained in one go.
        sim = Simulator()
        caught = []

        def bang(tag):
            yield Timeout(1.0)
            raise ValueError(tag)

        def supervisor(child):
            try:
                yield child
            except ValueError as exc:
                caught.append(str(exc))

        for tag in ("first", "second", "third"):
            sim.process(supervisor(sim.process(bang(tag), name=tag)))
        sim.run()  # all three crashes are defused: no abort
        assert sorted(caught) == ["first", "second", "third"]
        assert sim._crashed_processes == []
        # an unrelated follow-up run stays clean
        sim.schedule(1.0, lambda: None)
        sim.run()

    def test_raise_crashes_drains_every_entry(self):
        # White-box: with several crashed processes pending (mixed defused
        # and fatal), one _raise_crashes call must consume them all and
        # report every fatal one.
        sim = Simulator()

        def bang(tag):
            yield Timeout(1.0)
            raise ValueError(tag)

        procs = [sim.process(bang(t), name=t) for t in ("a", "b", "c")]
        for p in procs:
            p.alive = False
            p.error = ValueError(p.name)
        procs[1].defused = True
        sim._crashed_processes = list(procs)
        with pytest.raises(SimulationError, match="2 processes crashed"):
            sim._raise_crashes()
        assert sim._crashed_processes == []
        sim._raise_crashes()  # nothing left: no raise

    def test_fatal_crashes_surface_one_per_run(self):
        # Two unsupervised processes crash at the same instant; each run()
        # surfaces its own crash and leaves nothing stale behind.
        sim = Simulator()

        def bang(tag):
            yield Timeout(1.0)
            raise ValueError(tag)

        sim.process(bang("first"), name="p_first")
        sim.process(bang("second"), name="p_second")
        with pytest.raises(SimulationError, match="p_first"):
            sim.run()
        with pytest.raises(SimulationError, match="p_second"):
            sim.run()
        assert sim._crashed_processes == []
        sim.schedule(1.0, lambda: None)
        sim.run()

    def test_supervised_crash_is_defused(self):
        # The Process docstring promises: a party waiting on `done` defuses
        # the crash.  The supervisor receives the exception instead.
        sim = Simulator()
        caught = []

        def child():
            yield Timeout(1.0)
            raise ValueError("boom")

        def supervisor():
            try:
                yield sim.process(child(), name="child")
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(supervisor())
        sim.run()  # must not raise
        assert caught == ["boom"]

    def test_callback_waiter_also_defuses(self):
        sim = Simulator()

        def child():
            yield Timeout(1.0)
            raise ValueError("boom")

        p = sim.process(child())
        seen = []
        p.done.add_callback(seen.append)
        sim.run()  # defused: no SimulationError
        assert len(seen) == 1
        assert isinstance(seen[0], ValueError)

    def test_unsupervised_crash_still_raises(self):
        sim = Simulator()

        def child():
            yield Timeout(1.0)
            raise ValueError("boom")

        sim.process(child())
        with pytest.raises(SimulationError, match="crashed"):
            sim.run()

    def test_unhandled_crash_in_supervisor_propagates(self):
        # The supervisor defuses the child but crashes itself; with nobody
        # supervising the supervisor, the simulation aborts.
        sim = Simulator()

        def child():
            yield Timeout(1.0)
            raise ValueError("boom")

        def supervisor():
            yield sim.process(child())

        sim.process(supervisor(), name="sup")
        with pytest.raises(SimulationError, match="crashed"):
            sim.run()


class TestCancelledEventAccounting:
    def test_len_excludes_cancelled(self):
        # Bug: __len__ counted cancelled calls still sitting in the heap.
        q = EventQueue()
        calls = [q.push(float(i), lambda: None) for i in range(5)]
        assert len(q) == 5
        calls[2].cancel()
        calls[4].cancel()
        assert len(q) == 3

    def test_double_cancel_counted_once(self):
        q = EventQueue()
        call = q.push(1.0, lambda: None)
        call.cancel()
        call.cancel()
        assert len(q) == 0

    def test_len_after_pop_and_peek_pruning(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        first.cancel()
        assert q.peek_time() == 2.0  # prunes the cancelled head
        assert len(q) == 1
        q.pop()
        assert len(q) == 0

    def test_cancel_after_pop_does_not_corrupt_count(self):
        q = EventQueue()
        call = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert q.pop() is call
        call.cancel()  # already executed; must not skew the live count
        assert len(q) == 1

    def test_simulator_repr_reports_live_pending(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert "pending=1" in repr(sim)
        keep.cancel()
        assert "pending=0" in repr(sim)


class TestSignal:
    def test_double_fire_raises(self):
        sim = Simulator()
        sig = sim.signal("s")
        sig.fire()
        with pytest.raises(SimulationError):
            sig.fire()

    def test_callback_after_fire_runs(self):
        sim = Simulator()
        sig = sim.signal()
        sig.fire(5)
        seen = []
        sig.add_callback(seen.append)
        sim.run()
        assert seen == [5]

    def test_multiple_waiters_all_wake(self):
        sim = Simulator()
        sig = sim.signal()
        seen = []
        for i in range(3):
            sig.add_callback(lambda v, i=i: seen.append(i))
        sig.fire()
        sim.run()
        assert sorted(seen) == [0, 1, 2]
