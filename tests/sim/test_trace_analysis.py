"""Tests for tracer analysis helpers and the diagnosis RPC path."""

import pytest

from repro.sim import Tracer


class TestTraceAnalysis:
    def make(self):
        tracer = Tracer()
        tracer.record(0.0, "net.delivery", {"latency": 0.001})
        tracer.record(0.5, "net.delivery", {"latency": 0.003})
        tracer.record(1.0, "os.done", {"response": 0.002, "missed": False})
        return tracer

    def test_category_counts(self):
        counts = self.make().category_counts()
        assert counts == {"net.delivery": 2, "os.done": 1}

    def test_field_stats(self):
        stats = self.make().field_stats("net.delivery", "latency")
        assert stats["count"] == 2
        assert stats["min"] == pytest.approx(0.001)
        assert stats["max"] == pytest.approx(0.003)
        assert stats["mean"] == pytest.approx(0.002)

    def test_field_stats_skips_non_numeric_and_bools(self):
        tracer = Tracer()
        tracer.record(0.0, "c", {"v": True})
        tracer.record(0.0, "c", {"v": "text"})
        tracer.record(0.0, "c", {"v": 2.0})
        stats = tracer.field_stats("c", "v")
        assert stats["count"] == 1

    def test_field_stats_empty(self):
        assert self.make().field_stats("missing", "x") == {}

    def test_summary_lists_categories(self):
        text = self.make().summary()
        assert "net.delivery: 2" in text
        assert "os.done: 1" in text

    def test_empty_summary(self):
        assert Tracer().summary() == "trace: empty"


class TestDiagnosisOverRpc:
    def test_tester_reads_and_clears_dtcs_remotely(self):
        """A diagnostic tester queries the diagnosis service over RPC,
        exactly as a workshop tester would."""
        from repro.core import DIAGNOSIS_SERVICE_ID, DiagnosisService
        from repro.hw import BusSpec, EcuSpec, Topology
        from repro.middleware import Endpoint, RpcClient, ServiceRegistry
        from repro.network import VehicleNetwork
        from repro.sim import Simulator

        topo = Topology()
        topo.add_bus(BusSpec("eth", "ethernet", 100e6))
        for name in ("vecu", "tester"):
            topo.add_ecu(EcuSpec(name, ports=(("eth0", "ethernet"),)))
            topo.attach(name, "eth0", "eth")
        sim = Simulator()
        net = VehicleNetwork(sim, topo)
        registry = ServiceRegistry()
        vecu_ep = Endpoint(sim, net, "vecu", registry)
        tester_ep = Endpoint(sim, net, "tester", registry)

        diagnosis = DiagnosisService(sim, endpoint=vecu_ep)
        diagnosis.report("P0420")
        diagnosis.report("U0101")

        client = RpcClient(tester_ep, DIAGNOSIS_SERVICE_ID, client_app="tester")
        codes = []
        client.call(1).add_callback(lambda r: codes.append(r.payload))
        sim.run()
        assert codes[0] == ["P0420", "U0101"]

        cleared = []
        client.call(2).add_callback(lambda r: cleared.append(r.payload))
        sim.run()
        assert cleared[0] == 2
        assert diagnosis.dtcs() == []
