"""Tests for the kernel profiler, its Simulator hooks and the report module."""

import json

from repro.obs import KernelProfiler, MetricsRegistry, digest, digest_for, render_for, render_text
from repro.sim import Simulator, Timeout, Tracer


def _tick():
    pass


class TestKernelProfiler:
    def test_step_attributes_plain_callbacks_by_qualname(self):
        profiler = KernelProfiler()
        sim = Simulator(profiler=profiler)
        for i in range(5):
            sim.schedule(float(i), _tick)
        sim.run()
        assert profiler.events == 5
        record = profiler.record("function", "_tick")
        assert record.calls == 5
        assert record.total_s >= 0.0
        assert record.max_s >= record.mean_s

    def test_processes_attributed_by_name_with_generator_rows(self):
        profiler = KernelProfiler()
        sim = Simulator(profiler=profiler)

        def worker():
            yield Timeout(1.0)
            yield Timeout(1.0)

        sim.process(worker(), name="w1")
        sim.run()
        # dispatch rows: one per _step event, attributed to the Process
        assert profiler.record("Process", "w1").calls == 3
        # generator rows: pure user-code time inside the generator body
        assert profiler.record("generator", "w1").calls == 3

    def test_records_sorted_most_expensive_first(self):
        profiler = KernelProfiler()
        profiler.account(_tick, 0.5)
        profiler.account(len, 0.1)
        records = profiler.records()
        assert records[0].total_s >= records[-1].total_s

    def test_by_kind_and_total(self):
        profiler = KernelProfiler()
        profiler.account(_tick, 0.25)
        profiler.account_generator("p", 0.5)
        assert profiler.by_kind()["function"] == 0.25
        assert profiler.by_kind()["generator"] == 0.5
        # generator rows are a subset of their dispatch rows: not totalled
        assert profiler.total_s == 0.25

    def test_render_and_snapshot(self):
        profiler = KernelProfiler()
        sim = Simulator(profiler=profiler)
        sim.schedule(1.0, _tick)
        sim.run()
        assert "_tick" in profiler.render()
        snap = profiler.snapshot()
        assert snap["events"] == 1
        assert snap["records"][0]["name"] == "_tick"
        assert KernelProfiler().render() == "profile: no events recorded"

    def test_clear(self):
        profiler = KernelProfiler()
        profiler.account(_tick, 0.1)
        profiler.clear()
        assert profiler.events == 0
        assert profiler.records() == []

    def test_no_profiler_means_no_accounting(self):
        sim = Simulator()
        sim.schedule(1.0, _tick)
        sim.run()
        assert sim.profiler is None


class TestReport:
    def _sim(self):
        profiler = KernelProfiler()
        sim = Simulator(
            tracer=Tracer(),
            metrics=MetricsRegistry(),
            profiler=profiler,
        )
        sim.metrics.counter("hits").inc(3)
        sim.metrics.histogram("lat").observe(0.5)
        sim.schedule(1.0, _tick)
        sim.trace("cat.a", value=1)
        sim.run()
        return sim

    def test_digest_combines_all_parts(self):
        sim = self._sim()
        report = digest_for(sim)
        assert report["metrics"]["counter"]["hits"]["value"] == 3
        assert report["profile"]["events"] >= 1
        assert report["trace"]["categories"] == {"cat.a": 1}

    def test_digest_is_json_serialisable(self):
        sim = self._sim()
        encoded = json.dumps(digest_for(sim), default=str)
        assert "hits" in encoded

    def test_render_text_sections(self):
        sim = self._sim()
        text = render_for(sim, title="unit digest")
        assert "unit digest" in text
        assert "hits" in text
        assert "profile:" in text
        assert "trace:" in text

    def test_empty_digest(self):
        assert digest() == {}
        assert "(no observability attached)" in render_text()

    def test_plain_simulator_renders_without_metrics_noise(self):
        # A default Simulator has a disabled, empty registry and no
        # profiler: the digest should only show the (empty) trace section.
        sim = Simulator()
        report = digest_for(sim)
        assert "metrics" not in report
        assert "profile" not in report
        assert report["trace"]["entries"] == 0

    def test_write_json(self, tmp_path):
        sim = self._sim()
        path = tmp_path / "obs.json"
        report = digest_for(sim)
        from repro.obs import write_json

        written = write_json(
            str(path), metrics=sim.metrics, profiler=sim.profiler, tracer=sim.tracer
        )
        assert written["metrics"] == report["metrics"]
        loaded = json.loads(path.read_text())
        assert loaded["trace"]["entries"] == 1
