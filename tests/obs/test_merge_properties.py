"""Property tests: histogram/registry merge is exact and commutative.

The fleet backend (``repro.fleet``) merges per-shard registries
shard -> wave -> campaign and promises the merged digest is byte-identical
to an unsharded run regardless of how observations were grouped.  That
only holds if :meth:`Histogram.merge` and :meth:`MetricsRegistry.merge`
are exact (error-free float sums) and commutative.  These tests pin that
contract down with hypothesis.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    accumulate_exact,
    exact_total,
)

# Finite, non-NaN floats spanning many magnitudes so naive summation
# *would* drift: mixing 1e16 with 1.0 loses the 1.0 unless sums are
# error-free.
VALUES = st.floats(
    min_value=-1e16, max_value=1e16, allow_nan=False, allow_infinity=False
)
VALUE_LISTS = st.lists(VALUES, max_size=60)


def make_hist(growth=1.1):
    return Histogram("h", (), True, growth=growth)


def hist_from(values):
    h = make_hist()
    for v in values:
        h.observe(v)
    return h


def hist_state(h):
    return (h.count, h.min, h.max, h.sum, h._zero_count, dict(h._buckets))


class TestExactAccumulation:
    @given(VALUE_LISTS)
    @settings(max_examples=100, deadline=None)
    def test_total_matches_fsum(self, values):
        import math

        partials = []
        for v in values:
            accumulate_exact(partials, v)
        assert exact_total(partials) == math.fsum(values)

    @given(VALUE_LISTS, st.integers(min_value=0, max_value=60))
    @settings(max_examples=100, deadline=None)
    def test_split_point_does_not_change_total(self, values, cut):
        cut = min(cut, len(values))
        left, right = [], []
        for v in values[:cut]:
            accumulate_exact(left, v)
        for v in values[cut:]:
            accumulate_exact(right, v)
        # Fold right's partials into left, the way Histogram.merge does.
        for y in right:
            accumulate_exact(left, y)
        whole = []
        for v in values:
            accumulate_exact(whole, v)
        assert exact_total(left) == exact_total(whole)


class TestHistogramMerge:
    @given(VALUE_LISTS, VALUE_LISTS)
    @settings(max_examples=100, deadline=None)
    def test_commutative(self, a_values, b_values):
        ab = hist_from(a_values)
        ab.merge(hist_from(b_values))
        ba = hist_from(b_values)
        ba.merge(hist_from(a_values))
        assert hist_state(ab) == hist_state(ba)

    @given(VALUE_LISTS, st.integers(min_value=0, max_value=60))
    @settings(max_examples=100, deadline=None)
    def test_sharded_equals_unsharded(self, values, cut):
        cut = min(cut, len(values))
        sharded = hist_from(values[:cut])
        sharded.merge(hist_from(values[cut:]))
        assert hist_state(sharded) == hist_state(hist_from(values))
        assert sharded.snapshot() == hist_from(values).snapshot()

    @given(st.lists(VALUE_LISTS, min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_any_grouping_equals_unsharded(self, shards):
        merged = make_hist()
        for shard in shards:
            merged.merge(hist_from(shard))
        flat = [v for shard in shards for v in shard]
        assert hist_state(merged) == hist_state(hist_from(flat))

    def test_merge_rejects_growth_mismatch(self):
        import pytest

        a = make_hist(growth=1.5)
        b = make_hist(growth=2.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_quantiles_survive_merge(self):
        a = hist_from([1.0, 2.0, 3.0])
        b = hist_from([4.0, 5.0, 6.0])
        a.merge(b)
        whole = hist_from([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        assert a.quantile(0.5) == whole.quantile(0.5)
        assert a.quantile(0.95) == whole.quantile(0.95)


def registry_from(events):
    """Build a registry from (kind, name, value) event tuples."""
    reg = MetricsRegistry()
    for kind, name, value in events:
        if kind == "counter":
            reg.counter(name).inc(int(abs(value)) % 1000)
        elif kind == "gauge":
            reg.gauge(name).set(value)
        else:
            reg.histogram(name).observe(value)
    return reg


EVENTS = st.lists(
    st.tuples(
        st.sampled_from(["counter", "gauge", "histogram"]),
        st.sampled_from(["a", "b", "c"]),
        VALUES,
    ),
    max_size=40,
)


class TestRegistryMerge:
    @given(EVENTS, EVENTS)
    @settings(max_examples=100, deadline=None)
    def test_commutative_snapshot(self, a_events, b_events):
        ab = registry_from(a_events)
        ab.merge(registry_from(b_events))
        ba = registry_from(b_events)
        ba.merge(registry_from(a_events))
        assert json.dumps(ab.snapshot(), sort_keys=True) == json.dumps(
            ba.snapshot(), sort_keys=True
        )

    @given(EVENTS, st.integers(min_value=0, max_value=40))
    @settings(max_examples=100, deadline=None)
    def test_counter_histogram_shard_identity(self, events, cut):
        """Counters and histograms merge to exactly the unsharded run.

        Gauges are excluded: a merged gauge is the max over shards by
        design, which only equals the sequential run when the last write
        happens to be the largest.
        """
        events = [e for e in events if e[0] != "gauge"]
        cut = min(cut, len(events))
        sharded = registry_from(events[:cut])
        sharded.merge(registry_from(events[cut:]))
        whole = registry_from(events)
        assert json.dumps(sharded.snapshot(), sort_keys=True) == json.dumps(
            whole.snapshot(), sort_keys=True
        )

    def test_gauge_merge_keeps_max(self):
        a = MetricsRegistry()
        a.gauge("g").set(3.0)
        b = MetricsRegistry()
        b.gauge("g").set(7.0)
        a.merge(b)
        assert a.gauge("g").value == 7.0

    def test_absorb_gauge_adopts_latest(self):
        a = MetricsRegistry()
        a.gauge("g").set(9.0)
        b = MetricsRegistry()
        b.gauge("g").set(2.0)
        a.absorb(b)
        assert a.gauge("g").value == 2.0
