"""Tests for counters, gauges and streaming histograms."""

import tracemalloc

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import Histogram


class TestCounterGauge:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        c = registry.counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7

    def test_same_name_and_labels_share_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("net.frames", bus="can0")
        b = registry.counter("net.frames", bus="can0")
        c = registry.counter("net.frames", bus="can1")
        assert a is b
        assert a is not c

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("x", alpha=1, beta=2)
        b = registry.counter("x", beta=2, alpha=1)
        assert a is b

    def test_full_name_rendering(self):
        registry = MetricsRegistry()
        c = registry.counter("net.frames", bus="can0")
        assert c.full_name == "net.frames{bus=can0}"
        assert registry.counter("plain").full_name == "plain"

    def test_counter_and_histogram_namespaces_are_separate(self):
        registry = MetricsRegistry()
        c = registry.counter("latency")
        h = registry.histogram("latency")
        assert c is not h
        assert len(registry) == 2


class TestHistogramQuantiles:
    def test_uniform_quantiles_within_bucket_error(self):
        registry = MetricsRegistry()
        h = registry.histogram("resp", growth=1.1)
        for i in range(1, 1001):
            h.observe(float(i))
        assert h.count == 1000
        assert h.min == 1.0
        assert h.max == 1000.0
        # log-bucketed estimate: relative error bounded by the growth factor
        assert h.quantile(0.50) == pytest.approx(500.0, rel=0.12)
        assert h.quantile(0.95) == pytest.approx(950.0, rel=0.12)
        assert h.quantile(0.99) == pytest.approx(990.0, rel=0.12)

    def test_quantile_extremes_clamp_to_observed_range(self):
        registry = MetricsRegistry()
        h = registry.histogram("resp")
        for v in (0.5, 1.0, 2.0, 4.0):
            h.observe(v)
        assert h.quantile(1.0) == 4.0
        assert h.quantile(0.0) <= 0.5 * 1.1

    def test_zero_and_negative_values(self):
        registry = MetricsRegistry()
        h = registry.histogram("jitter")
        for _ in range(90):
            h.observe(0.0)
        for _ in range(10):
            h.observe(1.0)
        assert h.count == 100
        assert h.quantile(0.5) == 0.0
        assert h.quantile(0.99) == pytest.approx(1.0, rel=0.12)

    def test_empty_histogram(self):
        registry = MetricsRegistry()
        h = registry.histogram("empty")
        assert h.quantile(0.5) == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["p99"] == 0.0

    def test_memory_is_bounded_by_dynamic_range(self):
        # 100k samples across 6 decades must not allocate 100k buckets.
        registry = MetricsRegistry()
        h = registry.histogram("wide")
        for i in range(100_000):
            h.observe(1e-3 * (1 + (i % 1000)) * (10 ** (i % 4)))
        assert h.count == 100_000
        assert len(h._buckets) < 400

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x", (), True, growth=1.0)
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("x").quantile(1.5)

    def test_mean_sum(self):
        registry = MetricsRegistry()
        h = registry.histogram("m")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.sum == 6.0
        assert h.mean == pytest.approx(2.0)


class TestRegistryLifecycle:
    def test_disabled_instruments_are_noops(self):
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("hits")
        h = registry.histogram("lat")
        g = registry.gauge("depth")
        c.inc()
        h.observe(1.0)
        g.set(5.0)
        assert c.value == 0
        assert h.count == 0
        assert g.value == 0

    def test_enable_flips_existing_handles(self):
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("hits")
        c.inc()
        registry.enable()
        c.inc()
        assert c.value == 1
        registry.disable()
        c.inc()
        assert c.value == 1

    def test_disabled_hot_path_allocates_nothing(self):
        # Cached handles on a disabled registry must not allocate per call.
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("hits")
        h = registry.histogram("lat")
        # warm up (bytecode caches, etc.)
        for _ in range(10):
            c.inc()
            h.observe(0.5)
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(1000):
            c.inc()
            h.observe(0.5)
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        grown = [
            s for s in after.compare_to(before, "lineno")
            if s.size_diff > 0
            and s.traceback[0].filename.endswith("obs/metrics.py")
        ]
        assert grown == []

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("hits", svc="a").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("lat").observe(0.25)
        snap = registry.snapshot()
        assert snap["counter"]["hits{svc=a}"]["value"] == 3
        assert snap["gauge"]["depth"]["value"] == 2
        assert snap["histogram"]["lat"]["count"] == 1

    def test_render_mentions_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.histogram("lat").observe(1.0)
        text = registry.render()
        assert "hits" in text
        assert "lat" in text
        assert MetricsRegistry().render() == "metrics: empty"
