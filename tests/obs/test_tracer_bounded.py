"""Tests for the bounded (ring-buffer) tracer and JSONL spill/export."""

import pytest

from repro.sim import Simulator, TraceEntry, Tracer, read_jsonl


class TestRingBuffer:
    def test_eviction_keeps_most_recent(self):
        tracer = Tracer(max_entries=3)
        for i in range(10):
            tracer.record(float(i), "cat", {"i": i})
        assert len(tracer) == 3
        assert [e["i"] for e in tracer.entries] == [7, 8, 9]
        assert tracer.evicted_count == 7

    def test_unbounded_by_default(self):
        tracer = Tracer()
        for i in range(100):
            tracer.record(float(i), "cat", {"i": i})
        assert len(tracer) == 100
        assert tracer.evicted_count == 0

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_entries=0)

    def test_analysis_helpers_work_on_ring(self):
        tracer = Tracer(max_entries=5)
        for i in range(20):
            tracer.record(float(i), "cat", {"v": float(i)})
        stats = tracer.field_stats("cat", "v")
        assert stats["count"] == 5.0
        assert stats["min"] == 15.0
        assert stats["max"] == 19.0
        assert tracer.category_counts() == {"cat": 5}

    def test_listeners_see_every_entry_despite_eviction(self):
        tracer = Tracer(max_entries=2)
        seen = []
        tracer.subscribe(lambda e: seen.append(e["i"]))
        for i in range(6):
            tracer.record(float(i), "cat", {"i": i})
        assert seen == list(range(6))

    def test_clear_resets_eviction_count(self):
        tracer = Tracer(max_entries=1)
        tracer.record(0.0, "a", {})
        tracer.record(1.0, "a", {})
        assert tracer.evicted_count == 1
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.evicted_count == 0

    def test_simulator_with_bounded_tracer(self):
        sim = Simulator(tracer=Tracer(max_entries=4))
        for i in range(10):
            sim.schedule(float(i), sim.trace, "tick")
        sim.run()
        assert len(sim.tracer) == 4
        assert sim.tracer.evicted_count == 6


class TestJsonl:
    def test_export_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.record(0.5, "net.delivery", {"bus": "can0", "latency": 0.001})
        tracer.record(1.0, "os.done", {"task": "t1", "missed": False})
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(str(path)) == 2
        loaded = read_jsonl(str(path))
        assert loaded == list(tracer.entries)

    def test_non_serialisable_fields_are_stringified(self, tmp_path):
        tracer = Tracer()
        tracer.record(0.0, "cat", {"obj": object()})
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(str(path))
        (entry,) = read_jsonl(str(path))
        assert entry.category == "cat"
        assert isinstance(entry["obj"], str)

    def test_spill_on_eviction(self, tmp_path):
        path = tmp_path / "spill.jsonl"
        tracer = Tracer(max_entries=3, spill_path=str(path))
        for i in range(10):
            tracer.record(float(i), "cat", {"i": i})
        tracer.flush()
        spilled = read_jsonl(str(path))
        # the 7 oldest entries went to disk, the 3 newest stayed in memory
        assert [e["i"] for e in spilled] == list(range(7))
        assert [e["i"] for e in tracer.entries] == [7, 8, 9]
        tracer.close()

    def test_spill_plus_memory_reconstructs_full_trace(self, tmp_path):
        path = tmp_path / "spill.jsonl"
        tracer = Tracer(max_entries=2, spill_path=str(path))
        for i in range(5):
            tracer.record(float(i), "cat", {"i": i})
        tracer.close()
        full = read_jsonl(str(path)) + list(tracer.entries)
        assert [e["i"] for e in full] == list(range(5))

    def test_no_spill_without_path(self, tmp_path):
        tracer = Tracer(max_entries=1)
        tracer.record(0.0, "a", {})
        tracer.record(1.0, "a", {})
        tracer.flush()
        tracer.close()  # no file ever opened; must not raise

    def test_entry_json_shape(self):
        entry = TraceEntry(1.25, "cat", {"x": 1})
        import json

        raw = json.loads(entry.to_json())
        assert raw == {"time": 1.25, "category": "cat", "fields": {"x": 1}}
