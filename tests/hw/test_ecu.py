"""Tests for ECU specs and runtime state."""

import pytest

from repro.errors import ConfigurationError
from repro.hw import CryptoCapability, EcuSpec, EcuState, OsClass


class TestEcuSpec:
    def test_speed_factor_reference(self):
        assert EcuSpec("a").speed_factor == 1.0
        assert EcuSpec("b", cpu_mhz=1000.0).speed_factor == 5.0

    def test_scale_wcet(self):
        fast = EcuSpec("fast", cpu_mhz=400.0)
        assert fast.scale_wcet(0.010) == pytest.approx(0.005)

    def test_total_capacity(self):
        quad = EcuSpec("q", cpu_mhz=400.0, cores=4)
        assert quad.total_capacity == pytest.approx(8.0)

    def test_invalid_cpu_rejected(self):
        with pytest.raises(ConfigurationError):
            EcuSpec("bad", cpu_mhz=0.0)

    def test_invalid_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            EcuSpec("bad", cores=0)

    def test_negative_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            EcuSpec("bad", memory_kib=-1)

    def test_duplicate_ports_rejected(self):
        with pytest.raises(ConfigurationError):
            EcuSpec("bad", ports=(("p", "can"), ("p", "ethernet")))

    def test_port_technology_lookup(self):
        ecu = EcuSpec("e", ports=(("can0", "can"), ("eth0", "ethernet")))
        assert ecu.port_technology("eth0") == "ethernet"
        with pytest.raises(ConfigurationError):
            ecu.port_technology("missing")

    def test_crypto_rate_ordering(self):
        none = EcuSpec("n", crypto=CryptoCapability.NONE)
        soft = EcuSpec("s", crypto=CryptoCapability.SOFTWARE)
        accel = EcuSpec("a", crypto=CryptoCapability.ACCELERATED)
        assert none.crypto_rate == 0.0
        assert soft.crypto_rate < accel.crypto_rate

    def test_os_class_determinism_support(self):
        assert OsClass.RTOS.supports_deterministic
        assert OsClass.POSIX_RT.supports_deterministic
        assert not OsClass.POSIX_GP.supports_deterministic


class TestEcuState:
    def test_memory_accounting(self):
        state = EcuState(EcuSpec("e", memory_kib=100))
        state.allocate_memory(60)
        assert state.memory_free_kib == 40
        state.free_memory(60)
        assert state.memory_free_kib == 100

    def test_memory_overflow_rejected(self):
        state = EcuState(EcuSpec("e", memory_kib=100))
        with pytest.raises(ConfigurationError):
            state.allocate_memory(101)

    def test_negative_allocation_rejected(self):
        state = EcuState(EcuSpec("e"))
        with pytest.raises(ConfigurationError):
            state.allocate_memory(-5)

    def test_flash_accounting(self):
        state = EcuState(EcuSpec("e", flash_kib=10))
        state.allocate_flash(8)
        with pytest.raises(ConfigurationError):
            state.allocate_flash(3)
        state.free_flash(8)
        state.allocate_flash(3)

    def test_free_never_goes_negative(self):
        state = EcuState(EcuSpec("e", memory_kib=10))
        state.free_memory(100)
        assert state.memory_used_kib == 0.0

    def test_fail_and_recover(self):
        state = EcuState(EcuSpec("e"))
        state.fail(5.0)
        assert state.failed and state.failure_time == 5.0
        state.recover()
        assert not state.failed and state.failure_time is None
