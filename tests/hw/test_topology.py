"""Tests for bus specs, topologies and the ECU catalog."""

import pytest

from repro.errors import ConfigurationError
from repro.hw import (
    BusSpec,
    EcuSpec,
    Topology,
    catalog_specs,
    centralized_topology,
    federated_topology,
)


def small_topology():
    topo = Topology("t")
    topo.add_bus(BusSpec("can0", "can", 500_000.0))
    topo.add_bus(BusSpec("eth0", "ethernet", 100e6))
    a = EcuSpec("a", ports=(("can0", "can"),))
    b = EcuSpec("b", ports=(("can0", "can"),))
    gw = EcuSpec("gw", ports=(("can0", "can"), ("eth0", "ethernet")))
    c = EcuSpec("c", ports=(("eth0", "ethernet"),))
    for e in (a, b, gw, c):
        topo.add_ecu(e)
    topo.attach("a", "can0", "can0")
    topo.attach("b", "can0", "can0")
    topo.attach("gw", "can0", "can0")
    topo.attach("gw", "eth0", "eth0")
    topo.attach("c", "eth0", "eth0")
    return topo


class TestBusSpec:
    def test_unknown_technology_rejected(self):
        with pytest.raises(ConfigurationError):
            BusSpec("b", "token_ring", 1e6)

    def test_zero_bitrate_rejected(self):
        with pytest.raises(ConfigurationError):
            BusSpec("b", "can", 0.0)

    def test_tsn_requires_ethernet(self):
        with pytest.raises(ConfigurationError):
            BusSpec("b", "can", 500e3, tsn_capable=True)
        BusSpec("b", "ethernet", 1e9, tsn_capable=True)  # fine

    def test_bytes_per_second(self):
        assert BusSpec("b", "can", 500_000.0).bytes_per_second == 62_500.0


class TestTopology:
    def test_duplicate_names_rejected(self):
        topo = Topology()
        topo.add_ecu(EcuSpec("x"))
        with pytest.raises(ConfigurationError):
            topo.add_ecu(EcuSpec("x"))
        with pytest.raises(ConfigurationError):
            topo.add_bus(BusSpec("x", "can", 1e6))

    def test_attach_technology_mismatch_rejected(self):
        topo = Topology()
        topo.add_bus(BusSpec("eth", "ethernet", 1e9))
        topo.add_ecu(EcuSpec("e", ports=(("can0", "can"),)))
        with pytest.raises(ConfigurationError):
            topo.attach("e", "can0", "eth")

    def test_unknown_lookups_raise(self):
        topo = Topology()
        with pytest.raises(ConfigurationError):
            topo.ecu("nope")
        with pytest.raises(ConfigurationError):
            topo.bus("nope")

    def test_membership_queries(self):
        topo = small_topology()
        assert {e.name for e in topo.ecus_on("can0")} == {"a", "b", "gw"}
        assert [b.name for b in topo.buses_of("gw")] == ["can0", "eth0"]
        assert [g.name for g in topo.gateways()] == ["gw"]

    def test_route_same_bus(self):
        topo = small_topology()
        buses = topo.route_buses("a", "b")
        assert [b.name for b in buses] == ["can0"]
        assert topo.hop_count("a", "b") == 1

    def test_route_via_gateway(self):
        topo = small_topology()
        buses = topo.route_buses("a", "c")
        assert [b.name for b in buses] == ["can0", "eth0"]
        assert topo.hop_count("a", "c") == 2

    def test_hop_count_same_ecu_is_zero(self):
        topo = small_topology()
        assert topo.hop_count("a", "a") == 0

    def test_no_path_raises(self):
        topo = Topology()
        topo.add_ecu(EcuSpec("lonely_1"))
        topo.add_ecu(EcuSpec("lonely_2"))
        with pytest.raises(ConfigurationError):
            topo.route("lonely_1", "lonely_2")

    def test_connectivity_check(self):
        topo = small_topology()
        assert topo.is_fully_connected()
        topo.add_ecu(EcuSpec("island"))
        assert not topo.is_fully_connected()

    def test_total_cost_sums_ecus(self):
        topo = Topology()
        topo.add_ecu(EcuSpec("a", unit_cost=10.0))
        topo.add_ecu(EcuSpec("b", unit_cost=15.0))
        assert topo.total_cost() == 25.0

    def test_describe_mentions_every_bus(self):
        text = small_topology().describe()
        assert "can0" in text and "eth0" in text


class TestCatalog:
    def test_catalog_instantiates(self):
        specs = catalog_specs()
        assert len(specs) == 5
        assert len({s.name for s in specs}) == 5

    def test_federated_topology_connected(self):
        topo = federated_topology(n_function_ecus=8)
        assert topo.is_fully_connected()
        assert len(topo.ecus) == 8 + 3  # functions + 2 gateways + head unit
        # legacy ECU on CAN must reach the head unit on Ethernet
        assert topo.hop_count("ecu_00", "head_unit") >= 2

    def test_centralized_topology_connected(self):
        topo = centralized_topology(n_platforms=2)
        assert topo.is_fully_connected()
        assert topo.bus("eth_backbone").tsn_capable

    def test_centralized_requires_platform(self):
        with pytest.raises(ValueError):
            centralized_topology(n_platforms=0)

    def test_consolidation_is_cheaper_at_scale(self):
        """The F1 premise: fewer, bigger boxes beat many small ones."""
        federated = federated_topology(n_function_ecus=30)
        central = centralized_topology(n_platforms=2)
        assert len(central.ecus) < len(federated.ecus)
