"""Cross-layer property-based tests (hypothesis) on core invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dse.engines import Candidate, ParetoArchive
from repro.dse.problem import Evaluation
from repro.model import ArrayType, Primitive, StructType
from repro.network import CanBus, Frame, can_frame_bits
from repro.osal import BudgetServer, TaskSpec, synthesize_table, total_utilization
from repro.errors import SchedulingError
from repro.sim import EventQueue, RngStreams, Simulator


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                    max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_pops_are_time_ordered(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = [q.pop().time for _ in range(len(times))]
        assert popped == sorted(popped)

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                              st.integers(min_value=0, max_value=5)),
                    min_size=2, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_same_time_priority_order(self, items):
        q = EventQueue()
        for t, p in items:
            q.push(t, lambda: None, priority=p)
        popped = [(c.time, c.priority) for c in
                  (q.pop() for _ in range(len(items)))]
        assert popped == sorted(popped)


class TestCanProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=0x7FF),
                              st.integers(min_value=0, max_value=8)),
                    min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_every_submitted_frame_is_delivered_exactly_once(self, frames):
        sim = Simulator()
        bus = CanBus(sim, "can0", 500e3)
        delivered = []
        for can_id, size in frames:
            bus.submit(
                Frame(src="a", dst=None, payload_bytes=size, priority=can_id)
            ).add_callback(lambda f: delivered.append(f.frame_id))
        sim.run()
        assert len(delivered) == len(frames)
        assert len(set(delivered)) == len(frames)
        assert bus.frames_delivered == len(frames)

    @given(st.integers(min_value=0, max_value=7))
    @settings(max_examples=8, deadline=None)
    def test_frame_bits_monotone_in_payload(self, n):
        assert can_frame_bits(n + 1) > can_frame_bits(n)

    @given(st.lists(st.integers(min_value=0, max_value=0x7FF),
                    min_size=2, max_size=20, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_simultaneous_frames_deliver_in_priority_order_after_first(
        self, can_ids
    ):
        """All frames queued at t=0: after the bus grabs the first, the
        rest must win arbitration strictly by identifier."""
        sim = Simulator()
        bus = CanBus(sim, "can0", 500e3)
        order = []
        for can_id in can_ids:
            bus.submit(
                Frame(src="a", dst=None, payload_bytes=1, priority=can_id)
            ).add_callback(lambda f: order.append(f.priority))
        sim.run()
        assert order[1:] == sorted(order[1:])


class TestBudgetServerProperties:
    @given(
        st.lists(
            st.tuples(st.floats(min_value=0.0001, max_value=0.01),
                      st.floats(min_value=0.0, max_value=0.005)),
            min_size=1, max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_budget_never_negative_or_above_capacity(self, ops):
        server = BudgetServer(capacity=0.003, period=0.01)
        now = 0.0
        for advance, consume in ops:
            now += advance
            available = server.available(now)
            assert -1e-15 <= available <= 0.003 + 1e-15
            server.consume(consume, now)
            assert server.available(now) >= -1e-15


class TestParetoProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1, max_value=100),
                st.floats(min_value=0.0001, max_value=0.1),
                st.floats(min_value=0, max_value=1),
            ),
            min_size=1, max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_archive_is_mutually_non_dominated(self, points):
        archive = ParetoArchive()
        for i, (cost, latency, imbalance) in enumerate(points):
            archive.offer(Candidate(
                [i], Evaluation(True, cost, latency, imbalance, 0)
            ))
        members = archive.members
        for a in members:
            for b in members:
                if a is not b:
                    assert not a.evaluation.dominates(b.evaluation)


class TestTypeSystemProperties:
    @given(st.lists(
        st.sampled_from(["uint8", "uint16", "uint32", "uint64", "float32"]),
        min_size=1, max_size=12,
    ))
    @settings(max_examples=50, deadline=None)
    def test_struct_size_is_sum_of_fields(self, field_types):
        fields = tuple(
            (f"f{i}", Primitive(t)) for i, t in enumerate(field_types)
        )
        struct = StructType("S", fields)
        assert struct.byte_size() == sum(
            Primitive(t).byte_size() for t in field_types
        )

    @given(
        st.sampled_from(["uint8", "uint32", "float64"]),
        st.integers(min_value=1, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_array_size_scales_linearly(self, element, length):
        assert (
            ArrayType(Primitive(element), length).byte_size()
            == Primitive(element).byte_size() * length
        )


class TestSynthesisProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from([0.005, 0.01, 0.02]),
                st.floats(min_value=0.02, max_value=0.3),
            ),
            min_size=1, max_size=5,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_table_utilization_matches_task_set(self, raw):
        tasks = [
            TaskSpec(name=f"t{i}", period=p, wcet=round(p * u, 9))
            for i, (p, u) in enumerate(raw)
        ]
        try:
            table = synthesize_table(tasks)
        except SchedulingError:
            return
        assert table.utilization == pytest.approx(
            total_utilization(tasks), rel=1e-6
        )


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_stream_independence(self, seed):
        """Draws on one stream never perturb another stream's sequence."""
        a = RngStreams(seed)
        b = RngStreams(seed)
        a.uniform("noise", 0, 1)
        a.uniform("noise", 0, 1)
        assert a.uniform("target", 0, 1) == b.uniform("target", 0, 1)
