"""Tests for workload generators and the static-platform baselines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    FirmwareImageUpdater,
    federated_deployment,
    federated_topology_for,
)
from repro.errors import ConfigurationError
from repro.osal import Criticality, total_utilization
from repro.sim import RngStreams, Simulator
from repro.workloads import (
    build_app_catalog,
    synthetic_app,
    synthetic_app_set,
    synthetic_task_set,
    uunifast,
)


class TestUUniFast:
    @given(
        st.integers(min_value=1, max_value=20),
        st.floats(min_value=0.05, max_value=3.0),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_sums_to_target(self, n, total, seed):
        utils = uunifast(RngStreams(seed), n, total)
        assert len(utils) == n
        assert sum(utils) == pytest.approx(total)
        assert all(u >= 0 for u in utils)

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            uunifast(RngStreams(0), 0, 0.5)
        with pytest.raises(ConfigurationError):
            uunifast(RngStreams(0), 3, 0.0)

    def test_reproducible(self):
        assert uunifast(RngStreams(1), 5, 0.8) == uunifast(RngStreams(1), 5, 0.8)


class TestTaskSetGeneration:
    def test_total_utilization_hit(self):
        tasks = synthetic_task_set(RngStreams(4), 8, 0.6)
        assert total_utilization(tasks) == pytest.approx(0.6, rel=0.05)

    def test_wcet_never_exceeds_period(self):
        tasks = synthetic_task_set(RngStreams(5), 20, 2.5)
        assert all(t.wcet <= t.period for t in tasks)

    def test_constrained_deadlines(self):
        tasks = synthetic_task_set(RngStreams(6), 5, 0.3, deadline_factor=0.8)
        assert all(t.effective_deadline == pytest.approx(t.period * 0.8) for t in tasks)

    def test_invalid_deadline_factor(self):
        with pytest.raises(ConfigurationError):
            synthetic_task_set(RngStreams(0), 3, 0.5, deadline_factor=0.0)

    def test_criticality_assignment(self):
        tasks = synthetic_task_set(
            RngStreams(7), 4, 0.4, criticality=Criticality.NON_DETERMINISTIC
        )
        assert all(t.criticality is Criticality.NON_DETERMINISTIC for t in tasks)


class TestAppGeneration:
    def test_synthetic_app_shape(self):
        app = synthetic_app(RngStreams(8), "appX", n_tasks=3, utilization=0.2)
        assert len(app.tasks) == 3
        assert app.utilization == pytest.approx(0.2, rel=0.05)
        assert app.is_deterministic

    def test_app_set_mix(self):
        apps = synthetic_app_set(RngStreams(9), 10, det_fraction=0.4)
        det = [a for a in apps if a.is_deterministic]
        assert len(det) == 4

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            synthetic_app_set(RngStreams(0), 4, det_fraction=1.5)


class TestCatalog:
    def test_catalog_interfaces_match_apps(self):
        interfaces, apps = build_app_catalog()
        app_names = {a.name for a in apps}
        for interface in interfaces:
            assert interface.owner in app_names
        provided = {name for a in apps for name in a.provides}
        assert provided == {i.name for i in interfaces} - set()


class TestFederatedBaseline:
    def test_one_ecu_per_app(self):
        _ifaces, apps = build_app_catalog()
        topo, deployment = federated_deployment(apps)
        assert len(deployment.used_ecus()) == len(apps)
        for app in apps:
            assert deployment.ecu_of(app.name) == f"ecu_{app.name}"

    def test_federated_costs_more_than_centralized(self):
        """F1's premise at the cost level."""
        from repro.hw import centralized_topology

        _ifaces, apps = build_app_catalog()
        federated, _d = federated_deployment(apps)
        central = centralized_topology(n_platforms=2)
        assert federated.total_cost() > 0
        assert len(central.ecus) < len(federated.ecus)

    def test_topology_is_connected(self):
        _ifaces, apps = build_app_catalog()
        topo = federated_topology_for(apps)
        assert topo.is_fully_connected()


class TestFirmwareUpdater:
    def test_flash_takes_realistic_time(self):
        sim = Simulator()
        updater = FirmwareImageUpdater(sim)
        reports = []
        updater.update("ecu_x", 2048).add_callback(reports.append)
        sim.run()
        report = reports[0]
        # 2 MiB over a 30 KB/s diag link ~ 70 s, plus reboot
        assert report.downtime > 60.0
        assert report.requires_standstill

    def test_downtime_scales_with_image(self):
        sim = Simulator()
        updater = FirmwareImageUpdater(sim)
        small, big = [], []
        updater.update("a", 512).add_callback(small.append)
        updater.update("b", 8192).add_callback(big.append)
        sim.run()
        assert big[0].downtime > small[0].downtime * 4

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            FirmwareImageUpdater(Simulator(), flash_rate=0.0)
