"""Unit tests for the fleet digest merge algebra."""

import json

from repro.fleet import FleetDigest, StatSummary, TopK, merge_digests


class TestStatSummary:
    def test_observe_and_stats(self):
        s = StatSummary()
        for v in (3.0, 1.0, 2.0):
            s.observe(v)
        assert s.count == 3
        assert s.min == 1.0 and s.max == 3.0
        assert s.sum == 6.0 and s.mean == 2.0

    def test_merge_exact_across_magnitudes(self):
        a = StatSummary()
        a.observe(1e16)
        a.observe(1.0)
        b = StatSummary()
        b.observe(-1e16)
        a.merge(b)
        assert a.sum == 1.0  # naive float addition would lose the 1.0

    def test_empty_json(self):
        assert StatSummary().to_json() == {
            "count": 0, "min": 0.0, "max": 0.0, "sum": 0.0, "mean": 0.0,
        }


class TestTopK:
    def test_keeps_worst_k(self):
        top = TopK(k=2)
        for key, score in ((1, 5.0), (2, 9.0), (3, 1.0), (4, 7.0)):
            top.add(key, score)
        assert top.entries == [(9.0, 2), (7.0, 4)]

    def test_merge_equals_global_topk(self):
        scores = {i: float((i * 7) % 13) for i in range(20)}
        left, right = TopK(k=4), TopK(k=4)
        for i, score in scores.items():
            (left if i < 10 else right).add(i, score)
        left.merge(right)
        unsharded = TopK(k=4)
        for i, score in scores.items():
            unsharded.add(i, score)
        assert left.entries == unsharded.entries

    def test_ties_break_by_key(self):
        top = TopK(k=2)
        top.add(9, 1.0)
        top.add(3, 1.0)
        top.add(5, 1.0)
        assert top.entries == [(1.0, 3), (1.0, 5)]


class TestFleetDigest:
    def observe_some(self, digest, indices):
        for i in indices:
            digest.observe_vehicle(
                index=i, variant_id=i % 3, releases=10, misses=i % 2,
            )

    def test_merge_matches_unsharded(self):
        a, b, whole = FleetDigest(), FleetDigest(), FleetDigest()
        self.observe_some(a, range(0, 6))
        self.observe_some(b, range(6, 15))
        self.observe_some(whole, range(0, 15))
        a.merge(b)
        assert json.dumps(a.to_json(), sort_keys=True) == json.dumps(
            whole.to_json(), sort_keys=True
        )

    def test_merge_commutative(self):
        a1, b1 = FleetDigest(), FleetDigest()
        a2, b2 = FleetDigest(), FleetDigest()
        self.observe_some(a1, range(0, 5))
        self.observe_some(a2, range(0, 5))
        self.observe_some(b1, range(5, 9))
        self.observe_some(b2, range(5, 9))
        a1.merge(b1)
        b2.merge(a2)
        assert json.dumps(a1.to_json(), sort_keys=True) == json.dumps(
            b2.to_json(), sort_keys=True
        )

    def test_miss_ratio(self):
        digest = FleetDigest()
        digest.observe_vehicle(index=0, variant_id=0, releases=8, misses=2)
        assert digest.miss_ratio == 0.25
        assert FleetDigest().miss_ratio == 0.0

    def test_merge_digests_helper(self):
        parts = []
        for lo, hi in ((0, 4), (4, 9), (9, 12)):
            digest = FleetDigest()
            self.observe_some(digest, range(lo, hi))
            parts.append(digest)
        merged = merge_digests(parts)
        whole = FleetDigest()
        self.observe_some(whole, range(0, 12))
        assert json.dumps(merged.to_json(), sort_keys=True) == json.dumps(
            whole.to_json(), sort_keys=True
        )
