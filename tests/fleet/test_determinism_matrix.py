"""The fleet determinism matrix: shards × workers × fork are all identical.

The satellite contract from ISSUE 8: per-vehicle seeds and variants
derive from the campaign master seed and the vehicle's global index, so
shard boundaries, worker counts and the fork/rebuild choice must all be
invisible in the merged campaign digest — byte for byte.
"""

import json

import pytest

from repro.exec.pool import ParallelExecutor
from repro.fleet import (
    FleetCampaignSpec,
    FleetSpec,
    build_fleet_snapshots,
    run_fleet,
    run_fleet_campaign,
)

SPEC = FleetSpec(size=18, soak_time=0.03, master_seed=11)


def digest_bytes(result):
    return json.dumps(result.digest_json, sort_keys=True)


@pytest.fixture(scope="module")
def snapshots():
    return build_fleet_snapshots(SPEC, tags=("old",))


@pytest.fixture(scope="module")
def reference(snapshots):
    """Unsharded, serial, forked run — the baseline everyone must match."""
    return digest_bytes(
        run_fleet(SPEC, fork=True, snapshots=snapshots, shard_size=SPEC.size)
    )


class TestDeterminismMatrix:
    @pytest.mark.parametrize("shard_size", [1, 4, 7, 18])
    def test_shard_size_is_invisible(self, shard_size, snapshots, reference):
        run = run_fleet(
            SPEC, fork=True, snapshots=snapshots, shard_size=shard_size
        )
        assert digest_bytes(run) == reference

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("shard_size", [5, 18])
    def test_worker_count_is_invisible(
        self, workers, shard_size, snapshots, reference
    ):
        executor = ParallelExecutor(workers=workers, master_seed=0)
        try:
            run = run_fleet(
                SPEC, executor=executor, fork=True, snapshots=snapshots,
                shard_size=shard_size,
            )
        finally:
            executor.close()
        assert digest_bytes(run) == reference

    @pytest.mark.parametrize("shard_size", [6, 18])
    def test_rebuild_path_is_identical(self, shard_size, reference):
        run = run_fleet(SPEC, fork=False, shard_size=shard_size)
        assert digest_bytes(run) == reference

    def test_executor_master_seed_is_irrelevant(self, snapshots, reference):
        """Outcomes bind to the spec's master seed, not the job seeds."""
        executor = ParallelExecutor(workers=1, master_seed=424242)
        try:
            run = run_fleet(
                SPEC, executor=executor, fork=True, snapshots=snapshots,
                shard_size=5,
            )
        finally:
            executor.close()
        assert digest_bytes(run) == reference

    def test_master_seed_changes_outcomes(self, snapshots, reference):
        other = FleetSpec(size=18, soak_time=0.03, master_seed=12)
        run = run_fleet(other, fork=False, shard_size=18)
        assert digest_bytes(run) != reference


class TestCampaignDigestMatrix:
    def campaign_digest(self, **kwargs):
        spec = FleetCampaignSpec(
            fleet=FleetSpec(size=30, soak_time=0.03, master_seed=5),
            stages=(0.1, 0.5, 1.0),
            shard_size=kwargs.pop("shard_size", None),
        )
        result = run_fleet_campaign(spec, **kwargs)
        return json.dumps(result.campaign_digest, sort_keys=True)

    def test_campaign_digest_shard_and_fork_invariant(self):
        reference = self.campaign_digest(shard_size=30, fork=True)
        assert self.campaign_digest(shard_size=4, fork=True) == reference
        assert self.campaign_digest(shard_size=11, fork=False) == reference
