"""Resume-equivalence matrix: a campaign killed at *any* checkpoint
boundary — shard, wave, mid-wave, mid-rollback — must resume to a
campaign digest byte-identical to an uninterrupted run, across
shard-size × worker-count layouts.

Also pins the skip property (resume recomputes only missing shards) and
the resume path of the other two campaign kinds (fault campaigns and
campaign sweeps).
"""

import json

import pytest

from repro.core.campaign import CampaignSpec, resume_sweep, sweep_campaigns
from repro.exec import ParallelExecutor
from repro.exec.recovery import (
    CheckpointCrash,
    CheckpointSpec,
    FaultPoints,
    load_manifest,
    resume_campaign,
)
from repro.faults import FaultPlan, FaultSpec
from repro.faults.campaign import (
    FaultCampaignSpec,
    resume_fault_campaign,
    run_fault_campaign,
)
from repro.fleet import (
    FleetCampaign,
    FleetCampaignSpec,
    FleetSpec,
    run_fleet_campaign,
)


def fleet_spec(shard_size, *, regression=0.0):
    return FleetCampaignSpec(
        fleet=FleetSpec(
            name="rec", size=24, soak_time=0.02, master_seed=13,
            regression_overrun=regression,
        ),
        stages=(0.25, 0.5, 1.0),
        shard_size=shard_size,
    )


def canonical(digest):
    return json.dumps(digest, sort_keys=True)


@pytest.fixture(scope="module")
def pool():
    ex = ParallelExecutor(workers=2, shutdown_grace=0.3)
    yield ex
    ex.close()


@pytest.fixture(scope="module")
def reference_digest():
    """Uninterrupted baseline — layout-proof, so one digest serves every
    shard-size × worker combination."""
    return canonical(run_fleet_campaign(fleet_spec(3)).campaign_digest)


class TestResumeMatrix:
    @pytest.mark.parametrize("shard_size", [3, 5])
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("crash_after", [0, 3, 6])
    def test_kill_at_any_boundary_resumes_byte_identical(
        self, tmp_path, pool, reference_digest, shard_size, workers,
        crash_after,
    ):
        spec = fleet_spec(shard_size)
        executor = pool if workers == 2 else None
        directory = str(tmp_path / "ckpt")
        fp = FaultPoints().arm("checkpoint.record_written",
                               after=crash_after)
        campaign = FleetCampaign(
            spec, executor=executor,
            checkpoint=CheckpointSpec(directory), fault_points=fp,
        )
        try:
            campaign.run()
            crashed = False  # crash point beyond the shard count
        except CheckpointCrash:
            crashed = True
        result = resume_campaign(directory, executor=executor)
        assert not result.halted
        assert result.vehicles_updated == 24
        assert canonical(result.campaign_digest) == reference_digest
        if crash_after < 6 or shard_size == 3:
            assert crashed, "fault point never fired — matrix too small"

    def test_resume_skips_completed_shards(self, tmp_path, monkeypatch):
        """After a crash with k shards durable, resume simulates only
        the vehicles of the missing shards."""
        from repro.fleet import shard as shard_mod

        spec = fleet_spec(3)  # waves 6/6/12 -> shards 2/2/4 of 3 vehicles
        directory = str(tmp_path / "ckpt")
        fp = FaultPoints().arm("checkpoint.record_written", after=3)
        with pytest.raises(CheckpointCrash):
            FleetCampaign(
                spec, checkpoint=CheckpointSpec(directory), fault_points=fp,
            ).run()
        reference = canonical(run_fleet_campaign(fleet_spec(3)).campaign_digest)
        # 4 records durable (the crash fires after the 4th rename) -> 12
        # of 24 vehicles are already on disk
        simulated = []
        real = shard_mod.simulate_vehicle

        def counting(spec_, index, tag, snapshots=None):
            simulated.append((index, tag))
            return real(spec_, index, tag, snapshots)

        monkeypatch.setattr(shard_mod, "simulate_vehicle", counting)
        result = resume_campaign(directory)
        assert canonical(result.campaign_digest) == reference
        assert len(simulated) == 12, (
            f"resume resimulated {len(simulated)} vehicles, expected 12"
        )

    def test_crash_during_rollback_resumes_halt_and_rollback(
        self, tmp_path
    ):
        """A halted campaign killed mid-rollback must resume to the same
        halted, rolled-back state and digest."""
        spec = fleet_spec(3, regression=30.0)
        reference = run_fleet_campaign(spec)
        assert reference.halted and reference.rolled_back
        directory = str(tmp_path / "ckpt")
        # wave 1 = 6 vehicles = 2 new-tag shards; the 3rd record is the
        # first rollback (old-tag) shard — crash right after it
        fp = FaultPoints().arm("checkpoint.record_written", after=2)
        with pytest.raises(CheckpointCrash):
            FleetCampaign(
                spec, checkpoint=CheckpointSpec(directory), fault_points=fp,
            ).run()
        result = resume_campaign(directory)
        assert result.halted and result.rolled_back
        assert result.vehicles_updated == reference.vehicles_updated
        assert canonical(result.campaign_digest) == canonical(
            reference.campaign_digest
        )
        assert [w.tag for w in result.waves] == [
            w.tag for w in reference.waves
        ]

    def test_every_n_shards_batching_still_resumes_exactly(self, tmp_path):
        """Coarser flush granularity widens the recompute window but
        never changes the resumed digest."""
        spec = fleet_spec(3)
        reference = canonical(run_fleet_campaign(spec).campaign_digest)
        directory = str(tmp_path / "ckpt")
        fp = FaultPoints().arm("checkpoint.flush", after=1)
        with pytest.raises(CheckpointCrash):
            FleetCampaign(
                spec, checkpoint=CheckpointSpec(directory, every_n_shards=2),
                fault_points=fp,
            ).run()
        result = resume_campaign(directory)
        assert canonical(result.campaign_digest) == reference

    def test_manifest_pins_the_campaign_kind(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        FleetCampaign(
            fleet_spec(5), checkpoint=CheckpointSpec(directory)
        ).run()
        manifest = load_manifest(directory)
        assert manifest["kind"] == "fleet_campaign"
        assert manifest["meta"]["every_n_shards"] == 1


CHAOS_PLAN = FaultPlan(
    name="rec",
    faults=(
        FaultSpec(kind="frame_drop", target="eth_backbone", start=0.02,
                  duration=0.1, probability=0.3),
    ),
)


class TestOtherCampaignKinds:
    def test_fault_campaign_crash_resume_equivalence(self, tmp_path):
        spec = FaultCampaignSpec(plan=CHAOS_PLAN, soak_time=0.15)
        reference = run_fault_campaign(spec, replications=4, master_seed=7)
        directory = str(tmp_path / "faults")
        fp = FaultPoints().arm("checkpoint.record_written", after=1)
        with pytest.raises(CheckpointCrash):
            run_fault_campaign(
                spec, replications=4, master_seed=7,
                checkpoint=CheckpointSpec(directory), fault_points=fp,
            )
        resumed = resume_fault_campaign(directory)
        assert resumed.outcomes == reference.outcomes
        assert resumed.digest["metrics"] == reference.digest["metrics"]
        assert load_manifest(directory)["kind"] == "fault_campaign"

    def test_sweep_crash_resume_equivalence(self, tmp_path):
        spec = CampaignSpec(fleet_size=2, soak_time=0.2, settle_time=0.1,
                            target_wcet=0.004, target_wcet_jitter=0.004,
                            target_deadline=0.002)
        reference = sweep_campaigns(spec, replications=3, master_seed=5)
        directory = str(tmp_path / "sweep")
        fp = FaultPoints().arm("checkpoint.record_written", after=0)
        with pytest.raises(CheckpointCrash):
            sweep_campaigns(
                spec, replications=3, master_seed=5,
                checkpoint=CheckpointSpec(directory), fault_points=fp,
            )
        resumed = resume_sweep(directory)
        assert resumed.outcomes == reference.outcomes
        assert resumed.digest["metrics"] == reference.digest["metrics"]
        assert load_manifest(directory)["kind"] == "campaign_sweep"
