"""Campaign service tests: staged waves, halt/rollback, admission."""

import pytest

from repro.errors import UpdateError
from repro.fleet import (
    CampaignAdmission,
    FleetCampaign,
    FleetCampaignSpec,
    FleetService,
    FleetSpec,
    run_fleet_campaign,
)


def healthy_spec(size=60, **kwargs):
    return FleetCampaignSpec(
        fleet=FleetSpec(size=size, soak_time=0.03, master_seed=2,
                        spike_probability=0.0),
        stages=(0.05, 0.4, 1.0),
        **kwargs,
    )


def buggy_spec(size=60, **kwargs):
    return FleetCampaignSpec(
        fleet=FleetSpec(
            size=size, soak_time=0.03, master_seed=2,
            regression_overrun=30.0,
        ),
        stages=(0.05, 0.4, 1.0),
        **kwargs,
    )


class TestFleetCampaign:
    def test_healthy_rollout_updates_whole_fleet(self):
        result = run_fleet_campaign(healthy_spec())
        assert not result.halted
        assert result.vehicles_updated == 60
        assert [w.wave for w in result.waves] == [1, 2, 3]
        assert result.waves[-1].stop == 60
        assert result.campaign_digest["vehicles"] == 60

    def test_staged_waves_grow_canary_first(self):
        result = run_fleet_campaign(healthy_spec())
        sizes = [w.stop - w.start for w in result.waves]
        assert sizes == [3, 21, 36]  # 5 %, 40 %, 100 % of 60

    def test_regression_halts_at_canary(self):
        """The halt demo: the injected overrun floods the canary wave's
        digest with misses; the campaign halts before the cohort wave and
        rolls the canary back to the old version."""
        result = run_fleet_campaign(buggy_spec())
        assert result.halted and result.rolled_back
        assert result.vehicles_updated == 0
        new_waves = [w for w in result.waves if w.tag == "new"]
        assert len(new_waves) == 1  # only the canary saw the bad version
        assert new_waves[0].halted
        assert new_waves[0].miss_ratio > 0.05
        rollback = [w for w in result.waves if w.tag == "old"]
        assert len(rollback) == 1
        assert rollback[0].miss_ratio <= 0.05  # old version is healthy
        # the campaign digest reflects the restored (rolled-back) state
        assert result.campaign_digest["vehicles"] == (
            new_waves[0].stop - new_waves[0].start
        )

    def test_step_is_incremental(self):
        campaign = FleetCampaign(healthy_spec(size=20))
        outcomes = []
        while not campaign.done:
            outcomes.append(campaign.step())
        assert campaign.step() is None
        assert len(outcomes) == len(campaign.waves)
        assert campaign.result.vehicles_updated == 20

    def test_empty_fleet_rejected(self):
        with pytest.raises(UpdateError):
            FleetCampaign(FleetCampaignSpec(fleet=FleetSpec(size=0)))


class TestAdmission:
    def test_active_queue_reject_progression(self):
        admission = CampaignAdmission(max_active=1, max_queued=1)
        assert admission.admit("a") == "active"
        assert admission.admit("b") == "queued"
        assert admission.admit("c") == "rejected"
        assert admission.rejected == 1

    def test_release_promotes_queued(self):
        admission = CampaignAdmission(max_active=1, max_queued=2)
        admission.admit("a")
        admission.admit("b")
        assert admission.release("a") == "b"
        assert admission.active == ["b"]

    def test_bounds_validated(self):
        with pytest.raises(UpdateError):
            CampaignAdmission(max_active=0)
        with pytest.raises(UpdateError):
            CampaignAdmission(max_queued=-1)

    def test_release_of_unknown_ticket_is_a_noop(self):
        admission = CampaignAdmission(max_active=1, max_queued=1)
        admission.admit("a")
        assert admission.release("ghost") is None
        assert admission.active == ["a"]
        # double release must not free somebody else's slot either
        admission.release("a")
        assert admission.release("a") is None

    def test_release_of_queued_ticket_dequeues_it(self):
        admission = CampaignAdmission(max_active=1, max_queued=2)
        admission.admit("a")
        admission.admit("b")
        assert admission.release("b") is None  # cancelled while queued
        assert list(admission.queued) == []
        assert admission.active == ["a"]


class TestFleetService:
    def small(self, **kwargs):
        return FleetCampaignSpec(
            fleet=FleetSpec(size=8, soak_time=0.02, master_seed=1,
                            spike_probability=0.0, **kwargs),
            stages=(0.25, 1.0),
        )

    def test_concurrent_campaigns_bounded(self):
        service = FleetService(
            admission=CampaignAdmission(max_active=1, max_queued=1)
        )
        t1, s1 = service.submit(self.small())
        t2, s2 = service.submit(self.small())
        t3, s3 = service.submit(self.small())
        assert (s1, s2, s3) == ("active", "queued", "rejected")
        done = service.run_until_idle()
        assert sorted(done) == sorted([t1, t2])
        assert all(r.completed for r in done.values())
        assert t3 not in done

    def test_waves_interleave_across_active_campaigns(self):
        service = FleetService(
            admission=CampaignAdmission(max_active=2, max_queued=0)
        )
        service.submit(self.small())
        service.submit(self.small())
        assert service.step()  # one wave each, both still active
        assert len(service.completed) == 0
        service.run_until_idle()
        assert len(service.completed) == 2

    def test_crashed_campaign_releases_its_admission_slot(self):
        """A campaign that dies with an exception must not shrink the
        admission capacity for everyone else (the slot-leak regression)."""
        service = FleetService(
            admission=CampaignAdmission(max_active=1, max_queued=1)
        )
        t1, s1 = service.submit(self.small())
        t2, s2 = service.submit(self.small())
        assert (s1, s2) == ("active", "queued")

        def explode():
            raise RuntimeError("wave blew up")

        service._campaigns[t1].step = explode
        service.step()
        assert t1 in service.failed
        assert "wave blew up" in service.failed[t1]
        assert t1 not in service._campaigns
        # the queued campaign was promoted into the freed slot and the
        # service still drains to idle at full capacity
        assert service.admission.active == [t2]
        done = service.run_until_idle()
        assert t2 in done and done[t2].completed
        t3, s3 = service.submit(self.small())
        assert s3 == "active", "crashed campaign leaked its slot"
        service.run_until_idle()

    def test_halted_campaign_completes_with_halt_flag(self):
        service = FleetService()
        ticket, state = service.submit(
            FleetCampaignSpec(
                fleet=FleetSpec(
                    size=8, soak_time=0.02, master_seed=1,
                    regression_overrun=30.0,
                ),
                stages=(0.25, 1.0),
            )
        )
        assert state == "active"
        done = service.run_until_idle()
        assert done[ticket].halted and done[ticket].rolled_back
