"""End-to-end integration scenarios crossing every layer of the stack."""

import pytest

from repro.core import (
    BackendLink,
    DynamicPlatform,
    ReconfigurationManager,
    RedundancyManager,
    RuntimeMonitor,
    UpdateOrchestrator,
)
from repro.hw import centralized_topology
from repro.middleware import EventConsumer, EventProducer, RpcClient, RpcServer
from repro.model import (
    AppModel,
    Asil,
    Deployment,
    generate_config,
    verify,
)
from repro.security import (
    AccessControlMatrix,
    TrustStore,
    build_package,
)
from repro.sim import Simulator, Tracer
from repro.workloads import reference_system


def full_stack(n_platforms=2):
    tracer = Tracer()
    sim = Simulator(tracer=tracer)
    store = TrustStore()
    store.generate_key("oem")
    platform = DynamicPlatform(
        sim, centralized_topology(n_platforms=n_platforms), trust_store=store
    )
    return sim, store, platform


class TestModelToRuntime:
    def test_reference_system_comes_up_clean(self):
        """Model -> verify -> ACL -> install -> admit -> run, 10 apps."""
        sim, store, platform = full_stack()
        model = reference_system(platform.topology)
        deployment = Deployment()
        placements = {
            "wheel_sensor_fusion": ("platform_0", 0),
            "vehicle_state_estimator": ("platform_0", 1),
            "brake_controller": ("platform_0", 2),
            "suspension_control": ("platform_0", 3),
            "front_camera": ("platform_1", 0),
            "object_fusion": ("platform_0", 4),
            "acc": ("platform_1", 1),
            "diagnosis_service": ("platform_1", 2),
            "media_server": ("head_unit", 0),
            "navigation": ("head_unit", 1),
        }
        for app, (ecu, core) in placements.items():
            deployment.place(app, ecu, core)
        assert verify(model, deployment).ok
        config = generate_config(model)
        AccessControlMatrix.from_config(config).install_on(platform.registry)
        for app in model.apps:
            ecu, core = placements[app.name]
            done = []
            platform.install(
                build_package(app, store, "oem"), ecu
            ).add_callback(done.append)
            while not done:
                sim.run(until=sim.now + 5.0)
            assert done == [True]
            platform.start_app(app.name, ecu, core_index=core)
        sim.run(until=sim.now + 1.0)
        assert len(platform.running_instances()) == 10
        assert platform.total_deterministic_misses() == 0

    def test_monitored_update_during_interference(self):
        """A DA app is staged-updated while NDAs hammer the same node;
        the monitor sees zero deadline faults throughout."""
        sim, store, platform = full_stack()
        monitor = RuntimeMonitor(sim)
        from repro.osal import Criticality, TaskSpec

        da = AppModel(
            name="ctl",
            tasks=(TaskSpec(
                name="ctl_loop", period=0.01, wcet=0.002, deadline=0.008,
            ),),
            asil=Asil.C, memory_kib=64, image_kib=128,
        )
        nda = AppModel(
            name="bulk",
            tasks=(TaskSpec(
                name="bulk_work", period=0.02, wcet=0.019,
                criticality=Criticality.NON_DETERMINISTIC,
            ),),
            memory_kib=64, image_kib=128,
        )
        monitor.watch(da.tasks[0])
        for app in (da, nda):
            platform.install(build_package(app, store, "oem"), "platform_0")
        sim.run()
        instance = platform.start_app("ctl", "platform_0", core_index=0)
        platform.start_app("bulk", "platform_0", core_index=0)
        sim.run(until=sim.now + 0.5)
        orchestrator = UpdateOrchestrator(platform)
        new_pkg = build_package(da.bumped(), store, "oem")
        reports = []
        orchestrator.staged_update("ctl", "platform_0", new_pkg).add_callback(
            reports.append
        )
        sim.run(until=sim.now + 2.0)
        assert reports[0].success
        assert monitor.faults_of_kind("deadline") == []

    def test_failover_then_migration_back(self):
        """Node dies -> failover; node recovers -> app migrated home."""
        sim, store, platform = full_stack(n_platforms=3)
        from repro.osal import TaskSpec

        app = AppModel(
            name="fn",
            tasks=(TaskSpec(name="fn_loop", period=0.01, wcet=0.001),),
            asil=Asil.D, memory_kib=64, image_kib=128,
        )
        for node in ("platform_0", "platform_1"):
            platform.install(build_package(app, store, "oem"), node)
        sim.run()
        redundancy = RedundancyManager(platform, heartbeat_period=0.005)
        replica_set = redundancy.deploy("fn", ["platform_0", "platform_1"])
        sim.run(until=sim.now + 0.1)
        platform.fail_node("platform_0")
        sim.run(until=sim.now + 0.2)
        assert replica_set.primary.node_name == "platform_1"
        # recover the node and migrate the function home
        platform.recover_node("platform_0")
        platform.node("platform_0").tear_down("fn", 1)
        reconfig = ReconfigurationManager(platform)
        reconfig.migrate("fn", "platform_1", "platform_0")
        sim.run(until=sim.now + 0.5)
        assert platform.where_is("fn") == ["platform_0"]


class TestServiceCommunicationOnPlatform:
    def test_services_across_platform_nodes(self):
        """RPC + pub/sub between apps hosted on different platform nodes,
        using the platform's own endpoints and registry."""
        sim, store, platform = full_stack()
        node0 = platform.node("platform_0")
        node1 = platform.node("platform_1")
        server = RpcServer(node0.endpoint, 0x900, provider_app="door_ctrl")
        server.register_method(1, lambda req: ("unlocked", 8), latency=0.001)
        client = RpcClient(node1.endpoint, 0x900, client_app="key_app")
        producer = EventProducer(
            node0.endpoint, 0x901, 1, provider_app="speed_svc"
        )
        got_events = []
        EventConsumer(
            node1.endpoint, 0x901, 1, client_app="dash",
            on_data=lambda m: got_events.append(m.payload),
        )
        got_rpc = []
        client.call(1, payload="unlock").add_callback(got_rpc.append)
        sim.run(until=sim.now + 0.5)
        producer.publish({"v": 100}, 16)
        sim.run(until=sim.now + 0.5)
        assert got_rpc[0].payload == "unlocked"
        assert got_events == [{"v": 100}]

    def test_acl_blocks_cross_node_binding(self):
        from repro.errors import SecurityError

        sim, store, platform = full_stack()
        acm = AccessControlMatrix()
        acm.grant("key_app", 0x900)
        acm.install_on(platform.registry)
        node0 = platform.node("platform_0")
        node1 = platform.node("platform_1")
        RpcServer(node0.endpoint, 0x900, provider_app="door_ctrl")
        ok_client = RpcClient(node1.endpoint, 0x900, client_app="key_app")
        ok_client.call(1)
        bad_client = RpcClient(node1.endpoint, 0x900, client_app="malware")
        with pytest.raises(SecurityError):
            bad_client.call(1)

    def test_node_failure_breaks_then_restores_service(self):
        sim, store, platform = full_stack()
        from repro.errors import ConfigurationError

        node0 = platform.node("platform_0")
        server = RpcServer(node0.endpoint, 0x910, provider_app="svc")
        server.register_method(1, lambda req: "pong")
        client = RpcClient(
            platform.node("platform_1").endpoint, 0x910, client_app="c"
        )
        got = []
        client.call(1).add_callback(got.append)
        sim.run(until=sim.now + 0.5)
        assert got[0].payload == "pong"
        platform.fail_node("platform_0")
        with pytest.raises(ConfigurationError):
            client.call(1)  # offer withdrawn with the node
        platform.recover_node("platform_0")
        RpcServer(node0.endpoint, 0x910, provider_app="svc").register_method(
            1, lambda req: "pong"
        )
        got2 = []
        client.call(1).add_callback(got2.append)
        sim.run(until=sim.now + 0.5)
        assert got2[0].payload == "pong"


class TestMonitorBackendLoop:
    def test_fault_report_reaches_backend_with_uplink_delay(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        backend = BackendLink(sim, uplink_latency=0.3)
        monitor = RuntimeMonitor(sim, backend=backend)
        from repro.osal import Core, FixedPriorityPolicy, PeriodicSource, TaskSpec

        core = Core(sim, "c", 1.0, FixedPriorityPolicy())
        bad = TaskSpec(name="bad", period=0.01, wcet=0.009, deadline=0.005)
        monitor.watch(bad)
        PeriodicSource(sim, core, bad, horizon=0.015)
        sim.run(until=0.2)
        local_count = len(monitor.faults)
        assert local_count > 0
        assert len(backend.received) == 0  # uplink still in flight
        sim.run(until=0.5)
        assert len(backend.received) == local_count
