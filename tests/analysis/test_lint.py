"""Tests for pragmas, baseline diffing and the ``repro.analysis`` CLI."""

import json
import textwrap

import pytest

from repro.analysis import (
    baseline_from_report,
    load_baseline,
    new_findings,
    run_lint,
    save_baseline,
)
from repro.analysis.__main__ import main
from repro.analysis.lint import PragmaIndex, scan_file

HAZARD = textwrap.dedent(
    """
    import random

    def jitter():
        return random.random()
    """
)


def write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestPragmas:
    def lint_one(self, tmp_path, source):
        path = write(tmp_path, "mod.py", source)
        return scan_file(str(path), "mod.py")

    def test_named_pragma_suppresses(self, tmp_path):
        findings, suppressed, err = self.lint_one(
            tmp_path,
            """
            import random

            def f():
                return random.random()  # repro: allow[DET101]
            """,
        )
        assert err is None
        assert findings == []
        assert suppressed == 1

    def test_bare_pragma_suppresses_everything_on_line(self, tmp_path):
        findings, suppressed, _ = self.lint_one(
            tmp_path,
            """
            import random, time

            def f():
                return random.random() + time.time()  # repro: allow
            """,
        )
        assert findings == []
        assert suppressed == 2

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        findings, suppressed, _ = self.lint_one(
            tmp_path,
            """
            import random

            def f():
                return random.random()  # repro: allow[DET999]
            """,
        )
        assert [f.rule for f in findings] == ["DET101"]
        assert suppressed == 0

    def test_multi_rule_pragma(self, tmp_path):
        findings, suppressed, _ = self.lint_one(
            tmp_path,
            """
            import random, time

            def f():
                return random.random() + time.time()  # repro: allow[DET101, DET102]
            """,
        )
        assert findings == []
        assert suppressed == 2

    def test_file_pragma_covers_whole_file(self, tmp_path):
        findings, suppressed, _ = self.lint_one(
            tmp_path,
            """
            # repro: allow-file[DET101]
            import random

            def f():
                return random.random()

            def g():
                return random.choice([1, 2])
            """,
        )
        assert findings == []
        assert suppressed == 2

    def test_pragma_on_last_line_of_multiline_statement(self, tmp_path):
        findings, suppressed, _ = self.lint_one(
            tmp_path,
            """
            import random

            def f():
                return random.uniform(
                    0.0, 1.0,
                )  # repro: allow[DET101]
            """,
        )
        assert findings == []
        assert suppressed == 1

    def test_pragma_index_scan(self):
        index = PragmaIndex.scan([
            "x = 1  # repro: allow[DET101]",
            "y = 2",
            "# repro: allow-file[DET301]",
        ])
        assert index.line_allows == {1: {"DET101"}}
        assert index.file_allows == {"DET301"}


class TestBaseline:
    def test_roundtrip(self, tmp_path):
        write(tmp_path, "src/mod.py", HAZARD)
        report = run_lint(["src"], str(tmp_path))
        baseline = baseline_from_report(report)
        target = tmp_path / "baseline.json"
        save_baseline(baseline, str(target))
        assert load_baseline(str(target)) == {
            "src/mod.py::DET101::return random.random()": 1
        }

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")) == {}

    def test_baselined_finding_not_new(self, tmp_path):
        write(tmp_path, "src/mod.py", HAZARD)
        report = run_lint(["src"], str(tmp_path))
        baseline = {f.fingerprint: 1 for f in report.findings}
        assert new_findings(report, baseline) == []

    def test_extra_occurrence_is_new(self, tmp_path):
        write(
            tmp_path,
            "src/mod.py",
            """
            import random

            def f():
                return random.random()

            def g():
                return random.random()
            """,
        )
        report = run_lint(["src"], str(tmp_path))
        assert len(report.findings) == 2
        # both findings share one fingerprint (same path, rule and text):
        # a baseline crediting one occurrence leaves the second as new
        fingerprint = report.findings[0].fingerprint
        assert report.findings[1].fingerprint == fingerprint
        fresh = new_findings(report, {fingerprint: 1})
        assert len(fresh) == 1

    def test_line_shift_does_not_break_baseline(self, tmp_path):
        write(tmp_path, "src/mod.py", HAZARD)
        baseline = baseline_from_report(run_lint(["src"], str(tmp_path)))
        shifted = "# a new comment\n# another\n" + textwrap.dedent(HAZARD)
        write(tmp_path, "src/mod.py", shifted)
        report = run_lint(["src"], str(tmp_path))
        assert new_findings(report, baseline["fingerprints"]) == []


class TestRunLint:
    def test_walk_is_sorted_and_skips_pycache(self, tmp_path):
        write(tmp_path, "src/b.py", HAZARD)
        write(tmp_path, "src/a.py", HAZARD)
        write(tmp_path, "src/__pycache__/c.py", HAZARD)
        report = run_lint(["src"], str(tmp_path))
        assert report.files_scanned == 2
        assert [f.path for f in report.findings] == ["src/a.py", "src/b.py"]

    def test_parse_error_reported_not_fatal(self, tmp_path):
        write(tmp_path, "src/bad.py", "def broken(:\n")
        write(tmp_path, "src/good.py", HAZARD)
        report = run_lint(["src"], str(tmp_path))
        assert len(report.parse_errors) == 1
        assert "src/bad.py" in report.parse_errors[0]
        assert len(report.findings) == 1

    def test_rng_module_exempt_from_det101(self, tmp_path):
        write(tmp_path, "src/repro/sim/rng.py", HAZARD)
        report = run_lint(["src"], str(tmp_path))
        assert report.findings == []


class TestCli:
    def test_check_fails_on_seeded_rng_bypass(self, tmp_path, capsys):
        write(tmp_path, "src/mod.py", HAZARD)
        code = main(["--root", str(tmp_path), "--check"])
        captured = capsys.readouterr()
        assert code == 1
        assert "DET101" in captured.out
        assert "FAIL" in captured.err

    def test_check_passes_on_clean_tree(self, tmp_path, capsys):
        write(tmp_path, "src/mod.py", "def f():\n    return 1\n")
        code = main(["--root", str(tmp_path), "--check"])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_update_baseline_then_check_passes(self, tmp_path):
        write(tmp_path, "src/mod.py", HAZARD)
        assert main(["--root", str(tmp_path), "--update-baseline"]) == 0
        assert (tmp_path / "determinism-baseline.json").exists()
        assert main(["--root", str(tmp_path), "--check"]) == 0
        # a new hazard on top of the baselined one still fails
        write(tmp_path, "src/other.py", HAZARD)
        assert main(["--root", str(tmp_path), "--check"]) == 1

    def test_no_baseline_flag_counts_everything(self, tmp_path):
        write(tmp_path, "src/mod.py", HAZARD)
        assert main(["--root", str(tmp_path), "--update-baseline"]) == 0
        assert main(["--root", str(tmp_path), "--check", "--no-baseline"]) == 1

    def test_parse_error_fails_check(self, tmp_path):
        write(tmp_path, "src/bad.py", "def broken(:\n")
        assert main(["--root", str(tmp_path), "--check"]) == 1

    def test_json_report_written(self, tmp_path):
        write(tmp_path, "src/mod.py", HAZARD)
        out = tmp_path / "report.json"
        main(["--root", str(tmp_path), "--json", str(out)])
        payload = json.loads(out.read_text(encoding="utf-8"))
        # the CLI runs the multi-pass analyzer (schema 2); the plain
        # run_lint() report keeps schema 1 (see test_report_schema.py)
        assert payload["schema"] == 2
        assert payload["passes"] == ["det", "pickle-safety", "arch", "races"]
        assert payload["summary"]["errors"] == 1

    def test_nothing_to_scan_is_usage_error(self, tmp_path):
        assert main(["--root", str(tmp_path)]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET101", "DET102", "DET201", "DET202",
                        "DET301", "DET401"):
            assert rule_id in out


@pytest.mark.parametrize("rel", ["src", "tests"])
def test_repo_tree_is_hazard_free(rel):
    """Regression guard: the shipped tree stays clean (the fixes for the
    hazards the linter found — set-ordered float sums, set-ordered app
    registration — must not regress)."""
    import os

    root = os.path.join(os.path.dirname(__file__), "..", "..")
    report = run_lint([rel], os.path.abspath(root))
    assert report.errors == [], [f.render() for f in report.errors]
