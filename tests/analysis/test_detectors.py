"""Per-rule positive/negative tests for the AST hazard detectors."""

import textwrap

from repro.analysis import detect


def findings_for(source, path="src/repro/sim/example.py", **kwargs):
    return detect(textwrap.dedent(source), path, **kwargs)


def rules_of(source, **kwargs):
    return [f.rule for f in findings_for(source, **kwargs)]


class TestDet101RawRandom:
    def test_module_attribute_flagged(self):
        assert rules_of(
            """
            import random

            def jitter():
                return random.random()
            """
        ) == ["DET101"]

    def test_from_import_flagged_once(self):
        rules = rules_of(
            """
            from random import random

            def jitter():
                return random()
            """
        )
        assert rules == ["DET101"]

    def test_numpy_random_flagged_through_alias(self):
        assert "DET101" in rules_of(
            """
            import numpy as np

            def draw():
                return np.random.rand()
            """
        )

    def test_rng_streams_usage_clean(self):
        assert rules_of(
            """
            def draw(streams):
                return streams.uniform("fault.delay", 0.0, 1.0)
            """
        ) == []

    def test_allow_raw_random_disables_rule(self):
        assert rules_of(
            """
            import random

            def seed():
                return random.Random(7)
            """,
            allow_raw_random=True,
        ) == []


class TestDet102WallClock:
    def test_time_time_flagged(self):
        assert rules_of(
            """
            import time

            def stamp():
                return time.time()
            """
        ) == ["DET102"]

    def test_monotonic_flagged(self):
        assert "DET102" in rules_of(
            """
            import time

            def stamp():
                return time.monotonic()
            """
        )

    def test_perf_counter_exempt(self):
        assert rules_of(
            """
            import time

            def measure():
                return time.perf_counter()
            """
        ) == []

    def test_datetime_now_flagged(self):
        assert "DET102" in rules_of(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """
        )

    def test_from_import_use_flagged(self):
        rules = rules_of(
            """
            from time import monotonic

            def stamp():
                return monotonic()
            """
        )
        # flagged at the import and at the call site
        assert rules == ["DET102", "DET102"]


class TestDet201SetIteration:
    def test_for_over_set_literal(self):
        assert rules_of(
            """
            def f(a, b):
                for x in {a, b}:
                    print(x)
            """
        ) == ["DET201"]

    def test_comprehension_over_set_call(self):
        assert "DET201" in rules_of(
            """
            def f(items):
                return [x for x in set(items)]
            """
        )

    def test_list_materialisation(self):
        assert "DET201" in rules_of(
            """
            def f(items):
                return list(frozenset(items))
            """
        )

    def test_join_over_set(self):
        assert "DET201" in rules_of(
            """
            def f(names):
                return ", ".join({n.lower() for n in names})
            """
        )

    def test_sorted_set_is_clean(self):
        assert rules_of(
            """
            def f(items):
                return sorted(set(items))
            """
        ) == []

    def test_dict_iteration_is_clean(self):
        assert rules_of(
            """
            def f(table):
                return [k for k in table]
            """
        ) == []

    def test_len_of_set_is_clean(self):
        assert rules_of(
            """
            def f(items):
                return len(set(items))
            """
        ) == []

    def test_membership_test_is_clean(self):
        assert rules_of(
            """
            def f(items, x):
                return x in set(items)
            """
        ) == []

    def test_set_combinator_method(self):
        assert "DET201" in rules_of(
            """
            def f(a, b):
                for x in set(a).union(b):
                    print(x)
            """
        )


class TestDet201Dataflow:
    """Set-typed *variables* are tracked through local assignments."""

    def test_variable_assigned_set_then_iterated(self):
        assert rules_of(
            """
            def f(items):
                seen = set(items)
                for x in seen:
                    print(x)
            """
        ) == ["DET201"]

    def test_variable_sorted_before_iteration_clean(self):
        assert rules_of(
            """
            def f(items):
                seen = set(items)
                for x in sorted(seen):
                    print(x)
            """
        ) == []

    def test_reassignment_clears_setness(self):
        assert rules_of(
            """
            def f(items):
                seen = set(items)
                seen = sorted(seen)
                for x in seen:
                    print(x)
            """
        ) == []

    def test_annotated_parameter_tracked(self):
        assert rules_of(
            """
            from typing import Set

            def f(seen: Set[str]):
                for x in seen:
                    print(x)
            """
        ) == ["DET201"]

    def test_augmented_union_keeps_setness(self):
        assert "DET201" in rules_of(
            """
            def f(a, b):
                seen = set(a)
                seen |= set(b)
                for x in seen:
                    print(x)
            """
        )

    def test_inner_function_scope_is_isolated(self):
        assert rules_of(
            """
            def outer(items):
                seen = set(items)

                def inner(seen):
                    for x in seen:
                        print(x)
                return len(seen)
            """
        ) == []

    def test_loop_variable_rebinding_clears(self):
        assert rules_of(
            """
            def f(groups):
                seen = set()
                for seen in groups:
                    for x in seen:
                        print(x)
            """
        ) == []


class TestDet202SortKeys:
    def test_key_id_flagged(self):
        assert rules_of(
            """
            def f(items):
                return sorted(items, key=id)
            """
        ) == ["DET202"]

    def test_lambda_calling_hash_flagged(self):
        assert "DET202" in rules_of(
            """
            def f(items):
                items.sort(key=lambda x: hash(x))
            """
        )

    def test_domain_key_clean(self):
        assert rules_of(
            """
            def f(items):
                return sorted(items, key=lambda x: x.name)
            """
        ) == []


class TestDet301Environment:
    def test_environ_read_error_in_sim(self):
        findings = findings_for(
            """
            import os

            def knob():
                return os.environ["REPRO_DEBUG"]
            """,
            path="src/repro/sim/example.py",
        )
        assert [(f.rule, f.severity) for f in findings] == [("DET301", "error")]

    def test_getenv_warning_outside_core(self):
        findings = findings_for(
            """
            import os

            def knob():
                return os.getenv("COLUMNS")
            """,
            path="src/repro/cli/example.py",
        )
        assert [(f.rule, f.severity) for f in findings] == [
            ("DET301", "warning")
        ]


class TestDet401MutableDefaults:
    def test_list_default_flagged(self):
        assert rules_of(
            """
            def f(items=[]):
                return items
            """
        ) == ["DET401"]

    def test_dataclass_field_default_flagged(self):
        assert "DET401" in rules_of(
            """
            from dataclasses import dataclass

            @dataclass
            class JobSpec:
                tags = {}
            """
        )

    def test_default_factory_clean(self):
        assert rules_of(
            """
            from dataclasses import dataclass, field

            @dataclass
            class JobSpec:
                tags: dict = field(default_factory=dict)
            """
        ) == []

    def test_none_default_clean(self):
        assert rules_of(
            """
            def f(items=None):
                return items or []
            """
        ) == []


class TestFindingMetadata:
    def test_findings_sorted_and_fingerprinted(self):
        findings = findings_for(
            """
            import random

            def f():
                b = random.random()
                a = random.random()
                return a + b
            """
        )
        assert [f.line for f in findings] == sorted(f.line for f in findings)
        first = findings[1]
        assert first.fingerprint == (
            f"{first.path}::{first.rule}::{first.text}"
        )
        assert "random.random()" in first.text

    def test_render_mentions_rule_and_hint(self):
        finding = findings_for(
            """
            import random
            x = random.random()
            """
        )[-1]
        rendered = finding.render()
        assert "DET101" in rendered
        assert "RngStreams" in rendered

    def test_regression_sum_over_set_comprehension(self):
        # the hazard shipped in bench_f1_consolidation.py: summing floats
        # in set order makes the total vary across processes
        assert "DET201" in rules_of(
            """
            def cost(dep, topo, apps):
                return sum(
                    topo.ecu(name).unit_cost
                    for name in {dep.ecu_of(a.name) for a in apps}
                )
            """
        )

    def test_regression_set_variable_in_test_code(self):
        # the hazard shipped in test_signals.py: adding apps to a model
        # in set iteration order
        assert "DET201" in rules_of(
            """
            def wire(report, model):
                emitters = {i.owner for i in report.interfaces}
                for emitter in emitters:
                    model.add_app(emitter)
            """
        )
