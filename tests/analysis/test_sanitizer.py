"""Tests for the runtime race detector (:mod:`repro.analysis.sanitizer`)."""

from repro.analysis import KernelSanitizer
from repro.obs import MetricsRegistry
from repro.sim import RngStreams, Simulator, Tracer
from repro.sim.resources import Resource, Store


def noop():
    pass


def other_noop():
    pass


class TestLifecycle:
    def test_kernel_default_has_no_sanitizer(self):
        assert Simulator().sanitizer is None

    def test_attach_detach_restores_hooks(self):
        sim = Simulator()
        rng = RngStreams(7)
        san = KernelSanitizer(sim, rng=rng)
        san.attach()
        assert sim.sanitizer is san
        assert rng._sanitizer is san
        san.detach()
        assert sim.sanitizer is None
        assert rng._sanitizer is None

    def test_attach_is_idempotent(self):
        sim = Simulator()
        san = KernelSanitizer(sim)
        assert san.attach() is san.attach()
        san.detach()
        san.detach()
        assert sim.sanitizer is None

    def test_context_manager(self):
        sim = Simulator()
        with KernelSanitizer(sim) as san:
            assert sim.sanitizer is san
        assert sim.sanitizer is None

    def test_detach_does_not_steal_foreign_hook(self):
        sim = Simulator()
        first = KernelSanitizer(sim).attach()
        second = KernelSanitizer(sim).attach()  # replaces first
        first.detach()  # must not clear second's hook
        assert sim.sanitizer is second


class TestTiebreak:
    def test_cross_callback_tie_reported_as_info(self):
        sim = Simulator()
        with KernelSanitizer(sim) as san:
            sim.at(1.0, noop)
            sim.at(1.0, other_noop)
            sim.run()
        assert san.tie_count == 1
        assert san.race_count == 0
        report = san.reports[0]
        assert report.kind == "tiebreak"
        assert report.severity == "info"
        assert "noop" in report.detail

    def test_same_callback_peers_not_reported(self):
        sim = Simulator()
        with KernelSanitizer(sim) as san:
            sim.at(1.0, noop)
            sim.at(1.0, noop)
            sim.run()
        assert san.tie_count == 0

    def test_different_priorities_not_a_tie(self):
        sim = Simulator()
        with KernelSanitizer(sim) as san:
            sim.at(1.0, noop, priority=10)
            sim.at(1.0, other_noop, priority=100)
            sim.run()
        assert san.tie_count == 0

    def test_repeated_pair_reported_once_but_counted(self):
        sim = Simulator()
        with KernelSanitizer(sim) as san:
            for t in (1.0, 2.0, 3.0):
                sim.at(t, noop)
                sim.at(t, other_noop)
            sim.run()
        assert san.tie_count == 3
        assert len([r for r in san.reports if r.kind == "tiebreak"]) == 1

    def test_cancelled_head_not_counted(self):
        sim = Simulator()
        with KernelSanitizer(sim) as san:
            sim.at(1.0, noop)
            handle = sim.at(1.0, other_noop)
            handle.cancel()
            sim.run()
        assert san.tie_count == 0


class TestSharedMutation:
    def test_same_tick_same_op_from_two_events_is_race(self):
        sim = Simulator()
        store = Store(sim, name="mailbox")
        with KernelSanitizer(sim) as san:
            sim.at(1.0, store.put, "a")
            sim.at(1.0, store.put, "b")
            sim.run()
        assert san.race_count == 1
        assert san.race_reports[0].kind == "shared_mutation"
        assert "mailbox" in san.race_reports[0].detail

    def test_different_ticks_clean(self):
        sim = Simulator()
        store = Store(sim, name="mailbox")
        with KernelSanitizer(sim) as san:
            sim.at(1.0, store.put, "a")
            sim.at(2.0, store.put, "b")
            sim.run()
        assert san.race_count == 0

    def test_put_get_pairing_same_tick_clean(self):
        # producer/consumer handshakes at one instant are the normal
        # pattern; only same-op peers are order-sensitive
        sim = Simulator()
        store = Store(sim, name="mailbox")
        with KernelSanitizer(sim) as san:
            sim.at(1.0, store.put, "a")
            sim.at(1.0, lambda: store.get())
            sim.run()
        assert san.race_count == 0

    def test_same_event_double_mutation_clean(self):
        def burst(store):
            store.put("a")
            store.put("b")

        sim = Simulator()
        store = Store(sim, name="mailbox")
        with KernelSanitizer(sim) as san:
            sim.at(1.0, burst, store)
            sim.run()
        assert san.race_count == 0

    def test_resource_request_race_detected(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1, name="crypto")
        with KernelSanitizer(sim) as san:
            sim.at(1.0, resource.request)
            sim.at(1.0, resource.request)
            sim.run()
        assert san.race_count == 1
        assert "crypto" in san.race_reports[0].detail

    def test_detached_resource_pays_no_reports(self):
        sim = Simulator()
        store = Store(sim, name="mailbox")
        sim.at(1.0, store.put, "a")
        sim.at(1.0, store.put, "b")
        sim.run()
        assert len(store) == 2  # behaviour unchanged, nothing recorded


class TestRngStreamSharing:
    def test_two_call_sites_one_stream_is_race(self):
        sim = Simulator()
        streams = RngStreams(7)

        def site_a():
            return streams.uniform("shared", 0.0, 1.0)

        def site_b():
            return streams.uniform("shared", 0.0, 1.0)

        with KernelSanitizer(sim, rng=streams) as san:
            site_a()
            site_b()
        assert san.race_count == 1
        report = san.race_reports[0]
        assert report.kind == "rng_stream_shared"
        assert "site_a" in report.detail and "site_b" in report.detail

    def test_one_site_many_draws_clean(self):
        sim = Simulator()
        streams = RngStreams(7)

        def site():
            return streams.uniform("mine", 0.0, 1.0)

        with KernelSanitizer(sim, rng=streams) as san:
            for _ in range(10):
                site()
        assert san.race_count == 0

    def test_distinct_streams_clean(self):
        sim = Simulator()
        streams = RngStreams(7)

        def site_a():
            return streams.uniform("a", 0.0, 1.0)

        def site_b():
            return streams.uniform("b", 0.0, 1.0)

        with KernelSanitizer(sim, rng=streams) as san:
            site_a()
            site_b()
        assert san.race_count == 0

    def test_draws_unchanged_by_sanitizer(self):
        bare = RngStreams(7).uniform("x", 0.0, 1.0)
        sim = Simulator()
        streams = RngStreams(7)
        with KernelSanitizer(sim, rng=streams):
            watched = streams.uniform("x", 0.0, 1.0)
        assert bare == watched


class TestReporting:
    def test_metrics_and_trace_wired(self):
        metrics = MetricsRegistry(enabled=True)
        tracer = Tracer()
        sim = Simulator(tracer, metrics=metrics)
        store = Store(sim, name="s")
        with KernelSanitizer(sim) as san:
            sim.at(1.0, store.put, "a")
            sim.at(1.0, store.put, "b")
            sim.run()
        assert san.race_count == 1
        counter = metrics.counter("sanitizer.reports", kind="shared_mutation")
        assert counter.value == 1
        kinds = [e.fields.get("kind") for e in tracer.entries
                 if e.category == "sanitizer"]
        assert "shared_mutation" in kinds

    def test_report_bound_keeps_counts(self):
        sim = Simulator()
        streams = RngStreams(7)

        def site_a():
            return streams.uniform("hot", 0.0, 1.0)

        def site_b():
            return streams.uniform("hot", 0.0, 1.0)

        def site_c():
            return streams.uniform("hot", 0.0, 1.0)

        with KernelSanitizer(sim, rng=streams, max_reports=1) as san:
            site_a()
            site_b()
            site_c()
        assert len(san.reports) == 1  # bounded storage ...
        assert san.race_count == 2  # ... but counts keep accumulating

    def test_summary_clean_and_dirty(self):
        sim = Simulator()
        san = KernelSanitizer(sim)
        assert san.summary() == "sanitizer: clean"
        store = Store(sim, name="s")
        with san:
            sim.at(1.0, store.put, "a")
            sim.at(1.0, store.put, "b")
            sim.run()
        assert "shared_mutation=1" in san.summary()
