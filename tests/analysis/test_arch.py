"""Unit tests for the architecture layering pass (ARCH6xx)."""

import ast
import textwrap

from repro.analysis.arch import (
    DEFAULT_CONTRACT,
    LayerContract,
    check_cycles,
    check_module_layers,
)
from repro.analysis.graph import ModuleGraph, collect_imports, module_name_for


def info_for(rel_path, source):
    source = textwrap.dedent(source)
    tree = ast.parse(source)
    return collect_imports(tree, rel_path, source.splitlines())


def layer_rules(rel_path, source, contract=DEFAULT_CONTRACT):
    return [f.rule for f in check_module_layers(info_for(rel_path, source),
                                                contract)]


class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert module_name_for("src/repro/sim/kernel.py") == "repro.sim.kernel"

    def test_init_names_its_package(self):
        assert module_name_for("src/repro/exec/__init__.py") == "repro.exec"

    def test_tests_keep_their_path(self):
        assert module_name_for("tests/sim/test_kernel.py") \
            == "tests.sim.test_kernel"


class TestLayerContract:
    def test_sim_may_not_import_exec(self):
        assert layer_rules("src/repro/sim/bad.py", """
            from repro.exec.pool import run_jobs
        """) == ["ARCH601"]

    def test_exec_may_import_sim(self):
        assert layer_rules("src/repro/exec/ok.py", """
            from repro.sim.kernel import Simulator
        """) == []

    def test_obs_importable_from_everywhere(self):
        for pkg in ("sim", "core", "exec", "fleet", "network"):
            assert layer_rules(f"src/repro/{pkg}/mod.py", """
                from repro.obs.metrics import MetricsRegistry
            """) == []

    def test_lazy_upward_import_is_arch603(self):
        assert layer_rules("src/repro/core/mod.py", """
            def dispatch():
                from repro.exec.pool import get_inline_executor
                return get_inline_executor()
        """) == ["ARCH603"]

    def test_type_checking_import_exempt(self):
        assert layer_rules("src/repro/sim/mod.py", """
            from typing import TYPE_CHECKING
            if TYPE_CHECKING:
                from repro.exec.pool import ParallelExecutor
        """) == []

    def test_undeclared_package_is_arch604(self):
        assert layer_rules("src/repro/newpkg/mod.py", """
            import os
        """) == ["ARCH604"]

    def test_import_of_undeclared_package_is_arch604(self):
        assert layer_rules("src/repro/core/mod.py", """
            from repro.mystery import thing
        """) == ["ARCH604"]

    def test_root_facade_exempt(self):
        assert layer_rules("src/repro/__init__.py", """
            from repro.fleet.service import FleetCampaign
        """) == []

    def test_tests_are_not_layered(self):
        assert layer_rules("tests/sim/test_mod.py", """
            from repro.fleet.service import FleetCampaign
        """) == []

    def test_relative_import_resolves_before_check(self):
        # ../exec/... from core is the same upward edge as the absolute
        assert layer_rules("src/repro/core/mod.py", """
            from ..exec.pool import run_jobs
        """) == ["ARCH601"]

    def test_fingerprint_changes_with_contract(self):
        alt = LayerContract(layers={"sim": frozenset({"exec"})})
        assert alt.fingerprint() != DEFAULT_CONTRACT.fingerprint()


class TestCycles:
    def test_mutual_imports_form_a_cycle(self):
        graph = ModuleGraph([
            info_for("src/repro/sim/a.py", "from repro.sim import b\n"),
            info_for("src/repro/sim/b.py", "from repro.sim import a\n"),
        ])
        findings = check_cycles(graph)
        assert [f.rule for f in findings] == ["ARCH602"]
        assert "repro.sim.a -> repro.sim.b" in findings[0].message

    def test_facade_reexport_is_not_a_cycle(self):
        # package __init__ imports its submodules; submodules import
        # siblings — the ancestor edge must not close a false cycle
        graph = ModuleGraph([
            info_for("src/repro/sim/__init__.py",
                     "from .a import A\nfrom .b import B\n"),
            info_for("src/repro/sim/a.py", "from repro.sim.b import B\n"),
            info_for("src/repro/sim/b.py", "x = 1\n"),
        ])
        assert check_cycles(graph) == []

    def test_lazy_back_edge_breaks_the_cycle(self):
        graph = ModuleGraph([
            info_for("src/repro/sim/a.py", "from repro.sim import b\n"),
            info_for("src/repro/sim/b.py", """
                def back():
                    from repro.sim import a
                    return a
            """),
        ])
        assert check_cycles(graph) == []

    def test_cycle_report_is_deterministic(self):
        def build():
            return ModuleGraph([
                info_for("src/repro/sim/a.py", "from repro.sim import b\n"),
                info_for("src/repro/sim/b.py", "from repro.sim import c\n"),
                info_for("src/repro/sim/c.py", "from repro.sim import a\n"),
            ])
        first = [f.message for f in check_cycles(build())]
        second = [f.message for f in check_cycles(build())]
        assert first == second
        assert len(first) == 1


class TestRealRepoContract:
    def test_every_package_is_declared(self):
        import os

        root = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "..")
        )
        src = os.path.join(root, "src", "repro")
        packages = sorted(
            name for name in os.listdir(src)
            if os.path.isdir(os.path.join(src, name))
            and not name.startswith("__")
        )
        for package in packages:
            assert package in DEFAULT_CONTRACT.layers, (
                f"package {package!r} missing from the layer contract"
            )
