"""Golden-file tests pinning the schema-2 analysis report.

One golden per new rule family (PICK5xx, ARCH6xx, RACE7xx), each
produced from a fixed fixture tree, plus the invariant that the cached
and uncached reports serialize byte-identically.  Regenerate after a
deliberate schema change with

    PYTHONPATH=src python tests/analysis/test_analysis_schema.py
"""

import json
import os
import textwrap

from repro.analysis.cache import AnalysisCache
from repro.analysis.lint import analysis_salt, run_analysis

HERE = os.path.dirname(__file__)
GOLDENS = {
    "pickle-safety": os.path.join(HERE, "golden_pickle_report.json"),
    "arch": os.path.join(HERE, "golden_arch_report.json"),
    "races": os.path.join(HERE, "golden_races_report.json"),
}

#: one fixture tree exercising all three families (and a pragma each)
FIXTURE = {
    "src/repro/sim/racer.py": """
        class Beacon:
            def start(self, sim):
                sim.schedule(0.5, self.mark)
                sim.schedule(0.5, self.clear)
                sim.schedule(0.5, self.blip)  # repro: allow[RACE701]

            def mark(self):
                self.flag = 1

            def clear(self):
                self.flag = 0

            def blip(self):
                self.flag = 2
        """,
    "src/repro/sim/leaky.py": """
        from repro.exec.pool import run_jobs

        def launch(jobs):
            return run_jobs(jobs, context=lambda: 1)
        """,
    "src/repro/exec/builder.py": """
        def build(run):
            handle = open("trace.bin")
            return FunctionJob("j", run, handle)
        """,
}


def build_report(root, passes):
    for rel, source in FIXTURE.items():
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(textwrap.dedent(source))
    return run_analysis(["src"], root, passes=passes)


class TestGoldenReports:
    def test_pickle_report_matches_golden(self, tmp_path):
        report = build_report(str(tmp_path), ["pickle-safety"])
        with open(GOLDENS["pickle-safety"], encoding="utf-8") as fh:
            assert report.to_dict() == json.load(fh)

    def test_arch_report_matches_golden(self, tmp_path):
        report = build_report(str(tmp_path), ["arch"])
        with open(GOLDENS["arch"], encoding="utf-8") as fh:
            assert report.to_dict() == json.load(fh)

    def test_races_report_matches_golden(self, tmp_path):
        report = build_report(str(tmp_path), ["races"])
        with open(GOLDENS["races"], encoding="utf-8") as fh:
            assert report.to_dict() == json.load(fh)


class TestSchemaInvariants:
    def test_schema_version_is_two(self, tmp_path):
        payload = build_report(str(tmp_path), ["arch"]).to_dict()
        assert payload["schema"] == 2
        assert payload["passes"] == ["arch"]

    def test_by_family_counts_match_findings(self, tmp_path):
        report = build_report(
            str(tmp_path), ["det", "pickle-safety", "arch", "races"]
        )
        payload = report.to_dict()
        by_family = payload["summary"]["by_family"]
        total = sum(
            counts["errors"] + counts["warnings"]
            for counts in by_family.values()
        )
        assert total == len(report.findings)
        assert set(by_family) == {"DET", "PICK", "ARCH", "RACE"}

    def test_rules_catalogue_matches_passes(self, tmp_path):
        payload = build_report(str(tmp_path), ["races"]).to_dict()
        assert set(payload["rules"]) == {"RACE701", "RACE702"}

    def test_cached_report_serializes_identically(self, tmp_path):
        passes = ["det", "pickle-safety", "arch", "races"]
        uncached = build_report(str(tmp_path), passes)
        cache_dir = str(tmp_path / "cache")
        salt = analysis_salt(passes)
        cold = run_analysis(
            ["src"], str(tmp_path), passes=passes,
            cache=AnalysisCache(cache_dir, salt),
        )
        warm = run_analysis(
            ["src"], str(tmp_path), passes=passes,
            cache=AnalysisCache(cache_dir, salt),
        )
        assert uncached.to_json() == cold.to_json() == warm.to_json()


if __name__ == "__main__":
    import tempfile

    for pass_name, golden_path in GOLDENS.items():
        with tempfile.TemporaryDirectory() as root:
            payload = build_report(root, [pass_name]).to_json()
        with open(golden_path, "w", encoding="utf-8") as fh:
            fh.write(payload)
            fh.write("\n")
        print(f"regenerated {golden_path}")
