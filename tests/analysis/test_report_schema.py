"""Golden-file test pinning the JSON report schema.

Downstream tooling (the CI job, report diffing) parses the linter's JSON
output; this test freezes the exact payload for a fixed fixture tree so
schema drift is a deliberate act: regenerate with

    PYTHONPATH=src python tests/analysis/test_report_schema.py
"""

import json
import os
import textwrap

from repro.analysis import run_lint

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_report.json")

#: fixture tree written under a temp root; rel paths (the only
#: path-dependent part of the report) stay identical across machines
FIXTURE = {
    "src/repro/sim/clockish.py": """
        import random
        import time

        def sample():
            return time.monotonic()  # repro: allow[DET102]

        def jitter():
            return random.random()
        """,
    "src/repro/cli/knobs.py": """
        import os

        def columns(fallback=[]):
            value = os.getenv("COLUMNS")
            return value or fallback
        """,
}


def build_report(root):
    for rel, source in FIXTURE.items():
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(textwrap.dedent(source))
    return run_lint(["src"], root)


def test_report_matches_golden(tmp_path):
    report = build_report(str(tmp_path))
    with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
        golden = json.load(fh)
    assert report.to_dict() == golden


def test_report_json_is_stable(tmp_path):
    """Serialisation itself is deterministic: sorted keys, fixed indent."""
    report = build_report(str(tmp_path))
    assert report.to_json() == report.to_json()
    payload = json.loads(report.to_json())
    assert payload == report.to_dict()


def test_summary_counts_consistent(tmp_path):
    report = build_report(str(tmp_path))
    payload = report.to_dict()
    assert payload["summary"]["errors"] == len(report.errors)
    assert payload["summary"]["warnings"] == len(report.warnings)
    assert sum(payload["summary"]["by_rule"].values()) == len(report.findings)
    assert payload["suppressed"] == 1  # the DET102 pragma in the fixture


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as root:
        payload = build_report(root).to_json()
    with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
        fh.write(payload)
        fh.write("\n")
    print(f"regenerated {GOLDEN_PATH}")
