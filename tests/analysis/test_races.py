"""Unit tests for the static same-instant race pass (RACE7xx)."""

import ast
import textwrap

from repro.analysis.lint import PragmaIndex
from repro.analysis.races import check_races


def scan(source):
    source = textwrap.dedent(source)
    tree = ast.parse(source)
    return check_races(tree, "mod.py", source.splitlines())


def rules(source):
    return [f.rule for f in scan(source)]


WRITE_WRITE = """
    class Node:
        def start(self, sim):
            sim.schedule(1.0, self.bump)
            sim.schedule(1.0, self.reset)

        def bump(self):
            self.count = self.count + 1

        def reset(self):
            self.count = 0
"""


class TestWriteWrite:
    def test_same_instant_writes_same_attribute(self):
        findings = scan(WRITE_WRITE)
        assert [f.rule for f in findings] == ["RACE701"]
        assert "self.count" in findings[0].message
        # reported at the second site, naming the first
        assert "line 4" in findings[0].message

    def test_different_delays_do_not_race(self):
        assert rules("""
            class Node:
                def start(self, sim):
                    sim.schedule(1.0, self.bump)
                    sim.schedule(2.0, self.reset)

                def bump(self):
                    self.count = 1

                def reset(self):
                    self.count = 0
        """) == []

    def test_distinct_priorities_do_not_race(self):
        assert rules("""
            class Node:
                def start(self, sim):
                    sim.schedule(1.0, self.bump, priority=0)
                    sim.schedule(1.0, self.reset, priority=1)

                def bump(self):
                    self.count = 1

                def reset(self):
                    self.count = 0
        """) == []

    def test_disjoint_attributes_do_not_race(self):
        assert rules("""
            class Node:
                def start(self, sim):
                    sim.schedule(1.0, self.bump)
                    sim.schedule(1.0, self.reset)

                def bump(self):
                    self.hits = 1

                def reset(self):
                    self.misses = 0
        """) == []

    def test_at_and_schedule_pin_different_instants(self):
        # .at(1.0) is absolute, .schedule(1.0) is relative: not paired
        assert rules("""
            class Node:
                def start(self, sim):
                    sim.at(1.0, self.bump)
                    sim.schedule(1.0, self.reset)

                def bump(self):
                    self.count = 1

                def reset(self):
                    self.count = 0
        """) == []

    def test_subscript_store_counts_as_write(self):
        assert rules("""
            class Node:
                def start(self, sim):
                    sim.schedule(1.0, self.put_a)
                    sim.schedule(1.0, self.put_b)

                def put_a(self):
                    self.buf["a"] = 1

                def put_b(self):
                    self.buf["b"] = 2
        """) == ["RACE701"]


class TestWriteRead:
    def test_one_writes_what_the_other_reads(self):
        findings = scan("""
            class Node:
                def start(self, sim):
                    sim.schedule(1.0, self.produce)
                    sim.schedule(1.0, self.consume)

                def produce(self):
                    self.value = 42

                def consume(self):
                    self.seen.append(self.value)
        """)
        assert [f.rule for f in findings] == ["RACE702"]
        assert "self.value" in findings[0].message

    def test_both_only_read_is_fine(self):
        assert rules("""
            class Node:
                def start(self, sim):
                    sim.schedule(1.0, self.peek_a)
                    sim.schedule(1.0, self.peek_b)

                def peek_a(self):
                    return self.value

                def peek_b(self):
                    return self.value
        """) == []


class TestScopeLimits:
    def test_dynamic_delay_not_paired(self):
        assert rules("""
            class Node:
                def start(self, sim, when):
                    sim.schedule(when, self.bump)
                    sim.schedule(when, self.reset)

                def bump(self):
                    self.count = 1

                def reset(self):
                    self.count = 0
        """) == []

    def test_external_callback_not_paired(self):
        assert rules("""
            class Node:
                def start(self, sim, other):
                    sim.schedule(1.0, self.bump)
                    sim.schedule(1.0, other.reset)

                def bump(self):
                    self.count = 1
        """) == []

    def test_sites_in_different_classes_not_paired(self):
        assert rules("""
            class A:
                def start(self, sim):
                    sim.schedule(1.0, self.bump)

                def bump(self):
                    self.count = 1

            class B:
                def start(self, sim):
                    sim.schedule(1.0, self.reset)

                def reset(self):
                    self.count = 0
        """) == []


class TestPragmaSuppression:
    def test_line_pragma_on_second_site(self):
        source = textwrap.dedent(WRITE_WRITE).replace(
            "sim.schedule(1.0, self.reset)",
            "sim.schedule(1.0, self.reset)  # repro: allow[RACE701]",
        )
        tree = ast.parse(source)
        findings = check_races(tree, "mod.py", source.splitlines())
        pragmas = PragmaIndex.scan(source.splitlines())
        assert [f.rule for f in findings] == ["RACE701"]
        assert all(pragmas.suppresses(f, f.end_line) for f in findings)
