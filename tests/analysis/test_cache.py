"""Incremental analysis cache: byte-identical hot/cold, edit-safe.

The load-bearing property is exact: a report produced from a warm cache
must equal the no-cache report **byte for byte**, including after
editing one file.  A cache that changes output is not an optimization,
it is a second analyzer.
"""

import json
import os
import time

from repro.analysis.cache import AnalysisCache, version_salt
from repro.analysis.lint import analysis_salt, run_analysis

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)

HAZARD = (
    "import random\n"
    "\n"
    "def jitter():\n"
    "    return random.random()\n"
)

CLEAN = "def f():\n    return 1\n"


def write(root, rel, content):
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content, encoding="utf-8")


class TestByteIdentical:
    def test_cold_warm_and_uncached_reports_match(self, tmp_path):
        write(tmp_path, "src/a.py", HAZARD)
        write(tmp_path, "src/b.py", CLEAN)
        cache_dir = str(tmp_path / "cache")
        salt = analysis_salt()
        root = str(tmp_path)

        cold_cache = AnalysisCache(cache_dir, salt)
        cold = run_analysis(["src"], root, cache=cold_cache)
        assert cold_cache.stores == 2 and cold_cache.hits == 0

        warm_cache = AnalysisCache(cache_dir, salt)
        warm = run_analysis(["src"], root, cache=warm_cache)
        assert warm_cache.hits == 2 and warm_cache.misses == 0

        uncached = run_analysis(["src"], root)
        assert cold.to_json() == warm.to_json() == uncached.to_json()

    def test_one_file_edit_reanalyzes_only_that_file(self, tmp_path):
        write(tmp_path, "src/a.py", HAZARD)
        write(tmp_path, "src/b.py", CLEAN)
        cache_dir = str(tmp_path / "cache")
        salt = analysis_salt()
        root = str(tmp_path)
        run_analysis(["src"], root, cache=AnalysisCache(cache_dir, salt))

        write(tmp_path, "src/b.py", CLEAN + "\n# touched\n")
        edited_cache = AnalysisCache(cache_dir, salt)
        edited = run_analysis(["src"], root, cache=edited_cache)
        assert edited_cache.hits == 1          # a.py replayed
        assert edited_cache.misses == 1        # b.py recomputed
        uncached = run_analysis(["src"], root)
        assert edited.to_json() == uncached.to_json()

    def test_real_repo_warm_run_identical_and_faster(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        salt = analysis_salt()

        t0 = time.perf_counter()
        cold = run_analysis(
            ["src/repro"], REPO_ROOT,
            cache=AnalysisCache(cache_dir, salt),
        )
        cold_elapsed = time.perf_counter() - t0

        t1 = time.perf_counter()
        warm = run_analysis(
            ["src/repro"], REPO_ROOT,
            cache=AnalysisCache(cache_dir, salt),
        )
        warm_elapsed = time.perf_counter() - t1

        assert cold.to_json() == warm.to_json()
        # "measurably faster": a full AST parse+visit of the tree versus
        # JSON loads — anything under half the cold time is real
        assert warm_elapsed < cold_elapsed / 2, (
            f"warm {warm_elapsed:.3f}s vs cold {cold_elapsed:.3f}s"
        )


class TestInvalidation:
    def test_salt_changes_with_rule_or_contract_config(self):
        assert version_salt("a") != version_salt("b")
        assert analysis_salt(["det"]) != analysis_salt(["det", "arch"])

    def test_torn_entry_is_a_miss_not_a_crash(self, tmp_path):
        write(tmp_path, "src/a.py", HAZARD)
        cache_dir = str(tmp_path / "cache")
        salt = analysis_salt()
        root = str(tmp_path)
        cache = AnalysisCache(cache_dir, salt)
        baseline = run_analysis(["src"], root, cache=cache)

        # corrupt every stored entry (simulates a crash mid-write)
        for dirpath, _dirnames, filenames in os.walk(cache_dir):
            for name in filenames:
                with open(os.path.join(dirpath, name), "w") as fh:
                    fh.write("{ torn")
        recovered = run_analysis(
            ["src"], root, cache=AnalysisCache(cache_dir, salt)
        )
        assert recovered.to_json() == baseline.to_json()

    def test_prune_removes_other_generations(self, tmp_path):
        write(tmp_path, "src/a.py", CLEAN)
        cache_dir = str(tmp_path / "cache")
        root = str(tmp_path)
        old = AnalysisCache(cache_dir, "oldsalt")
        run_analysis(["src"], root, cache=old)
        assert old.stores == 1

        new = AnalysisCache(cache_dir, analysis_salt())
        run_analysis(["src"], root, cache=new)
        removed = new.prune()
        assert removed == 1
        assert not os.path.exists(os.path.join(cache_dir, "oldsalt"))
        assert os.path.exists(os.path.join(cache_dir, new.salt))

    def test_unwritable_cache_dir_degrades_gracefully(self, tmp_path):
        write(tmp_path, "src/a.py", HAZARD)
        # a regular file where the cache directory should be: every
        # store raises OSError, which must disable caching, not analysis
        blocker = tmp_path / "cache"
        blocker.write_text("not a directory")
        cache = AnalysisCache(str(blocker), analysis_salt())
        report = run_analysis(["src"], str(tmp_path), cache=cache)
        assert cache.stores == 0
        assert report.to_json() == run_analysis(
            ["src"], str(tmp_path)
        ).to_json()

    def test_entries_are_sorted_json(self, tmp_path):
        write(tmp_path, "src/a.py", HAZARD)
        cache_dir = str(tmp_path / "cache")
        salt = analysis_salt()
        run_analysis(
            ["src"], str(tmp_path), cache=AnalysisCache(cache_dir, salt)
        )
        for dirpath, _dirnames, filenames in os.walk(cache_dir):
            for name in filenames:
                with open(os.path.join(dirpath, name)) as fh:
                    entry = json.load(fh)
                assert json.dumps(entry, sort_keys=True) == json.dumps(entry)
