"""The ``--fix`` autofixer: mechanical, provable, dry-run by default."""

import os
import textwrap

from repro.analysis.fixer import apply_fixes, propose_fixes, render_diffs
from repro.analysis.lint import run_lint

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)


def write(root, rel, source):
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def fix_round_trip(tmp_path, source):
    """Lint, fix, re-lint; returns (fixed_source, findings_after)."""
    path = write(tmp_path, "src/mod.py", source)
    report = run_lint(["src"], str(tmp_path))
    fixes = propose_fixes(report.findings, str(tmp_path))
    apply_fixes(fixes)
    after = run_lint(["src"], str(tmp_path))
    return path.read_text(encoding="utf-8"), after.findings


class TestDet201Fixes:
    def test_for_loop_iterable_wrapped(self, tmp_path):
        fixed, remaining = fix_round_trip(tmp_path, """
            def walk(items):
                seen = set(items)
                for item in seen:
                    print(item)
        """)
        assert "for item in sorted(seen):" in fixed
        assert remaining == []

    def test_comprehension_iterable_wrapped(self, tmp_path):
        fixed, remaining = fix_round_trip(tmp_path, """
            def walk(items):
                seen = set(items)
                return [i for i in seen]
        """)
        assert "for i in sorted(seen)]" in fixed
        assert remaining == []

    def test_list_conversion_becomes_sorted(self, tmp_path):
        fixed, remaining = fix_round_trip(tmp_path, """
            def order(items):
                seen = set(items)
                return list(seen)
        """)
        assert "return sorted(seen)" in fixed
        assert remaining == []

    def test_tuple_conversion_wraps_argument(self, tmp_path):
        fixed, remaining = fix_round_trip(tmp_path, """
            def order(items):
                seen = set(items)
                return tuple(seen)
        """)
        assert "tuple(sorted(seen))" in fixed
        assert remaining == []

    def test_join_argument_wrapped(self, tmp_path):
        fixed, remaining = fix_round_trip(tmp_path, """
            def label(items):
                seen = set(items)
                return ",".join(seen)
        """)
        assert '",".join(sorted(seen))' in fixed
        assert remaining == []


class TestDet101Fix:
    def test_random_random_becomes_named_stream(self, tmp_path):
        fixed, remaining = fix_round_trip(tmp_path, """
            import random

            def make(seed):
                rng = random.Random(seed)
                return rng.random()
        """)
        assert 'rng = RngStreams(seed).stream("rng")' in fixed
        assert "from repro.sim.rng import RngStreams" in fixed
        assert remaining == []

    def test_import_not_duplicated(self, tmp_path):
        fixed, _ = fix_round_trip(tmp_path, """
            import random
            from repro.sim.rng import RngStreams

            def make(seed):
                rng = random.Random(seed)
                return rng.random()
        """)
        assert fixed.count("from repro.sim.rng import RngStreams") == 1

    def test_bare_random_call_not_touched(self, tmp_path):
        # random.random() has no provable mechanical fix: leave it
        fixed, remaining = fix_round_trip(tmp_path, """
            import random

            def jitter():
                return random.random()
        """)
        assert "random.random()" in fixed
        assert [f.rule for f in remaining] == ["DET101"]


class TestProposalMechanics:
    def test_dry_run_does_not_modify_files(self, tmp_path):
        path = write(tmp_path, "src/mod.py", """
            def order(items):
                seen = set(items)
                return list(seen)
        """)
        before = path.read_text(encoding="utf-8")
        report = run_lint(["src"], str(tmp_path))
        fixes = propose_fixes(report.findings, str(tmp_path))
        assert len(fixes) == 1
        assert path.read_text(encoding="utf-8") == before

    def test_diff_is_unified_format(self, tmp_path):
        write(tmp_path, "src/mod.py", """
            def order(items):
                seen = set(items)
                return list(seen)
        """)
        report = run_lint(["src"], str(tmp_path))
        diff = render_diffs(propose_fixes(report.findings, str(tmp_path)))
        assert diff.startswith("--- a/src/mod.py")
        assert "+++ b/src/mod.py" in diff
        assert "-    return list(seen)" in diff
        assert "+    return sorted(seen)" in diff

    def test_clean_source_proposes_nothing(self, tmp_path):
        write(tmp_path, "src/mod.py", "def f():\n    return 1\n")
        report = run_lint(["src"], str(tmp_path))
        assert propose_fixes(report.findings, str(tmp_path)) == []

    def test_fixed_file_still_parses(self, tmp_path):
        import ast

        fixed, _ = fix_round_trip(tmp_path, """
            import random

            def pick(items, seed):
                chosen = set(items)
                rng = random.Random(seed)
                order = [x for x in chosen]
                for item in chosen:
                    order.append(item)
                return rng, order, list(chosen)
        """)
        ast.parse(fixed)


def test_clean_repo_tree_proposes_zero_edits():
    """CI gate: on the shipped tree, --fix --dry-run must be a no-op."""
    from repro.analysis.lint import load_baseline, new_findings, run_analysis

    report = run_analysis(["src", "tests", "benchmarks"], REPO_ROOT)
    baseline = dict(load_baseline(
        os.path.join(REPO_ROOT, "determinism-baseline.json")
    ))
    baseline.update(load_baseline(
        os.path.join(REPO_ROOT, "analysis-baseline.json")
    ))
    fresh = new_findings(report, baseline)
    assert propose_fixes(fresh, REPO_ROOT) == []
