"""Unit tests for the fork/pickle-safety pass (PICK5xx)."""

import ast
import textwrap

from repro.analysis.lint import PragmaIndex
from repro.analysis.pickle_safety import check_pickle_safety


def scan(source):
    source = textwrap.dedent(source)
    tree = ast.parse(source)
    return check_pickle_safety(tree, "mod.py", source.splitlines())


def rules(source):
    return [f.rule for f in scan(source)]


class TestWorkerPayload:
    def test_lambda_in_function_job(self):
        assert rules("""
            def build():
                return FunctionJob("j", lambda s: s)
        """) == ["PICK501"]

    def test_local_function_in_function_job(self):
        assert rules("""
            def build():
                def work(seed):
                    return seed
                return FunctionJob("j", work)
        """) == ["PICK501"]

    def test_module_level_function_is_fine(self):
        assert rules("""
            def work(seed):
                return seed

            def build():
                return FunctionJob("j", work)
        """) == []

    def test_local_class_instance_in_payload(self):
        assert rules("""
            def build():
                class Local:
                    pass
                return FunctionJob("j", run, Local())
        """) == ["PICK502"]

    def test_open_file_in_payload(self):
        assert rules("""
            def build(run):
                handle = open("log.txt")
                return FunctionJob("j", run, handle)
        """) == ["PICK503"]

    def test_resource_in_keyword_argument(self):
        assert rules("""
            import threading

            def build(run):
                lock = threading.Lock()
                return FunctionJob("j", run, guard=lock)
        """) == ["PICK503"]

    def test_resource_inside_container_literal(self):
        assert rules("""
            def build(run):
                conn = open("data.bin")
                return FunctionJob("j", run, [conn])
        """) == ["PICK503"]


class TestSharedContext:
    def test_lambda_as_run_jobs_context(self):
        assert rules("""
            def launch(executor, jobs):
                return executor.run_jobs(jobs, context=lambda: 1)
        """) == ["PICK501"]

    def test_generator_as_context(self):
        assert rules("""
            def launch(executor, jobs, items):
                stream = (i * 2 for i in items)
                return executor.run_jobs(jobs, context=stream)
        """) == ["PICK503"]

    def test_plain_dict_context_is_fine(self):
        assert rules("""
            def launch(executor, jobs):
                return executor.run_jobs(jobs, context={"k": 1})
        """) == []


class TestJobSpecAttributes:
    def test_tainted_attribute_on_simjob_subclass(self):
        assert rules("""
            class MyJob(SimJob):
                def __init__(self):
                    self.callback = lambda: 1
        """) == ["PICK501"]

    def test_resource_attribute_on_job_spec(self):
        assert rules("""
            class MyJob(SimJob):
                def __init__(self, path):
                    self.handle = open(path)
        """) == ["PICK503"]

    def test_plain_attribute_is_fine(self):
        assert rules("""
            class MyJob(SimJob):
                def __init__(self, n):
                    self.n = n
        """) == []

    def test_non_job_class_attributes_unchecked(self):
        assert rules("""
            class Helper:
                def __init__(self):
                    self.callback = lambda: 1
        """) == []


class TestSnapshotBoundary:
    def test_lambda_share_root(self):
        assert rules("""
            def setup(sim):
                sim.share(lambda: 1)
        """) == ["PICK501"]

    def test_scheduled_lambda_flagged_when_file_snapshots(self):
        assert rules("""
            def setup(sim):
                sim.schedule(1.0, lambda: 1)
                return sim.snapshot()
        """) == ["PICK511"]

    def test_scheduled_lambda_ignored_without_snapshot(self):
        # no .snapshot()/.fork() anywhere: the callback never crosses
        # a serialization boundary, so PICK511 stays silent
        assert rules("""
            def setup(sim):
                sim.schedule(1.0, lambda: 1)
        """) == []

    def test_scheduled_local_closure_flagged(self):
        assert rules("""
            def setup(sim):
                def tick():
                    sim.post(1.0, tick)
                sim.post(1.0, tick)
                return sim.fork()
        """) == ["PICK511", "PICK511"]


class TestCheckpointBoundary:
    def test_lambda_in_checkpoint_plan(self):
        assert rules("""
            def persist(spec):
                return CheckpointStore(spec, plan=(lambda: 1, 3))
        """) == ["PICK501"]


class TestPragmaSuppression:
    def test_line_pragma_suppresses_pick(self):
        source = textwrap.dedent("""
            def build():
                return FunctionJob("j", lambda s: s)  # repro: allow[PICK501]
        """)
        tree = ast.parse(source)
        findings = check_pickle_safety(tree, "mod.py", source.splitlines())
        pragmas = PragmaIndex.scan(source.splitlines())
        kept = [
            f for f in findings
            if not pragmas.suppresses(f, f.end_line)
        ]
        assert [f.rule for f in findings] == ["PICK501"]
        assert kept == []

    def test_file_pragma_suppresses_family_rule(self):
        source = textwrap.dedent("""
            # repro: allow-file[PICK501]
            def build():
                return FunctionJob("j", lambda s: s)
        """)
        tree = ast.parse(source)
        findings = check_pickle_safety(tree, "mod.py", source.splitlines())
        pragmas = PragmaIndex.scan(source.splitlines())
        assert all(pragmas.suppresses(f, f.end_line) for f in findings)


class TestBoundaryNaming:
    def test_messages_name_the_boundary(self):
        findings = scan("""
            def build():
                return FunctionJob("j", lambda s: s)
        """)
        assert "worker pipe" in findings[0].message

    def test_share_names_snapshot_boundary(self):
        findings = scan("""
            def setup(sim):
                sim.share(lambda: 1)
        """)
        assert "snapshot boundary" in findings[0].message
