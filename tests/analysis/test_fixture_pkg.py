"""The committed planted-violation fixture tree.

Two properties, both load-bearing for CI:

* every planted hazard IS caught when the fixture is scanned directly
  (the passes do what they claim), and
* none of them leak into a repo-wide scan (the ``.repro-analysis-skip``
  sentinel works), so ``python -m repro.analysis`` stays clean.
"""

import os

from repro.analysis.lint import run_analysis

FIXTURE_ROOT = os.path.join(os.path.dirname(__file__), "fixture_pkg")
REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)


def fixture_report():
    return run_analysis(["src"], FIXTURE_ROOT)


def rules_by_path(report):
    out = {}
    for finding in report.findings:
        out.setdefault(finding.path, set()).add(finding.rule)
    return out


class TestPlantedViolationsDetected:
    def test_arch601_layering_violation(self):
        found = rules_by_path(fixture_report())
        assert "ARCH601" in found.get("src/repro/sim/planted_import.py", set())

    def test_arch602_import_cycle(self):
        report = fixture_report()
        cycle = [f for f in report.findings if f.rule == "ARCH602"]
        assert len(cycle) == 1
        assert "repro.faults.alpha" in cycle[0].message
        assert "repro.faults.beta" in cycle[0].message

    def test_pick501_lambda_in_job_payload(self):
        found = rules_by_path(fixture_report())
        assert "PICK501" in found.get("src/repro/exec/launcher.py", set())

    def test_race701_same_instant_write_pair(self):
        report = fixture_report()
        races = [f for f in report.findings if f.rule == "RACE701"]
        assert len(races) == 1
        assert races[0].path == "src/repro/core/racer.py"
        assert "self.count" in races[0].message


class TestSentinelHidesFixture:
    def test_repo_wide_scan_skips_fixture_tree(self):
        report = run_analysis(["tests/analysis"], REPO_ROOT)
        fixture_paths = [
            p for p in (f.path for f in report.findings)
            if "fixture_pkg" in p
        ]
        assert fixture_paths == []
        scanned_here = run_analysis(["src"], FIXTURE_ROOT).files_scanned
        assert scanned_here == 5  # the fixture IS scannable when targeted

    def test_sentinel_exists(self):
        assert os.path.exists(
            os.path.join(FIXTURE_ROOT, ".repro-analysis-skip")
        )
