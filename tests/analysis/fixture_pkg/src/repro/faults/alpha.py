"""PLANTED ARCH602 (half 1): alpha and beta import each other."""

from . import beta


def ping():
    return beta.pong()
