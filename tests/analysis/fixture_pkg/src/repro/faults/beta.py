"""PLANTED ARCH602 (half 2): alpha and beta import each other."""

from . import alpha


def pong():
    return alpha.ping()
