"""PLANTED RACE701: two same-instant callbacks write one attribute."""


class Racer:
    def __init__(self):
        self.count = 0

    def start(self, sim):
        sim.schedule(1.0, self.bump)
        sim.schedule(1.0, self.reset)

    def bump(self):
        self.count = self.count + 1

    def reset(self):
        self.count = 0
