"""PLANTED PICK501: a lambda cannot cross the worker pipe."""

from repro.jobs import FunctionJob


def build_jobs():
    return [FunctionJob("planted", lambda seed: seed * 2)]
