"""PLANTED ARCH601: the sim layer must never import exec."""

from repro.exec.pool import get_inline_executor


def run_with_executor():
    return get_inline_executor()
