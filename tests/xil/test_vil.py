"""Tests for the ViL (virtual-vehicle-in-the-loop) level."""

import pytest

from repro.xil import CruiseController, LongitudinalPlant, run_mil, run_vil


class TestVil:
    def test_loop_converges_over_the_network(self):
        result = run_vil(CruiseController(25.0), duration=80.0)
        assert result.loop.level == "ViL"
        assert result.loop.steady_state_error() < 0.5
        # the platform app never missed a control deadline
        assert result.deterministic_misses == 0

    def test_events_flow_every_period(self):
        result = run_vil(CruiseController(20.0), duration=5.0)
        # one sensor event per period, actuation keeps pace
        assert result.sensor_events == pytest.approx(500, abs=3)
        assert result.actuation_events >= result.sensor_events - 5

    def test_vil_tracks_mil_reference(self):
        """Network + scheduling latency perturbs but does not break the
        loop: final speeds agree with the MiL reference within 1 m/s."""
        mil = run_mil(CruiseController(25.0), LongitudinalPlant(), duration=60.0)
        vil = run_vil(CruiseController(25.0), duration=60.0)
        assert abs(mil.speeds[-1] - vil.loop.speeds[-1]) < 1.0

    def test_vil_slower_than_mil_but_still_fast(self):
        mil = run_mil(CruiseController(25.0), LongitudinalPlant(), duration=20.0)
        vil = run_vil(CruiseController(25.0), duration=20.0)
        assert vil.loop.realtime_factor < mil.realtime_factor
        assert vil.loop.realtime_factor > 5.0
