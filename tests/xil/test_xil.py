"""Tests for the XiL framework: plants, controllers, MiL/SiL harness."""

import pytest

from repro.errors import ConfigurationError
from repro.xil import (
    AccController,
    AccScenario,
    BuggyCruiseController,
    CruiseController,
    FaultInjector,
    LeadVehicle,
    LongitudinalPlant,
    LoopAssertions,
    XilTestCase,
    XilTestSuite,
    run_mil,
    run_sil,
)


class TestPlant:
    def test_accelerates_under_throttle(self):
        plant = LongitudinalPlant()
        for _ in range(100):
            plant.step(1.0, 0.01)
        assert plant.speed_mps > 1.0

    def test_decelerates_under_brake(self):
        plant = LongitudinalPlant(speed_mps=30.0)
        for _ in range(100):
            plant.step(-1.0, 0.01)
        assert plant.speed_mps < 30.0

    def test_speed_never_negative(self):
        plant = LongitudinalPlant(speed_mps=0.5)
        for _ in range(500):
            plant.step(-1.0, 0.01)
        assert plant.speed_mps == 0.0

    def test_drag_limits_top_speed(self):
        plant = LongitudinalPlant()
        for _ in range(60000):
            plant.step(1.0, 0.01)
        v1 = plant.speed_mps
        plant.step(1.0, 0.01)
        assert plant.speed_mps == pytest.approx(v1, rel=1e-3)  # terminal velocity

    def test_invalid_dt(self):
        with pytest.raises(ConfigurationError):
            LongitudinalPlant().step(1.0, 0.0)

    def test_lead_vehicle_profile(self):
        lead = LeadVehicle([(10.0, 20.0), (20.0, 10.0)], initial_gap_m=40.0)
        assert lead.speed_at(5.0) == 20.0
        assert lead.speed_at(15.0) == 10.0
        assert lead.speed_at(99.0) == 10.0

    def test_empty_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            LeadVehicle([])

    def test_acc_scenario_detects_collision(self):
        plant = LongitudinalPlant(speed_mps=30.0)
        lead = LeadVehicle([(100.0, 0.0)], initial_gap_m=5.0)  # parked car
        scenario = AccScenario(plant=plant, lead=lead)
        for _ in range(200):
            scenario.step(1.0, 0.01)  # full throttle into it
        assert scenario.collided
        assert scenario.min_gap_m <= 0.0


class TestControllers:
    def test_cruise_reaches_target(self):
        controller = CruiseController(25.0)
        plant = LongitudinalPlant()
        result = run_mil(controller, plant, duration=120.0)
        assert result.steady_state_error() < 0.5
        assert result.settling_time() is not None

    def test_anti_windup_limits_overshoot(self):
        good = run_mil(CruiseController(25.0), LongitudinalPlant(), duration=120.0)
        buggy = run_mil(
            BuggyCruiseController(25.0, kind="windup"),
            LongitudinalPlant(),
            duration=120.0,
        )
        assert buggy.overshoot() > good.overshoot()

    def test_sign_bug_diverges(self):
        result = run_mil(
            BuggyCruiseController(25.0, kind="sign"),
            LongitudinalPlant(speed_mps=20.0),
            duration=60.0,
        )
        assert result.steady_state_error() > 5.0

    def test_unknown_bug_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            BuggyCruiseController(25.0, kind="race")

    def test_negative_target_rejected(self):
        with pytest.raises(ConfigurationError):
            CruiseController(-1.0)

    def test_state_snapshot_round_trip(self):
        a = CruiseController(25.0)
        plant = LongitudinalPlant()
        run_mil(a, plant, duration=30.0)
        b = CruiseController(25.0)
        b.adopt_state(a.state_snapshot())
        assert b.integral == a.integral

    def test_acc_keeps_time_gap(self):
        controller = AccController(set_speed_mps=30.0, time_gap_s=1.8)
        plant = LongitudinalPlant(speed_mps=20.0)
        lead = LeadVehicle([(300.0, 20.0)], initial_gap_m=60.0)
        scenario = AccScenario(plant=plant, lead=lead)
        dt = 0.01
        for _ in range(30000):
            u = controller.compute(plant.speed_mps, scenario.gap(), dt)
            scenario.step(u, dt)
        assert not scenario.collided
        desired = controller.desired_gap(plant.speed_mps)
        assert scenario.gap() == pytest.approx(desired, rel=0.25)

    def test_acc_brakes_for_cut_in(self):
        controller = AccController(set_speed_mps=30.0)
        plant = LongitudinalPlant(speed_mps=30.0)
        lead = LeadVehicle([(300.0, 15.0)], initial_gap_m=25.0)
        scenario = AccScenario(plant=plant, lead=lead)
        dt = 0.01
        for _ in range(20000):
            u = controller.compute(plant.speed_mps, scenario.gap(), dt)
            scenario.step(u, dt)
        assert not scenario.collided
        assert plant.speed_mps == pytest.approx(15.0, abs=1.5)


class TestHarness:
    def test_mil_faster_than_realtime(self):
        result = run_mil(CruiseController(25.0), LongitudinalPlant(), duration=60.0)
        assert result.realtime_factor > 10.0  # the paper's speed argument

    def test_sil_matches_mil_closely(self):
        """With an unloaded core, SiL behaviour tracks MiL."""
        mil = run_mil(CruiseController(25.0), LongitudinalPlant(), duration=80.0)
        sil = run_sil(CruiseController(25.0), LongitudinalPlant(), duration=80.0)
        assert sil.level == "SiL"
        assert abs(mil.speeds[-1] - sil.speeds[-1]) < 1.0

    def test_sensor_dropout_perturbs_loop(self):
        faults = FaultInjector()
        faults.sensor_dropout_window = (30.0, 40.0)
        result = run_mil(
            CruiseController(25.0), LongitudinalPlant(), duration=80.0,
            faults=faults,
        )
        # during dropout the controller sees 0 and floors the throttle
        speeds_during = [
            s for t, s in zip(result.times, result.speeds) if 30.0 < t < 45.0
        ]
        assert max(speeds_during) > 26.0  # overspeed due to blind controller

    def test_stuck_actuator_detected_by_assertions(self):
        faults = FaultInjector()
        faults.actuator_stuck_at = 0.0
        result = run_mil(
            CruiseController(25.0), LongitudinalPlant(), duration=30.0,
            faults=faults,
        )
        failures = LoopAssertions(max_settling_time=30.0).check(result)
        assert failures  # never reaches target


class TestSuite:
    def suite(self):
        return XilTestSuite([
            XilTestCase(
                name="nominal_cruise",
                build_controller=lambda: CruiseController(25.0),
                duration=120.0,
                assertions=LoopAssertions(max_settling_time=120.0),
            ),
            XilTestCase(
                name="sign_bug",
                build_controller=lambda: BuggyCruiseController(25.0, "sign"),
                duration=60.0,
                assertions=LoopAssertions(max_settling_time=60.0),
            ),
        ])

    def test_suite_finds_the_buggy_controller(self):
        suite = self.suite()
        failures = suite.run()
        assert failures == 1
        report = suite.report()
        assert "[PASS] nominal_cruise" in report
        assert "[FAIL] sign_bug" in report

    def test_unknown_level_rejected(self):
        case = XilTestCase(
            name="x", build_controller=lambda: CruiseController(10.0),
            level="HiL",
        )
        with pytest.raises(ConfigurationError):
            case.run()
