"""VerifyCache must change verification cost, never its verdicts."""

import pickle

from repro.hw import centralized_topology
from repro.sim import RngStreams
from repro.model import Deployment, VerifyCache, verify
from repro.workloads import reference_system

from .test_dse import make_model
from repro.dse import MappingProblem


def random_deployments(problem, n, seed=3):
    rng = RngStreams(seed).stream("test.dse.deployments")
    bounds = problem.genome_bounds()
    return [problem.decode([rng.randrange(b) for b in bounds])
            for _ in range(n)]


class TestVerifyCacheEquivalence:
    def test_cached_verify_matches_uncached_exactly(self):
        model = reference_system(centralized_topology())
        problem = MappingProblem(model)
        cache = VerifyCache(model)
        for deployment in random_deployments(problem, 40):
            cold = verify(model, deployment)
            warm = verify(model, deployment, cache=cache)
            # identical Violation objects in identical order
            assert cold.violations == warm.violations
        assert cache.stats()["routes"] > 0
        assert cache.stats()["latencies"] > 0

    def test_cache_handles_missing_routes(self):
        # a deployment naming an unknown ECU exercises the no-route path
        model = make_model(n_apps=2, n_ecus=2)
        cache = VerifyCache(model)
        deployment = Deployment()
        deployment.place("app0", "e0", 0)
        deployment.place("app1", "e1", 0)
        cold = verify(model, deployment)
        warm = verify(model, deployment, cache=cache)
        assert cold.violations == warm.violations

    def test_problem_owns_a_cache_and_uses_it(self):
        problem = MappingProblem(make_model())
        genome = [0] * problem.genome_length()
        problem.evaluate_genome(genome)
        assert problem.cache.stats()["structural"] == 1

    def test_warm_cache_survives_pickling(self):
        # the problem (cache included) ships to executor workers
        model = reference_system(centralized_topology())
        problem = MappingProblem(model)
        deployments = random_deployments(problem, 10)
        local = [problem.evaluate(d) for d in deployments]
        clone = pickle.loads(pickle.dumps(problem))
        remote = [clone.evaluate(d) for d in deployments]
        assert local == remote

    def test_memoisation_is_stable_across_repeats(self):
        model = reference_system(centralized_topology())
        problem = MappingProblem(model)
        deployment = random_deployments(problem, 1)[0]
        first = verify(model, deployment, cache=problem.cache)
        second = verify(model, deployment, cache=problem.cache)
        assert first.violations == second.violations
