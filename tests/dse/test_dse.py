"""Tests for the design space exploration layer."""

import pytest

from repro.errors import ConfigurationError
from repro.dse import (
    Candidate,
    Evaluation,
    MappingProblem,
    ParetoArchive,
    annealing_search,
    exhaustive_search,
    genetic_search,
    random_search,
)
from repro.hw import BusSpec, EcuSpec, OsClass, Topology
from repro.model import AppModel, Asil, SystemModel
from repro.osal import TaskSpec
from repro.sim import RngStreams


def make_model(n_apps=4, n_ecus=3):
    topo = Topology()
    topo.add_bus(BusSpec("eth", "ethernet", 1e9, tsn_capable=True))
    for i in range(n_ecus):
        topo.add_ecu(EcuSpec(
            f"e{i}", cpu_mhz=800, cores=2, memory_kib=1 << 18,
            flash_kib=1 << 20, has_mmu=True, os_class=OsClass.POSIX_RT,
            ports=(("eth0", "ethernet"),), unit_cost=50.0 + 10 * i,
        ))
        topo.attach(f"e{i}", "eth0", "eth")
    model = SystemModel(topo)
    for i in range(n_apps):
        model.add_app(AppModel(
            name=f"app{i}",
            tasks=(TaskSpec(name=f"t{i}", period=0.01, wcet=0.002),),
            asil=Asil.C, memory_kib=64, image_kib=64,
        ))
    return model


class TestEvaluation:
    def ev(self, feasible=True, cost=10.0, latency=0.001, imbalance=0.1):
        return Evaluation(feasible, cost, latency, imbalance, 0 if feasible else 3)

    def test_dominance(self):
        better = self.ev(cost=10.0)
        worse = self.ev(cost=20.0)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_feasible_dominates_infeasible(self):
        assert self.ev(feasible=True).dominates(self.ev(feasible=False))
        assert not self.ev(feasible=False).dominates(self.ev(feasible=True))

    def test_equal_does_not_dominate(self):
        a, b = self.ev(), self.ev()
        assert not a.dominates(b) and not b.dominates(a)

    def test_infeasible_penalised_in_score(self):
        assert self.ev(feasible=False).weighted_score() > 1e5
        assert self.ev(feasible=True).weighted_score() < 1e5


class TestMappingProblem:
    def test_default_candidates_filter_capabilities(self):
        model = make_model()
        model.add_app(AppModel(name="nn", needs_gpu=True, memory_kib=16, image_kib=16))
        problem = MappingProblem(model)
        # no ECU has a GPU: falls back to a single (rejected) option
        assert len(problem.candidates["nn"]) >= 1

    def test_decode_round_trip(self):
        problem = MappingProblem(make_model())
        genome = [0] * problem.genome_length()
        deployment = problem.decode(genome)
        assert set(deployment.apps) == set(problem.app_names)

    def test_decode_length_mismatch(self):
        problem = MappingProblem(make_model())
        with pytest.raises(ConfigurationError):
            problem.decode([0])

    def test_evaluate_feasible_deployment(self):
        problem = MappingProblem(make_model(n_apps=2))
        # two apps on distinct cheap ECUs
        genome = [0, 0]
        evaluation = problem.evaluate_genome(genome)
        assert evaluation.feasible
        assert evaluation.cost > 0

    def test_colocated_cheaper_than_spread(self):
        problem = MappingProblem(make_model(n_apps=2))
        colocated = problem.decode([0, 0])
        # force both onto e0 cores
        colocated.place("app0", "e0", 0).place("app1", "e0", 1)
        spread = problem.decode([0, 0])
        spread.place("app0", "e0", 0).place("app1", "e2", 0)
        assert problem.evaluate(colocated).cost < problem.evaluate(spread).cost

    def test_empty_candidate_set_rejected(self):
        model = make_model(n_apps=1)
        with pytest.raises(ConfigurationError):
            MappingProblem(model, candidates={"app0": []})

    def test_missing_app_candidates_rejected(self):
        model = make_model(n_apps=2)
        with pytest.raises(ConfigurationError):
            MappingProblem(model, candidates={"app0": [("e0", 0)]})


class TestParetoArchive:
    def cand(self, cost, latency=0.001, feasible=True):
        return Candidate(
            [0], Evaluation(feasible, cost, latency, 0.0, 0 if feasible else 1)
        )

    def test_dominated_rejected(self):
        archive = ParetoArchive()
        assert archive.offer(self.cand(10.0))
        assert not archive.offer(self.cand(20.0))
        assert len(archive) == 1

    def test_dominating_evicts(self):
        archive = ParetoArchive()
        archive.offer(self.cand(20.0))
        archive.offer(self.cand(10.0))
        assert len(archive) == 1
        assert archive.members[0].evaluation.cost == 10.0

    def test_tradeoffs_coexist(self):
        archive = ParetoArchive()
        archive.offer(self.cand(10.0, latency=0.01))
        archive.offer(self.cand(20.0, latency=0.001))
        assert len(archive) == 2

    def test_infeasible_never_archived(self):
        archive = ParetoArchive()
        assert not archive.offer(self.cand(10.0, feasible=False))

    def test_best_by_score_empty(self):
        assert ParetoArchive().best_by_score() is None


class TestEngines:
    def test_random_search_finds_feasible(self):
        problem = MappingProblem(make_model())
        result = random_search(problem, RngStreams(1), budget=100)
        assert result.found_feasible
        assert result.evaluations == 100

    def test_ga_finds_feasible_and_cheap(self):
        problem = MappingProblem(make_model())
        result = genetic_search(
            problem, RngStreams(2), population=20, generations=10
        )
        assert result.found_feasible
        # all four light apps fit on the cheapest ECU's two cores
        assert result.best.evaluation.cost <= 120.0

    def test_sa_finds_feasible(self):
        problem = MappingProblem(make_model())
        result = annealing_search(problem, RngStreams(3), budget=300)
        assert result.found_feasible

    def test_exhaustive_on_small_space(self):
        model = make_model(n_apps=2, n_ecus=2)
        problem = MappingProblem(model)
        result = exhaustive_search(problem)
        assert result.found_feasible
        # exhaustive finds the global optimum: both apps on the cheapest ECU
        assert result.best.evaluation.cost == pytest.approx(50.0)

    def test_exhaustive_refuses_large_space(self):
        problem = MappingProblem(make_model(n_apps=8, n_ecus=3))
        with pytest.raises(ConfigurationError):
            exhaustive_search(problem, limit=10)

    def test_heuristics_match_exhaustive_optimum(self):
        """On a small problem, GA and SA should find the global optimum."""
        model = make_model(n_apps=3, n_ecus=2)
        problem = MappingProblem(model)
        optimum = exhaustive_search(problem).best.evaluation.cost
        ga = genetic_search(problem, RngStreams(7), population=20, generations=15)
        sa = annealing_search(problem, RngStreams(7), budget=500)
        assert ga.best.evaluation.cost == pytest.approx(optimum)
        assert sa.best.evaluation.cost == pytest.approx(optimum)

    def test_search_reproducible(self):
        problem_a = MappingProblem(make_model())
        problem_b = MappingProblem(make_model())
        r1 = genetic_search(problem_a, RngStreams(5), population=10, generations=5)
        r2 = genetic_search(problem_b, RngStreams(5), population=10, generations=5)
        assert r1.best.genome == r2.best.genome
