"""Tests for auth broker, access control and probabilistic analysis."""

import pytest

from repro.errors import ConfigurationError, SecurityError
from repro.hw import EcuSpec, Topology, federated_topology
from repro.middleware import ServiceRegistry, ServiceOffer
from repro.security import (
    AccessControlMatrix,
    AuthBroker,
    SecurityAnalyzer,
    SecurityAnnotations,
    TrustStore,
    permissive_matrix,
)
from repro.sim import Simulator


class TestAuthBroker:
    def make(self):
        sim = Simulator()
        store = TrustStore()
        store.generate_key("client_key")
        broker = AuthBroker(sim, store, token_lifetime=10.0)
        return sim, store, broker

    def test_handshake_issues_token(self):
        sim, store, broker = self.make()
        got = []
        broker.establish_session("appA", "client_key", 0x10).add_callback(got.append)
        sim.run()
        token = got[0]
        assert token is not None
        assert broker.validate(token, 0x10)
        assert broker.active_sessions == 1

    def test_handshake_takes_time(self):
        sim, store, broker = self.make()
        got = []
        broker.establish_session("appA", "client_key", 0x10).add_callback(
            lambda t: got.append(sim.now)
        )
        sim.run()
        assert got[0] == pytest.approx(AuthBroker.HANDSHAKE_CPU_TIME)

    def test_unknown_credential_denied(self):
        sim, store, broker = self.make()
        got = []
        broker.establish_session("mal", "stolen", 0x10).add_callback(got.append)
        sim.run()
        assert got[0] is None
        assert broker.denials == 1

    def test_authorizer_consulted(self):
        sim, store, broker = self.make()
        broker.set_authorizer(lambda app, sid: sid == 0x20)
        denied, granted = [], []
        broker.establish_session("a", "client_key", 0x10).add_callback(denied.append)
        broker.establish_session("a", "client_key", 0x20).add_callback(granted.append)
        sim.run()
        assert denied[0] is None and granted[0] is not None

    def test_token_scoped_to_service(self):
        sim, store, broker = self.make()
        got = []
        broker.establish_session("a", "client_key", 0x10).add_callback(got.append)
        sim.run()
        assert not broker.validate(got[0], 0x99)

    def test_token_expiry(self):
        sim, store, broker = self.make()
        got = []
        broker.establish_session("a", "client_key", 0x10).add_callback(got.append)
        sim.run()
        sim.run(until=sim.now + 11.0)
        assert not broker.validate(got[0], 0x10)

    def test_revoke_client_sessions(self):
        sim, store, broker = self.make()
        got = []
        broker.establish_session("a", "client_key", 0x10).add_callback(got.append)
        broker.establish_session("a", "client_key", 0x11).add_callback(got.append)
        sim.run()
        assert broker.revoke_client("a") == 2
        assert not broker.validate(got[0], 0x10)


class TestAccessControl:
    def test_grant_and_deny(self):
        acm = AccessControlMatrix()
        acm.grant("logger", 0x10)
        assert acm.allows("logger", 0x10)
        acm.deny("logger", 0x10)
        assert not acm.allows("logger", 0x10)
        assert acm.denials == 1

    def test_wildcard_holder(self):
        acm = AccessControlMatrix()
        acm.grant_wildcard("data_logger")
        assert acm.allows("data_logger", 0xDEAD)
        assert acm.wildcard_holders == ["data_logger"]
        acm.revoke_wildcard("data_logger")
        assert not acm.allows("data_logger", 0xDEAD)

    def test_from_config_extraction(self):
        from repro.hw import centralized_topology
        from repro.model import generate_config
        from repro.workloads import reference_system

        model = reference_system(centralized_topology())
        config = generate_config(model)
        acm = AccessControlMatrix.from_config(config)
        sid = config.service_id("vehicle_state")
        # the owner and declared consumers may bind...
        assert acm.allows("vehicle_state_estimator", sid)
        assert acm.allows("acc", sid)
        # ...an undeclared app may not (D4: model-derived least privilege)
        assert not acm.allows("media_server", sid)

    def test_install_on_registry(self):
        acm = AccessControlMatrix()
        acm.grant("good", 0x10)
        registry = ServiceRegistry()
        registry.offer(ServiceOffer(0x10, 1, "e", "provider"))
        acm.install_on(registry)
        assert registry.find(0x10, client_app="good").ecu == "e"
        with pytest.raises(SecurityError):
            registry.find(0x10, client_app="evil")

    def test_permissive_matrix_allows_everything(self):
        acm = permissive_matrix()
        assert acm.allows("anyone", 0xBEEF)
        assert acm.denials == 0

    def test_as_authorizer_adapter(self):
        acm = AccessControlMatrix()
        acm.grant("a", 1)
        authorizer = acm.as_authorizer()
        assert authorizer("a", 1) and not authorizer("a", 2)


class TestSecurityAnalyzer:
    def topo(self):
        return federated_topology(n_function_ecus=4)

    def test_direct_asset_probability(self):
        analyzer = SecurityAnalyzer(
            self.topo(),
            SecurityAnnotations(exploitability={"head_unit": 0.5}),
        )
        report = analyzer.analyse(["head_unit"], "head_unit")
        assert report.compromise_probability == pytest.approx(0.5)

    def test_deeper_assets_are_harder(self):
        analyzer = SecurityAnalyzer(
            self.topo(), SecurityAnnotations(default_exploitability=0.5)
        )
        shallow = analyzer.analyse(["head_unit"], "eth_info")
        deep = analyzer.analyse(["head_unit"], "ecu_00")
        assert deep.compromise_probability < shallow.compromise_probability

    def test_unreachable_asset_zero(self):
        topo = Topology()
        topo.add_ecu(EcuSpec("island"))
        topo.add_ecu(EcuSpec("entry"))
        analyzer = SecurityAnalyzer(topo)
        report = analyzer.analyse(["entry"], "island")
        assert report.compromise_probability == 0.0
        assert not report.exposed

    def test_unknown_nodes_raise(self):
        analyzer = SecurityAnalyzer(self.topo())
        with pytest.raises(ConfigurationError):
            analyzer.analyse(["ghost"], "head_unit")
        with pytest.raises(ConfigurationError):
            analyzer.analyse(["head_unit"], "ghost")

    def test_rank_assets_orders_by_exposure(self):
        analyzer = SecurityAnalyzer(
            self.topo(), SecurityAnnotations(default_exploitability=0.4)
        )
        reports = analyzer.rank_assets(["head_unit"], ["ecu_00", "eth_info"])
        assert reports[0].asset == "eth_info"

    def test_hardening_reduces_exposure(self):
        """Hardening the gateway must reduce the brake ECU's exposure —
        the architecture-evaluation use case of [11]."""
        analyzer = SecurityAnalyzer(
            self.topo(), SecurityAnnotations(default_exploitability=0.5)
        )
        before, after = analyzer.hardening_effect(
            ["head_unit"], "ecu_00", "gateway", 0.01
        )
        assert after < before

    def test_invalid_probability_rejected(self):
        annotations = SecurityAnnotations(exploitability={"x": 1.5})
        with pytest.raises(ConfigurationError):
            annotations.probability("x")

    def test_most_likely_path_reported(self):
        analyzer = SecurityAnalyzer(
            self.topo(), SecurityAnnotations(default_exploitability=0.5)
        )
        report = analyzer.analyse(["head_unit"], "gateway")
        assert report.most_likely_path is not None
        assert report.most_likely_path.nodes[0] == "head_unit"
        assert report.most_likely_path.nodes[-1] == "gateway"
