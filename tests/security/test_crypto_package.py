"""Tests for the trust store, package signing and verification."""

import pytest

from repro.errors import SecurityError
from repro.hw import CryptoCapability, EcuSpec
from repro.model import AppModel
from repro.security import (
    PackageVerifier,
    TrustStore,
    build_package,
    digest,
    forged_package,
)
from repro.sim import Simulator


def app(name="app", image_kib=1024.0):
    return AppModel(name=name, image_kib=image_kib)


class TestTrustStore:
    def test_sign_and_verify(self):
        store = TrustStore()
        store.generate_key("oem")
        d = digest(b"content")
        sig = store.sign("oem", d)
        assert store.verify(sig, d)

    def test_tampered_digest_fails(self):
        store = TrustStore()
        store.generate_key("oem")
        sig = store.sign("oem", digest(b"content"))
        assert not store.verify(sig, digest(b"evil"))

    def test_unknown_key_fails_verification(self):
        a, b = TrustStore(), TrustStore()
        a.generate_key("oem")
        sig = a.sign("oem", digest(b"x"))
        assert not b.verify(sig, digest(b"x"))

    def test_key_distribution(self):
        a, b = TrustStore(), TrustStore()
        a.generate_key("oem")
        b.import_key("oem", a.export_key("oem"))
        sig = a.sign("oem", digest(b"x"))
        assert b.verify(sig, digest(b"x"))

    def test_revoked_key_fails(self):
        store = TrustStore()
        store.generate_key("oem")
        sig = store.sign("oem", digest(b"x"))
        store.revoke("oem")
        assert not store.verify(sig, digest(b"x"))
        with pytest.raises(SecurityError):
            store.sign("oem", digest(b"y"))

    def test_duplicate_key_rejected(self):
        store = TrustStore()
        store.generate_key("oem")
        with pytest.raises(SecurityError):
            store.generate_key("oem")

    def test_sign_with_unknown_key_raises(self):
        with pytest.raises(SecurityError):
            TrustStore().sign("ghost", digest(b"x"))

    def test_export_unknown_key_raises(self):
        with pytest.raises(SecurityError):
            TrustStore().export_key("ghost")


class TestPackages:
    def make(self):
        store = TrustStore()
        store.generate_key("oem")
        return store, build_package(app(), store, "oem")

    def test_valid_package_verifies(self):
        store, pkg = self.make()
        sim = Simulator()
        verifier = PackageVerifier(sim, EcuSpec("e"), store)
        assert verifier.check_now(pkg)
        assert verifier.verified == 1

    def test_tampered_package_rejected(self):
        store, pkg = self.make()
        verifier = PackageVerifier(Simulator(), EcuSpec("e"), store)
        assert not verifier.check_now(pkg.tampered())
        assert verifier.rejected == 1

    def test_unsigned_package_rejected(self):
        store, pkg = self.make()
        from dataclasses import replace
        unsigned = replace(pkg, signature=None)
        verifier = PackageVerifier(Simulator(), EcuSpec("e"), store)
        assert not verifier.check_now(unsigned)

    def test_forged_package_rejected(self):
        store, _pkg = self.make()
        verifier = PackageVerifier(Simulator(), EcuSpec("e"), store)
        assert not verifier.check_now(forged_package(app()))

    def test_resigned_after_tamper_verifies(self):
        """A legitimately patched & re-signed package is fine."""
        store, pkg = self.make()
        patched = pkg.tampered().resigned_by(store, "oem")
        verifier = PackageVerifier(Simulator(), EcuSpec("e"), store)
        assert verifier.check_now(patched)

    def test_async_verification_takes_crypto_time(self):
        store, pkg = self.make()  # 1024 KiB image
        sim = Simulator()
        soft_ecu = EcuSpec("soft", crypto=CryptoCapability.SOFTWARE)
        verifier = PackageVerifier(sim, soft_ecu, store)
        expected = 1024 * 1024 / soft_ecu.crypto_rate
        outcome = []
        verifier.verify(pkg).add_callback(lambda ok: outcome.append((sim.now, ok)))
        sim.run()
        assert outcome[0][1] is True
        assert outcome[0][0] == pytest.approx(expected)

    def test_accelerated_ecu_verifies_much_faster(self):
        store, pkg = self.make()
        soft = PackageVerifier(
            Simulator(), EcuSpec("s", crypto=CryptoCapability.SOFTWARE), store
        )
        accel = PackageVerifier(
            Simulator(), EcuSpec("a", crypto=CryptoCapability.ACCELERATED), store
        )
        assert accel.verification_time(pkg) < soft.verification_time(pkg) / 10

    def test_cryptoless_ecu_cannot_verify(self):
        store, pkg = self.make()
        verifier = PackageVerifier(
            Simulator(), EcuSpec("weak", crypto=CryptoCapability.NONE), store
        )
        assert not verifier.can_verify
        with pytest.raises(SecurityError):
            verifier.verification_time(pkg)
