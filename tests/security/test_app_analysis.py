"""Tests for deployment-aware security analysis (apps in the attack graph)."""

import pytest

from repro.errors import ConfigurationError
from repro.hw import centralized_topology
from repro.model import Deployment
from repro.security import DeploymentSecurityAnalyzer, SecurityAnnotations
from repro.workloads import reference_system


def deployed_world():
    model = reference_system(centralized_topology(n_platforms=2))
    deployment = Deployment()
    placements = {
        "wheel_sensor_fusion": "platform_0",
        "vehicle_state_estimator": "platform_0",
        "brake_controller": "platform_0",
        "suspension_control": "platform_0",
        "front_camera": "platform_1",
        "object_fusion": "platform_0",
        "acc": "platform_1",
        "diagnosis_service": "platform_1",
        "media_server": "head_unit",
        "navigation": "head_unit",
    }
    for app, ecu in placements.items():
        deployment.place(app, ecu)
    return model, deployment


def annotations():
    # infotainment software is soft; safety apps are hardened
    return SecurityAnnotations(
        exploitability={
            "media_server": 0.5,
            "navigation": 0.4,
            "head_unit": 0.3,
            "brake_controller": 0.02,
            "platform_0": 0.05,
            "platform_1": 0.05,
        },
        default_exploitability=0.1,
    )


class TestExtendedGraph:
    def test_apps_are_analysable_assets(self):
        model, deployment = deployed_world()
        analyzer = DeploymentSecurityAnalyzer(model, deployment, annotations())
        report = analyzer.analyse(["media_server"], "brake_controller")
        assert 0.0 < report.compromise_probability < 1.0
        assert report.most_likely_path is not None

    def test_unplaced_app_not_in_graph(self):
        model, deployment = deployed_world()
        deployment.remove("navigation")
        analyzer = DeploymentSecurityAnalyzer(model, deployment, annotations())
        with pytest.raises(ConfigurationError):
            analyzer.analyse(["navigation"], "brake_controller")

    def test_hosting_edge_exists(self):
        """Compromising an app exposes its host ECU and vice versa."""
        model, deployment = deployed_world()
        analyzer = DeploymentSecurityAnalyzer(model, deployment, annotations())
        report = analyzer.analyse(["media_server"], "head_unit")
        assert report.compromise_probability > 0.1

    def test_binding_edges_follow_the_model(self):
        """acc requires brake_request: the binding edge is in the graph."""
        model, deployment = deployed_world()
        analyzer = DeploymentSecurityAnalyzer(model, deployment, annotations())
        direct = analyzer.analyse(["acc"], "brake_controller")
        assert direct.most_likely_path is not None
        # the most likely route is the logical binding, not the network
        assert len(direct.most_likely_path.nodes) == 2


class TestAclBenefit:
    def test_acl_reduces_brake_exposure(self):
        """The Section 4.2 payoff, quantified: without access control any
        app binds to any service and the infotainment attacker gets a
        direct logical route to the brakes."""
        model, deployment = deployed_world()
        analyzer = DeploymentSecurityAnalyzer(model, deployment, annotations())
        with_acl, without_acl = analyzer.acl_benefit(
            ["media_server"], "brake_controller"
        )
        assert with_acl < without_acl
        # open bindings put the brakes one logical hop from infotainment:
        # an order-of-magnitude exposure increase at least
        assert without_acl > 10 * with_acl
        assert without_acl > 0.01

    def test_acl_noop_for_already_authorized_pairs(self):
        """For an entry that is *modelled* as a brake client, the ACL does
        not change its direct exposure path."""
        model, deployment = deployed_world()
        analyzer = DeploymentSecurityAnalyzer(model, deployment, annotations())
        with_acl = DeploymentSecurityAnalyzer(
            model, deployment, annotations(), enforce_acl=True
        ).analyse(["acc"], "brake_controller")
        assert with_acl.compromise_probability > 0.0

    def test_hardening_app_reduces_exposure(self):
        model, deployment = deployed_world()
        analyzer = DeploymentSecurityAnalyzer(model, deployment, annotations())
        before, after = analyzer.hardening_effect(
            ["media_server"], "vehicle_state_estimator", "head_unit", 0.001
        )
        assert after < before
