"""Tests for middleware-config and stub generation."""

import pytest

from repro.errors import ModelError
from repro.hw import centralized_topology
from repro.model import AppModel, Asil, InterfaceDef, InterfaceKind, Primitive, RequiredInterface, SERVICE_ID_BASE, SystemModel, generate_config, generate_stub
from repro.middleware import QOS_BULK, QOS_CONTROL, QOS_DEFAULT
from repro.workloads import reference_system


def tiny_model():
    model = SystemModel(centralized_topology())
    model.add_app(AppModel(name="p", provides=("evt",), asil=Asil.B))
    model.add_app(AppModel(name="c", requires=(RequiredInterface("evt"),)))
    model.add_interface(InterfaceDef(
        name="evt", kind=InterfaceKind.EVENT, owner="p",
        data_type=Primitive("uint32"),
    ))
    return model


class TestGenerateConfig:
    def test_service_ids_assigned_from_base(self):
        config = generate_config(tiny_model())
        assert config.service_id("evt") == SERVICE_ID_BASE

    def test_explicit_service_id_respected(self):
        model = SystemModel(centralized_topology())
        model.add_app(AppModel(name="p", provides=("evt",)))
        model.add_interface(InterfaceDef(
            name="evt", kind=InterfaceKind.EVENT, owner="p",
            data_type=Primitive("uint8"), service_id=0x4242,
        ))
        config = generate_config(model)
        assert config.service_id("evt") == 0x4242

    def test_producers_and_consumers_recorded(self):
        config = generate_config(tiny_model())
        assert config.producers["evt"] == "p"
        assert config.consumers["evt"] == ["c"]

    def test_allowed_bindings_cover_owner_and_consumers_only(self):
        config = generate_config(tiny_model())
        sid = config.service_id("evt")
        assert config.may_bind("p", sid)
        assert config.may_bind("c", sid)
        assert not config.may_bind("stranger", sid)

    def test_every_app_has_an_entry(self):
        model = tiny_model()
        model.add_app(AppModel(name="loner"))
        config = generate_config(model)
        assert config.allowed_bindings["loner"] == set()

    def test_inconsistent_model_rejected(self):
        model = tiny_model()
        model.add_app(AppModel(
            name="broken", requires=(RequiredInterface("ghost"),),
        ))
        with pytest.raises(ModelError):
            generate_config(model)

    def test_unknown_service_lookup_raises(self):
        config = generate_config(tiny_model())
        with pytest.raises(ModelError):
            config.service_id("ghost")

    def test_qos_derivation(self):
        model = reference_system(centralized_topology())
        config = generate_config(model)
        # deterministic owner + non-stream -> control QoS
        assert config.qos_for("vehicle_state") == QOS_CONTROL
        # streams ride bulk QoS
        assert config.qos_for("camera_stream") == QOS_BULK
        # NDA-owned RPC -> default
        assert config.qos_for("diagnostics") == QOS_DEFAULT
        # unknown interfaces default safely
        assert config.qos_for("nonexistent") == QOS_DEFAULT


class TestGenerateStub:
    def test_stub_for_reference_acc(self):
        model = reference_system(centralized_topology())
        stub = generate_stub(model, "acc")
        assert "def bind_acc(endpoint):" in stub
        assert "EventConsumer" in stub       # object_list / vehicle_state
        assert "RpcClient" in stub           # brake_request
        compile(stub, "<stub>", "exec")      # generated code parses

    def test_stub_for_provider(self):
        model = reference_system(centralized_topology())
        stub = generate_stub(model, "brake_controller")
        assert "RpcServer" in stub
        assert "register_method" in stub
        compile(stub, "<stub>", "exec")

    def test_stub_for_stream_provider(self):
        model = reference_system(centralized_topology())
        stub = generate_stub(model, "front_camera")
        assert "StreamSource" in stub
        compile(stub, "<stub>", "exec")

    def test_stub_for_app_without_interfaces(self):
        model = tiny_model()
        model.add_app(AppModel(name="quiet"))
        stub = generate_stub(model, "quiet")
        assert "pass" in stub
        compile(stub, "<stub>", "exec")
