"""Tests for the system model, deployments and the verification engine."""

import pytest

from repro.errors import ModelError, VerificationError
from repro.hw import BusSpec, EcuSpec, OsClass, Topology
from repro.model import (
    AppModel,
    Asil,
    Deployment,
    InterfaceDef,
    InterfaceKind,
    InterfaceRequirements,
    Primitive,
    RequiredInterface,
    SystemModel,
    VariantSpace,
    estimate_latency,
    verify,
    verify_variant_space,
)
from repro.osal import Criticality, TaskSpec
from repro.workloads import reference_system
from repro.hw import centralized_topology


def det_task(name="loop", period=0.01, wcet=0.001):
    return TaskSpec(name=name, period=period, wcet=wcet)


def small_world():
    """Two capable ECUs on TSN ethernet + one weak legacy ECU on CAN."""
    topo = Topology()
    topo.add_bus(BusSpec("eth", "ethernet", 1e9, tsn_capable=True))
    topo.add_bus(BusSpec("can", "can", 500e3))
    topo.add_ecu(EcuSpec(
        "pc0", cpu_mhz=2000, cores=2, memory_kib=1 << 20, flash_kib=1 << 22,
        has_mmu=True, has_gpu=True, os_class=OsClass.POSIX_RT,
        ports=(("eth0", "ethernet"), ("can0", "can")),
    ))
    topo.add_ecu(EcuSpec(
        "pc1", cpu_mhz=2000, cores=2, memory_kib=1 << 20, flash_kib=1 << 22,
        has_mmu=True, os_class=OsClass.POSIX_RT,
        ports=(("eth0", "ethernet"),),
    ))
    topo.add_ecu(EcuSpec(
        "legacy", cpu_mhz=200, memory_kib=512, flash_kib=2048,
        os_class=OsClass.RTOS, ports=(("can0", "can"),),
    ))
    topo.attach("pc0", "eth0", "eth")
    topo.attach("pc0", "can0", "can")
    topo.attach("pc1", "eth0", "eth")
    topo.attach("legacy", "can0", "can")
    return topo


def two_app_model():
    model = SystemModel(small_world())
    model.add_app(AppModel(
        name="producer", tasks=(det_task("p"),), provides=("data",), asil=Asil.C,
        memory_kib=100, image_kib=100,
    ))
    model.add_app(AppModel(
        name="consumer", tasks=(det_task("c"),),
        requires=(RequiredInterface("data"),), asil=Asil.B,
        memory_kib=100, image_kib=100,
    ))
    model.add_interface(InterfaceDef(
        name="data", kind=InterfaceKind.EVENT, owner="producer",
        data_type=Primitive("float32"),
        requirements=InterfaceRequirements(max_latency=0.01, period=0.01),
    ))
    return model


class TestSystemModel:
    def test_duplicate_app_rejected(self):
        model = two_app_model()
        with pytest.raises(ModelError):
            model.add_app(AppModel(name="producer"))

    def test_duplicate_interface_rejected(self):
        model = two_app_model()
        with pytest.raises(ModelError):
            model.add_interface(InterfaceDef(
                name="data", kind=InterfaceKind.EVENT, owner="producer",
                data_type=Primitive("uint8"),
            ))

    def test_consumers_and_pairs(self):
        model = two_app_model()
        assert [a.name for a in model.consumers_of("data")] == ["consumer"]
        pairs = model.communication_pairs()
        assert pairs[0][0] == "producer" and pairs[0][1] == "consumer"

    def test_replace_app_for_update(self):
        model = two_app_model()
        updated = model.app("producer").bumped()
        model.replace_app(updated)
        assert model.app("producer").version == (1, 1)
        with pytest.raises(ModelError):
            model.replace_app(AppModel(name="ghost"))

    def test_remove_app(self):
        model = two_app_model()
        model.remove_app("consumer")
        with pytest.raises(ModelError):
            model.app("consumer")
        with pytest.raises(ModelError):
            model.remove_app("consumer")

    def test_structural_ok(self):
        assert two_app_model().structural_violations() == []

    def test_dangling_interface_owner(self):
        model = two_app_model()
        model.add_interface(InterfaceDef(
            name="orphan", kind=InterfaceKind.EVENT, owner="ghost",
            data_type=Primitive("uint8"),
        ))
        violations = model.structural_violations()
        assert any("orphan" in v for v in violations)

    def test_version_incompatibility_detected(self):
        model = SystemModel(small_world())
        model.add_app(AppModel(name="p", provides=("i",), asil=Asil.B))
        model.add_app(AppModel(
            name="c", requires=(RequiredInterface("i", version=(2, 0)),),
        ))
        model.add_interface(InterfaceDef(
            name="i", kind=InterfaceKind.EVENT, owner="p",
            data_type=Primitive("uint8"), version=(1, 0),
        ))
        assert any("v(2, 0)" in v for v in model.structural_violations())

    def test_asil_dependency_violation_detected(self):
        model = SystemModel(small_world())
        model.add_app(AppModel(name="weak_provider", provides=("i",), asil=Asil.A))
        model.add_app(AppModel(
            name="critical_consumer", tasks=(det_task(),),
            requires=(RequiredInterface("i"),), asil=Asil.D,
        ))
        model.add_interface(InterfaceDef(
            name="i", kind=InterfaceKind.EVENT, owner="weak_provider",
            data_type=Primitive("uint8"),
        ))
        violations = model.structural_violations()
        assert any("ASIL" in v for v in violations)


class TestDeployment:
    def test_place_and_query(self):
        d = Deployment().place("a", "pc0", 1).place("b", "pc0", 0)
        assert d.ecu_of("a") == "pc0"
        assert d.apps_on("pc0") == ["a", "b"]
        assert d.apps_on_core("pc0", 1) == ["a"]
        assert d.used_ecus() == ["pc0"]

    def test_unplaced_lookup_raises(self):
        with pytest.raises(ModelError):
            Deployment().placement("ghost")

    def test_copy_is_independent(self):
        d = Deployment().place("a", "x")
        d2 = d.copy()
        d2.place("a", "y")
        assert d.ecu_of("a") == "x"

    def test_equality(self):
        assert Deployment().place("a", "x") == Deployment().place("a", "x")
        assert Deployment().place("a", "x") != Deployment().place("a", "y")


class TestVariantSpace:
    def test_enumerate_all_combinations(self):
        space = VariantSpace()
        space.allow("a", "e1").allow("a", "e2")
        space.allow("b", "e1")
        deployments = list(space.enumerate())
        assert len(deployments) == 2
        assert space.size() == 2

    def test_duplicate_option_ignored(self):
        space = VariantSpace().allow("a", "e1").allow("a", "e1")
        assert len(space.candidates("a")) == 1

    def test_empty_space(self):
        assert VariantSpace().size() == 0
        assert list(VariantSpace().enumerate()) == []

    def test_unknown_app_candidates(self):
        with pytest.raises(ModelError):
            VariantSpace().candidates("ghost")


class TestVerification:
    def test_good_deployment_passes(self):
        model = two_app_model()
        d = Deployment().place("producer", "pc0").place("consumer", "pc1")
        result = verify(model, d)
        assert result.ok, [str(v) for v in result.violations]

    def test_unplaced_app_fails(self):
        model = two_app_model()
        d = Deployment().place("producer", "pc0")
        result = verify(model, d)
        assert not result.ok
        assert any(v.rule == "placement" for v in result.errors)

    def test_memory_overflow_fails(self):
        model = two_app_model()
        model.add_app(AppModel(name="hog", memory_kib=1 << 21, image_kib=1))
        d = (Deployment().place("producer", "pc0").place("consumer", "pc1")
             .place("hog", "pc0"))
        result = verify(model, d)
        assert any(v.rule == "memory" for v in result.errors)

    def test_deterministic_on_gp_os_fails(self):
        topo = small_world()
        topo.add_ecu(EcuSpec(
            "head", cpu_mhz=1500, os_class=OsClass.POSIX_GP, has_mmu=True,
            memory_kib=1 << 20, flash_kib=1 << 20,
            ports=(("eth0", "ethernet"),),
        ))
        topo.attach("head", "eth0", "eth")
        model = SystemModel(topo)
        model.add_app(AppModel(name="ctl", tasks=(det_task(),), asil=Asil.C,
                               memory_kib=10, image_kib=10))
        result = verify(model, Deployment().place("ctl", "head"))
        assert any(v.rule == "os_class" for v in result.errors)

    def test_mixed_criticality_without_mmu_fails(self):
        model = SystemModel(small_world())
        model.add_app(AppModel(name="da", tasks=(det_task("d"),), asil=Asil.C,
                               memory_kib=10, image_kib=10))
        model.add_app(AppModel(
            name="nda",
            tasks=(TaskSpec(name="n", period=0.1, wcet=0.001,
                            criticality=Criticality.NON_DETERMINISTIC),),
            memory_kib=10, image_kib=10,
        ))
        d = Deployment().place("da", "legacy").place("nda", "legacy")
        result = verify(model, d)
        assert any(v.rule == "mmu" for v in result.errors)

    def test_unschedulable_core_fails(self):
        model = SystemModel(small_world())
        for i in range(3):
            model.add_app(AppModel(
                name=f"heavy{i}",
                tasks=(TaskSpec(name=f"h{i}", period=0.01, wcet=0.009),),
                asil=Asil.C, memory_kib=10, image_kib=10,
            ))
        d = Deployment()
        for i in range(3):
            d.place(f"heavy{i}", "legacy")
        result = verify(model, d)
        assert any(v.rule == "schedulability" for v in result.errors)

    def test_core_out_of_range_fails(self):
        model = two_app_model()
        d = Deployment().place("producer", "pc0", core=7).place("consumer", "pc1")
        result = verify(model, d)
        assert any("out of range" in v.message for v in result.errors)

    def test_gpu_requirement_enforced(self):
        model = SystemModel(small_world())
        model.add_app(AppModel(name="nn", needs_gpu=True, memory_kib=10, image_kib=10))
        result = verify(model, Deployment().place("nn", "pc1"))  # pc1: no GPU
        assert any(v.rule == "gpu" for v in result.errors)
        result2 = verify(model, Deployment().place("nn", "pc0"))  # pc0: GPU
        assert result2.ok

    def test_latency_budget_violation(self):
        """A tight latency budget across the slow CAN segment must fail."""
        model = SystemModel(small_world())
        model.add_app(AppModel(name="p", tasks=(det_task("pt"),), provides=("i",),
                               asil=Asil.C, memory_kib=10, image_kib=10))
        model.add_app(AppModel(name="c", requires=(RequiredInterface("i"),),
                               memory_kib=10, image_kib=10))
        model.add_interface(InterfaceDef(
            name="i", kind=InterfaceKind.EVENT, owner="p",
            data_type=Primitive("float64"),
            requirements=InterfaceRequirements(max_latency=0.0001),
        ))
        d = Deployment().place("p", "legacy").place("c", "pc1")
        result = verify(model, d)
        assert any(v.rule == "latency" for v in result.errors)

    def test_colocated_communication_has_zero_latency(self):
        model = two_app_model()
        assert estimate_latency(model, "pc0", "pc0", 100) == 0.0

    def test_raise_if_failed(self):
        model = two_app_model()
        result = verify(model, Deployment())
        with pytest.raises(VerificationError):
            result.raise_if_failed()

    def test_verify_variant_space_counts(self):
        model = two_app_model()
        space = VariantSpace()
        space.allow("producer", "pc0").allow("producer", "legacy")
        space.allow("consumer", "pc1")
        n_ok, n_total, failures = verify_variant_space(model, space)
        assert n_total == 2
        # both should verify: producer fits on the legacy RTOS ECU too
        assert n_ok + len(failures) == n_total


class TestJitterRule:
    """Deterministic tasks on shared preemptive cores need jitter bounds."""

    def _model_with_pair(self, tolerance=float("inf")):
        model = SystemModel(small_world())
        model.add_app(AppModel(
            name="ctl",
            tasks=(TaskSpec(name="loop", period=0.01, wcet=0.001,
                            jitter_tolerance=tolerance),),
            asil=Asil.C, memory_kib=10, image_kib=10,
        ))
        model.add_app(AppModel(
            name="peer", tasks=(det_task("peer_loop"),
                                ), memory_kib=10, image_kib=10,
        ))
        return model

    def test_unbounded_jitter_on_shared_core_warns(self):
        model = self._model_with_pair()
        d = Deployment().place("ctl", "pc0", 0).place("peer", "pc0", 0)
        result = verify(model, d)
        warned = [v for v in result.warnings if v.rule == "jitter"]
        assert warned, [str(v) for v in result.violations]
        # both tasks are deterministic and unbounded, so both are flagged
        assert {v.subject for v in warned} == {"ctl.loop", "peer.peer_loop"}
        assert result.ok  # warnings never fail the deployment outright

    def test_declared_bound_silences_warning(self):
        model = self._model_with_pair(tolerance=0.002)
        d = Deployment().place("ctl", "pc0", 0).place("peer", "pc0", 0)
        result = verify(model, d)
        assert not any(v.subject == "ctl.loop" for v in result.warnings)

    def test_lone_task_on_core_does_not_warn(self):
        model = self._model_with_pair()
        d = Deployment().place("ctl", "pc0", 0).place("peer", "pc0", 1)
        result = verify(model, d)
        assert not any(v.rule == "jitter" for v in result.warnings)

    def test_bare_metal_core_does_not_warn(self):
        topo = small_world()
        topo.add_ecu(EcuSpec(
            "bm", cpu_mhz=400, memory_kib=1 << 16, flash_kib=1 << 16,
            os_class=OsClass.BARE_METAL, ports=(("can0", "can"),),
        ))
        topo.attach("bm", "can0", "can")
        model = SystemModel(topo)
        model.add_app(AppModel(name="a", tasks=(det_task("a0"),),
                               asil=Asil.C, memory_kib=10, image_kib=10))
        model.add_app(AppModel(name="b", tasks=(det_task("b0"),),
                               memory_kib=10, image_kib=10))
        d = Deployment().place("a", "bm", 0).place("b", "bm", 0)
        result = verify(model, d)
        assert not any(v.rule == "jitter" for v in result.warnings)

    def test_preemption_jitter_property(self):
        assert OsClass.RTOS.preemption_jitter
        assert OsClass.POSIX_RT.preemption_jitter
        assert OsClass.POSIX_GP.preemption_jitter
        assert not OsClass.BARE_METAL.preemption_jitter

    def test_variant_space_include_warnings(self):
        model = self._model_with_pair()
        space = VariantSpace()
        space.allow("ctl", "pc0").allow("peer", "pc0")
        lax = verify_variant_space(model, space)
        strict = verify_variant_space(model, space, include_warnings=True)
        # both apps default to core 0 on pc0, so the only deployment
        # carries the jitter warning: ok in the lax reading, a failure
        # in the strict one
        assert lax[0] == 1 and lax[2] == {}
        assert strict[0] == 0 and len(strict[2]) == 1


class TestReferenceSystem:
    def test_reference_model_is_structurally_sound(self):
        model = reference_system(centralized_topology(n_platforms=2))
        assert model.structural_violations() == []

    def test_reference_model_verifies_on_platform_computers(self):
        model = reference_system(centralized_topology(n_platforms=2))
        d = Deployment()
        # spread deterministic apps over both platform computers
        placements = {
            "wheel_sensor_fusion": ("platform_0", 0),
            "vehicle_state_estimator": ("platform_0", 1),
            "brake_controller": ("platform_0", 2),
            "suspension_control": ("platform_0", 3),
            "front_camera": ("platform_1", 0),
            "object_fusion": ("platform_0", 4),
            "acc": ("platform_1", 1),
            "diagnosis_service": ("platform_1", 2),
            "media_server": ("head_unit", 0),
            "navigation": ("head_unit", 1),
        }
        for app, (ecu, core) in placements.items():
            d.place(app, ecu, core)
        result = verify(model, d)
        assert result.ok, [str(v) for v in result.errors]
