"""Tests for latency estimation and verification warnings."""


from repro.hw import BusSpec, EcuSpec, OsClass, Topology
from repro.model import AppModel, Asil, Deployment, InterfaceDef, InterfaceKind, InterfaceRequirements, Primitive, RequiredInterface, SystemModel, estimate_latency, verify
from repro.model.types import ArrayType
from repro.osal import TaskSpec


def mixed_topology(tsn=False):
    """CAN zone - gateway - Ethernet backbone."""
    topo = Topology()
    topo.add_bus(BusSpec("can", "can", 500e3))
    topo.add_bus(BusSpec("eth", "ethernet", 100e6, tsn_capable=tsn))
    topo.add_ecu(EcuSpec(
        "zone", cpu_mhz=400, memory_kib=1 << 14, flash_kib=1 << 16,
        has_mmu=True, os_class=OsClass.RTOS, ports=(("can0", "can"),),
    ))
    topo.add_ecu(EcuSpec(
        "gw", cpu_mhz=800, cores=2, memory_kib=1 << 16, flash_kib=1 << 18,
        has_mmu=True, os_class=OsClass.POSIX_RT,
        ports=(("can0", "can"), ("eth0", "ethernet")),
    ))
    topo.add_ecu(EcuSpec(
        "brain", cpu_mhz=2000, cores=4, memory_kib=1 << 20, flash_kib=1 << 22,
        has_mmu=True, os_class=OsClass.POSIX_RT,
        ports=(("eth0", "ethernet"),),
    ))
    topo.attach("zone", "can0", "can")
    topo.attach("gw", "can0", "can")
    topo.attach("gw", "eth0", "eth")
    topo.attach("brain", "eth0", "eth")
    return topo


class TestEstimateLatency:
    def model(self):
        return SystemModel(mixed_topology())

    def test_multi_hop_larger_than_single_hop(self):
        model = self.model()
        one_hop = estimate_latency(model, "gw", "brain", 64)
        two_hop = estimate_latency(model, "zone", "brain", 64)
        assert two_hop > one_hop

    def test_latency_monotone_in_payload(self):
        model = self.model()
        small = estimate_latency(model, "zone", "brain", 8)
        large = estimate_latency(model, "zone", "brain", 256)
        assert large > small

    def test_can_segment_dominates(self):
        """Crossing the 500 kbit/s CAN leg costs far more than Ethernet."""
        model = self.model()
        can_leg = estimate_latency(model, "zone", "gw", 64)
        eth_leg = estimate_latency(model, "gw", "brain", 64)
        assert can_leg > eth_leg * 10


class TestIsolationWarning:
    def build(self, tsn):
        model = SystemModel(mixed_topology(tsn=tsn))
        model.add_app(AppModel(
            name="det_p",
            tasks=(TaskSpec(name="dp", period=0.01, wcet=0.001),),
            provides=("ctl_evt",), asil=Asil.C,
            memory_kib=16, image_kib=16,
        ))
        model.add_app(AppModel(
            name="cons", requires=(RequiredInterface("ctl_evt"),),
            memory_kib=16, image_kib=16,
        ))
        model.add_interface(InterfaceDef(
            name="ctl_evt", kind=InterfaceKind.EVENT, owner="det_p",
            data_type=Primitive("uint32"),
            requirements=InterfaceRequirements(period=0.01),
        ))
        deployment = Deployment().place("det_p", "gw").place("cons", "brain")
        return verify(model, deployment)

    def test_non_tsn_segment_warns(self):
        result = self.build(tsn=False)
        warnings = [v for v in result.warnings if v.rule == "isolation"]
        assert warnings
        assert result.ok  # a warning, not an error

    def test_tsn_segment_is_clean(self):
        result = self.build(tsn=True)
        assert not [v for v in result.warnings if v.rule == "isolation"]


class TestBusOverloadRule:
    def test_aggregate_overload_detected(self):
        """Many periodic interfaces over the CAN leg overwhelm it."""
        model = SystemModel(mixed_topology())
        for i in range(4):
            model.add_app(AppModel(
                name=f"p{i}",
                tasks=(TaskSpec(name=f"pt{i}", period=0.01, wcet=0.0001),),
                provides=(f"evt{i}",), asil=Asil.B,
                memory_kib=16, image_kib=16,
            ))
            model.add_app(AppModel(
                name=f"c{i}", requires=(RequiredInterface(f"evt{i}"),),
                memory_kib=16, image_kib=16,
            ))
            model.add_interface(InterfaceDef(
                name=f"evt{i}", kind=InterfaceKind.EVENT, owner=f"p{i}",
                data_type=ArrayType(Primitive("uint8"), 200),
                requirements=InterfaceRequirements(period=0.01),
            ))
        deployment = Deployment()
        for i in range(4):
            deployment.place(f"p{i}", "zone").place(f"c{i}", "brain")
        result = verify(model, deployment)
        assert any(v.rule == "bus_overload" for v in result.errors)


class TestAdmissionBestCore:
    def test_spreads_over_cores(self):
        from repro.core import AdmissionController, PlatformNode
        from repro.middleware import ServiceRegistry
        from repro.network import VehicleNetwork
        from repro.sim import Simulator

        topo = mixed_topology()
        sim = Simulator()
        net = VehicleNetwork(sim, topo)
        node = PlatformNode(sim, topo.ecu("gw"), net, ServiceRegistry())
        controller = AdmissionController(nda_budget_share=0.3)
        # gw: 2 cores at 4x speed; each 2-task app uses 0.4 of a core,
        # so two such apps exceed the 0.7 deterministic share of core 0
        def heavy(name):
            return AppModel(
                name=name,
                tasks=(
                    TaskSpec(name=f"{name}_t1", period=0.01, wcet=0.008),
                    TaskSpec(name=f"{name}_t2", period=0.01, wcet=0.008),
                ),
                asil=Asil.C, memory_kib=16, image_kib=16,
            )

        decision1 = controller.best_core(node, heavy("h1"))
        assert decision1 and decision1.core_index == 0
        instance = node.instantiate(heavy("h1"), core_index=0)
        instance.start()
        sim.run(until=0.02)
        decision2 = controller.best_core(node, heavy("h2"))
        assert decision2 and decision2.core_index == 1
