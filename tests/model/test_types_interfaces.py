"""Tests for the type system and interface definitions."""

import pytest

from repro.errors import ModelError
from repro.model import (
    ArrayType,
    InterfaceDef,
    InterfaceKind,
    InterfaceRequirements,
    Primitive,
    StructType,
    TypeRegistry,
    standard_types,
)


class TestTypes:
    def test_primitive_sizes(self):
        assert Primitive("uint8").byte_size() == 1
        assert Primitive("float64").byte_size() == 8

    def test_unknown_primitive_rejected(self):
        with pytest.raises(ModelError):
            Primitive("string")

    def test_array_size(self):
        arr = ArrayType(Primitive("float32"), 4)
        assert arr.byte_size() == 16
        assert arr.describe() == "float32[4]"

    def test_array_invalid_length(self):
        with pytest.raises(ModelError):
            ArrayType(Primitive("uint8"), 0)

    def test_struct_size_and_fields(self):
        s = StructType("S", (("a", Primitive("uint32")), ("b", Primitive("uint8"))))
        assert s.byte_size() == 5
        assert s.field_type("a").byte_size() == 4
        with pytest.raises(ModelError):
            s.field_type("missing")

    def test_struct_duplicate_fields_rejected(self):
        with pytest.raises(ModelError):
            StructType("S", (("a", Primitive("uint8")), ("a", Primitive("uint8"))))

    def test_empty_struct_rejected(self):
        with pytest.raises(ModelError):
            StructType("S", ())

    def test_nested_types(self):
        inner = StructType("P", (("x", Primitive("float32")), ("y", Primitive("float32"))))
        outer = StructType("Track", (("points", ArrayType(inner, 10)),))
        assert outer.byte_size() == 80


class TestTypeRegistry:
    def test_primitives_preloaded(self):
        reg = TypeRegistry()
        assert "uint32" in reg
        assert reg.size_of("uint32") == 4

    def test_define_struct_by_names(self):
        reg = TypeRegistry()
        reg.define_struct("Pair", [("a", "uint16"), ("b", "uint16")])
        assert reg.size_of("Pair") == 4

    def test_define_array(self):
        reg = TypeRegistry()
        reg.define_array("Buf", "uint8", 100)
        assert reg.size_of("Buf") == 100

    def test_duplicate_definition_rejected(self):
        reg = TypeRegistry()
        reg.define_struct("X", [("a", "uint8")])
        with pytest.raises(ModelError):
            reg.define_struct("X", [("a", "uint8")])
        with pytest.raises(ModelError):
            reg.define_array("X", "uint8", 2)

    def test_unknown_type_lookup(self):
        with pytest.raises(ModelError):
            TypeRegistry().get("nope")

    def test_standard_types_catalog(self):
        reg = standard_types()
        assert reg.size_of("WheelSpeeds") == 16
        assert reg.size_of("ObjectList") == 32 * reg.size_of("ObjectHypothesis")
        assert reg.size_of("CameraFrameChunk") == 1024


class TestInterfaceDef:
    def event(self, **kw):
        defaults = dict(
            name="speed",
            kind=InterfaceKind.EVENT,
            owner="speedo",
            data_type=Primitive("float32"),
        )
        defaults.update(kw)
        return InterfaceDef(**defaults)

    def test_event_interface(self):
        i = self.event()
        assert i.payload_bytes == 4
        assert i.response_bytes == 0

    def test_message_requires_response_type(self):
        with pytest.raises(ModelError):
            InterfaceDef(
                name="m", kind=InterfaceKind.MESSAGE, owner="o",
                data_type=Primitive("uint8"),
            )
        i = InterfaceDef(
            name="m", kind=InterfaceKind.MESSAGE, owner="o",
            data_type=Primitive("uint8"), response_type=Primitive("uint32"),
        )
        assert i.response_bytes == 4

    def test_event_cannot_have_response(self):
        with pytest.raises(ModelError):
            self.event(response_type=Primitive("uint8"))

    def test_stream_requires_period(self):
        with pytest.raises(ModelError):
            InterfaceDef(
                name="s", kind=InterfaceKind.STREAM, owner="o",
                data_type=Primitive("uint8"),
            )

    def test_offered_bandwidth(self):
        i = self.event(
            requirements=InterfaceRequirements(period=0.01),
            data_type=Primitive("float64"),
        )
        assert i.offered_bandwidth_bps() == pytest.approx(8 * 8 / 0.01)

    def test_no_period_no_bandwidth(self):
        assert self.event().offered_bandwidth_bps() == 0.0

    def test_version_compatibility_rule(self):
        i = self.event(version=(2, 3))
        assert i.compatible_with((2, 3))
        assert i.compatible_with((2, 1))
        assert not i.compatible_with((2, 4))
        assert not i.compatible_with((1, 0))
        assert not i.compatible_with((3, 0))

    def test_invalid_requirements(self):
        with pytest.raises(ModelError):
            InterfaceRequirements(max_latency=0.0)
        with pytest.raises(ModelError):
            InterfaceRequirements(period=-1.0)

    def test_missing_owner_rejected(self):
        with pytest.raises(ModelError):
            self.event(owner="")
