"""Tests for the legacy signal catalog and its migration to interfaces."""

import pytest

from repro.errors import ModelError
from repro.model import (
    InterfaceKind,
    SignalCatalog,
    SignalDef,
    legacy_body_catalog,
    migrate_catalog,
)


def sig(name="s", frame=0x100, offset=0, length=8, cycle=0.02,
        emitter="ecu_a", consumers=("ecu_b",)):
    return SignalDef(name, frame, offset, length, cycle, emitter, consumers)


class TestSignalDef:
    def test_valid_signal(self):
        s = sig()
        assert s.documented
        assert s.fits_primitive() == "uint8"

    def test_primitive_fitting(self):
        assert sig(length=1).fits_primitive() == "uint8"
        assert sig(length=9, offset=0).fits_primitive() == "uint16"
        assert sig(length=17).fits_primitive() == "uint32"
        assert sig(length=64, offset=0).fits_primitive() == "uint64"

    def test_invalid_offsets(self):
        with pytest.raises(ModelError):
            sig(offset=64)
        with pytest.raises(ModelError):
            sig(offset=60, length=8)
        with pytest.raises(ModelError):
            sig(length=0)

    def test_invalid_cycle(self):
        with pytest.raises(ModelError):
            sig(cycle=0.0)

    def test_undocumented_flags(self):
        assert not sig(emitter=None).documented
        assert not sig(consumers=()).documented


class TestSignalCatalog:
    def test_add_and_get(self):
        catalog = SignalCatalog()
        catalog.add(sig("speed"))
        assert catalog.get("speed").name == "speed"
        with pytest.raises(ModelError):
            catalog.get("ghost")

    def test_duplicate_rejected(self):
        catalog = SignalCatalog()
        catalog.add(sig("speed"))
        with pytest.raises(ModelError):
            catalog.add(sig("speed", offset=16))

    def test_overlap_detected(self):
        catalog = SignalCatalog()
        catalog.add(sig("a", offset=0, length=8))
        with pytest.raises(ModelError, match="overlaps"):
            catalog.add(sig("b", offset=4, length=8))

    def test_no_overlap_across_frames(self):
        catalog = SignalCatalog()
        catalog.add(sig("a", frame=0x100, offset=0))
        catalog.add(sig("b", frame=0x101, offset=0))  # same bits, other frame

    def test_signals_in_frame_sorted(self):
        catalog = SignalCatalog()
        catalog.add(sig("hi", offset=16))
        catalog.add(sig("lo", offset=0))
        assert [s.name for s in catalog.signals_in_frame(0x100)] == ["lo", "hi"]

    def test_undocumented_listing(self):
        catalog = legacy_body_catalog()
        names = {s.name for s in catalog.undocumented()}
        assert names == {"mystery_counter", "legacy_flag_7"}

    def test_emitters(self):
        catalog = legacy_body_catalog()
        assert "esp" in catalog.emitters()
        assert None not in catalog.emitters()

    def test_emitters_deterministic_order(self):
        # regression: emitters() used to return a set, whose iteration
        # order varies across processes under hash randomisation
        emitters = legacy_body_catalog().emitters()
        assert isinstance(emitters, tuple)
        assert list(emitters) == sorted(emitters)


class TestMigration:
    def test_documented_signals_become_events(self):
        report = migrate_catalog(legacy_body_catalog())
        assert report.migrated_count == 6
        for interface in report.interfaces:
            assert interface.kind is InterfaceKind.EVENT
            assert interface.owner  # the emitter owns the event

    def test_undocumented_signals_reported_not_guessed(self):
        report = migrate_catalog(legacy_body_catalog())
        skipped_names = {name for name, _r in report.skipped}
        assert skipped_names == {"mystery_counter", "legacy_flag_7"}
        reasons = dict(report.skipped)
        assert "emitter" in reasons["mystery_counter"]
        assert "consumers" in reasons["legacy_flag_7"]

    def test_periods_carried_over(self):
        report = migrate_catalog(legacy_body_catalog())
        by_name = {i.name: i for i in report.interfaces}
        assert by_name["sig_vehicle_speed"].requirements.period == 0.02

    def test_type_sizing(self):
        report = migrate_catalog(legacy_body_catalog())
        by_name = {i.name: i for i in report.interfaces}
        assert by_name["sig_vehicle_speed"].payload_bytes == 2  # 16 bits
        assert by_name["sig_door_fl_open"].payload_bytes == 1   # 1 bit

    def test_frames_consolidated_counted(self):
        report = migrate_catalog(legacy_body_catalog())
        assert report.frames_consolidated == 2  # 0x100 and 0x210

    def test_summary_readable(self):
        text = migrate_catalog(legacy_body_catalog()).summary()
        assert "migrated 6 signals" in text
        assert "mystery_counter" in text

    def test_interfaces_integrate_with_system_model(self):
        """Migrated interfaces are real InterfaceDefs: they can be wired
        into a SystemModel with apps standing in for the legacy ECUs."""
        from repro.hw import centralized_topology
        from repro.model import AppModel, RequiredInterface, SystemModel

        report = migrate_catalog(legacy_body_catalog())
        model = SystemModel(centralized_topology())
        emitters = {i.owner for i in report.interfaces}
        for emitter in sorted(emitters):
            provides = tuple(
                i.name for i in report.interfaces if i.owner == emitter
            )
            model.add_app(AppModel(name=emitter, provides=provides))
        model.add_app(AppModel(
            name="dashboard",
            requires=(RequiredInterface("sig_vehicle_speed"),),
        ))
        for interface in report.interfaces:
            model.add_interface(interface)
        assert model.structural_violations() == []
