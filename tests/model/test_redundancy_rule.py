"""Tests for the fail-operational verification rule and app model fields."""

import pytest

from repro.errors import ModelError
from repro.hw import BusSpec, EcuSpec, OsClass, Topology
from repro.model import AppModel, Asil, Deployment, SystemModel, verify
from repro.osal import TaskSpec


def topo_with_platforms(n):
    topo = Topology()
    topo.add_bus(BusSpec("eth", "ethernet", 1e9, tsn_capable=True))
    for i in range(n):
        topo.add_ecu(EcuSpec(
            f"p{i}", cpu_mhz=800, cores=2, memory_kib=1 << 18,
            flash_kib=1 << 20, has_mmu=True, os_class=OsClass.POSIX_RT,
            ports=(("eth0", "ethernet"),),
        ))
        topo.attach(f"p{i}", "eth0", "eth")
    return topo


def fo_app(**kw):
    defaults = dict(
        name="steer",
        tasks=(TaskSpec(name="steer_loop", period=0.01, wcet=0.001),),
        asil=Asil.D, memory_kib=64, image_kib=64,
        fail_operational=True,
    )
    defaults.update(kw)
    return AppModel(**defaults)


class TestAppModelFields:
    def test_fail_operational_needs_two_replicas(self):
        with pytest.raises(ModelError):
            fo_app(min_replicas=1)

    def test_bumped_preserves_new_fields(self):
        app = fo_app()
        bumped = app.bumped()
        assert bumped.version == (1, 1)
        assert bumped.fail_operational
        assert bumped.min_replicas == 2


class TestRedundancyRule:
    def test_enough_hosts_passes(self):
        model = SystemModel(topo_with_platforms(2))
        model.add_app(fo_app())
        d = Deployment().place("steer", "p0")
        result = verify(model, d)
        assert not any(v.rule == "redundancy" for v in result.errors)

    def test_single_host_topology_fails(self):
        model = SystemModel(topo_with_platforms(1))
        model.add_app(fo_app())
        d = Deployment().place("steer", "p0")
        result = verify(model, d)
        assert any(v.rule == "redundancy" for v in result.errors)

    def test_capability_screen_counts_only_fitting_hosts(self):
        """Two ECUs, but only one has a GPU: a fail-operational GPU app
        cannot be replicated."""
        topo = topo_with_platforms(1)
        topo.add_ecu(EcuSpec(
            "gpu_box", cpu_mhz=800, cores=2, memory_kib=1 << 18,
            flash_kib=1 << 20, has_mmu=True, has_gpu=True,
            os_class=OsClass.POSIX_RT, ports=(("eth0", "ethernet"),),
        ))
        topo.attach("gpu_box", "eth0", "eth")
        model = SystemModel(topo)
        model.add_app(fo_app(needs_gpu=True))
        d = Deployment().place("steer", "gpu_box")
        result = verify(model, d)
        assert any(v.rule == "redundancy" for v in result.errors)

    def test_three_replicas_requirement(self):
        model = SystemModel(topo_with_platforms(2))
        model.add_app(fo_app(min_replicas=3))
        d = Deployment().place("steer", "p0")
        result = verify(model, d)
        assert any(v.rule == "redundancy" for v in result.errors)
        model3 = SystemModel(topo_with_platforms(3))
        model3.add_app(fo_app(min_replicas=3))
        result3 = verify(model3, Deployment().place("steer", "p0"))
        assert not any(v.rule == "redundancy" for v in result3.errors)

    def test_non_fo_app_unaffected(self):
        model = SystemModel(topo_with_platforms(1))
        model.add_app(fo_app(fail_operational=False))
        result = verify(model, Deployment().place("steer", "p0"))
        assert not any(v.rule == "redundancy" for v in result.errors)
