"""A catalog of representative automotive ECU classes and topologies.

The classes follow the paper's Section 1: legacy ECUs with "CPUs with
200 MHz or less", infotainment as the exception, and future consolidated
high-performance platform computers (the RACE-style central platform of
Section 5.2).
"""

from __future__ import annotations

from typing import List

from .ecu import CryptoCapability, EcuSpec, OsClass
from .topology import BusSpec, Topology


def legacy_ecu(name: str, **overrides) -> EcuSpec:
    """A classic single-function ECU: 200 MHz, no MMU, CAN only."""
    params = dict(
        name=name,
        cpu_mhz=200.0,
        cores=1,
        memory_kib=512,
        flash_kib=2048,
        has_mmu=False,
        crypto=CryptoCapability.SOFTWARE,
        os_class=OsClass.RTOS,
        ports=(("can0", "can"),),
        unit_cost=20.0,
    )
    params.update(overrides)
    return EcuSpec(**params)


def weak_ecu(name: str, **overrides) -> EcuSpec:
    """A cost-optimised sensor/actuator ECU without usable crypto (Section 4.1)."""
    params = dict(
        name=name,
        cpu_mhz=80.0,
        cores=1,
        memory_kib=128,
        flash_kib=512,
        has_mmu=False,
        crypto=CryptoCapability.NONE,
        os_class=OsClass.BARE_METAL,
        ports=(("can0", "can"),),
        unit_cost=8.0,
    )
    params.update(overrides)
    return EcuSpec(**params)


def domain_controller(name: str, **overrides) -> EcuSpec:
    """A domain controller: multicore, MMU, FlexRay + Ethernet + CAN."""
    params = dict(
        name=name,
        cpu_mhz=800.0,
        cores=2,
        memory_kib=64 * 1024,
        flash_kib=256 * 1024,
        has_mmu=True,
        crypto=CryptoCapability.SOFTWARE,
        os_class=OsClass.POSIX_RT,
        ports=(("can0", "can"), ("fr0", "flexray"), ("eth0", "ethernet")),
        unit_cost=90.0,
    )
    params.update(overrides)
    return EcuSpec(**params)


def platform_computer(name: str, **overrides) -> EcuSpec:
    """A consolidated central platform computer hosting the dynamic platform."""
    params = dict(
        name=name,
        cpu_mhz=2000.0,
        cores=8,
        memory_kib=4 * 1024 * 1024,
        flash_kib=32 * 1024 * 1024,
        has_mmu=True,
        has_gpu=True,
        crypto=CryptoCapability.ACCELERATED,
        os_class=OsClass.POSIX_RT,
        ports=(("eth0", "ethernet"), ("eth1", "ethernet"), ("can0", "can")),
        unit_cost=450.0,
    )
    params.update(overrides)
    return EcuSpec(**params)


def infotainment_unit(name: str, **overrides) -> EcuSpec:
    """The head unit: fast but general-purpose OS — NDAs only."""
    params = dict(
        name=name,
        cpu_mhz=1500.0,
        cores=4,
        memory_kib=2 * 1024 * 1024,
        flash_kib=16 * 1024 * 1024,
        has_mmu=True,
        has_gpu=True,
        crypto=CryptoCapability.SOFTWARE,
        os_class=OsClass.POSIX_GP,
        ports=(("eth0", "ethernet"),),
        unit_cost=200.0,
    )
    params.update(overrides)
    return EcuSpec(**params)


def federated_topology(n_function_ecus: int = 12) -> Topology:
    """A Figure-1-style federated architecture: one ECU per function.

    ``n_function_ecus`` legacy ECUs spread over two CAN segments joined by a
    gateway domain controller, plus an infotainment unit on Ethernet.
    """
    topo = Topology("federated")
    can_a = topo.add_bus(BusSpec("can_powertrain", "can", 500_000.0))
    can_b = topo.add_bus(BusSpec("can_body", "can", 250_000.0))
    eth = topo.add_bus(BusSpec("eth_info", "ethernet", 100_000_000.0))

    gateway = domain_controller("gateway")
    topo.add_ecu(gateway)
    topo.attach("gateway", "can0", can_a.name)
    topo.attach("gateway", "eth0", eth.name)

    bridge = domain_controller("body_gateway")
    topo.add_ecu(bridge)
    topo.attach("body_gateway", "can0", can_b.name)
    topo.attach("body_gateway", "eth0", eth.name)

    for i in range(n_function_ecus):
        bus = can_a if i % 2 == 0 else can_b
        ecu = legacy_ecu(f"ecu_{i:02d}")
        topo.add_ecu(ecu)
        topo.attach(ecu.name, "can0", bus.name)

    head = infotainment_unit("head_unit")
    topo.add_ecu(head)
    topo.attach("head_unit", "eth0", eth.name)
    return topo


def centralized_topology(n_platforms: int = 2, tsn: bool = True) -> Topology:
    """A consolidated architecture: platform computers on a TSN backbone.

    ``n_platforms`` platform computers (>=2 gives hardware redundancy,
    Section 3.3) plus a zone of legacy sensors/actuators on CAN bridged
    through the first platform computer.
    """
    if n_platforms < 1:
        raise ValueError("need at least one platform computer")
    topo = Topology("centralized")
    backbone = topo.add_bus(
        BusSpec("eth_backbone", "ethernet", 1_000_000_000.0, tsn_capable=tsn)
    )
    can_zone = topo.add_bus(BusSpec("can_zone", "can", 500_000.0))

    for i in range(n_platforms):
        pc = platform_computer(f"platform_{i}")
        topo.add_ecu(pc)
        topo.attach(pc.name, "eth0", backbone.name)
    topo.attach("platform_0", "can0", can_zone.name)

    for i in range(4):
        sensor = weak_ecu(f"zone_sensor_{i}")
        topo.add_ecu(sensor)
        topo.attach(sensor.name, "can0", can_zone.name)

    head = infotainment_unit("head_unit")
    topo.add_ecu(head)
    topo.attach("head_unit", "eth0", backbone.name)
    return topo


def catalog_specs() -> List[EcuSpec]:
    """One example of every ECU class (for docs and quick experiments)."""
    return [
        legacy_ecu("legacy_example"),
        weak_ecu("weak_example"),
        domain_controller("domain_example"),
        platform_computer("platform_example"),
        infotainment_unit("infotainment_example"),
    ]
