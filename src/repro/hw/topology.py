"""E/E network topology: ECUs, buses and their interconnection.

A :class:`Topology` is the hardware-architecture half of the paper's
modeling approach (Section 2.2): "all required ECUs, including all
attributes to be checked ... and the communication network interconnecting
them".  It is a plain data structure (backed by a networkx graph) consumed
by the verification engine, the DSE and the simulation builders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import networkx as nx

from ..errors import ConfigurationError
from .ecu import EcuSpec


@dataclass(frozen=True)
class BusSpec:
    """Static description of one communication segment.

    Attributes:
        name: unique bus identifier ("can_body", "eth_backbone", ...).
        technology: one of "can", "flexray", "ethernet".
        bitrate_bps: raw channel bitrate.
        tsn_capable: Ethernet only — whether 802.1Qbv time-aware shaping is
            available on this segment's switches.
    """

    name: str
    technology: str
    bitrate_bps: float
    tsn_capable: bool = False

    _TECHNOLOGIES = ("can", "flexray", "ethernet")

    def __post_init__(self) -> None:
        if self.technology not in self._TECHNOLOGIES:
            raise ConfigurationError(
                f"bus {self.name!r}: unknown technology {self.technology!r}"
            )
        if self.bitrate_bps <= 0:
            raise ConfigurationError(f"bus {self.name!r}: bitrate must be positive")
        if self.tsn_capable and self.technology != "ethernet":
            raise ConfigurationError(
                f"bus {self.name!r}: TSN is only defined for ethernet"
            )

    @property
    def bytes_per_second(self) -> float:
        return self.bitrate_bps / 8.0


class Topology:
    """The vehicle's hardware architecture: ECUs attached to buses.

    The underlying graph is bipartite — ECU nodes and bus nodes — with an
    edge per (ECU port, bus) attachment.  Gateways are simply ECUs attached
    to more than one bus.
    """

    def __init__(self, name: str = "vehicle") -> None:
        self.name = name
        self.graph = nx.Graph()
        self._ecus: Dict[str, EcuSpec] = {}
        self._buses: Dict[str, BusSpec] = {}

    # -- construction ------------------------------------------------------

    def add_ecu(self, spec: EcuSpec) -> EcuSpec:
        """Register an ECU.  Names must be unique across ECUs and buses."""
        self._check_fresh_name(spec.name)
        self._ecus[spec.name] = spec
        self.graph.add_node(spec.name, kind="ecu", spec=spec)
        return spec

    def add_bus(self, spec: BusSpec) -> BusSpec:
        """Register a bus segment."""
        self._check_fresh_name(spec.name)
        self._buses[spec.name] = spec
        self.graph.add_node(spec.name, kind="bus", spec=spec)
        return spec

    def attach(self, ecu_name: str, port: str, bus_name: str) -> None:
        """Connect ECU ``ecu_name``'s ``port`` to bus ``bus_name``.

        The port's declared technology must match the bus technology.
        """
        ecu = self.ecu(ecu_name)
        bus = self.bus(bus_name)
        port_tech = ecu.port_technology(port)
        if port_tech != bus.technology:
            raise ConfigurationError(
                f"cannot attach {ecu_name}.{port} ({port_tech}) "
                f"to {bus_name} ({bus.technology})"
            )
        self.graph.add_edge(ecu_name, bus_name, port=port)

    def _check_fresh_name(self, name: str) -> None:
        if name in self._ecus or name in self._buses:
            raise ConfigurationError(f"duplicate topology element {name!r}")

    # -- queries -------------------------------------------------------------

    def ecu(self, name: str) -> EcuSpec:
        """Look up an ECU spec by name."""
        try:
            return self._ecus[name]
        except KeyError:
            raise ConfigurationError(f"unknown ECU {name!r}") from None

    def bus(self, name: str) -> BusSpec:
        """Look up a bus spec by name."""
        try:
            return self._buses[name]
        except KeyError:
            raise ConfigurationError(f"unknown bus {name!r}") from None

    @property
    def ecus(self) -> List[EcuSpec]:
        """All ECU specs, in insertion order."""
        return list(self._ecus.values())

    @property
    def buses(self) -> List[BusSpec]:
        """All bus specs, in insertion order."""
        return list(self._buses.values())

    def buses_of(self, ecu_name: str) -> List[BusSpec]:
        """Buses directly reachable from ``ecu_name``."""
        self.ecu(ecu_name)
        return [
            self._buses[nbr]
            for nbr in self.graph.neighbors(ecu_name)
            if self.graph.nodes[nbr]["kind"] == "bus"
        ]

    def ecus_on(self, bus_name: str) -> List[EcuSpec]:
        """ECUs attached to ``bus_name``."""
        self.bus(bus_name)
        return [
            self._ecus[nbr]
            for nbr in self.graph.neighbors(bus_name)
            if self.graph.nodes[nbr]["kind"] == "ecu"
        ]

    def gateways(self) -> List[EcuSpec]:
        """ECUs attached to more than one bus (potential gateways)."""
        return [e for e in self.ecus if len(self.buses_of(e.name)) > 1]

    def route(self, src_ecu: str, dst_ecu: str) -> List[str]:
        """Shortest communication path between two ECUs.

        Returns the alternating node list ``[src, bus, (gw, bus)*, dst]``.

        Raises:
            ConfigurationError: if no path exists.
        """
        self.ecu(src_ecu)
        self.ecu(dst_ecu)
        try:
            return nx.shortest_path(self.graph, src_ecu, dst_ecu)
        except nx.NetworkXNoPath:
            raise ConfigurationError(
                f"no communication path from {src_ecu!r} to {dst_ecu!r}"
            ) from None

    def route_buses(self, src_ecu: str, dst_ecu: str) -> List[BusSpec]:
        """The bus segments a message crosses from ``src_ecu`` to ``dst_ecu``."""
        return [
            self._buses[node]
            for node in self.route(src_ecu, dst_ecu)
            if node in self._buses
        ]

    def hop_count(self, src_ecu: str, dst_ecu: str) -> int:
        """Number of bus segments between two ECUs (0 if same ECU)."""
        if src_ecu == dst_ecu:
            return 0
        return len(self.route_buses(src_ecu, dst_ecu))

    def is_fully_connected(self) -> bool:
        """Whether every ECU can reach every other ECU."""
        if not self._ecus:
            return True
        nodes = set(self._ecus) | {
            b for b in self._buses if list(self.graph.neighbors(b))
        }
        sub = self.graph.subgraph(nodes)
        ecu_nodes = list(self._ecus)
        if len(ecu_nodes) == 1:
            return True
        try:
            return all(
                nx.has_path(sub, ecu_nodes[0], other) for other in ecu_nodes[1:]
            )
        except nx.NodeNotFound:
            return False

    def total_cost(self) -> float:
        """Aggregate unit cost of all ECUs (used by F1/consolidation)."""
        return sum(e.unit_cost for e in self.ecus)

    def describe(self) -> str:
        """Human-readable topology summary."""
        lines = [f"Topology {self.name!r}: {len(self._ecus)} ECUs, {len(self._buses)} buses"]
        for bus in self.buses:
            members = ", ".join(e.name for e in self.ecus_on(bus.name))
            lines.append(
                f"  {bus.name} ({bus.technology}, "
                f"{bus.bitrate_bps / 1e6:g} Mbit/s): {members}"
            )
        return "\n".join(lines)
