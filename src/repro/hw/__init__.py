"""Hardware models: ECU specs, buses and vehicle topologies."""

from .catalog import (
    catalog_specs,
    centralized_topology,
    domain_controller,
    federated_topology,
    infotainment_unit,
    legacy_ecu,
    platform_computer,
    weak_ecu,
)
from .ecu import CRYPTO_RATES, CryptoCapability, EcuSpec, EcuState, OsClass
from .topology import BusSpec, Topology

__all__ = [
    "BusSpec",
    "CRYPTO_RATES",
    "CryptoCapability",
    "EcuSpec",
    "EcuState",
    "OsClass",
    "Topology",
    "catalog_specs",
    "centralized_topology",
    "domain_controller",
    "federated_topology",
    "infotainment_unit",
    "legacy_ecu",
    "platform_computer",
    "weak_ecu",
]
