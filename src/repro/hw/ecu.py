"""Electronic Control Unit (ECU) resource models.

An :class:`EcuSpec` is a static description of a control unit's resources —
the attributes the paper's modeling approach says the hardware DSL must
capture (Section 2.2): computational and storage resources, hardware support
for encryption, and the network interfaces connecting it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError


class OsClass(Enum):
    """Operating-system class running on an ECU.

    The paper (Section 1.1) distinguishes RTOSs, required for deterministic
    applications, from general-purpose (POSIX, non-real-time) OSs that may
    only host non-deterministic applications.
    """

    RTOS = "rtos"
    POSIX_RT = "posix_rt"
    POSIX_GP = "posix_gp"
    BARE_METAL = "bare_metal"

    @property
    def supports_deterministic(self) -> bool:
        """Whether deterministic applications may run on this OS class."""
        return self in (OsClass.RTOS, OsClass.POSIX_RT, OsClass.BARE_METAL)

    @property
    def preemption_jitter(self) -> bool:
        """Whether the OS may preempt a running task, introducing
        start-time jitter between co-located tasks.

        Every scheduler-driven class preempts; only bare metal runs each
        activation to completion, so co-location there cannot delay a
        deterministic task's start.
        """
        return self is not OsClass.BARE_METAL


class CryptoCapability(Enum):
    """How fast an ECU can perform cryptographic operations (Section 4.1)."""

    NONE = "none"          # cannot verify signatures at all
    SOFTWARE = "software"  # slow software crypto
    ACCELERATED = "accelerated"  # dedicated crypto hardware


#: Relative crypto throughput per capability class, in bytes/second of
#: signature-verification work.  SOFTWARE on a 200 MHz-class ECU is slow;
#: an accelerator is ~50x faster.  NONE maps to zero (delegation required).
CRYPTO_RATES: Dict[CryptoCapability, float] = {
    CryptoCapability.NONE: 0.0,
    CryptoCapability.SOFTWARE: 200_000.0,
    CryptoCapability.ACCELERATED: 10_000_000.0,
}


@dataclass(frozen=True)
class EcuSpec:
    """Static resource description of an ECU.

    Attributes:
        name: unique identifier within a topology.
        cpu_mhz: clock rate of each core; WCETs in the workload model are
            normalised to a 200 MHz reference core, so a 1000 MHz ECU runs
            a task in 1/5 of its reference WCET.
        cores: number of identical cores.
        memory_kib: RAM available to applications.
        flash_kib: persistent storage for application images.
        has_mmu: whether memory protection between processes is available —
            the paper calls this out as a hardware requirement for freedom
            of interference in memory.
        has_gpu: accelerator availability for neural-network workloads.
        crypto: cryptographic capability class.
        os_class: operating system installed.
        ports: names of network interfaces, mapped to the bus technology
            they attach to ("can", "flexray", "ethernet").
    """

    name: str
    cpu_mhz: float = 200.0
    cores: int = 1
    memory_kib: int = 512
    flash_kib: int = 2048
    has_mmu: bool = False
    has_gpu: bool = False
    crypto: CryptoCapability = CryptoCapability.SOFTWARE
    os_class: OsClass = OsClass.RTOS
    ports: Tuple[Tuple[str, str], ...] = (("can0", "can"),)
    unit_cost: float = 25.0

    def __post_init__(self) -> None:
        if self.cpu_mhz <= 0:
            raise ConfigurationError(f"{self.name}: cpu_mhz must be positive")
        if self.cores < 1:
            raise ConfigurationError(f"{self.name}: cores must be >= 1")
        if self.memory_kib < 0 or self.flash_kib < 0:
            raise ConfigurationError(f"{self.name}: negative memory")
        port_names = [p for p, _t in self.ports]
        if len(port_names) != len(set(port_names)):
            raise ConfigurationError(f"{self.name}: duplicate port names")

    @property
    def speed_factor(self) -> float:
        """Execution-speed multiplier relative to the 200 MHz reference."""
        return self.cpu_mhz / 200.0

    @property
    def crypto_rate(self) -> float:
        """Signature-verification throughput in bytes/second."""
        return CRYPTO_RATES[self.crypto]

    @property
    def total_capacity(self) -> float:
        """Aggregate normalised compute capacity (cores x speed factor)."""
        return self.cores * self.speed_factor

    def port_technology(self, port: str) -> str:
        """Return the bus technology of ``port``.

        Raises:
            ConfigurationError: if the ECU has no such port.
        """
        for name, tech in self.ports:
            if name == port:
                return tech
        raise ConfigurationError(f"{self.name}: unknown port {port!r}")

    def scale_wcet(self, reference_wcet: float) -> float:
        """Convert a reference-core WCET to this ECU's execution time."""
        return reference_wcet / self.speed_factor


@dataclass
class EcuState:
    """Mutable runtime state of an ECU inside a simulation.

    Tracks resource occupancy so that admission control and the monitors can
    observe memory and flash headroom, and whether the unit has failed.
    """

    spec: EcuSpec
    memory_used_kib: float = 0.0
    flash_used_kib: float = 0.0
    failed: bool = False
    failure_time: Optional[float] = None
    labels: Dict[str, str] = field(default_factory=dict)

    @property
    def memory_free_kib(self) -> float:
        return self.spec.memory_kib - self.memory_used_kib

    @property
    def flash_free_kib(self) -> float:
        return self.spec.flash_kib - self.flash_used_kib

    def allocate_memory(self, kib: float) -> None:
        """Reserve RAM; raises if the ECU would be oversubscribed."""
        if kib < 0:
            raise ConfigurationError("cannot allocate negative memory")
        if kib > self.memory_free_kib:
            raise ConfigurationError(
                f"{self.spec.name}: out of memory "
                f"({kib} KiB requested, {self.memory_free_kib} free)"
            )
        self.memory_used_kib += kib

    def free_memory(self, kib: float) -> None:
        """Return RAM previously taken with :meth:`allocate_memory`."""
        self.memory_used_kib = max(0.0, self.memory_used_kib - kib)

    def allocate_flash(self, kib: float) -> None:
        """Reserve flash; raises if the image store would overflow."""
        if kib > self.flash_free_kib:
            raise ConfigurationError(
                f"{self.spec.name}: out of flash "
                f"({kib} KiB requested, {self.flash_free_kib} free)"
            )
        self.flash_used_kib += kib

    def free_flash(self, kib: float) -> None:
        """Return flash previously taken with :meth:`allocate_flash`."""
        self.flash_used_kib = max(0.0, self.flash_used_kib - kib)

    def fail(self, time: float) -> None:
        """Mark the ECU as failed (fault injection)."""
        self.failed = True
        self.failure_time = time

    def recover(self) -> None:
        """Clear the failure flag (repair / restart)."""
        self.failed = False
        self.failure_time = None
