"""Mechanical autofixes for analyzer findings (``--fix``).

The fixer only touches constructs whose repair is *provably* behavior-
preserving-or-better:

* **DET201** — hash-order set iteration: wrap the iterated expression in
  ``sorted(...)`` (for-loops, comprehensions, ``str.join``), or turn
  ``list(s)`` into ``sorted(s)`` directly.  The result iterates the same
  elements in a deterministic order.
* **DET101** — ``name = random.Random(seed)``: rewrite to
  ``name = RngStreams(seed).stream("name")`` (and add the import).
  :meth:`repro.sim.rng.RngStreams.stream` returns a ``random.Random``,
  so every draw made through ``name`` behaves identically — but now the
  stream is named, registered, and snapshot-aware.

Everything else is left to a human: a fix the tool cannot prove is not a
fix, it is a new bug with tooling provenance.  The driver feeds the
fixer only *fresh* findings (after pragmas and baselines), so on a clean
tree ``--fix`` proposes zero edits — CI asserts exactly that.

Proposals are unified diffs by default (dry run); ``apply_fixes``
rewrites files atomically (``tmp -> rename``, same idiom as the
checkpoint store).
"""

from __future__ import annotations

import ast
import difflib
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .detectors import Finding

#: rules the fixer knows how to repair mechanically
FIXABLE_RULES = frozenset({"DET101", "DET201"})


@dataclass(frozen=True)
class Splice:
    """One text replacement: [start, end) byte-offsets into the source."""

    start: int
    end: int
    replacement: str
    description: str


@dataclass
class FileFix:
    """All proposed edits for one file."""

    path: str                 # repo-relative, posix
    absolute: str
    old_source: str
    new_source: str
    descriptions: List[str] = field(default_factory=list)

    def diff(self) -> str:
        return "".join(
            difflib.unified_diff(
                self.old_source.splitlines(keepends=True),
                self.new_source.splitlines(keepends=True),
                fromfile=f"a/{self.path}",
                tofile=f"b/{self.path}",
            )
        )


def _line_offsets(source: str) -> List[int]:
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _offset(offsets: List[int], line: int, col: int) -> int:
    return offsets[line - 1] + col


def _span(node: ast.AST, offsets: List[int]) -> Optional[Tuple[int, int]]:
    end_line = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_line is None or end_col is None:
        return None
    return (
        _offset(offsets, node.lineno, node.col_offset),
        _offset(offsets, end_line, end_col),
    )


class _FixPlanner(ast.NodeVisitor):
    """Collect splices for the fixable findings of one module."""

    def __init__(self, source: str, targets: Dict[Tuple[int, int], Finding]) -> None:
        self.source = source
        self.offsets = _line_offsets(source)
        self.targets = dict(targets)
        self.splices: List[Splice] = []
        self.needs_rng_import = False

    # -- helpers ---------------------------------------------------------

    def _claim(self, node: ast.AST, rule: str) -> Optional[Finding]:
        key = (getattr(node, "lineno", -1), getattr(node, "col_offset", -1))
        finding = self.targets.get(key)
        if finding is not None and finding.rule == rule:
            del self.targets[key]
            return finding
        return None

    def _wrap_sorted(self, node: ast.AST, what: str) -> bool:
        span = _span(node, self.offsets)
        if span is None:
            return False
        start, end = span
        text = self.source[start:end]
        self.splices.append(
            Splice(start, end, f"sorted({text})", f"wrap {what} in sorted()")
        )
        return True

    # -- DET201 sites ----------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if self._claim(node.iter, "DET201"):
            self._wrap_sorted(node.iter, "for-loop iterable")
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for comp in node.generators:
            if self._claim(comp.iter, "DET201"):
                self._wrap_sorted(comp.iter, "comprehension iterable")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "list" \
                and len(node.args) == 1 and not node.keywords:
            if self._claim(node, "DET201"):
                span = _span(func, self.offsets)
                if span is not None:
                    self.splices.append(
                        Splice(span[0], span[1], "sorted",
                               "list(set) -> sorted(set)")
                    )
        elif isinstance(func, ast.Name) and func.id == "tuple" \
                and len(node.args) == 1 and not node.keywords:
            if self._claim(node, "DET201"):
                self._wrap_sorted(node.args[0], "tuple() argument")
        elif isinstance(func, ast.Attribute) and func.attr == "join" \
                and len(node.args) == 1:
            if self._claim(node, "DET201"):
                self._wrap_sorted(node.args[0], "join() argument")
        self.generic_visit(node)

    # -- DET101: name = random.Random(seed) ------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "Random"
            and isinstance(value.func.value, ast.Name)
            and value.func.value.id == "random"
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and len(value.args) == 1
            and not value.keywords
        ):
            finding = self._claim(value.func, "DET101")
            if finding is not None:
                span = _span(value, self.offsets)
                seed_span = _span(value.args[0], self.offsets)
                if span is not None and seed_span is not None:
                    name = node.targets[0].id
                    seed = self.source[seed_span[0]:seed_span[1]]
                    self.splices.append(
                        Splice(
                            span[0], span[1],
                            f'RngStreams({seed}).stream("{name}")',
                            "random.Random -> named RngStreams stream",
                        )
                    )
                    self.needs_rng_import = True
        self.generic_visit(node)


_RNG_IMPORT = "from repro.sim.rng import RngStreams"


def _has_rng_import(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and \
                node.module.endswith("sim.rng"):
            if any(alias.name == "RngStreams" for alias in node.names):
                return True
    return False


def _import_insert_offset(tree: ast.AST, offsets: List[int]) -> int:
    """Offset just after the last top-level import (or the docstring)."""
    last_line = 0
    body = getattr(tree, "body", [])
    for stmt in body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            last_line = getattr(stmt, "end_lineno", stmt.lineno)
    if last_line == 0 and body:
        first = body[0]
        if isinstance(first, ast.Expr) and isinstance(
            first.value, ast.Constant
        ) and isinstance(first.value.value, str):
            last_line = getattr(first, "end_lineno", first.lineno)
    return offsets[last_line] if last_line < len(offsets) else offsets[-1]


def _apply_splices(source: str, splices: Sequence[Splice]) -> str:
    ordered = sorted(splices, key=lambda s: s.start, reverse=True)
    out = source
    last_start: Optional[int] = None
    for splice in ordered:
        if last_start is not None and splice.end > last_start:
            continue  # overlapping proposal: keep the later one only
        out = out[:splice.start] + splice.replacement + out[splice.end:]
        last_start = splice.start
    return out


def propose_fixes(
    findings: Iterable[Finding], root: str
) -> List[FileFix]:
    """Plan mechanical fixes for ``findings``; returns one entry per
    file that has at least one applicable edit, sorted by path."""
    by_path: Dict[str, Dict[Tuple[int, int], Finding]] = {}
    for finding in findings:
        if finding.rule in FIXABLE_RULES:
            by_path.setdefault(finding.path, {})[
                (finding.line, finding.col)
            ] = finding

    fixes: List[FileFix] = []
    for path in sorted(by_path):
        absolute = os.path.join(root, path.replace("/", os.sep))
        try:
            with open(absolute, "r", encoding="utf-8") as fh:
                source = fh.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError):
            continue
        planner = _FixPlanner(source, by_path[path])
        planner.visit(tree)
        if not planner.splices:
            continue
        splices = list(planner.splices)
        if planner.needs_rng_import and not _has_rng_import(tree):
            at = _import_insert_offset(tree, planner.offsets)
            splices.append(
                Splice(at, at, _RNG_IMPORT + "\n", "add RngStreams import")
            )
        new_source = _apply_splices(source, splices)
        if new_source == source:
            continue
        fixes.append(
            FileFix(
                path=path,
                absolute=absolute,
                old_source=source,
                new_source=new_source,
                descriptions=[s.description for s in planner.splices],
            )
        )
    return fixes


def render_diffs(fixes: Sequence[FileFix]) -> str:
    return "".join(fix.diff() for fix in fixes)


def apply_fixes(fixes: Sequence[FileFix]) -> int:
    """Write every fix atomically; returns the number of files changed."""
    changed = 0
    for fix in fixes:
        directory = os.path.dirname(fix.absolute) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(fix.new_source)
            os.replace(tmp, fix.absolute)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        changed += 1
    return changed
