"""Fork/pickle-safety pass (``PICK5xx``).

Three subsystems move Python objects across serialization boundaries:

* the **worker pipe** — :class:`repro.jobs.SimJob`/``FunctionJob``
  payloads and the ``run_jobs(context=...)`` shared context are pickled
  into worker processes (``repro.exec.pool``);
* the **snapshot boundary** — ``sim.snapshot()``/``sim.fork()`` pickle
  everything reachable from the kernel, including ``sim.share(...)``
  roots and every scheduled callback (``repro.sim.snapshot``);
* the **checkpoint boundary** — ``CheckpointStore`` pickles the campaign
  plan and shard payloads to disk (``repro.exec.recovery``).

An unpicklable object reaching any of them fails at run time deep inside
a worker, long after the line that created the hazard.  This pass finds
those lines statically, with an intra-module dataflow over local
bindings, and names the boundary each capture would cross:

========  ==============================================================
PICK501   lambda / locally-defined function crosses a boundary
PICK502   locally-defined class (instance or bound method) crosses a
          boundary
PICK503   OS-backed resource (open file, lock, pipe/connection, socket,
          subprocess, generator) crosses a boundary
PICK511   closure scheduled as a simulator callback — unpicklable the
          moment that world is snapshotted or forked
========  ==============================================================

The dataflow is deliberately intra-procedural and first-order: a tainted
value must flow through local names into a boundary call within one
module.  That keeps the pass fast and nearly false-positive-free — the
same trade the DET201 set-dataflow made in PR 5.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from .detectors import Finding, Rule, SEVERITY_ERROR, SEVERITY_WARNING

PICKLE_RULES: Dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule(
            "PICK501",
            "lambda or local function crosses a serialization boundary",
            SEVERITY_ERROR,
            "move it to a module-level function so it pickles by "
            "reference",
        ),
        Rule(
            "PICK502",
            "locally-defined class crosses a serialization boundary",
            SEVERITY_ERROR,
            "define the class at module level so instances pickle by "
            "reference to an importable type",
        ),
        Rule(
            "PICK503",
            "OS resource crosses a serialization boundary",
            SEVERITY_ERROR,
            "ship the recipe, not the resource: pass a path/spec and "
            "open the file/lock/connection on the worker side",
        ),
        Rule(
            "PICK511",
            "closure scheduled as a simulator callback",
            SEVERITY_WARNING,
            "schedule a bound method or functools.partial instead; "
            "closures make the world unsnapshottable (deep-copy-atomic "
            "cells are shared between forks)",
        ),
    )
}

#: taint kinds flowing through local names
_LAMBDA = "lambda"
_LOCAL_FUNC = "local function"
_LOCAL_CLASS = "local class"
_LOCAL_INSTANCE = "instance of local class"
_GENERATOR = "generator"

#: (module, callable) -> resource description for PICK503
_RESOURCE_CALLS: Dict[Tuple[str, str], str] = {
    ("builtins", "open"): "open file handle",
    ("io", "open"): "open file handle",
    ("threading", "Lock"): "thread lock",
    ("threading", "RLock"): "thread lock",
    ("threading", "Condition"): "thread condition",
    ("threading", "Semaphore"): "thread semaphore",
    ("threading", "BoundedSemaphore"): "thread semaphore",
    ("threading", "Event"): "thread event",
    ("threading", "Barrier"): "thread barrier",
    ("threading", "local"): "thread-local storage",
    ("multiprocessing", "Pipe"): "multiprocessing pipe",
    ("multiprocessing", "Queue"): "multiprocessing queue",
    ("multiprocessing", "SimpleQueue"): "multiprocessing queue",
    ("multiprocessing", "Lock"): "multiprocessing lock",
    ("multiprocessing", "Semaphore"): "multiprocessing semaphore",
    ("multiprocessing", "Event"): "multiprocessing event",
    ("socket", "socket"): "socket",
    ("socket", "create_connection"): "socket",
    ("sqlite3", "connect"): "database connection",
    ("subprocess", "Popen"): "subprocess handle",
}

#: call names whose ``context=`` keyword ships to every worker
_CONTEXT_SINKS = frozenset(
    {"run_jobs", "run", "run_all", "run_jobs_checkpointed"}
)

#: scheduling methods whose callback becomes snapshot-reachable
_SCHEDULE_METHODS = frozenset({"schedule", "post", "at"})

#: base-class names marking a picklable job spec
_JOB_BASES = frozenset({"SimJob", "FunctionJob"})

BOUNDARY_WORKER_PAYLOAD = "the worker pipe (FunctionJob payload)"
BOUNDARY_WORKER_CONTEXT = "the worker pipe (run_jobs shared context)"
BOUNDARY_JOB_SPEC = "the worker pipe (job spec attribute)"
BOUNDARY_SNAPSHOT_SHARE = "the snapshot boundary (sim.share root)"
BOUNDARY_SNAPSHOT_CALLBACK = "the snapshot boundary (scheduled callback)"
BOUNDARY_CHECKPOINT = "the checkpoint boundary (CheckpointStore plan)"


class _PickleVisitor(ast.NodeVisitor):
    """One-module dataflow from unpicklable producers to boundaries."""

    def __init__(self, path: str, source_lines: List[str],
                 snapshot_used: bool = True) -> None:
        self.path = path
        self.lines = source_lines
        #: module exercises the snapshot boundary — PICK511 only applies
        #: to callbacks that can actually be reached by a snapshot/fork
        self.snapshot_used = snapshot_used
        self.findings: List[Finding] = []
        self._modules: Dict[str, str] = {}
        self._from: Dict[str, Tuple[str, str]] = {}
        #: lexical scopes: local name -> taint kind (None = clean)
        self._scopes: List[Dict[str, Optional[str]]] = [{}]
        #: names of functions defined at *local* scope that are generators
        self._depth = 0
        #: class-body nesting: name of innermost class + whether it is a
        #: job spec (derives from SimJob/FunctionJob)
        self._class_stack: List[Tuple[str, bool]] = []
        #: True while visiting direct children of a class body, so a
        #: method is distinguishable from a function nested in a function
        self._direct_class_child = False
        self._stmt_end = 0

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.stmt):
            self._stmt_end = (
                getattr(node, "end_lineno", None)
                or getattr(node, "lineno", 0)
            )
        super().visit(node)

    # -- bookkeeping -----------------------------------------------------

    def _line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def _report(self, rule_id: str, node: ast.AST, message: str) -> None:
        rule = PICKLE_RULES[rule_id]
        line = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                rule=rule_id,
                severity=rule.severity,
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                message=message,
                hint=rule.hint,
                text=self._line_text(line),
                end_line=max(
                    getattr(node, "end_lineno", None) or line,
                    self._stmt_end,
                ),
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._modules[alias.asname or alias.name.split(".")[0]] = (
                alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            self._from[alias.asname or alias.name] = (module, alias.name)
        self.generic_visit(node)

    # -- taint sources ---------------------------------------------------

    def _lookup(self, name: str) -> Optional[str]:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    def _bind(self, target: ast.AST, taint: Optional[str]) -> None:
        if isinstance(target, ast.Name):
            self._scopes[-1][target.id] = taint

    def _resource_kind(self, node: ast.Call) -> Optional[str]:
        """Resource description when ``node`` constructs one."""
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return _RESOURCE_CALLS[("builtins", "open")]
            bound = self._from.get(func.id)
            if bound is not None:
                return _RESOURCE_CALLS.get((bound[0], bound[1]))
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            module = self._modules.get(func.value.id)
            if module is not None:
                return _RESOURCE_CALLS.get((module, func.attr))
        return None

    def _taint_of(self, node: ast.AST) -> Optional[str]:
        """Taint kind of an expression, or None when it looks picklable."""
        if isinstance(node, ast.Lambda):
            return _LAMBDA
        if isinstance(node, ast.GeneratorExp):
            return _GENERATOR
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if isinstance(node, ast.Call):
            resource = self._resource_kind(node)
            if resource is not None:
                return resource
            if isinstance(node.func, ast.Name):
                taint = self._lookup(node.func.id)
                if taint == _LOCAL_CLASS:
                    return _LOCAL_INSTANCE
                if taint == _LOCAL_FUNC and self._lookup(
                    f"{node.func.id}\0generator"
                ):
                    return _GENERATOR
            return None
        if isinstance(node, ast.Attribute):
            # a bound method / attribute of a tainted object is tainted
            if isinstance(node.value, ast.Name):
                return self._lookup(node.value.id)
            return None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                taint = self._taint_of(element)
                if taint is not None:
                    return taint
            return None
        if isinstance(node, ast.Dict):
            for value in list(node.keys) + list(node.values):
                if value is not None:
                    taint = self._taint_of(value)
                    if taint is not None:
                        return taint
            return None
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        taint = self._taint_of(node.value)
        for target in node.targets:
            self._bind(target, taint)
            if isinstance(target, ast.Tuple):
                # open() in tuple unpacking: conn, _ = Pipe()
                for element in target.elts:
                    self._bind(element, taint)
        self._check_spec_store(node, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if node.value is not None:
            self._bind(node.target, self._taint_of(node.value))
            self._check_spec_store(node, node.value)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            taint = self._taint_of(item.context_expr)
            if item.optional_vars is not None:
                self._bind(item.optional_vars, taint)
        self.generic_visit(node)

    # -- local definitions -----------------------------------------------

    def _visit_function(self, node) -> None:
        if self._depth > 0 and not self._direct_class_child:
            self._scopes[-1][node.name] = _LOCAL_FUNC
            if any(
                isinstance(sub, (ast.Yield, ast.YieldFrom))
                for sub in ast.walk(node)
            ):
                # side table: calling this local function makes a generator
                self._scopes[-1][f"{node.name}\0generator"] = _GENERATOR
        self._depth += 1
        self._scopes.append({})
        was_class_child, self._direct_class_child = (
            self._direct_class_child, False,
        )
        self.generic_visit(node)
        self._direct_class_child = was_class_child
        self._scopes.pop()
        self._depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _is_job_base(self, base: ast.AST) -> bool:
        if isinstance(base, ast.Name):
            return base.id in _JOB_BASES
        return isinstance(base, ast.Attribute) and base.attr in _JOB_BASES

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._depth > 0:
            self._scopes[-1][node.name] = _LOCAL_CLASS
        is_job = any(self._is_job_base(base) for base in node.bases)
        self._class_stack.append((node.name, is_job))
        self._scopes.append({})
        was_class_child, self._direct_class_child = (
            self._direct_class_child, True,
        )
        self.generic_visit(node)
        self._direct_class_child = was_class_child
        self._scopes.pop()
        self._class_stack.pop()

    # -- boundaries ------------------------------------------------------

    def _in_job_spec(self) -> bool:
        return bool(self._class_stack) and self._class_stack[-1][1]

    def _enclosing_job_spec(self) -> Optional[str]:
        for name, is_job in reversed(self._class_stack):
            if is_job:
                return name
        return None

    def _rule_for(self, taint: str) -> str:
        if taint in (_LAMBDA, _LOCAL_FUNC):
            return "PICK501"
        if taint in (_LOCAL_CLASS, _LOCAL_INSTANCE):
            return "PICK502"
        return "PICK503"

    def _flag(self, node: ast.AST, taint: str, boundary: str,
              what: str) -> None:
        self._report(
            self._rule_for(taint), node,
            f"{taint} {what} would cross {boundary}",
        )

    def _check_spec_store(self, stmt: ast.stmt, value: ast.AST) -> None:
        """``self.attr = <tainted>`` inside a SimJob subclass method."""
        spec = self._enclosing_job_spec()
        if spec is None:
            return
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                taint = self._taint_of(value)
                if taint is not None:
                    self._flag(
                        stmt, taint, BOUNDARY_JOB_SPEC,
                        f"stored on job spec {spec!r} as "
                        f"self.{target.attr}",
                    )
                return

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr

        if name == "FunctionJob":
            for arg in node.args[1:]:
                taint = self._taint_of(arg)
                if taint is not None:
                    self._flag(arg, taint, BOUNDARY_WORKER_PAYLOAD,
                               "in a FunctionJob payload")
            for keyword in node.keywords:
                if keyword.value is not None:
                    taint = self._taint_of(keyword.value)
                    if taint is not None:
                        self._flag(keyword.value, taint,
                                   BOUNDARY_WORKER_PAYLOAD,
                                   "in a FunctionJob payload")
        elif name in _CONTEXT_SINKS:
            for keyword in node.keywords:
                if keyword.arg == "context":
                    taint = self._taint_of(keyword.value)
                    if taint is not None:
                        self._flag(keyword.value, taint,
                                   BOUNDARY_WORKER_CONTEXT,
                                   "as the shared context")
        elif name == "share" and isinstance(func, ast.Attribute):
            for arg in node.args:
                taint = self._taint_of(arg)
                if taint is not None:
                    self._flag(arg, taint, BOUNDARY_SNAPSHOT_SHARE,
                               "declared as shared immutable structure")
        elif name == "CheckpointStore":
            for arg in list(node.args) + [
                k.value for k in node.keywords if k.value is not None
            ]:
                taint = self._taint_of(arg)
                if taint is not None:
                    self._flag(arg, taint, BOUNDARY_CHECKPOINT,
                               "in the checkpoint manifest")
        elif (
            name in _SCHEDULE_METHODS
            and isinstance(func, ast.Attribute)
            and len(node.args) >= 2
        ):
            callback = node.args[1]
            taint = self._taint_of(callback)
            if not self.snapshot_used:
                pass  # world is never snapshotted: no boundary to cross
            elif isinstance(callback, ast.Lambda) or taint in (
                _LAMBDA, _LOCAL_FUNC,
            ):
                rule = PICKLE_RULES["PICK511"]
                line = getattr(callback, "lineno", 1)
                self.findings.append(
                    Finding(
                        rule="PICK511",
                        severity=rule.severity,
                        path=self.path,
                        line=line,
                        col=getattr(callback, "col_offset", 0),
                        message=(
                            "closure scheduled as a simulator callback "
                            f"becomes part of {BOUNDARY_SNAPSHOT_CALLBACK}"
                        ),
                        hint=rule.hint,
                        text=self._line_text(line),
                        end_line=max(
                            getattr(node, "end_lineno", None) or line,
                            self._stmt_end,
                        ),
                    )
                )
            elif taint is not None:
                self._flag(callback, taint, BOUNDARY_SNAPSHOT_CALLBACK,
                           "scheduled as a simulator callback")
        self.generic_visit(node)


def _uses_snapshot_boundary(tree: ast.AST) -> bool:
    """True when the module snapshots/forks a world (or imports the
    snapshot machinery), i.e. its scheduled callbacks are actually
    pickle-reachable."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "snapshot", "fork", "restore",
            ):
                return True
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            module = getattr(node, "module", None) or ""
            names = ".".join(
                [module] + [alias.name for alias in node.names]
            )
            if "snapshot" in names:
                return True
    return False


def check_pickle_safety(
    tree: ast.AST, path: str, source_lines: List[str]
) -> List[Finding]:
    """Run the fork/pickle-safety pass over one parsed module."""
    visitor = _PickleVisitor(
        path, source_lines, snapshot_used=_uses_snapshot_boundary(tree)
    )
    visitor.visit(tree)
    visitor.findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return visitor.findings
