"""Module and import-graph extraction for the whole-program passes.

The architecture pass (:mod:`repro.analysis.arch`) reasons about three
different kinds of import edge, because each has different layering
semantics:

* **top-level** — a module-scope ``import``/``from``: a hard, load-time
  dependency.  These are the edges that must respect the declared layer
  DAG and must never form cycles.
* **lazy** — an import inside a function or method body: a run-time
  upward call.  The repo uses these deliberately at a handful of
  dispatch points (e.g. ``resume_campaign`` re-entering the subsystem
  that wrote a checkpoint), so they are reported at a lower severity
  and suppressed in place with a pragma carrying the rationale.
* **TYPE_CHECKING** — inside an ``if TYPE_CHECKING:`` block: erased at
  run time, invisible to layering entirely.

Everything in this module is purely syntactic — no imports are executed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class ImportEdge:
    """One import statement naming one target module."""

    target: str
    line: int
    col: int
    #: inside a function/method body (run-time upward call)
    lazy: bool = False
    #: inside an ``if TYPE_CHECKING:`` block (erased at run time)
    type_checking: bool = False
    #: ``from pkg import name`` — ``name`` may be a submodule or a mere
    #: attribute; the graph resolves it against scanned modules, and the
    #: layer check treats it conservatively
    maybe_attribute: bool = False
    #: stripped source text of the import line (baseline fingerprints)
    text: str = ""


@dataclass
class ModuleInfo:
    """One scanned source file as a node of the module graph."""

    path: str
    module: str
    edges: List[ImportEdge] = field(default_factory=list)

    def package(self, root: str) -> Optional[str]:
        """Top-level package under ``root`` ("repro.core.x" -> "core").

        Returns ``None`` for modules outside the root package (tests,
        benchmarks) and ``""`` for the root package itself.
        """
        parts = self.module.split(".")
        if parts[0] != root:
            return None
        if len(parts) == 1:
            return ""
        return parts[1]


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a repo-relative posix path.

    Source roots are stripped (``src/repro/sim/kernel.py`` →
    ``repro.sim.kernel``); ``__init__.py`` names its package.
    """
    name = rel_path
    if name.startswith("src/"):
        name = name[len("src/"):]
    if name.endswith(".py"):
        name = name[:-3]
    if name.endswith("/__init__"):
        name = name[: -len("/__init__")]
    return name.replace("/", ".")


def _is_type_checking_test(test: ast.AST) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


class _ImportCollector(ast.NodeVisitor):
    """Walk one module AST recording every import edge."""

    def __init__(self, module: str, is_package: bool,
                 source_lines: Sequence[str]) -> None:
        self._module = module
        self._is_package = is_package
        self._lines = source_lines
        self._depth = 0
        self._type_checking = 0
        self.edges: List[ImportEdge] = []

    def _text(self, line: int) -> str:
        if 1 <= line <= len(self._lines):
            return self._lines[line - 1].strip()
        return ""

    def _add(self, target: str, node: ast.AST,
             maybe_attribute: bool = False) -> None:
        line = getattr(node, "lineno", 1)
        self.edges.append(
            ImportEdge(
                target=target,
                line=line,
                col=getattr(node, "col_offset", 0),
                lazy=self._depth > 0,
                type_checking=self._type_checking > 0,
                maybe_attribute=maybe_attribute,
                text=self._text(line),
            )
        )

    def _resolve_relative(self, level: int, module: Optional[str]) -> Optional[str]:
        # the package context a relative import resolves against
        parts = self._module.split(".")
        if not self._is_package:
            parts = parts[:-1]
        if level - 1 > len(parts):
            return None
        if level > 1:
            parts = parts[: len(parts) - (level - 1)]
        if module:
            parts = parts + module.split(".")
        return ".".join(parts) if parts else None

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._add(alias.name, node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0:
            base = node.module or ""
        else:
            base = self._resolve_relative(node.level, node.module)
            if base is None:
                return
        if node.module is None and node.level:
            # `from . import x, y` — each name is itself a module
            for alias in node.names:
                self._add(f"{base}.{alias.name}" if base else alias.name, node)
            return
        self._add(base, node)
        # `from pkg import name`: name may be a submodule (a real import
        # of pkg.name) or an attribute — record candidates, resolved
        # against the scanned module set / declared contract downstream
        for alias in node.names:
            if alias.name != "*":
                self._add(f"{base}.{alias.name}" if base else alias.name,
                          node, maybe_attribute=True)

    def _enter_body(self, node) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_FunctionDef = _enter_body
    visit_AsyncFunctionDef = _enter_body
    visit_Lambda = _enter_body

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test):
            self._type_checking += 1
            for stmt in node.body:
                self.visit(stmt)
            self._type_checking -= 1
            for stmt in node.orelse:
                self.visit(stmt)
            return
        self.generic_visit(node)


def collect_imports(
    tree: ast.AST, rel_path: str, source_lines: Sequence[str]
) -> ModuleInfo:
    """Extract every import edge of one parsed module."""
    module = module_name_for(rel_path)
    collector = _ImportCollector(
        module, rel_path.endswith("__init__.py"), source_lines
    )
    collector.visit(tree)
    return ModuleInfo(path=rel_path, module=module, edges=collector.edges)


# -- whole-program graph -------------------------------------------------


class ModuleGraph:
    """Import graph over a set of scanned modules.

    Edges are resolved against the scanned module set: ``from repro.exec
    import jobs`` records ``repro.exec`` *and* — when ``repro.exec.jobs``
    is a scanned module — the submodule, so layering sees through
    package-attribute imports.
    """

    def __init__(self, infos: Iterable[ModuleInfo]) -> None:
        self.infos: List[ModuleInfo] = sorted(infos, key=lambda i: i.path)
        self.by_module: Dict[str, ModuleInfo] = {
            info.module: info for info in self.infos
        }

    def resolve(self, edge: ImportEdge) -> List[str]:
        """Scanned modules an edge may load (nearest enclosing included)."""
        out = []
        target = edge.target
        if target in self.by_module:
            out.append(target)
        # importing repro.core.campaign also loads repro.core and repro
        parts = target.split(".")
        for i in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:i])
            if prefix in self.by_module:
                out.append(prefix)
        return out

    def adjacency(
        self, *, include_lazy: bool = False
    ) -> Dict[str, Set[str]]:
        """module -> imported scanned modules (type-checking edges never
        count; lazy edges only when asked for)."""
        adj: Dict[str, Set[str]] = {info.module: set() for info in self.infos}
        for info in self.infos:
            for edge in info.edges:
                if edge.type_checking:
                    continue
                if edge.lazy and not include_lazy:
                    continue
                for target in self.resolve(edge):
                    if target == info.module:
                        continue
                    if info.module.startswith(target + "."):
                        # importing a sibling implies this module's own
                        # ancestor package — the facade pattern, safe
                        # under partial initialization, not a cycle edge
                        continue
                    adj[info.module].add(target)
        return adj

    def cycles(self) -> List[List[str]]:
        """Strongly connected components of size > 1 in the **top-level**
        import graph, each sorted and the list sorted — deterministic
        output for stable reports."""
        adj = self.adjacency(include_lazy=False)
        order: List[str] = []
        seen: Set[str] = set()
        # iterative Kosaraju: first pass, finish order
        for start in sorted(adj):
            if start in seen:
                continue
            stack: List[Tuple[str, Iterable]] = [(start, iter(sorted(adj[start])))]
            seen.add(start)
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, iter(sorted(adj[nxt]))))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()
        # reversed graph, second pass
        radj: Dict[str, Set[str]] = {m: set() for m in adj}
        for src, targets in adj.items():
            for dst in targets:
                radj[dst].add(src)
        assigned: Set[str] = set()
        components: List[List[str]] = []
        for start in reversed(order):
            if start in assigned:
                continue
            component = []
            stack2 = [start]
            assigned.add(start)
            while stack2:
                node = stack2.pop()
                component.append(node)
                for nxt in sorted(radj[node]):
                    if nxt not in assigned:
                        assigned.add(nxt)
                        stack2.append(nxt)
            if len(component) > 1:
                components.append(sorted(component))
        components.sort()
        return components
