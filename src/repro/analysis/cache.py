"""Incremental analysis cache (content-addressed, byte-identical).

Every per-file analysis product — findings of each pass, pragma
suppressions, import edges — is a pure function of

* the file's repo-relative path and exact byte content, and
* the analyzer version (rule catalogue + layer-contract fingerprint).

So one cache key covers it all::

    key = sha256(version_salt || rel_path || "\\0" || content_bytes)

and a warm run replays stored results without parsing a single AST.
Whole-program products (import cycles) are *recomputed* each run from
the cached per-file import lists — graph reduction is microseconds; the
expensive part is the per-file parse + visit this cache elides.

Correctness guarantees:

* **byte-identical reports** — entries store fully rendered finding
  dicts (including line/col/text), so a hot report equals a cold one
  byte for byte; the golden cache tests assert exactly this.
* **edit safety** — any content change changes the key; any detector or
  contract change changes the salt; stale entries are simply never
  addressed again (and are cheap to ``prune``).
* **crash safety** — entries are written ``tmp -> rename`` (the same
  atomic idiom as the campaign checkpoints); a torn entry fails JSON
  parsing and is treated as a miss, never trusted.

Entries live under ``.repro-analysis-cache/<salt>/<key[:2]>/<key>.json``
(gitignored).  The directory is safe to delete at any time.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

#: bump on any change to detectors, passes, finding schema or cache
#: layout — it invalidates every existing entry at once
CACHE_VERSION = "3"


def version_salt(*components: str) -> str:
    """Short stable salt folding ``CACHE_VERSION`` and extra config
    (rule catalogue fingerprint, layer-contract fingerprint, pass set)."""
    payload = "\0".join((CACHE_VERSION,) + components)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class AnalysisCache:
    """Content-addressed store of per-file analysis results."""

    def __init__(self, directory: str, salt: str) -> None:
        self.directory = directory
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keys ------------------------------------------------------------

    def key(self, rel_path: str, content: bytes) -> str:
        hasher = hashlib.sha256()
        hasher.update(self.salt.encode("ascii"))
        hasher.update(rel_path.encode("utf-8"))
        hasher.update(b"\0")
        hasher.update(content)
        return hasher.hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, self.salt, key[:2], f"{key}.json")

    # -- entries ---------------------------------------------------------

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """Stored entry for ``key``, or None (miss / torn / unreadable)."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(entry, dict):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(self, key: str, entry: Dict[str, Any]) -> None:
        """Atomically persist ``entry`` (best-effort: a read-only cache
        directory disables caching rather than failing the analysis)."""
        path = self._path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(entry, fh, sort_keys=True)
                os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
            self.stores += 1
        except OSError:
            pass

    def prune(self) -> int:
        """Delete entries written under other salts; returns the count.

        Run opportunistically by the CLI so stale generations don't
        accumulate after detector upgrades.
        """
        removed = 0
        try:
            generations = os.listdir(self.directory)
        except OSError:
            return 0
        for generation in generations:
            if generation == self.salt:
                continue
            gen_dir = os.path.join(self.directory, generation)
            for dirpath, _dirnames, filenames in os.walk(
                gen_dir, topdown=False
            ):
                for name in filenames:
                    try:
                        os.unlink(os.path.join(dirpath, name))
                        removed += 1
                    except OSError:
                        pass
                try:
                    os.rmdir(dirpath)
                except OSError:
                    pass
        return removed
