"""Static same-instant race pass (``RACE7xx``).

The runtime :class:`~repro.analysis.sanitizer.KernelSanitizer` reports
same-instant races it *observes* — two callbacks at one ``(time,
priority)`` mutating the same state — but only on interleavings a seed
happens to exercise.  This pass finds the schedule-site pairs that
*could* collide, with zero execution:

========  ==============================================================
RACE701   two same-instant schedule sites whose callbacks both write
          the same attribute — last-writer-wins by insertion order only
RACE702   two same-instant schedule sites where one callback writes an
          attribute the other reads — the read's value depends on
          registration order
========  ==============================================================

Scope and precision: sites are paired only when they appear in the
**same class**, use the same scheduling method kind with an identical
**constant** delay/time and identical priority expression, and both
callbacks are ``self.<method>`` references resolvable in that class.
Attribute write/read sets are the ``self.<attr>`` accesses of each
method body.  These constraints trade recall for a near-zero false
positive rate: everything reported is a pair the kernel really would
run back-to-back at one instant, ordered only by registration order.
Both rules are warnings — the kernel's ``(priority, insertion)`` tie
order is deterministic, so these are order-*fragility* hazards (the
order silently flips when an unrelated refactor reorders the two
``schedule`` calls), not nondeterminism.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .detectors import Finding, Rule, SEVERITY_WARNING

RACE_RULES: Dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule(
            "RACE701",
            "same-instant callbacks write the same attribute",
            SEVERITY_WARNING,
            "give the two sites distinct priorities (or fold both "
            "writes into one callback) so the outcome is declared, "
            "not an accident of registration order",
        ),
        Rule(
            "RACE702",
            "same-instant callback reads what its peer writes",
            SEVERITY_WARNING,
            "order the pair explicitly with distinct priorities so the "
            "read/write order is part of the design",
        ),
    )
}

_SCHEDULE_METHODS = frozenset({"schedule", "post", "at"})


@dataclass(frozen=True)
class ScheduleSite:
    """One ``.schedule/.post/.at`` call with a resolvable instant."""

    method: str          # scheduling call kind
    when: float          # the constant delay / absolute time
    priority: str        # stable repr of the priority expression
    callback: str        # self.<method> name
    line: int
    col: int
    end_line: int
    text: str


def _priority_key(node: Optional[ast.AST]) -> Optional[str]:
    """Stable string for a priority expression (None = default)."""
    if node is None:
        return "<default>"
    if isinstance(node, ast.Constant):
        return repr(node.value)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        parts = [node.attr]
        value = node.value
        while isinstance(value, ast.Attribute):
            parts.append(value.attr)
            value = value.value
        if isinstance(value, ast.Name):
            parts.append(value.id)
            return ".".join(reversed(parts))
    return None  # dynamic priority: cannot compare instants


class _ClassCollector(ast.NodeVisitor):
    """Per-class schedule sites + per-method self-attribute access sets."""

    def __init__(self, source_lines: List[str]) -> None:
        self.lines = source_lines
        self.sites: Dict[str, List[Tuple[str, ScheduleSite]]] = {}
        self.writes: Dict[Tuple[str, str], Set[str]] = {}
        self.reads: Dict[Tuple[str, str], Set[str]] = {}
        self.class_lines: Dict[str, int] = {}
        self._class: Optional[str] = None
        self._method: Optional[str] = None

    def _text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        prev, self._class = self._class, node.name
        self.class_lines.setdefault(node.name, node.lineno)
        self.generic_visit(node)
        self._class = prev

    def _visit_method(self, node) -> None:
        if self._class is None:
            self.generic_visit(node)
            return
        prev, self._method = self._method, node.name
        key = (self._class, node.name)
        self.writes.setdefault(key, set())
        self.reads.setdefault(key, set())
        self.generic_visit(node)
        self._method = prev

    visit_FunctionDef = _visit_method
    visit_AsyncFunctionDef = _visit_method

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            self._class is not None
            and self._method is not None
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            key = (self._class, self._method)
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                self.writes[key].add(node.attr)
            else:
                self.reads[key].add(node.attr)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # self.buf[k] = v mutates self.buf: count as a write to the attr
        if (
            isinstance(node.ctx, (ast.Store, ast.Del))
            and self._class is not None
            and self._method is not None
            and isinstance(node.value, ast.Attribute)
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id == "self"
        ):
            self.writes[(self._class, self._method)].add(node.value.attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            self._class is not None
            and self._method is not None
            and isinstance(func, ast.Attribute)
            and func.attr in _SCHEDULE_METHODS
            and len(node.args) >= 2
        ):
            when = node.args[0]
            callback = node.args[1]
            priority = _priority_key(
                next(
                    (k.value for k in node.keywords if k.arg == "priority"),
                    None,
                )
            )
            if (
                isinstance(when, ast.Constant)
                and isinstance(when.value, (int, float))
                and not isinstance(when.value, bool)
                and priority is not None
                and isinstance(callback, ast.Attribute)
                and isinstance(callback.value, ast.Name)
                and callback.value.id == "self"
            ):
                site = ScheduleSite(
                    method=func.attr,
                    when=float(when.value),
                    priority=priority,
                    callback=callback.attr,
                    line=node.lineno,
                    col=node.col_offset,
                    end_line=getattr(node, "end_lineno", node.lineno),
                    text=self._text(node.lineno),
                )
                self.sites.setdefault(self._class, []).append(
                    (self._method, site)
                )
        self.generic_visit(node)


def check_races(
    tree: ast.AST, path: str, source_lines: List[str]
) -> List[Finding]:
    """Run the static same-instant race pass over one parsed module."""
    collector = _ClassCollector(source_lines)
    collector.visit(tree)
    findings: List[Finding] = []
    for cls in sorted(collector.sites):
        sites = collector.sites[cls]
        groups: Dict[Tuple[str, float, str], List[Tuple[str, ScheduleSite]]] = {}
        for method, site in sites:
            # .at(T) and .schedule(T) pin different instants; group by kind
            kind = "at" if site.method == "at" else "delay"
            groups.setdefault(
                (kind, site.when, site.priority), []
            ).append((method, site))
        for group in groups.values():
            reported: Set[Tuple[int, int]] = set()
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    _, first = group[i]
                    _, second = group[j]
                    if first.callback == second.callback:
                        continue
                    key_a = (cls, first.callback)
                    key_b = (cls, second.callback)
                    writes_a = collector.writes.get(key_a)
                    writes_b = collector.writes.get(key_b)
                    if writes_a is None or writes_b is None:
                        continue  # callback not resolvable in this class
                    pair = (first.line, second.line)
                    if pair in reported:
                        continue
                    shared_writes = sorted(writes_a & writes_b)
                    if shared_writes:
                        reported.add(pair)
                        _report_pair(
                            findings, "RACE701", path, cls, first, second,
                            f"class {cls}: callbacks "
                            f"{first.callback!r} (line {first.line}) and "
                            f"{second.callback!r} both write "
                            f"self.{shared_writes[0]} at the same "
                            "(time, priority) instant",
                        )
                        continue
                    reads_b = collector.reads.get(key_b, set())
                    reads_a = collector.reads.get(key_a, set())
                    crossed = sorted(
                        (writes_a & reads_b) | (writes_b & reads_a)
                    )
                    if crossed:
                        reported.add(pair)
                        _report_pair(
                            findings, "RACE702", path, cls, first, second,
                            f"callback {second.callback!r} and "
                            f"{first.callback!r} (line {first.line}) "
                            f"race on self.{crossed[0]} (one reads what "
                            "the other writes) at the same "
                            "(time, priority) instant",
                        )
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def _report_pair(
    findings: List[Finding], rule_id: str, path: str, cls: str,
    first: ScheduleSite, second: ScheduleSite, message: str,
) -> None:
    rule = RACE_RULES[rule_id]
    findings.append(
        Finding(
            rule=rule_id,
            severity=rule.severity,
            path=path,
            line=second.line,
            col=second.col,
            message=message,
            hint=rule.hint,
            text=second.text,
            end_line=second.end_line,
        )
    )
