"""AST detectors for determinism hazards.

Each detector flags one class of construct that can break the repo-wide
guarantee that ``(plan, seed)`` maps to a byte-identical timeline:

========  ==============================================================
DET101    raw RNG — ``random.*`` / ``numpy.random`` outside ``sim/rng.py``
DET102    wall clock — ``time.time``/``monotonic``, ``datetime.now`` & co.
DET201    unordered iteration — ``for``/comprehension/``list()`` over sets
DET202    hash-order sort keys — ``sorted(..., key=id)`` / ``key=hash``
DET301    environment read — ``os.environ`` / ``os.getenv``
DET401    mutable default — ``def f(x=[])`` and mutable dataclass fields
========  ==============================================================

Notes on scope:

* ``dict`` iteration is **not** flagged: insertion order is part of the
  language, and the codebase leans on it deliberately.  Sets (and
  ``frozenset``) have no defined order, and string hashes are randomised
  per process, so set iteration order differs *across* runs — exactly
  the kind of divergence the parallel executor's serial ≡ parallel
  contract cannot tolerate.
* ``time.perf_counter`` is deliberately exempt from DET102: it is the
  sanctioned way to *measure* wall time (profilers, benchmarks) and must
  never feed simulated state; feeding any wall clock into the simulation
  is what the rule exists to catch.
* ``sorted(<set>)`` is fine (sorting erases hash order) and is the
  canonical fix suggested by DET201's hint.

Every detector emits :class:`Finding` records carrying a rule id,
severity, message and fix-it hint; suppression via ``# repro: allow[...]``
pragmas and baseline diffing live in :mod:`repro.analysis.lint`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """Static description of one hazard class."""

    rule_id: str
    title: str
    severity: str
    hint: str


RULES: Dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule(
            "DET101",
            "raw RNG bypasses seeded streams",
            SEVERITY_ERROR,
            "draw from a named RngStreams stream (repro.sim.rng) instead",
        ),
        Rule(
            "DET102",
            "wall-clock read in simulation code",
            SEVERITY_ERROR,
            "use Simulator.now for simulated time; time.perf_counter is "
            "allowed for measurement-only profiling",
        ),
        Rule(
            "DET201",
            "iteration over an unordered set",
            SEVERITY_ERROR,
            "iterate sorted(<set>) or keep an insertion-ordered dict/list",
        ),
        Rule(
            "DET202",
            "hash/id-order-dependent sort key",
            SEVERITY_ERROR,
            "sort by a stable domain key (name, sequence number), never "
            "id() or hash()",
        ),
        Rule(
            "DET301",
            "environment read on a reproducible path",
            SEVERITY_ERROR,
            "thread configuration through explicit spec/job parameters so "
            "it is captured by the (plan, seed) pair",
        ),
        Rule(
            "DET401",
            "mutable default argument or dataclass field",
            SEVERITY_ERROR,
            "default to None (or use dataclasses.field(default_factory=...))",
        ),
    )
}

#: (module, attr) pairs read as wall-clock time.  ``perf_counter`` is
#: intentionally absent — see the module docstring.
_WALL_CLOCK_TIME_ATTRS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "localtime", "ctime"}
)
_WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: builtins whose set-argument iteration order leaks into the result
_ORDER_SENSITIVE_FUNCS = frozenset(
    {"list", "tuple", "enumerate", "iter", "next", "map", "filter", "zip"}
)

#: set methods returning another unordered set
_SET_COMBINATORS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)

#: path components that mark the kernel/executor reproducibility core,
#: where an environment read is an error rather than a warning
ENV_STRICT_COMPONENTS = frozenset({"sim", "exec", "osal", "faults", "analysis"})


@dataclass(frozen=True)
class Finding:
    """One hazard occurrence in one file."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str
    #: stripped source text of the flagged line — the stable part of the
    #: baseline fingerprint (line numbers shift, text rarely does)
    text: str = ""
    #: last physical line of the flagged statement (pragma placement);
    #: not part of the fingerprint
    end_line: int = 0

    @property
    def fingerprint(self) -> str:
        """Baseline identity: stable across unrelated edits to the file."""
        return f"{self.path}::{self.rule}::{self.text}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"[{self.severity}] {self.message} (fix: {self.hint})"
        )

    @property
    def family(self) -> str:
        """Rule family: the leading letters of the rule id (``DET``,
        ``PICK``, ``ARCH``, ``RACE``) — the unit of baseline splitting
        and summary reporting."""
        return rule_family(self.rule)

    def to_cache_dict(self) -> Dict[str, object]:
        """Full serialization for the incremental analysis cache."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "text": self.text,
            "end_line": self.end_line,
        }

    @classmethod
    def from_cache_dict(cls, payload: Dict[str, object]) -> "Finding":
        return cls(
            rule=str(payload["rule"]),
            severity=str(payload["severity"]),
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            message=str(payload["message"]),
            hint=str(payload["hint"]),
            text=str(payload.get("text", "")),
            end_line=int(payload.get("end_line", 0)),  # type: ignore[arg-type]
        )


def rule_family(rule_id: str) -> str:
    """Leading alphabetic prefix of a rule id (``PICK503`` -> ``PICK``)."""
    letters = []
    for char in rule_id:
        if char.isalpha():
            letters.append(char)
        else:
            break
    return "".join(letters) or rule_id


def _is_strict_env_path(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return any(part in ENV_STRICT_COMPONENTS for part in parts)


class HazardVisitor(ast.NodeVisitor):
    """Single-pass visitor running every detector over one module AST."""

    def __init__(
        self,
        path: str,
        source_lines: List[str],
        *,
        allow_raw_random: bool = False,
    ) -> None:
        self.path = path
        self.lines = source_lines
        self.allow_raw_random = allow_raw_random
        self.findings: List[Finding] = []
        #: local alias -> imported module name ("np" -> "numpy")
        self._modules: Dict[str, str] = {}
        #: local name -> (module, original name) for from-imports
        self._from: Dict[str, Tuple[str, str]] = {}
        #: lexical scopes for set-typed local dataflow: name -> True when
        #: the name currently holds a set, False when a later assignment
        #: shadows an outer set binding with something else
        self._scopes: List[Dict[str, bool]] = [{}]
        #: last physical line of the statement currently being visited,
        #: so pragmas can sit on the closing line of a multi-line call
        self._stmt_end = 0

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.stmt):
            self._stmt_end = (
                getattr(node, "end_lineno", None)
                or getattr(node, "lineno", 0)
            )
        super().visit(node)

    # -- helpers ---------------------------------------------------------

    def _line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def _report(self, rule_id: str, node: ast.AST, message: str,
                severity: Optional[str] = None) -> None:
        rule = RULES[rule_id]
        line = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                rule=rule_id,
                severity=severity or rule.severity,
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                message=message,
                hint=rule.hint,
                text=self._line_text(line),
                end_line=max(
                    getattr(node, "end_lineno", None) or line,
                    self._stmt_end,
                ),
            )
        )

    def _chain(self, node: ast.AST) -> Optional[List[str]]:
        """Resolve an attribute chain to [root_module, attr, ...].

        The root name is translated through the module's import table, so
        ``np.random`` resolves to ``["numpy", "random"]`` and a name
        bound by ``from datetime import datetime`` resolves to
        ``["datetime", "datetime"]``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in self._modules:
            parts.append(self._modules[root])
        elif root in self._from:
            module, original = self._from[root]
            parts.append(original)
            parts.append(module)
        else:
            parts.append(root)
        parts.reverse()
        return parts

    # -- import bookkeeping ---------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._modules[alias.asname or alias.name.split(".")[0]] = (
                alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            self._from[alias.asname or alias.name] = (module, alias.name)
        # DET101: from-imports of random smuggle unseeded draws in under
        # local names the attribute detectors cannot see — flag the import
        if not self.allow_raw_random:
            if module == "random":
                self._report(
                    "DET101", node,
                    "from-import of the global `random` module",
                )
            elif module == "numpy" and any(
                a.name == "random" for a in node.names
            ):
                self._report(
                    "DET101", node, "from-import of numpy.random"
                )
        if module == "time":
            hazards = sorted(
                a.name for a in node.names
                if a.name in _WALL_CLOCK_TIME_ATTRS
            )
            if hazards:
                self._report(
                    "DET102", node,
                    f"from-import of wall-clock function(s) {hazards}",
                )
        if module == "os":
            hazards = sorted(
                a.name for a in node.names
                if a.name in ("environ", "getenv")
            )
            if hazards:
                self._report(
                    "DET301", node,
                    f"from-import of os.{'/'.join(hazards)}",
                    severity=(
                        SEVERITY_ERROR if _is_strict_env_path(self.path)
                        else SEVERITY_WARNING
                    ),
                )
        self.generic_visit(node)

    # -- DET101 / DET102 / DET301: attribute chains ---------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = self._chain(node)
        if chain:
            self._check_chain(node, chain)
        self.generic_visit(node)

    def _check_chain(self, node: ast.AST, chain: List[str]) -> None:
        root = chain[0]
        if not self.allow_raw_random:
            if root == "random" and len(chain) == 2:
                self._report(
                    "DET101", node,
                    f"direct use of random.{chain[1]} bypasses the seeded "
                    "RngStreams registry",
                )
            elif root == "numpy" and len(chain) >= 2 and chain[1] == "random":
                tail = ".".join(chain[1:])
                self._report(
                    "DET101", node,
                    f"direct use of numpy.{tail} bypasses the seeded "
                    "RngStreams registry",
                )
        if root == "time" and len(chain) == 2 \
                and chain[1] in _WALL_CLOCK_TIME_ATTRS:
            self._report(
                "DET102", node,
                f"wall-clock read time.{chain[1]} in simulation code",
            )
        elif root == "datetime" and len(chain) >= 2 \
                and chain[-1] in _WALL_CLOCK_DATETIME_ATTRS:
            self._report(
                "DET102", node,
                f"wall-clock read {'.'.join(chain)}",
            )
        elif root == "os" and len(chain) >= 2 \
                and chain[1] in ("environ", "getenv"):
            self._report(
                "DET301", node,
                f"environment read via os.{chain[1]}",
                severity=(
                    SEVERITY_ERROR if _is_strict_env_path(self.path)
                    else SEVERITY_WARNING
                ),
            )

    def visit_Name(self, node: ast.Name) -> None:
        # names bound by hazardous from-imports, used bare
        if isinstance(node.ctx, ast.Load):
            bound = self._from.get(node.id)
            if bound is not None:
                module, original = bound
                if module == "random" and not self.allow_raw_random:
                    pass  # already flagged at the import statement
                elif module == "time" and original in _WALL_CLOCK_TIME_ATTRS:
                    self._report(
                        "DET102", node,
                        f"wall-clock read {original} "
                        "(from-imported from time)",
                    )
        self.generic_visit(node)

    # -- DET201: unordered iteration -------------------------------------

    def _name_is_set(self, name: str) -> bool:
        """Look a variable up through the lexical scope stack."""
        for scope in reversed(self._scopes):
            flag = scope.get(name)
            if flag is not None:
                return flag
        return False

    def _is_set_annotation(self, node: Optional[ast.AST]) -> bool:
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute):
            return node.attr in ("Set", "FrozenSet", "AbstractSet")
        return isinstance(node, ast.Name) and node.id in (
            "set", "frozenset", "Set", "FrozenSet", "AbstractSet"
        )

    def _bind(self, target: ast.AST, is_set: bool) -> None:
        if isinstance(target, ast.Name):
            self._scopes[-1][target.id] = is_set

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            self._bind(target, is_set)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        is_set = self._is_set_annotation(node.annotation) or (
            node.value is not None and self._is_set_expr(node.value)
        )
        self._bind(node.target, is_set)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # `s |= other` keeps (and `s += other` clears) set-ness; only an
        # existing binding is updated, unknown names stay unknown
        if isinstance(node.target, ast.Name) \
                and self._name_is_set(node.target.id):
            self._bind(node.target, isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
            ))
        self.generic_visit(node)

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self._name_is_set(node.id)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) \
                    and func.attr in _SET_COMBINATORS \
                    and self._is_set_expr(func.value):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _check_iterable(self, node: ast.AST, context: str) -> None:
        if self._is_set_expr(node):
            self._report(
                "DET201", node,
                f"{context} iterates a set in hash order",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter, "for-loop")
        # the loop variable is rebound to an element, never a set we saw
        self._bind(node.target, False)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for comp in node.generators:
            self._check_iterable(comp.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # building another set from a set keeps the result unordered but
        # introduces no ordering dependence of its own — skip the iterable
        # check, still walk nested expressions
        self.generic_visit(node)

    # -- DET201 (conversions) + DET202 (sort keys) -----------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _ORDER_SENSITIVE_FUNCS:
                for arg in node.args:
                    if self._is_set_expr(arg):
                        self._report(
                            "DET201", node,
                            f"{func.id}() materialises a set in hash order",
                        )
                        break
            if func.id in ("sorted", "min", "max"):
                self._check_sort_key(node)
        elif isinstance(func, ast.Attribute):
            if func.attr == "sort":
                self._check_sort_key(node)
            elif func.attr == "join" and any(
                self._is_set_expr(arg) for arg in node.args
            ):
                self._report(
                    "DET201", node,
                    "str.join() concatenates a set in hash order",
                )
        self.generic_visit(node)

    def _check_sort_key(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            value = keyword.value
            if isinstance(value, ast.Name) and value.id in ("id", "hash"):
                self._report(
                    "DET202", node,
                    f"sort key `{value.id}` orders by interpreter "
                    "identity/hash, which differs between runs",
                )
            elif isinstance(value, ast.Lambda):
                for sub in ast.walk(value.body):
                    if isinstance(sub, ast.Call) \
                            and isinstance(sub.func, ast.Name) \
                            and sub.func.id in ("id", "hash"):
                        self._report(
                            "DET202", node,
                            f"sort key calls `{sub.func.id}()`, which "
                            "differs between runs",
                        )
                        break

    # -- DET401: mutable defaults ----------------------------------------

    def _is_mutable_literal(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "dict", "set", "bytearray")
        )

    def _check_function_defaults(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if self._is_mutable_literal(default):
                # scope the pragma anchor to the default expression, not
                # the whole function body
                self._stmt_end = getattr(default, "end_lineno", 0)
                self._report(
                    "DET401", default,
                    f"function {node.name!r} has a mutable default "
                    "argument shared between calls (and between pickled "
                    "job replays)",
                )
        # every parameter shadows outer bindings of the same name; only
        # an explicit set annotation marks one as set-typed
        scope: Dict[str, bool] = {}
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            scope[arg.arg] = self._is_set_annotation(arg.annotation)
        self._scopes.append(scope)
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _check_function_defaults
    visit_AsyncFunctionDef = _check_function_defaults

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scopes.append({})
        if self._is_dataclass(node):
            for stmt in node.body:
                value = None
                if isinstance(stmt, ast.AnnAssign):
                    value = stmt.value
                elif isinstance(stmt, ast.Assign):
                    value = stmt.value
                if value is not None and self._is_mutable_literal(value):
                    self._stmt_end = getattr(stmt, "end_lineno", 0)
                    self._report(
                        "DET401", stmt,
                        f"dataclass {node.name!r} field defaults to a "
                        "shared mutable value",
                    )
        self.generic_visit(node)
        self._scopes.pop()

    def _is_dataclass(self, node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) \
                else decorator
            if isinstance(target, ast.Name) and target.id == "dataclass":
                return True
            if isinstance(target, ast.Attribute) \
                    and target.attr == "dataclass":
                return True
        return False


def detect(
    source: str,
    path: str,
    *,
    allow_raw_random: bool = False,
    tree: Optional[ast.AST] = None,
) -> List[Finding]:
    """Run every detector over ``source`` and return its findings.

    Args:
        source: the module's source text.
        path: repo-relative posix path used in findings and fingerprints.
        allow_raw_random: disable DET101 for the one sanctioned module
            (``sim/rng.py`` wraps ``random.Random`` by design).
        tree: optionally a pre-parsed AST of ``source`` — the multi-pass
            driver parses each file once and shares the tree between
            passes.
    """
    if tree is None:
        tree = ast.parse(source, filename=path)
    visitor = HazardVisitor(
        path, source.splitlines(), allow_raw_random=allow_raw_random
    )
    visitor.visit(tree)
    visitor.findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return visitor.findings
