"""Runtime race detector for the simulation kernel.

The AST linter (:mod:`repro.analysis.lint`) catches hazards visible in
source; this sanitizer catches the ones only visible in a *running*
simulation.  It is opt-in and follows the same hook pattern as the
:class:`~repro.faults.injector.FaultInjector`: when detached, the kernel
and resource layers pay exactly one ``is None`` branch per event, and
when attached the per-event work is a couple of comparisons, so a
sanitized run stays within a few percent of an unsanitized one (gated by
``benchmarks/bench_sanitizer.py``).

Three detectors run while attached:

* **tiebreak** (info) — two live events share the same ``(time,
  priority)``; their relative order is fixed only by insertion sequence,
  not by the tuple-keyed heap ordering.  This *is* deterministic for a
  deterministic program, but it is the exact place where a refactor that
  reorders ``schedule()`` calls silently reorders the simulation, so the
  sanitizer surfaces every cross-callback tie.
* **shared_mutation** (race) — one :class:`~repro.sim.resources.Resource`
  / :class:`~repro.sim.resources.Store` / throughput server receives the
  *same* mutating operation (``put``/``request``/``release``/``submit``)
  from two different kernel events at the same instant.  The relative
  order of the two peers is pure insertion order — the discrete-event
  equivalent of a data race.
* **rng_stream_shared** (race) — one named
  :class:`~repro.sim.rng.RngStreams` stream is drawn from two distinct
  call sites.  Sharing a stream couples the consumers: adding a draw in
  one silently perturbs the other, which is precisely what named streams
  exist to prevent.

Reports flow three ways: a bounded in-memory list (:attr:`reports`),
``sanitizer.reports{kind=...}`` counters on the simulator's metrics
registry, and ``sanitizer`` trace entries through the kernel Tracer.
CI treats ``race_count`` > 0 on the seeded chaos scenario as a failure;
``tiebreak`` entries are diagnostics and never fail a run.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from ..sim.kernel import Simulator
from ..sim.rng import RngStreams

SEVERITY_INFO = "info"
SEVERITY_RACE = "race"

KIND_TIEBREAK = "tiebreak"
KIND_SHARED_MUTATION = "shared_mutation"
KIND_RNG_STREAM_SHARED = "rng_stream_shared"


@dataclass(frozen=True)
class SanitizerReport:
    """One detection, with enough context to locate the hazard."""

    kind: str
    severity: str
    time: float
    detail: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.kind} @ t={self.time:.6f}: {self.detail}"


def _callable_name(fn: Any) -> str:
    """Stable human-readable identity for an event callback."""
    while isinstance(fn, partial):
        fn = fn.func
    fn = getattr(fn, "__func__", fn)
    qualname = getattr(fn, "__qualname__", None)
    if qualname is None:  # pragma: no cover - exotic callables
        qualname = repr(fn)
    module = getattr(fn, "__module__", "") or ""
    return f"{module}.{qualname}" if module else qualname


def _unwrap(fn: Any) -> Any:
    while isinstance(fn, partial):
        fn = fn.func
    return getattr(fn, "__func__", fn)


class KernelSanitizer:
    """Opt-in determinism sanitizer for one :class:`Simulator`.

    Usage::

        san = KernelSanitizer(sim, rng=streams).attach()
        ... run the scenario ...
        san.detach()
        assert san.race_count == 0, san.summary()

    or as a context manager::

        with KernelSanitizer(sim, rng=streams) as san:
            sim.run(until=1.0)
        assert not san.race_reports

    Args:
        sim: the simulator to watch.
        rng: optional stream registry to guard against cross-site sharing.
        max_reports: bound on stored reports (counts keep accumulating
            past the bound, mirroring the bounded Tracer's philosophy).
    """

    # slotted because the kernel touches two attributes per event while
    # attached (_current_event store, _heap load); slot access keeps that
    # off the instance-dict path
    __slots__ = (
        "sim", "rng", "max_reports", "reports", "counts", "attached",
        "_current_event", "_heap", "_tie_pairs", "_mutations",
        "_stream_sites", "_metrics",
    )

    def __init__(
        self,
        sim: Simulator,
        *,
        rng: Optional[RngStreams] = None,
        max_reports: int = 256,
    ) -> None:
        self.sim = sim
        self.rng = rng
        self.max_reports = max_reports
        self.reports: List[SanitizerReport] = []
        #: total detections per kind (never truncated)
        self.counts: Dict[str, int] = {}
        self.attached = False
        #: the ScheduledCall currently executing (event identity for the
        #: shared-mutation detector); None outside any event
        self._current_event: Any = None
        #: heap list of the watched queue, cached at attach time
        #: (EventQueue._prune never rebinds it)
        self._heap: List[tuple] = sim.queue._heap
        #: (callback-name pair) -> count, so each tie pair reports once
        self._tie_pairs: Dict[Tuple[str, str], int] = {}
        #: id(resource) -> (time, event, op, label)
        self._mutations: Dict[int, Tuple[float, Any, str, str]] = {}
        #: stream name -> (filename, function) of its first consumer
        self._stream_sites: Dict[str, Tuple[str, str]] = {}
        self._metrics: Dict[str, Any] = {}

    # -- lifecycle -------------------------------------------------------

    def attach(self) -> "KernelSanitizer":
        """Install the kernel (and optional RNG) hooks.  Idempotent."""
        if self.attached:
            return self
        self.sim.sanitizer = self
        if self.rng is not None:
            self.rng._sanitizer = self
        self.attached = True
        return self

    def detach(self) -> None:
        """Remove every hook, restoring the zero-overhead path."""
        if not self.attached:
            return
        if self.sim.sanitizer is self:
            self.sim.sanitizer = None
        if self.rng is not None and self.rng._sanitizer is self:
            self.rng._sanitizer = None
        self.attached = False

    def __enter__(self) -> "KernelSanitizer":
        return self.attach()

    def __exit__(self, *exc_info: Any) -> None:
        self.detach()

    # -- hot hooks (called with the sanitizer attached only) -------------

    def on_tie(self, call: Any, nxt: Any) -> None:
        """Kernel hook: ``call`` is executing and ``nxt`` (the live heap
        head) shares its ``(time, priority)``.  The kernel screens for
        this inline, so the sanitizer is only entered on candidate ties.
        """
        if nxt.cancelled:
            nxt = self.sim.queue.peek_call()
            if nxt is None or nxt.time != call.time \
                    or nxt.priority != call.priority:
                return
        if _unwrap(nxt.callback) is _unwrap(call.callback):
            # peers of the same logic (N process wakeups, N frame
            # deliveries) — ordering between them is the component's own
            # sequencing, not a cross-component tie
            return
        first = _callable_name(call.callback)
        second = _callable_name(nxt.callback)
        pair = (first, second) if first <= second else (second, first)
        seen = self._tie_pairs.get(pair, 0)
        self._tie_pairs[pair] = seen + 1
        if seen == 0:
            self._record(
                KIND_TIEBREAK, SEVERITY_INFO,
                f"events {pair[0]} and {pair[1]} tie at (t={call.time:.6f}, "
                f"priority={call.priority}); order rests on insertion "
                "sequence alone",
            )
        else:
            self._count(KIND_TIEBREAK)

    def note_mutation(self, obj: Any, op: str, label: str) -> None:
        """Resource hook: ``op`` applied to ``obj`` by the current event."""
        key = id(obj)
        now = self.sim.now
        current = self._current_event
        previous = self._mutations.get(key)
        self._mutations[key] = (now, current, op, label)
        if previous is None:
            return
        prev_time, prev_event, prev_op, _prev_label = previous
        if prev_time == now and prev_event is not current \
                and prev_op == op:
            name = label or type(obj).__name__
            self._record(
                KIND_SHARED_MUTATION, SEVERITY_RACE,
                f"{type(obj).__name__} {name!r} received {op!r} from two "
                f"different events at t={now:.6f}; their order is pure "
                "insertion order",
            )

    def note_stream(self, name: str) -> None:
        """RNG hook: stream ``name`` fetched by the calling frame."""
        frame = sys._getframe(2)  # skip note_stream and RngStreams.stream
        rng_file = sys.modules[RngStreams.__module__].__file__
        while frame is not None and frame.f_code.co_filename == rng_file:
            frame = frame.f_back
        if frame is None:  # pragma: no cover - defensive
            return
        site = (frame.f_code.co_filename, frame.f_code.co_name)
        known = self._stream_sites.get(name)
        if known is None:
            self._stream_sites[name] = site
        elif known != site:
            self._record(
                KIND_RNG_STREAM_SHARED, SEVERITY_RACE,
                f"rng stream {name!r} drawn from {known[1]} "
                f"({known[0]}) and {site[1]} ({site[0]}); shared streams "
                "couple their consumers' draws",
            )
            # report each extra site once
            self._stream_sites[name] = site

    # -- reporting -------------------------------------------------------

    def _count(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        metric = self._metrics.get(kind)
        if metric is None:
            metric = self.sim.metrics.counter("sanitizer.reports", kind=kind)
            self._metrics[kind] = metric
        metric.inc()

    def _record(self, kind: str, severity: str, detail: str) -> None:
        self._count(kind)
        report = SanitizerReport(kind, severity, self.sim.now, detail)
        if len(self.reports) < self.max_reports:
            self.reports.append(report)
        self.sim.trace("sanitizer", kind=kind, severity=severity,
                       detail=detail)

    @property
    def race_reports(self) -> List[SanitizerReport]:
        """Stored reports of race severity (excludes info diagnostics)."""
        return [r for r in self.reports if r.severity == SEVERITY_RACE]

    @property
    def race_count(self) -> int:
        """Total race detections (counts survive the report bound)."""
        return sum(
            count for kind, count in self.counts.items()
            if kind != KIND_TIEBREAK
        )

    @property
    def tie_count(self) -> int:
        return self.counts.get(KIND_TIEBREAK, 0)

    def summary(self) -> str:
        """Human-readable digest of everything detected."""
        if not self.counts:
            return "sanitizer: clean"
        parts = [
            f"{kind}={count}" for kind, count in sorted(self.counts.items())
        ]
        lines = [f"sanitizer: {', '.join(parts)}"]
        for report in self.reports[:20]:
            lines.append(f"  {report}")
        if len(self.reports) > 20:
            lines.append(f"  ... {len(self.reports) - 20} more stored")
        return "\n".join(lines)
