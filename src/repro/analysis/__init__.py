"""Determinism sanitizer: static linter + runtime race detector.

Two pillars enforce the repo's ``(plan, seed) -> byte-identical
timeline`` guarantee *before* benchmarks ever compare traces:

* :mod:`repro.analysis.lint` / :mod:`repro.analysis.detectors` — an AST
  linter (CLI: ``python -m repro.analysis``) that flags nondeterminism
  hazards in source: raw ``random`` use, wall-clock reads, unordered set
  iteration, hash-order sort keys, environment reads and mutable
  defaults — with per-line ``# repro: allow[RULE]`` pragmas and a
  committed baseline so CI fails only on new violations.
* :mod:`repro.analysis.sanitizer` — an opt-in kernel mode detecting
  same-instant ordering races, same-tick shared-resource mutation and
  RNG stream sharing at run time, with zero overhead when detached.
"""

from .detectors import RULES, Finding, Rule, detect
from .lint import (
    LintReport,
    baseline_from_report,
    load_baseline,
    new_findings,
    run_lint,
    save_baseline,
)
from .sanitizer import KernelSanitizer, SanitizerReport

__all__ = [
    "Finding",
    "KernelSanitizer",
    "LintReport",
    "RULES",
    "Rule",
    "SanitizerReport",
    "baseline_from_report",
    "detect",
    "load_baseline",
    "new_findings",
    "run_lint",
    "save_baseline",
]
