"""Whole-program static analysis suite + runtime race detector.

Static passes (CLI: ``python -m repro.analysis --pass ...``) enforce the
repo's ``(plan, seed) -> byte-identical timeline`` guarantee and its
process model *before* anything runs:

* **det** (:mod:`repro.analysis.detectors`) — nondeterminism hazards:
  raw ``random`` use, wall-clock reads, unordered set iteration,
  hash-order sort keys, environment reads, mutable defaults.
* **pickle-safety** (:mod:`repro.analysis.pickle_safety`) — lambdas,
  local classes and OS resources statically reaching a serialization
  boundary (worker pipe, snapshot, checkpoint).
* **arch** (:mod:`repro.analysis.arch` / :mod:`repro.analysis.graph`) —
  the declared layer DAG: upward imports, import cycles, undeclared
  packages.
* **races** (:mod:`repro.analysis.races`) — schedule-site pairs at one
  ``(time, priority)`` instant touching the same attribute.

All passes share pragma suppression (``# repro: allow[RULE]``),
family-split baselines, an incremental content-addressed cache
(:mod:`repro.analysis.cache`) and a mechanical autofixer
(:mod:`repro.analysis.fixer`).  :mod:`repro.analysis.sanitizer` is the
runtime complement: an opt-in kernel mode detecting same-instant races
on interleavings a seed actually exercises.
"""

from .arch import ARCH_RULES, DEFAULT_CONTRACT, LayerContract
from .cache import AnalysisCache
from .detectors import RULES, Finding, Rule, detect
from .graph import ModuleGraph, collect_imports
from .lint import (
    ALL_PASSES,
    AnalysisReport,
    LintReport,
    analysis_salt,
    baseline_from_report,
    load_baseline,
    new_findings,
    run_analysis,
    run_lint,
    save_baseline,
)
from .pickle_safety import PICKLE_RULES
from .races import RACE_RULES
from .sanitizer import KernelSanitizer, SanitizerReport

__all__ = [
    "ALL_PASSES",
    "ARCH_RULES",
    "AnalysisCache",
    "AnalysisReport",
    "DEFAULT_CONTRACT",
    "Finding",
    "KernelSanitizer",
    "LayerContract",
    "LintReport",
    "ModuleGraph",
    "PICKLE_RULES",
    "RACE_RULES",
    "RULES",
    "Rule",
    "SanitizerReport",
    "analysis_salt",
    "baseline_from_report",
    "collect_imports",
    "detect",
    "load_baseline",
    "new_findings",
    "run_analysis",
    "run_lint",
    "save_baseline",
]
