"""Command-line entry point: ``python -m repro.analysis``.

Typical invocations::

    # run every pass (det, pickle-safety, arch, races); exit 1 on any
    # finding not covered by pragma or baseline
    python -m repro.analysis

    # one pass only
    python -m repro.analysis --pass pickle-safety

    # disable the incremental cache (CI does this for hermetic runs)
    python -m repro.analysis --no-cache

    # preview mechanical fixes as a unified diff (exit 1 if any apply)
    python -m repro.analysis --fix

    # actually rewrite the files
    python -m repro.analysis --fix --write

    # accept the current findings as the new baseline(s)
    python -m repro.analysis --update-baseline

    # machine-readable report for tooling / golden tests
    python -m repro.analysis --json report.json

Baselines are split by rule family: ``DET*`` fingerprints live in
``determinism-baseline.json`` (kept empty — determinism debt is never
banked) and everything else in ``analysis-baseline.json``.

Exit codes: ``0`` clean, ``1`` fresh findings / parse errors / pending
``--fix`` proposals, ``2`` bad usage.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from .cache import AnalysisCache
from .fixer import apply_fixes, propose_fixes, render_diffs
from .lint import (
    ALL_PASSES,
    AnalysisReport,
    PASS_DET,
    SCHEMA_VERSION,
    analysis_salt,
    load_baseline,
    new_findings,
    rules_for_passes,
    run_analysis,
    save_baseline,
)

DEFAULT_PATHS = ("src", "tests", "benchmarks")
DET_BASELINE = "determinism-baseline.json"
ANALYSIS_BASELINE = "analysis-baseline.json"
DEFAULT_CACHE_DIR = ".repro-analysis-cache"


def _parse_passes(raw: List[str]) -> List[str]:
    names: List[str] = []
    for chunk in raw:
        for name in chunk.split(","):
            name = name.strip()
            if not name:
                continue
            if name == "all":
                for p in ALL_PASSES:
                    if p not in names:
                        names.append(p)
            elif name not in names:
                names.append(name)
    for name in names:
        if name not in ALL_PASSES:
            raise SystemExit(
                f"unknown pass {name!r}; expected all, "
                + ", ".join(ALL_PASSES)
            )
    return names or list(ALL_PASSES)


def _print_rules(passes: List[str]) -> None:
    for rule_id, rule in rules_for_passes(passes).items():
        print(f"{rule_id}  [{rule.severity}] {rule.title}")
        print(f"        fix: {rule.hint}")


def _rule_is_det(fingerprint: str) -> bool:
    parts = fingerprint.split("::")
    return len(parts) >= 2 and parts[1].startswith("DET")


def _split_baseline(report: AnalysisReport) -> Dict[str, Dict]:
    """Family-split baselines: DET fingerprints vs everything else."""
    det: Dict[str, int] = {}
    rest: Dict[str, int] = {}
    for finding in report.findings:
        bucket = det if finding.family == "DET" else rest
        bucket[finding.fingerprint] = bucket.get(finding.fingerprint, 0) + 1
    return {
        DET_BASELINE: {
            "schema": SCHEMA_VERSION,
            "fingerprints": dict(sorted(det.items())),
        },
        ANALYSIS_BASELINE: {
            "schema": SCHEMA_VERSION,
            "fingerprints": dict(sorted(rest.items())),
        },
    }


def _render_summary(report: AnalysisReport, fresh_count: int) -> None:
    for family, counts in report.by_family().items():
        print(
            f"{family}: {counts['errors']} error(s), "
            f"{counts['warnings']} warning(s)"
        )
    print(
        f"{report.files_scanned} files scanned "
        f"[{'+'.join(report.passes)}]: "
        f"{len(report.findings)} finding(s), "
        f"{report.suppressed} suppressed by pragma, "
        f"{fresh_count} new vs baseline"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Whole-program static analysis: determinism, "
        "fork/pickle safety, architecture layering, static races",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=f"files/directories to scan (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root", default=os.getcwd(),
        help="repository root paths, baselines and the cache resolve "
        "against (default: cwd)",
    )
    parser.add_argument(
        "--pass", dest="passes", action="append", default=[],
        metavar="NAME",
        help="pass to run: all, det, pickle-safety, arch, races "
        "(repeatable or comma-separated; default: all)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental analysis cache",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help=f"cache directory (default: <root>/{DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="propose mechanical fixes for fresh findings as a unified "
        "diff (dry run; exit 1 if any edit applies)",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="with --fix: apply the proposed edits in place",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="(default behavior; kept for compatibility)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help=f"non-DET baseline file (default: <root>/{ANALYSIS_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore baseline files: every finding counts as new",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the current findings to the family baselines and "
        "exit 0",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the full JSON report to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    passes = _parse_passes(args.passes)

    if args.list_rules:
        _print_rules(passes)
        return 0
    if args.write and not args.fix:
        print("--write requires --fix", file=sys.stderr)
        return 2

    root = os.path.abspath(args.root)
    paths = args.paths or [
        p for p in DEFAULT_PATHS if os.path.exists(os.path.join(root, p))
    ]
    if not paths:
        print(f"nothing to scan under {root}", file=sys.stderr)
        return 2
    # a typo'd explicit path must fail loudly, not scan 0 files and
    # report OK (a CI invocation pointing nowhere would silently pass)
    for path in args.paths or ():
        absolute = path if os.path.isabs(path) else os.path.join(root, path)
        if not os.path.exists(absolute):
            print(f"no such path: {absolute}", file=sys.stderr)
            return 2

    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.path.join(root, DEFAULT_CACHE_DIR)
        cache = AnalysisCache(cache_dir, analysis_salt(passes))
        cache.prune()

    report = run_analysis(paths, root, passes=passes, cache=cache)

    if args.json:
        payload = report.to_json()
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(payload)
                fh.write("\n")

    det_baseline_path = os.path.join(root, DET_BASELINE)
    analysis_baseline_path = args.baseline or os.path.join(
        root, ANALYSIS_BASELINE
    )

    if args.update_baseline:
        split = _split_baseline(report)
        targets = {
            DET_BASELINE: det_baseline_path,
            ANALYSIS_BASELINE: analysis_baseline_path,
        }
        for name, payload in split.items():
            # DET baseline only written when det ran (don't clobber it
            # from a pickle-safety-only invocation)
            if name == DET_BASELINE and PASS_DET not in passes:
                continue
            save_baseline(payload, targets[name])
            print(
                f"baseline updated: {targets[name]} "
                f"({len(payload['fingerprints'])} fingerprint(s))"
            )
        return 0

    baseline: Dict[str, int] = {}
    if not args.no_baseline:
        baseline.update(load_baseline(det_baseline_path))
        baseline.update(load_baseline(analysis_baseline_path))
    fresh = new_findings(report, baseline)

    if args.fix:
        fixes = propose_fixes(fresh, root)
        if not fixes:
            print("no mechanical fixes to apply")
            return 0
        if args.write:
            changed = apply_fixes(fixes)
            for fix in fixes:
                for description in fix.descriptions:
                    print(f"{fix.path}: {description}")
            print(f"fixed {changed} file(s); re-run the analysis")
            return 0
        sys.stdout.write(render_diffs(fixes))
        print(
            f"\n{len(fixes)} file(s) have mechanical fixes "
            "(re-run with --fix --write to apply)",
            file=sys.stderr,
        )
        return 1

    for finding in report.findings:
        print(finding.render())
    for error in report.parse_errors:
        print(f"parse error: {error}", file=sys.stderr)
    _render_summary(report, len(fresh))

    if report.parse_errors:
        return 1
    if fresh:
        print(
            f"FAIL: {len(fresh)} finding(s) not covered by pragma or "
            "baseline",
            file=sys.stderr,
        )
        return 1
    print("OK: no new findings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
