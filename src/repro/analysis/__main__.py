"""Command-line entry point: ``python -m repro.analysis``.

Typical invocations::

    # report every hazard under src/ and tests/ (informational)
    python -m repro.analysis

    # CI gate: fail (exit 1) on any finding not in the baseline
    python -m repro.analysis --check

    # accept the current findings as the new baseline
    python -m repro.analysis --update-baseline

    # machine-readable report for tooling / golden tests
    python -m repro.analysis --json report.json

Exit codes: ``0`` clean (or informational run), ``1`` new violations or
unparseable files under ``--check``, ``2`` bad usage.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .detectors import RULES
from .lint import (
    LintReport,
    baseline_from_report,
    load_baseline,
    new_findings,
    run_lint,
    save_baseline,
)

DEFAULT_PATHS = ("src", "tests")
DEFAULT_BASELINE = "determinism-baseline.json"


def _print_rules() -> None:
    for rule_id, rule in sorted(RULES.items()):
        print(f"{rule_id}  [{rule.severity}] {rule.title}")
        print(f"        fix: {rule.hint}")


def _render_report(report: LintReport, fresh_count: Optional[int]) -> None:
    for finding in report.findings:
        print(finding.render())
    for error in report.parse_errors:
        print(f"parse error: {error}", file=sys.stderr)
    summary = (
        f"{report.files_scanned} files scanned: "
        f"{len(report.errors)} error(s), {len(report.warnings)} warning(s), "
        f"{report.suppressed} suppressed by pragma"
    )
    if fresh_count is not None:
        summary += f", {fresh_count} new vs baseline"
    print(summary)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism sanitizer: AST nondeterminism linter",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=f"files/directories to scan (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root", default=os.getcwd(),
        help="repository root paths and the baseline resolve against "
        "(default: cwd)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if any finding is not covered by the baseline",
    )
    parser.add_argument(
        "--baseline", default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file: every finding counts as new",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the full JSON report to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0

    root = os.path.abspath(args.root)
    paths = args.paths or [
        p for p in DEFAULT_PATHS if os.path.exists(os.path.join(root, p))
    ]
    if not paths:
        print(f"nothing to scan under {root}", file=sys.stderr)
        return 2
    baseline_path = args.baseline or os.path.join(root, DEFAULT_BASELINE)

    report = run_lint(paths, root)

    if args.json:
        payload = report.to_json()
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(payload)
                fh.write("\n")

    if args.update_baseline:
        save_baseline(baseline_from_report(report), baseline_path)
        print(
            f"baseline updated: {baseline_path} "
            f"({len(report.findings)} finding(s) accepted)"
        )
        return 0

    baseline = {} if args.no_baseline else load_baseline(baseline_path)
    fresh = new_findings(report, baseline)
    _render_report(report, len(fresh))

    if args.check:
        if report.parse_errors:
            return 1
        if fresh:
            print(
                f"FAIL: {len(fresh)} determinism violation(s) not in "
                f"baseline {os.path.basename(baseline_path)}",
                file=sys.stderr,
            )
            return 1
        print("OK: no new determinism violations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
