"""Lint driver: file walking, pragmas, baselines and JSON reports.

This module turns the per-file detectors of
:mod:`repro.analysis.detectors` into a repository-level check:

* **Walking** — :func:`run_lint` scans every ``.py`` file under the
  given paths in sorted order, so reports are byte-identical across
  machines (the linter holds itself to the determinism bar it enforces).
* **Pragmas** — a trailing ``# repro: allow[DET201]`` comment suppresses
  the named rule(s) on that line (comma-separate for several); a bare
  ``# repro: allow`` suppresses every rule on the line; a
  ``# repro: allow-file[DET301]`` comment anywhere in the file
  suppresses the rule for the whole file.  For multi-line statements the
  pragma may sit on the first or last physical line of the statement.
* **Baselines** — a baseline file maps finding fingerprints (path, rule
  and source-line text — not line numbers, which shift on unrelated
  edits) to occurrence counts.  :func:`new_findings` returns only the
  occurrences *beyond* the baselined count, so CI fails on regressions
  without forcing a big-bang cleanup of historical debt.
* **Reports** — :meth:`LintReport.to_dict` is a stable JSON schema
  (``schema: 1``) consumed by the golden-file tests and the CI job.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .detectors import RULES, Finding, detect

#: JSON report / baseline schema version.
SCHEMA_VERSION = 1

#: Files where DET101 is suppressed by design: the seeded-stream registry
#: itself has to wrap ``random.Random``.
RAW_RANDOM_ALLOWED = ("sim/rng.py",)

_LINE_PRAGMA = re.compile(
    r"#\s*repro:\s*allow\s*(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)
_FILE_PRAGMA = re.compile(
    r"#\s*repro:\s*allow-file\s*\[(?P<rules>[A-Za-z0-9_,\s]+)\]"
)

#: Sentinel meaning "every rule" inside a pragma rule set.
_ALL_RULES = "*"


def _parse_rules(raw: Optional[str]) -> Set[str]:
    if raw is None:
        return {_ALL_RULES}
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


@dataclass
class PragmaIndex:
    """Suppressions declared inside one source file."""

    line_allows: Dict[int, Set[str]] = field(default_factory=dict)
    file_allows: Set[str] = field(default_factory=set)

    @classmethod
    def scan(cls, source_lines: List[str]) -> "PragmaIndex":
        index = cls()
        for number, line in enumerate(source_lines, start=1):
            if "repro:" not in line:
                continue
            file_match = _FILE_PRAGMA.search(line)
            if file_match:
                index.file_allows |= _parse_rules(file_match.group("rules"))
                continue
            line_match = _LINE_PRAGMA.search(line)
            if line_match:
                index.line_allows.setdefault(number, set()).update(
                    _parse_rules(line_match.group("rules"))
                )
        return index

    def _matches(self, allowed: Set[str], rule: str) -> bool:
        return _ALL_RULES in allowed or rule in allowed

    def suppresses(self, finding: Finding, end_line: Optional[int] = None) -> bool:
        if self._matches(self.file_allows, finding.rule):
            return True
        last = end_line or finding.line
        lines = (finding.line,) if last == finding.line else (finding.line, last)
        for line in lines:
            allowed = self.line_allows.get(line)
            if allowed and self._matches(allowed, finding.rule):
                return True
        return False


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> Dict:
        return {
            "schema": SCHEMA_VERSION,
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "parse_errors": list(self.parse_errors),
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "by_rule": self.by_rule(),
            },
            "rules": {
                rule_id: {
                    "title": rule.title,
                    "severity": rule.severity,
                    "hint": rule.hint,
                }
                for rule_id, rule in sorted(RULES.items())
            },
            "findings": [
                {
                    "rule": f.rule,
                    "severity": f.severity,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                    "hint": f.hint,
                    "text": f.text,
                }
                for f in self.findings
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def _iter_python_files(paths: Iterable[str], root: str) -> List[str]:
    """Absolute paths of every ``.py`` file under ``paths``, sorted."""
    out: Set[str] = set()
    for path in paths:
        absolute = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(absolute):
            if absolute.endswith(".py"):
                out.add(os.path.abspath(absolute))
            continue
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames[:] = sorted(
                d for d in dirnames
                if d != "__pycache__" and not d.startswith(".")
            )
            for name in filenames:
                if name.endswith(".py"):
                    out.add(os.path.abspath(os.path.join(dirpath, name)))
    return sorted(out)


def _relpath(path: str, root: str) -> str:
    rel = os.path.relpath(path, root)
    return rel.replace(os.sep, "/")


def scan_file(
    absolute: str, rel: str
) -> Tuple[List[Finding], int, Optional[str]]:
    """Lint one file.

    Returns ``(findings, suppressed_count, parse_error)``; a file that
    fails to parse produces no findings and a non-None error string.
    """
    with open(absolute, "r", encoding="utf-8") as fh:
        source = fh.read()
    allow_raw = any(rel.endswith(suffix) for suffix in RAW_RANDOM_ALLOWED)
    try:
        findings = detect(source, rel, allow_raw_random=allow_raw)
    except SyntaxError as exc:
        return [], 0, f"{rel}: {exc.msg} (line {exc.lineno})"
    pragmas = PragmaIndex.scan(source.splitlines())
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        if pragmas.suppresses(finding, finding.end_line):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed, None


def run_lint(paths: Iterable[str], root: str) -> LintReport:
    """Lint every Python file under ``paths`` (relative to ``root``)."""
    report = LintReport()
    for absolute in _iter_python_files(paths, root):
        rel = _relpath(absolute, root)
        findings, suppressed, parse_error = scan_file(absolute, rel)
        report.files_scanned += 1
        report.suppressed += suppressed
        if parse_error is not None:
            report.parse_errors.append(parse_error)
        report.findings.extend(findings)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


# -- baselines -----------------------------------------------------------


def baseline_from_report(report: LintReport) -> Dict:
    """Serializable baseline: fingerprint -> occurrence count."""
    counts: Dict[str, int] = {}
    for finding in report.findings:
        counts[finding.fingerprint] = counts.get(finding.fingerprint, 0) + 1
    return {
        "schema": SCHEMA_VERSION,
        "fingerprints": dict(sorted(counts.items())),
    }


def save_baseline(baseline: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_baseline(path: str) -> Dict[str, int]:
    """Fingerprint counts from a baseline file (empty if absent)."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        raw = json.load(fh)
    fingerprints = raw.get("fingerprints", {})
    return {str(k): int(v) for k, v in fingerprints.items()}


def new_findings(
    report: LintReport, baseline: Dict[str, int]
) -> List[Finding]:
    """Findings not covered by the baseline.

    For each fingerprint, the first ``baseline[fp]`` occurrences (in
    path/line order) are considered historical; everything beyond that
    count is new.  A fingerprint absent from the baseline is entirely new.
    """
    remaining = dict(baseline)
    fresh: List[Finding] = []
    for finding in report.findings:
        credit = remaining.get(finding.fingerprint, 0)
        if credit > 0:
            remaining[finding.fingerprint] = credit - 1
        else:
            fresh.append(finding)
    return fresh
