"""Lint driver: file walking, pragmas, baselines and JSON reports.

This module turns the per-file detectors of
:mod:`repro.analysis.detectors` into a repository-level check:

* **Walking** — :func:`run_lint` scans every ``.py`` file under the
  given paths in sorted order, so reports are byte-identical across
  machines (the linter holds itself to the determinism bar it enforces).
* **Pragmas** — a trailing ``# repro: allow[DET201]`` comment suppresses
  the named rule(s) on that line (comma-separate for several); a bare
  ``# repro: allow`` suppresses every rule on the line; a
  ``# repro: allow-file[DET301]`` comment anywhere in the file
  suppresses the rule for the whole file.  For multi-line statements the
  pragma may sit on the first or last physical line of the statement.
* **Baselines** — a baseline file maps finding fingerprints (path, rule
  and source-line text — not line numbers, which shift on unrelated
  edits) to occurrence counts.  :func:`new_findings` returns only the
  occurrences *beyond* the baselined count, so CI fails on regressions
  without forcing a big-bang cleanup of historical debt.
* **Reports** — :meth:`LintReport.to_dict` is a stable JSON schema
  (``schema: 1``) consumed by the golden-file tests and the CI job.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .arch import (
    ARCH_RULES,
    DEFAULT_CONTRACT,
    LayerContract,
    check_cycles,
    check_module_layers,
)
from .cache import AnalysisCache, version_salt
from .detectors import RULES, Finding, Rule, detect, rule_family
from .graph import ImportEdge, ModuleGraph, ModuleInfo, collect_imports
from .pickle_safety import PICKLE_RULES, check_pickle_safety
from .races import RACE_RULES, check_races

#: JSON report / baseline schema version (DET-only :func:`run_lint`).
SCHEMA_VERSION = 1

#: JSON schema of the multi-pass :class:`AnalysisReport`.
ANALYSIS_SCHEMA_VERSION = 2

#: a directory containing this file is a fixture tree with *planted*
#: violations: the walker skips it unless it is the scan root itself
SKIP_SENTINEL = ".repro-analysis-skip"

# -- passes --------------------------------------------------------------

PASS_DET = "det"
PASS_PICKLE = "pickle-safety"
PASS_ARCH = "arch"
PASS_RACES = "races"
ALL_PASSES: Tuple[str, ...] = (PASS_DET, PASS_PICKLE, PASS_ARCH, PASS_RACES)

#: rule catalogue contributed by each pass
PASS_RULES: Dict[str, Dict[str, Rule]] = {
    PASS_DET: RULES,
    PASS_PICKLE: PICKLE_RULES,
    PASS_ARCH: ARCH_RULES,
    PASS_RACES: RACE_RULES,
}


def rules_for_passes(passes: Sequence[str]) -> Dict[str, Rule]:
    merged: Dict[str, Rule] = {}
    for name in passes:
        merged.update(PASS_RULES[name])
    return dict(sorted(merged.items()))

#: Files where DET101 is suppressed by design: the seeded-stream registry
#: itself has to wrap ``random.Random``.
RAW_RANDOM_ALLOWED = ("sim/rng.py",)

_LINE_PRAGMA = re.compile(
    r"#\s*repro:\s*allow\s*(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)
_FILE_PRAGMA = re.compile(
    r"#\s*repro:\s*allow-file\s*\[(?P<rules>[A-Za-z0-9_,\s]+)\]"
)

#: Sentinel meaning "every rule" inside a pragma rule set.
_ALL_RULES = "*"


def _parse_rules(raw: Optional[str]) -> Set[str]:
    if raw is None:
        return {_ALL_RULES}
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


@dataclass
class PragmaIndex:
    """Suppressions declared inside one source file."""

    line_allows: Dict[int, Set[str]] = field(default_factory=dict)
    file_allows: Set[str] = field(default_factory=set)

    @classmethod
    def scan(cls, source_lines: List[str]) -> "PragmaIndex":
        index = cls()
        for number, line in enumerate(source_lines, start=1):
            if "repro:" not in line:
                continue
            file_match = _FILE_PRAGMA.search(line)
            if file_match:
                index.file_allows |= _parse_rules(file_match.group("rules"))
                continue
            line_match = _LINE_PRAGMA.search(line)
            if line_match:
                index.line_allows.setdefault(number, set()).update(
                    _parse_rules(line_match.group("rules"))
                )
        return index

    def _matches(self, allowed: Set[str], rule: str) -> bool:
        return _ALL_RULES in allowed or rule in allowed

    def suppresses(self, finding: Finding, end_line: Optional[int] = None) -> bool:
        if self._matches(self.file_allows, finding.rule):
            return True
        last = end_line or finding.line
        lines = (finding.line,) if last == finding.line else (finding.line, last)
        for line in lines:
            allowed = self.line_allows.get(line)
            if allowed and self._matches(allowed, finding.rule):
                return True
        return False

    def to_dict(self) -> Dict:
        """Cache serialization (whole-program passes re-check pragmas
        for files whose per-file results came from the cache)."""
        return {
            "file_allows": sorted(self.file_allows),
            "line_allows": {
                str(line): sorted(rules)
                for line, rules in sorted(self.line_allows.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "PragmaIndex":
        index = cls()
        index.file_allows = set(payload.get("file_allows", ()))
        index.line_allows = {
            int(line): set(rules)
            for line, rules in payload.get("line_allows", {}).items()
        }
        return index


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> Dict:
        return {
            "schema": SCHEMA_VERSION,
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "parse_errors": list(self.parse_errors),
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "by_rule": self.by_rule(),
            },
            "rules": {
                rule_id: {
                    "title": rule.title,
                    "severity": rule.severity,
                    "hint": rule.hint,
                }
                for rule_id, rule in sorted(RULES.items())
            },
            "findings": [
                {
                    "rule": f.rule,
                    "severity": f.severity,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                    "hint": f.hint,
                    "text": f.text,
                }
                for f in self.findings
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def _iter_python_files(paths: Iterable[str], root: str) -> List[str]:
    """Absolute paths of every ``.py`` file under ``paths``, sorted."""
    out: Set[str] = set()
    for path in paths:
        absolute = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(absolute):
            if absolute.endswith(".py"):
                out.add(os.path.abspath(absolute))
            continue
        for dirpath, dirnames, filenames in os.walk(absolute):
            if SKIP_SENTINEL in filenames and \
                    os.path.abspath(dirpath) != os.path.abspath(absolute):
                # fixture tree with planted violations: invisible to a
                # repo-wide walk, scannable when targeted explicitly
                dirnames[:] = []
                continue
            dirnames[:] = sorted(
                d for d in dirnames
                if d != "__pycache__" and not d.startswith(".")
            )
            for name in filenames:
                if name.endswith(".py"):
                    out.add(os.path.abspath(os.path.join(dirpath, name)))
    return sorted(out)


def _relpath(path: str, root: str) -> str:
    rel = os.path.relpath(path, root)
    return rel.replace(os.sep, "/")


def scan_file(
    absolute: str, rel: str
) -> Tuple[List[Finding], int, Optional[str]]:
    """Lint one file.

    Returns ``(findings, suppressed_count, parse_error)``; a file that
    fails to parse produces no findings and a non-None error string.
    """
    with open(absolute, "r", encoding="utf-8") as fh:
        source = fh.read()
    allow_raw = any(rel.endswith(suffix) for suffix in RAW_RANDOM_ALLOWED)
    try:
        findings = detect(source, rel, allow_raw_random=allow_raw)
    except SyntaxError as exc:
        return [], 0, f"{rel}: {exc.msg} (line {exc.lineno})"
    pragmas = PragmaIndex.scan(source.splitlines())
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        if pragmas.suppresses(finding, finding.end_line):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed, None


def run_lint(paths: Iterable[str], root: str) -> LintReport:
    """Lint every Python file under ``paths`` (relative to ``root``)."""
    report = LintReport()
    for absolute in _iter_python_files(paths, root):
        rel = _relpath(absolute, root)
        findings, suppressed, parse_error = scan_file(absolute, rel)
        report.files_scanned += 1
        report.suppressed += suppressed
        if parse_error is not None:
            report.parse_errors.append(parse_error)
        report.findings.extend(findings)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


# -- baselines -----------------------------------------------------------


def baseline_from_report(report: LintReport) -> Dict:
    """Serializable baseline: fingerprint -> occurrence count."""
    counts: Dict[str, int] = {}
    for finding in report.findings:
        counts[finding.fingerprint] = counts.get(finding.fingerprint, 0) + 1
    return {
        "schema": SCHEMA_VERSION,
        "fingerprints": dict(sorted(counts.items())),
    }


def save_baseline(baseline: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_baseline(path: str) -> Dict[str, int]:
    """Fingerprint counts from a baseline file (empty if absent)."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        raw = json.load(fh)
    fingerprints = raw.get("fingerprints", {})
    return {str(k): int(v) for k, v in fingerprints.items()}


# -- multi-pass whole-program analysis -----------------------------------


@dataclass
class AnalysisReport(LintReport):
    """A :class:`LintReport` produced by the multi-pass analyzer.

    Adds the active pass list, per-family summaries, and cache counters
    (counters are *not* part of :meth:`to_dict` — reports must be
    byte-identical with the cache hot, cold, or disabled).
    """

    passes: Tuple[str, ...] = ALL_PASSES
    cache_hits: int = 0
    cache_misses: int = 0

    def by_family(self) -> Dict[str, Dict[str, int]]:
        """family -> {"errors": n, "warnings": n} over all findings."""
        out: Dict[str, Dict[str, int]] = {}
        for name in self.passes:
            for rule_id in PASS_RULES[name]:
                out.setdefault(
                    rule_family(rule_id), {"errors": 0, "warnings": 0}
                )
        for finding in self.findings:
            bucket = out.setdefault(
                finding.family, {"errors": 0, "warnings": 0}
            )
            key = "errors" if finding.severity == "error" else "warnings"
            bucket[key] += 1
        return dict(sorted(out.items()))

    def to_dict(self) -> Dict:
        payload = super().to_dict()
        payload["schema"] = ANALYSIS_SCHEMA_VERSION
        payload["passes"] = list(self.passes)
        payload["summary"]["by_family"] = self.by_family()
        payload["rules"] = {
            rule_id: {
                "title": rule.title,
                "severity": rule.severity,
                "hint": rule.hint,
            }
            for rule_id, rule in rules_for_passes(self.passes).items()
        }
        return payload


def _analyze_source(
    source: str,
    rel: str,
    passes: Sequence[str],
    contract: LayerContract,
) -> Dict:
    """Compute one file's cacheable analysis entry (all products)."""
    lines = source.splitlines()
    pragmas = PragmaIndex.scan(lines)
    entry: Dict = {
        "parse_error": None,
        "passes": {},
        "imports": [],
        "pragmas": pragmas.to_dict(),
    }
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        entry["parse_error"] = f"{rel}: {exc.msg} (line {exc.lineno})"
        for name in passes:
            entry["passes"][name] = {"findings": [], "suppressed": 0}
        return entry

    info = collect_imports(tree, rel, lines)
    entry["imports"] = [
        {
            "target": edge.target,
            "line": edge.line,
            "col": edge.col,
            "lazy": edge.lazy,
            "type_checking": edge.type_checking,
            "maybe_attribute": edge.maybe_attribute,
            "text": edge.text,
        }
        for edge in info.edges
    ]

    for name in passes:
        if name == PASS_DET:
            allow_raw = any(
                rel.endswith(suffix) for suffix in RAW_RANDOM_ALLOWED
            )
            found = detect(
                source, rel, allow_raw_random=allow_raw, tree=tree
            )
        elif name == PASS_PICKLE:
            found = check_pickle_safety(tree, rel, lines)
        elif name == PASS_ARCH:
            found = check_module_layers(info, contract)
        elif name == PASS_RACES:
            found = check_races(tree, rel, lines)
        else:
            raise ValueError(f"unknown analysis pass {name!r}")
        kept: List[Dict] = []
        suppressed = 0
        for finding in found:
            if pragmas.suppresses(finding, finding.end_line):
                suppressed += 1
            else:
                kept.append(finding.to_cache_dict())
        entry["passes"][name] = {
            "findings": kept, "suppressed": suppressed,
        }
    return entry


def _module_info_from_entry(rel: str, entry: Dict) -> ModuleInfo:
    from .graph import module_name_for

    edges = [
        ImportEdge(
            target=e["target"],
            line=int(e["line"]),
            col=int(e["col"]),
            lazy=bool(e["lazy"]),
            type_checking=bool(e["type_checking"]),
            maybe_attribute=bool(e.get("maybe_attribute", False)),
            text=str(e.get("text", "")),
        )
        for e in entry.get("imports", ())
    ]
    return ModuleInfo(path=rel, module=module_name_for(rel), edges=edges)


def analysis_salt(
    passes: Sequence[str] = ALL_PASSES,
    contract: LayerContract = DEFAULT_CONTRACT,
) -> str:
    """Cache salt folding the pass set, rule catalogue and contract.

    Any detector upgrade (new rule id), contract edit, or pass-set
    change yields a fresh salt, so stale cache generations are never
    even addressed.
    """
    return version_salt(
        ",".join(passes),
        ",".join(sorted(rules_for_passes(passes))),
        contract.fingerprint(),
    )


def run_analysis(
    paths: Iterable[str],
    root: str,
    *,
    passes: Sequence[str] = ALL_PASSES,
    cache: Optional[AnalysisCache] = None,
    contract: LayerContract = DEFAULT_CONTRACT,
) -> AnalysisReport:
    """Run the requested passes over every Python file under ``paths``.

    With a cache, per-file work is skipped for files whose (path,
    content, analyzer version) triple has been seen before; the report
    is byte-identical either way.  Whole-program products (ARCH602
    cycles) are recomputed every run from the per-file import lists.
    """
    for name in passes:
        if name not in PASS_RULES:
            raise ValueError(
                f"unknown analysis pass {name!r}; "
                f"expected one of {', '.join(ALL_PASSES)}"
            )
    report = AnalysisReport(passes=tuple(passes))
    entries: List[Tuple[str, Dict]] = []
    for absolute in _iter_python_files(paths, root):
        rel = _relpath(absolute, root)
        with open(absolute, "rb") as fh:
            content = fh.read()
        entry: Optional[Dict] = None
        key = ""
        if cache is not None:
            key = cache.key(rel, content)
            cached = cache.load(key)
            if cached is not None and all(
                name in cached.get("passes", {}) for name in passes
            ):
                entry = cached
        if entry is None:
            source = content.decode("utf-8")
            entry = _analyze_source(source, rel, passes, contract)
            if cache is not None:
                cache.store(key, entry)
        report.files_scanned += 1
        entries.append((rel, entry))
        if entry["parse_error"] is not None:
            report.parse_errors.append(entry["parse_error"])
            continue
        for name in passes:
            per_pass = entry["passes"][name]
            report.suppressed += per_pass["suppressed"]
            report.findings.extend(
                Finding.from_cache_dict(f) for f in per_pass["findings"]
            )

    if PASS_ARCH in passes:
        graph = ModuleGraph(
            _module_info_from_entry(rel, entry)
            for rel, entry in entries
            if entry["parse_error"] is None
        )
        pragma_by_path = {
            rel: PragmaIndex.from_dict(entry.get("pragmas", {}))
            for rel, entry in entries
        }
        for finding in check_cycles(graph):
            pragmas = pragma_by_path.get(finding.path)
            if pragmas is not None and pragmas.suppresses(
                finding, finding.end_line
            ):
                report.suppressed += 1
            else:
                report.findings.append(finding)

    if cache is not None:
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def new_findings(
    report: LintReport, baseline: Dict[str, int]
) -> List[Finding]:
    """Findings not covered by the baseline.

    For each fingerprint, the first ``baseline[fp]`` occurrences (in
    path/line order) are considered historical; everything beyond that
    count is new.  A fingerprint absent from the baseline is entirely new.
    """
    remaining = dict(baseline)
    fresh: List[Finding] = []
    for finding in report.findings:
        credit = remaining.get(finding.fingerprint, 0)
        if credit > 0:
            remaining[finding.fingerprint] = credit - 1
        else:
            fresh.append(finding)
    return fresh
