"""Architecture layering pass (``ARCH6xx``).

The repo's "refactor freely" rule is only safe while the layer DAG holds:
``core`` and ``sim`` must stay buildable without the orchestration
layers above them (``exec``, ``fleet``, ``xil``, ``analysis``), or the
fork/pickle boundaries those layers rely on silently invert.  This pass
enforces a **declared** contract rather than whatever the imports happen
to be today, so an accidental upward import fails CI the moment it
lands:

========  ==============================================================
ARCH601   top-level import violates the layer contract (load-time edge)
ARCH602   top-level import cycle between modules
ARCH603   lazy (function-local) import violates the contract — the
          sanctioned escape hatch for run-time upward dispatch; every
          site carries a pragma with its rationale
ARCH604   package missing from the layer contract (declare it first)
========  ==============================================================

``if TYPE_CHECKING:`` imports are erased at run time and exempt.  The
contract below is the bottom-up build order documented in DESIGN.md;
``errors`` and ``obs`` are foundation layers importable everywhere, and
``obs`` in particular is the one dependency every layer is allowed so
instrumentation never fights the architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional

from .detectors import Finding, Rule, SEVERITY_ERROR, SEVERITY_WARNING
from .graph import ImportEdge, ModuleGraph, ModuleInfo

ARCH_RULES: Dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule(
            "ARCH601",
            "top-level import violates the layer contract",
            SEVERITY_ERROR,
            "move the shared abstraction into a lower layer (the job "
            "protocol lives in repro.jobs for exactly this reason) or "
            "invert the dependency with a callback/registry",
        ),
        Rule(
            "ARCH602",
            "top-level import cycle",
            SEVERITY_ERROR,
            "break the cycle: extract the shared piece into a lower "
            "module or make one direction a lazy run-time import",
        ),
        Rule(
            "ARCH603",
            "lazy import crosses the layer contract upward",
            SEVERITY_WARNING,
            "acceptable only for run-time dispatch that re-enters an "
            "upper subsystem; keep it function-local and pragma it with "
            "the rationale (# repro: allow[ARCH603] -- why)",
        ),
        Rule(
            "ARCH604",
            "package missing from the declared layer contract",
            SEVERITY_WARNING,
            "add the package to LayerContract.layers in "
            "repro/analysis/arch.py with its allowed dependencies",
        ),
    )
}


@dataclass(frozen=True)
class LayerContract:
    """Declared layer DAG: package -> packages it may import.

    ``errors`` and ``obs`` are foundations; listing a package in
    ``universal`` allows every layer to import it without repeating it
    in each entry.  The root package facade (``repro/__init__.py``)
    re-exports everything and is exempt.
    """

    root: str = "repro"
    universal: FrozenSet[str] = frozenset({"errors", "obs"})
    layers: Mapping[str, FrozenSet[str]] = field(default_factory=dict)

    def allowed(self, package: str) -> Optional[FrozenSet[str]]:
        deps = self.layers.get(package)
        if deps is None:
            return None
        return deps | self.universal | {package}

    def fingerprint(self) -> str:
        """Stable serialization — part of the analysis cache key, so
        editing the contract invalidates cached layer verdicts."""
        parts = [self.root, ",".join(sorted(self.universal))]
        for pkg in sorted(self.layers):
            parts.append(f"{pkg}:{','.join(sorted(self.layers[pkg]))}")
        return ";".join(parts)


def _fs(*names: str) -> FrozenSet[str]:
    return frozenset(names)


#: The repo's declared layer DAG (DESIGN.md "Architecture layering").
#: Bottom-up: sim/hw are foundations, jobs is the producer/executor
#: protocol, core composes the platform, and the orchestration layers
#: (exec, dse, faults, fleet, xil) stack on top.  ``analysis`` is a
#: leaf tool: nothing imports it, and it sees only the kernel.
DEFAULT_CONTRACT = LayerContract(
    layers={
        "errors": _fs(),
        "obs": _fs(),
        "hw": _fs(),
        "sim": _fs(),
        "jobs": _fs("sim"),
        "network": _fs("hw", "sim"),
        "osal": _fs("hw", "sim"),
        "middleware": _fs("hw", "sim", "network"),
        "model": _fs("hw", "sim", "network", "osal", "middleware"),
        "workloads": _fs("hw", "sim", "osal", "model"),
        "security": _fs("hw", "sim", "network", "middleware", "model"),
        "baselines": _fs("hw", "sim", "model"),
        "core": _fs(
            "hw", "sim", "jobs", "network", "osal", "middleware",
            "model", "security",
        ),
        "exec": _fs("sim", "jobs"),
        "dse": _fs("sim", "jobs", "osal", "model", "exec"),
        "faults": _fs(
            "hw", "sim", "jobs", "network", "osal", "middleware",
            "model", "security", "core", "exec",
        ),
        "fleet": _fs(
            "hw", "sim", "jobs", "osal", "model", "security",
            "core", "exec", "faults",
        ),
        "xil": _fs(
            "hw", "sim", "jobs", "osal", "middleware", "model",
            "security", "core", "exec", "faults",
        ),
        "analysis": _fs("sim"),
    }
)


def _target_package(target: str, root: str) -> Optional[str]:
    parts = target.split(".")
    if parts[0] != root:
        return None
    if len(parts) == 1:
        return ""
    return parts[1]


def check_module_layers(
    info: ModuleInfo, contract: LayerContract = DEFAULT_CONTRACT
) -> List[Finding]:
    """Per-file layer verdicts (ARCH601/603/604) for one module.

    Pure function of (module info, contract) — cacheable per file with
    the contract fingerprint folded into the cache key.
    """
    findings: List[Finding] = []
    package = info.package(contract.root)
    if package is None:
        return findings  # tests/benchmarks are not layered
    if package == "":
        return findings  # the root facade re-exports everything
    allowed = contract.allowed(package)

    def _report(rule_id: str, edge: ImportEdge, message: str) -> None:
        rule = ARCH_RULES[rule_id]
        findings.append(
            Finding(
                rule=rule_id,
                severity=rule.severity,
                path=info.path,
                line=edge.line,
                col=edge.col,
                message=message,
                hint=rule.hint,
                text=edge.text,
                end_line=edge.line,
            )
        )

    if allowed is None:
        if info.edges:
            first = min(info.edges, key=lambda e: (e.line, e.col))
        else:
            first = ImportEdge(target="", line=1, col=0)
        _report(
            "ARCH604", first,
            f"package {contract.root}.{package!r} is not declared in the "
            "layer contract",
        )
        return findings

    seen: set = set()
    for edge in info.edges:
        if edge.type_checking:
            continue
        target_pkg = _target_package(edge.target, contract.root)
        if target_pkg is None or target_pkg == "":
            continue  # stdlib/third-party, or the root facade
        if target_pkg in allowed:
            continue
        if edge.maybe_attribute and contract.layers.get(target_pkg) is None:
            # `from repro import Name`: Name is likely an attribute of
            # the facade, not an undeclared package — never ARCH604
            continue
        key = (edge.line, target_pkg)
        if key in seen:
            continue  # base edge already reported this line/package
        seen.add(key)
        if contract.layers.get(target_pkg) is None:
            _report(
                "ARCH604", edge,
                f"import of undeclared package "
                f"{contract.root}.{target_pkg} — declare it in the layer "
                "contract first",
            )
        elif edge.lazy:
            _report(
                "ARCH603", edge,
                f"lazy import of {edge.target} reaches {target_pkg!r} "
                f"above layer {package!r}",
            )
        else:
            _report(
                "ARCH601", edge,
                f"layer {package!r} must not import {target_pkg!r} "
                f"(top-level import of {edge.target})",
            )
    return findings


def check_cycles(graph: ModuleGraph) -> List[Finding]:
    """Whole-program ARCH602 findings, one per top-level import cycle.

    Each cycle is reported once, anchored at the lexicographically first
    participating module's first import edge into the cycle — a stable
    anchor that survives unrelated edits elsewhere.
    """
    findings: List[Finding] = []
    rule = ARCH_RULES["ARCH602"]
    for component in graph.cycles():
        members = set(component)
        anchor_module = component[0]
        info = graph.by_module[anchor_module]
        anchor: Optional[ImportEdge] = None
        for edge in info.edges:
            if edge.type_checking or edge.lazy:
                continue
            if any(t in members for t in graph.resolve(edge)):
                anchor = edge
                break
        if anchor is None:  # pragma: no cover - cycle implies an edge
            anchor = ImportEdge(target="", line=1, col=0)
        loop = " -> ".join(component + [component[0]])
        findings.append(
            Finding(
                rule="ARCH602",
                severity=rule.severity,
                path=info.path,
                line=anchor.line,
                col=anchor.col,
                message=f"top-level import cycle: {loop}",
                hint=rule.hint,
                text=anchor.text,
                end_line=anchor.line,
            )
        )
    return findings
