"""repro — a simulation-based reproduction of "Dynamic Platforms for
Uncertainty Management in Future Automotive E/E Architectures" (DAC 2017).

Subpackages, bottom-up:

* :mod:`repro.sim` — discrete-event simulation kernel
* :mod:`repro.hw` — ECU and topology models
* :mod:`repro.network` — CAN / FlexRay / Ethernet / TSN bus simulators
* :mod:`repro.osal` — schedulers, schedulability analysis, memory model
* :mod:`repro.middleware` — service-oriented communication (event/RPC/stream)
* :mod:`repro.model` — system-modeling DSLs and the verification engine
* :mod:`repro.security` — signed packages, update masters, auth, analysis
* :mod:`repro.core` — **the dynamic platform** (the paper's contribution)
* :mod:`repro.dse` — design space exploration
* :mod:`repro.exec` — deterministic parallel experiment execution
* :mod:`repro.xil` — MiL/SiL closed-loop testing
* :mod:`repro.workloads` — synthetic and realistic automotive workloads
* :mod:`repro.baselines` — the static federated architecture
"""

__version__ = "1.0.0"

from . import (  # noqa: F401
    baselines,
    core,
    dse,
    errors,
    exec,
    hw,
    middleware,
    model,
    network,
    osal,
    security,
    sim,
    workloads,
    xil,
)

__all__ = [
    "__version__",
    "baselines",
    "core",
    "dse",
    "errors",
    "exec",
    "hw",
    "middleware",
    "model",
    "network",
    "osal",
    "security",
    "sim",
    "workloads",
    "xil",
]
