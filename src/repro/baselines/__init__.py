"""Baselines: the static federated architecture and whole-firmware-image
update process that the dynamic platform is compared against."""

from .static_platform import (
    DIAG_FLASH_RATE,
    FirmwareImageUpdater,
    FirmwareUpdateReport,
    REBOOT_TIME,
    federated_deployment,
    federated_topology_for,
)

__all__ = [
    "DIAG_FLASH_RATE",
    "FirmwareImageUpdater",
    "FirmwareUpdateReport",
    "REBOOT_TIME",
    "federated_deployment",
    "federated_topology_for",
]
