"""The static, federated baseline the paper argues against (Figure 1).

One function per ECU, whole-firmware-image updates at the dealership:

* :func:`federated_deployment` — maps each app of a system model to its
  own dedicated legacy ECU (building the topology to match), the
  one-function-per-box architecture of today;
* :class:`FirmwareImageUpdater` — models the current update process:
  the vehicle must be stationary, the complete image is flashed, the ECU
  reboots; the function is down for the whole procedure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError
from ..hw.catalog import domain_controller, infotainment_unit, legacy_ecu
from ..hw.topology import BusSpec, Topology
from ..model.applications import AppModel
from ..model.deployment import Deployment
from ..sim import Signal, Simulator

#: Flash throughput over the diagnostic link (bytes/second) — a slow
#: CAN-based bootloader protocol.
DIAG_FLASH_RATE = 30_000.0

#: ECU reboot time after reflash.
REBOOT_TIME = 4.0


def federated_topology_for(apps: List[AppModel]) -> Topology:
    """One legacy ECU per app (spec scaled to the app), CAN backbone."""
    topo = Topology("federated_baseline")
    topo.add_bus(BusSpec("can_a", "can", 500_000.0))
    topo.add_bus(BusSpec("eth_diag", "ethernet", 100_000_000.0))
    gateway = domain_controller("gateway")
    topo.add_ecu(gateway)
    topo.attach("gateway", "can0", "can_a")
    topo.attach("gateway", "eth0", "eth_diag")
    for index, app in enumerate(apps):
        needs_fast = app.needs_gpu or app.memory_kib > 4096
        if needs_fast:
            ecu = infotainment_unit(
                f"ecu_{app.name}",
                ports=(("eth0", "ethernet"),),
            )
            topo.add_ecu(ecu)
            topo.attach(ecu.name, "eth0", "eth_diag")
        else:
            ecu = legacy_ecu(
                f"ecu_{app.name}",
                memory_kib=max(512, int(app.memory_kib * 2)),
                flash_kib=max(2048, int(app.image_kib * 2)),
            )
            topo.add_ecu(ecu)
            topo.attach(ecu.name, "can0", "can_a")
    return topo


def federated_deployment(model_apps: List[AppModel]) -> Tuple[Topology, Deployment]:
    """The baseline mapping: app_i -> ecu_app_i."""
    topo = federated_topology_for(model_apps)
    deployment = Deployment()
    for app in model_apps:
        deployment.place(app.name, f"ecu_{app.name}")
    return topo, deployment


@dataclass
class FirmwareUpdateReport:
    """Measured outcome of a firmware-image update."""

    ecu: str
    image_kib: float
    flash_time: float
    downtime: float
    requires_standstill: bool = True


class FirmwareImageUpdater:
    """Whole-image update process of the static architecture.

    "For most of the ECUs, there is no smaller unit than the complete
    firmware image" — so even a one-line fix reflashes everything, with
    the vehicle parked at the dealership.
    """

    def __init__(self, sim: Simulator, *, flash_rate: float = DIAG_FLASH_RATE) -> None:
        if flash_rate <= 0:
            raise ConfigurationError("flash rate must be positive")
        self.sim = sim
        self.flash_rate = flash_rate
        self.reports: List[FirmwareUpdateReport] = []

    def flash_time(self, firmware_image_kib: float) -> float:
        return firmware_image_kib * 1024.0 / self.flash_rate

    def update(self, ecu_name: str, firmware_image_kib: float) -> Signal:
        """Reflash an ECU; the signal fires with the report when done."""
        result = self.sim.signal(name=f"flash.{ecu_name}")
        flash = self.flash_time(firmware_image_kib)
        downtime = flash + REBOOT_TIME

        def finish() -> None:
            report = FirmwareUpdateReport(
                ecu=ecu_name,
                image_kib=firmware_image_kib,
                flash_time=flash,
                downtime=downtime,
            )
            self.reports.append(report)
            result.fire(report)

        self.sim.schedule(downtime, finish)
        return result
