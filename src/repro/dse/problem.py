"""The mapping problem for design space exploration (Section 2.3).

"The design space exploration can operate on the output of the model and
use simulation or verification approaches to guarantee parameters in all
possible combinations, as well as define the optimal approach for every
combination of functions, parameters and hardware."

A :class:`MappingProblem` fixes the system model and the candidate
placements per app; an :class:`Evaluation` scores one deployment on
feasibility (via the verification engine) and the objective vector
(hardware cost, estimated communication latency, load imbalance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..exec.jobs import JobContext, SimJob

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.pool import ParallelExecutor
from ..model.deployment import Deployment
from ..model.system import SystemModel
from ..model.verification import VerifyCache, verify
from ..osal.analysis import scaled_utilization
from ..osal.task import Criticality


@dataclass(frozen=True)
class Evaluation:
    """Result of scoring one deployment."""

    feasible: bool
    cost: float            # total unit cost of ECUs used
    latency: float         # summed estimated latency over comm pairs (s)
    imbalance: float       # max-min core utilization spread
    violations: int

    @property
    def objectives(self) -> Tuple[float, float, float]:
        return (self.cost, self.latency, self.imbalance)

    def dominates(self, other: "Evaluation") -> bool:
        """Pareto dominance on (cost, latency, imbalance); infeasible
        solutions are dominated by any feasible one."""
        if self.feasible and not other.feasible:
            return True
        if not self.feasible:
            return False
        no_worse = all(a <= b + 1e-12 for a, b in zip(self.objectives, other.objectives))
        better = any(a < b - 1e-12 for a, b in zip(self.objectives, other.objectives))
        return no_worse and better

    def weighted_score(
        self, weights: Tuple[float, float, float] = (1.0, 1000.0, 10.0)
    ) -> float:
        """Scalarised score (lower is better); infeasible gets a penalty
        proportional to the violation count so search can climb out."""
        base = sum(w * o for w, o in zip(weights, self.objectives))
        if not self.feasible:
            base += 1e6 + 1e4 * self.violations
        return base


class MappingProblem:
    """App-to-ECU mapping with per-app candidate sets."""

    def __init__(
        self,
        model: SystemModel,
        *,
        candidates: Optional[Dict[str, List[Tuple[str, int]]]] = None,
    ) -> None:
        self.model = model
        if candidates is None:
            candidates = self._default_candidates()
        self.candidates = candidates
        self.app_names = sorted(candidates)
        missing = [a.name for a in model.apps if a.name not in candidates]
        if missing:
            raise ConfigurationError(f"no candidates for apps: {missing}")
        for app, options in candidates.items():
            if not options:
                raise ConfigurationError(f"empty candidate set for {app!r}")
        self.evaluations = 0
        # deployment-independent verification facts (structural checks,
        # redundancy counts, routes, latency estimates) are computed once
        # and reused across every evaluate() call; the cache pickles with
        # the problem, so executor workers receive it warm
        self.cache = VerifyCache(model)

    def _default_candidates(self) -> Dict[str, List[Tuple[str, int]]]:
        """Every app may go on every (ECU, core) pair that could host it."""
        out: Dict[str, List[Tuple[str, int]]] = {}
        for app in self.model.apps:
            options = []
            for ecu in self.model.topology.ecus:
                if app.has_deterministic_tasks and not ecu.os_class.supports_deterministic:
                    continue
                if app.needs_gpu and not ecu.has_gpu:
                    continue
                if app.memory_kib > ecu.memory_kib:
                    continue
                for core in range(ecu.cores):
                    options.append((ecu.name, core))
            out[app.name] = options or [
                (self.model.topology.ecus[0].name, 0)
            ]
        return out

    # -- genotype handling ---------------------------------------------------------

    def genome_length(self) -> int:
        return len(self.app_names)

    def genome_bounds(self) -> List[int]:
        """Number of candidate options per gene position."""
        return [len(self.candidates[a]) for a in self.app_names]

    def decode(self, genome: List[int]) -> Deployment:
        """Turn an index vector into a deployment."""
        if len(genome) != len(self.app_names):
            raise ConfigurationError("genome length mismatch")
        deployment = Deployment()
        for app_name, gene in zip(self.app_names, genome):
            options = self.candidates[app_name]
            ecu, core = options[gene % len(options)]
            deployment.place(app_name, ecu, core)
        return deployment

    # -- scoring --------------------------------------------------------------------

    def evaluate(self, deployment: Deployment) -> Evaluation:
        """Verify and score one deployment."""
        self.evaluations += 1
        result = verify(self.model, deployment, cache=self.cache)
        cost = sum(
            self.model.topology.ecu(name).unit_cost
            for name in deployment.used_ecus()
        )
        latency = 0.0
        for pair in self.cache.communication_pairs():
            if deployment.is_placed(pair.producer) and deployment.is_placed(pair.consumer):
                latency += self.cache.estimate_latency(
                    deployment.ecu_of(pair.producer),
                    deployment.ecu_of(pair.consumer),
                    pair.payload_bytes,
                )
        utilizations: List[float] = []
        for ecu_name in deployment.used_ecus():
            try:
                spec = self.model.topology.ecu(ecu_name)
            except ConfigurationError:
                continue
            for core in range(spec.cores):
                tasks = [
                    t
                    for a in deployment.apps_on_core(ecu_name, core)
                    for t in self.model.app(a).tasks
                    if t.criticality is Criticality.DETERMINISTIC
                ]
                if tasks:
                    utilizations.append(
                        scaled_utilization(tasks, spec.speed_factor)
                    )
        imbalance = (max(utilizations) - min(utilizations)) if len(utilizations) > 1 else 0.0
        return Evaluation(
            feasible=result.ok,
            cost=cost,
            latency=latency,
            imbalance=imbalance,
            violations=len(result.errors),
        )

    def evaluate_genome(self, genome: List[int]) -> Evaluation:
        return self.evaluate(self.decode(genome))


class GenomeBatchJob(SimJob):
    """Picklable evaluation entry point for parallel DSE.

    Carries only a chunk of genomes; the problem (with its full system
    model) travels separately as the batch's **shared context** — pickled
    once per worker and cached there, so a GA running many generations
    against one warm pool ships the model ``workers`` times total, not
    ``workers × generations`` times.  Evaluation is pure (verification +
    analytic objectives, no RNG), so results are identical wherever the
    chunk runs.
    """

    def __init__(self, job_id: str, genomes: List[List[int]]) -> None:
        self.job_id = job_id
        self.genomes = genomes

    def run(self, ctx: JobContext) -> List[Evaluation]:
        problem: MappingProblem = ctx.shared
        evaluated = ctx.metrics.counter("dse.evaluations")
        evaluated.inc(len(self.genomes))
        return [problem.evaluate_genome(g) for g in self.genomes]


def evaluate_genomes(
    problem: MappingProblem,
    genomes: List[List[int]],
    executor: Optional["ParallelExecutor"] = None,
    *,
    tag: str = "batch",
) -> List[Evaluation]:
    """Evaluate a batch of genomes, serially or through an executor.

    With ``executor=None`` this is a plain in-process loop; otherwise the
    batch is split into one :class:`GenomeBatchJob` per executor worker
    slot.  Both paths return evaluations in genome order and produce
    identical results — the search engines call this at every fan-out
    point so parallelism never changes a trajectory.
    """
    if executor is None or executor.workers <= 1 or len(genomes) <= 1:
        return [problem.evaluate_genome(g) for g in genomes]
    # the problem ships once per worker as shared context; jobs carry
    # only genomes, so one job per worker is enough — over-splitting
    # into workers*2 jobs just multiplies dispatch round-trips
    batches = executor.plan_batches(len(genomes))
    chunk = max(1, -(-len(genomes) // batches))
    jobs = [
        GenomeBatchJob(f"dse.{tag}.{i}", genomes[i:i + chunk])
        for i in range(0, len(genomes), chunk)
    ]
    evaluations: List[Evaluation] = []
    for batch in executor.run(jobs, context=problem):
        evaluations.extend(batch)
    # worker-side copies of the problem counted their own evaluations;
    # mirror the count on the caller's instance
    problem.evaluations += len(genomes)
    return evaluations
