"""Search engines for the mapping problem: GA, SA, random and exhaustive.

All engines draw randomness from a named
:class:`~repro.sim.rng.RngStreams` stream so explorations are exactly
reproducible, and all maintain the same :class:`ParetoArchive` so results
are comparable across engines (the C10 benchmark races them).

Every engine accepts an optional
:class:`~repro.exec.pool.ParallelExecutor`.  Candidate *generation* stays
sequential (it owns the RNG stream), but candidate *evaluation* — the
expensive part: verification plus objective scoring — fans out in
batches through :func:`~repro.dse.problem.evaluate_genomes`.  Because
genomes are generated before any batch is scored and scoring is pure,
the search trajectory is byte-identical with and without an executor.

Pass one **warm** executor (``executor.warm_up()``, or
:func:`~repro.exec.pool.warm_executor`) and reuse it across engines and
generations: workers import :mod:`repro` once, the mapping problem ships
to each worker once as shared context, and every subsequent batch pays
only per-genome dispatch.  Building a fresh pool per search re-pays the
spawn/import tax the warm pool exists to amortize.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from ..errors import ConfigurationError
from ..sim.rng import RngStreams
from .problem import Evaluation, MappingProblem, evaluate_genomes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.pool import ParallelExecutor


@dataclass
class Candidate:
    """One explored solution."""

    genome: List[int]
    evaluation: Evaluation

    @property
    def score(self) -> float:
        return self.evaluation.weighted_score()


class ParetoArchive:
    """Non-dominated feasible solutions found so far."""

    def __init__(self) -> None:
        self.members: List[Candidate] = []

    def offer(self, candidate: Candidate) -> bool:
        """Insert if non-dominated; returns True if accepted.

        Single pass: each member is checked once for dominating the
        candidate, duplicating it, or being dominated by it, and the
        surviving member list is built along the way.  (Archive members
        are mutually non-dominated, so a member that rejects the
        candidate can never coexist with one the candidate dominates —
        bailing out early is safe.)
        """
        evaluation = candidate.evaluation
        if not evaluation.feasible:
            return False
        survivors: List[Candidate] = []
        for member in self.members:
            other = member.evaluation
            if other.dominates(evaluation):
                return False
            if member.genome == candidate.genome and other == evaluation:
                return False  # exact duplicate
            if not evaluation.dominates(other):
                survivors.append(member)
        survivors.append(candidate)
        self.members = survivors
        return True

    def best_by_score(self) -> Optional[Candidate]:
        if not self.members:
            return None
        return min(self.members, key=lambda c: c.score)

    def __len__(self) -> int:
        return len(self.members)


@dataclass
class SearchResult:
    """Outcome of one engine run."""

    best: Optional[Candidate]
    archive: ParetoArchive
    evaluations: int
    engine: str

    @property
    def found_feasible(self) -> bool:
        return self.best is not None and self.best.evaluation.feasible


def _random_genome(problem: MappingProblem, rng) -> List[int]:
    return [rng.randrange(n) for n in problem.genome_bounds()]


def _offer_batch(
    archive: ParetoArchive,
    best: Optional[Candidate],
    genomes: List[List[int]],
    evaluations: List[Evaluation],
) -> tuple:
    """Archive a scored batch in genome order; returns (candidates, best)."""
    candidates = []
    for genome, evaluation in zip(genomes, evaluations):
        candidate = Candidate(genome, evaluation)
        archive.offer(candidate)
        if best is None or candidate.score < best.score:
            best = candidate
        candidates.append(candidate)
    return candidates, best


def random_search(
    problem: MappingProblem,
    streams: RngStreams,
    *,
    budget: int = 200,
    stream: str = "dse.random",
    executor: Optional["ParallelExecutor"] = None,
) -> SearchResult:
    """Uniform random sampling — the baseline every heuristic must beat."""
    rng = streams.stream(stream)
    genomes = [_random_genome(problem, rng) for _ in range(budget)]
    scored = evaluate_genomes(problem, genomes, executor, tag="random")
    archive = ParetoArchive()
    _, best = _offer_batch(archive, None, genomes, scored)
    return SearchResult(best, archive, budget, "random")


def exhaustive_search(
    problem: MappingProblem,
    *,
    limit: int = 200_000,
    executor: Optional["ParallelExecutor"] = None,
) -> SearchResult:
    """Enumerate the full space (guarded by ``limit``)."""
    size = 1
    for n in problem.genome_bounds():
        size *= n
    if size > limit:
        raise ConfigurationError(
            f"space of {size} deployments exceeds exhaustive limit {limit}"
        )
    genomes = [
        list(combo)
        for combo in itertools.product(*(range(n) for n in problem.genome_bounds()))
    ]
    scored = evaluate_genomes(problem, genomes, executor, tag="exhaustive")
    archive = ParetoArchive()
    _, best = _offer_batch(archive, None, genomes, scored)
    return SearchResult(best, archive, len(genomes), "exhaustive")


def genetic_search(
    problem: MappingProblem,
    streams: RngStreams,
    *,
    population: int = 30,
    generations: int = 25,
    crossover_rate: float = 0.9,
    mutation_rate: float = 0.15,
    tournament: int = 3,
    stream: str = "dse.ga",
    executor: Optional["ParallelExecutor"] = None,
) -> SearchResult:
    """A plain generational GA with tournament selection and elitism.

    Each generation's offspring genomes are bred first (sequential RNG),
    then scored as one batch — the executor fan-out point.
    """
    rng = streams.stream(stream)
    bounds = problem.genome_bounds()
    archive = ParetoArchive()

    genomes = [_random_genome(problem, rng) for _ in range(population)]
    scored = evaluate_genomes(problem, genomes, executor, tag="ga.init")
    pop, best = _offer_batch(archive, None, genomes, scored)
    evaluations = population

    def pick() -> Candidate:
        contenders = [rng.choice(pop) for _ in range(tournament)]
        return min(contenders, key=lambda c: c.score)

    for generation in range(generations):
        elite = best  # survives unchanged; children may improve on it
        children: List[List[int]] = []
        while len(children) < population - 1:
            parent_a, parent_b = pick(), pick()
            if rng.random() < crossover_rate and len(bounds) > 1:
                cut = rng.randrange(1, len(bounds))
                child = parent_a.genome[:cut] + parent_b.genome[cut:]
            else:
                child = list(parent_a.genome)
            for i in range(len(child)):
                if rng.random() < mutation_rate:
                    child[i] = rng.randrange(bounds[i])
            children.append(child)
        scored = evaluate_genomes(
            problem, children, executor, tag=f"ga.gen{generation}"
        )
        offspring, best = _offer_batch(archive, best, children, scored)
        evaluations += len(children)
        pop = [elite] + offspring
    return SearchResult(best, archive, evaluations, "ga")


def annealing_search(
    problem: MappingProblem,
    streams: RngStreams,
    *,
    budget: int = 600,
    initial_temperature: float = 500.0,
    cooling: float = 0.995,
    neighbourhood: int = 1,
    stream: str = "dse.sa",
    executor: Optional["ParallelExecutor"] = None,
) -> SearchResult:
    """Simulated annealing over single-gene moves.

    With ``neighbourhood=1`` this is classic sequential SA.  A larger
    neighbourhood proposes that many single-gene moves from the current
    solution per temperature step and scores them as one batch (the
    executor fan-out point), then walks them in proposal order applying
    the Metropolis test until one is accepted.  The trajectory for a
    given ``neighbourhood`` is deterministic and executor-independent,
    but different neighbourhood sizes explore differently — it is a
    search parameter, not a tuning knob for speed alone.
    """
    if neighbourhood < 1:
        raise ConfigurationError(
            f"neighbourhood must be >= 1, got {neighbourhood}"
        )
    rng = streams.stream(stream)
    bounds = problem.genome_bounds()
    archive = ParetoArchive()
    current_genome = _random_genome(problem, rng)
    current = Candidate(
        current_genome, evaluate_genomes(problem, [current_genome], None)[0]
    )
    archive.offer(current)
    best = current
    temperature = initial_temperature
    evaluations = 1
    steps = budget // neighbourhood
    for _ in range(steps):
        proposals: List[List[int]] = []
        for _ in range(neighbourhood):
            neighbour = list(current.genome)
            position = rng.randrange(len(bounds))
            neighbour[position] = rng.randrange(bounds[position])
            proposals.append(neighbour)
        scored = evaluate_genomes(problem, proposals, executor, tag="sa")
        evaluations += len(proposals)
        accepted = False
        for genome, evaluation in zip(proposals, scored):
            candidate = Candidate(genome, evaluation)
            archive.offer(candidate)
            if not accepted:
                delta = candidate.score - current.score
                if delta <= 0 or rng.random() < math.exp(
                    -delta / max(temperature, 1e-9)
                ):
                    current = candidate
                    accepted = True
            if candidate.score < best.score:
                best = candidate
        temperature *= cooling
    return SearchResult(best, archive, evaluations, "sa")
