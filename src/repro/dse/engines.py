"""Search engines for the mapping problem: GA, SA, random and exhaustive.

All engines draw randomness from a named
:class:`~repro.sim.rng.RngStreams` stream so explorations are exactly
reproducible, and all maintain the same :class:`ParetoArchive` so results
are comparable across engines (the C10 benchmark races them).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigurationError
from ..sim.rng import RngStreams
from .problem import Evaluation, MappingProblem


@dataclass
class Candidate:
    """One explored solution."""

    genome: List[int]
    evaluation: Evaluation

    @property
    def score(self) -> float:
        return self.evaluation.weighted_score()


class ParetoArchive:
    """Non-dominated feasible solutions found so far."""

    def __init__(self) -> None:
        self.members: List[Candidate] = []

    def offer(self, candidate: Candidate) -> bool:
        """Insert if non-dominated; returns True if accepted."""
        if not candidate.evaluation.feasible:
            return False
        for member in self.members:
            if member.evaluation.dominates(candidate.evaluation):
                return False
            if (
                member.genome == candidate.genome
                and member.evaluation == candidate.evaluation
            ):
                return False  # exact duplicate
        self.members = [
            m
            for m in self.members
            if not candidate.evaluation.dominates(m.evaluation)
        ]
        self.members.append(candidate)
        return True

    def best_by_score(self) -> Optional[Candidate]:
        if not self.members:
            return None
        return min(self.members, key=lambda c: c.score)

    def __len__(self) -> int:
        return len(self.members)


@dataclass
class SearchResult:
    """Outcome of one engine run."""

    best: Optional[Candidate]
    archive: ParetoArchive
    evaluations: int
    engine: str

    @property
    def found_feasible(self) -> bool:
        return self.best is not None and self.best.evaluation.feasible


def _random_genome(problem: MappingProblem, rng) -> List[int]:
    return [rng.randrange(n) for n in problem.genome_bounds()]


def random_search(
    problem: MappingProblem,
    streams: RngStreams,
    *,
    budget: int = 200,
    stream: str = "dse.random",
) -> SearchResult:
    """Uniform random sampling — the baseline every heuristic must beat."""
    rng = streams.stream(stream)
    archive = ParetoArchive()
    best: Optional[Candidate] = None
    for _ in range(budget):
        genome = _random_genome(problem, rng)
        candidate = Candidate(genome, problem.evaluate_genome(genome))
        archive.offer(candidate)
        if best is None or candidate.score < best.score:
            best = candidate
    return SearchResult(best, archive, budget, "random")


def exhaustive_search(problem: MappingProblem, *, limit: int = 200_000) -> SearchResult:
    """Enumerate the full space (guarded by ``limit``)."""
    size = 1
    for n in problem.genome_bounds():
        size *= n
    if size > limit:
        raise ConfigurationError(
            f"space of {size} deployments exceeds exhaustive limit {limit}"
        )
    archive = ParetoArchive()
    best: Optional[Candidate] = None
    count = 0
    for combo in itertools.product(*(range(n) for n in problem.genome_bounds())):
        genome = list(combo)
        candidate = Candidate(genome, problem.evaluate_genome(genome))
        archive.offer(candidate)
        if best is None or candidate.score < best.score:
            best = candidate
        count += 1
    return SearchResult(best, archive, count, "exhaustive")


def genetic_search(
    problem: MappingProblem,
    streams: RngStreams,
    *,
    population: int = 30,
    generations: int = 25,
    crossover_rate: float = 0.9,
    mutation_rate: float = 0.15,
    tournament: int = 3,
    stream: str = "dse.ga",
) -> SearchResult:
    """A plain generational GA with tournament selection and elitism."""
    rng = streams.stream(stream)
    bounds = problem.genome_bounds()
    archive = ParetoArchive()

    def evaluate(genome: List[int]) -> Candidate:
        candidate = Candidate(genome, problem.evaluate_genome(genome))
        archive.offer(candidate)
        return candidate

    pop = [evaluate(_random_genome(problem, rng)) for _ in range(population)]
    evaluations = population
    best = min(pop, key=lambda c: c.score)

    def pick() -> Candidate:
        contenders = [rng.choice(pop) for _ in range(tournament)]
        return min(contenders, key=lambda c: c.score)

    for _ in range(generations):
        next_pop = [best]  # elitism
        while len(next_pop) < population:
            parent_a, parent_b = pick(), pick()
            if rng.random() < crossover_rate and len(bounds) > 1:
                cut = rng.randrange(1, len(bounds))
                child = parent_a.genome[:cut] + parent_b.genome[cut:]
            else:
                child = list(parent_a.genome)
            for i in range(len(child)):
                if rng.random() < mutation_rate:
                    child[i] = rng.randrange(bounds[i])
            candidate = evaluate(child)
            evaluations += 1
            next_pop.append(candidate)
        pop = next_pop
        generation_best = min(pop, key=lambda c: c.score)
        if generation_best.score < best.score:
            best = generation_best
    return SearchResult(best, archive, evaluations, "ga")


def annealing_search(
    problem: MappingProblem,
    streams: RngStreams,
    *,
    budget: int = 600,
    initial_temperature: float = 500.0,
    cooling: float = 0.995,
    stream: str = "dse.sa",
) -> SearchResult:
    """Simulated annealing over single-gene moves."""
    rng = streams.stream(stream)
    bounds = problem.genome_bounds()
    archive = ParetoArchive()
    current_genome = _random_genome(problem, rng)
    current = Candidate(current_genome, problem.evaluate_genome(current_genome))
    archive.offer(current)
    best = current
    temperature = initial_temperature
    for _ in range(budget):
        neighbour = list(current.genome)
        position = rng.randrange(len(bounds))
        neighbour[position] = rng.randrange(bounds[position])
        candidate = Candidate(neighbour, problem.evaluate_genome(neighbour))
        archive.offer(candidate)
        delta = candidate.score - current.score
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
            current = candidate
        if candidate.score < best.score:
            best = candidate
        temperature *= cooling
    return SearchResult(best, archive, budget + 1, "sa")
