"""Design space exploration: mapping problems, GA/SA/random engines and
Pareto archives (paper Section 2.3)."""

from .engines import (
    Candidate,
    ParetoArchive,
    SearchResult,
    annealing_search,
    exhaustive_search,
    genetic_search,
    random_search,
)
from .problem import (
    Evaluation,
    GenomeBatchJob,
    MappingProblem,
    evaluate_genomes,
)

__all__ = [
    "Candidate",
    "Evaluation",
    "GenomeBatchJob",
    "MappingProblem",
    "evaluate_genomes",
    "ParetoArchive",
    "SearchResult",
    "annealing_search",
    "exhaustive_search",
    "genetic_search",
    "random_search",
]
