"""Design space exploration: mapping problems, GA/SA/random engines and
Pareto archives (paper Section 2.3)."""

from .engines import (
    Candidate,
    ParetoArchive,
    SearchResult,
    annealing_search,
    exhaustive_search,
    genetic_search,
    random_search,
)
from .problem import Evaluation, MappingProblem

__all__ = [
    "Candidate",
    "Evaluation",
    "MappingProblem",
    "ParetoArchive",
    "SearchResult",
    "annealing_search",
    "exhaustive_search",
    "genetic_search",
    "random_search",
]
