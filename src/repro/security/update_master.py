"""Update masters (Section 4.1).

"Not all ECUs might have sufficient power to perform cryptographic
operations at runtime.  For such ECUs we propose to use an update master
to which a trust relationship can be established.  This update master can
in turn ensure the security of and administer the update.  To avoid a
single point of failure, the update master would need to be instantiated
in a redundant fashion."

:class:`UpdateMaster` verifies a package on its (capable) host ECU and
forwards the image to the weak target over the network.
:class:`UpdateMasterGroup` fails over between redundant masters.
"""

from __future__ import annotations

from typing import List

from ..errors import SecurityError
from ..hw.ecu import EcuSpec
from ..middleware.endpoint import QOS_BULK, Endpoint
from ..middleware.wire import Message, MessageType
from ..sim import Signal, Simulator
from .crypto import TrustStore
from .package import PackageVerifier, SoftwarePackage


class UpdateMaster:
    """A crypto-capable ECU administering updates for weak ECUs."""

    def __init__(
        self,
        sim: Simulator,
        endpoint: Endpoint,
        ecu: EcuSpec,
        store: TrustStore,
    ) -> None:
        if ecu.crypto_rate <= 0:
            raise SecurityError(
                f"{ecu.name} cannot act as update master without crypto"
            )
        self.sim = sim
        self.endpoint = endpoint
        self.ecu = ecu
        self.verifier = PackageVerifier(sim, ecu, store)
        self.failed = False
        self.installs_administered = 0

    def fail(self) -> None:
        """Take this master out of service (fault injection)."""
        self.failed = True

    def recover(self) -> None:
        self.failed = False

    def administer_install(
        self, package: SoftwarePackage, target_ecu: str
    ) -> Signal:
        """Verify ``package`` here, then push the image to ``target_ecu``.

        The returned signal fires with ``True`` on successful delivery of
        a valid package, ``False`` if the signature check fails.
        """
        if self.failed:
            raise SecurityError(f"update master {self.ecu.name} is down")
        result = self.sim.signal(name=f"um.{package.app.name}")

        def after_verify(ok: bool) -> None:
            if not ok:
                result.fire(False)
                return
            transfer = Message(
                service_id=0x0F0F,
                method_id=1,
                msg_type=MessageType.NOTIFICATION,
                payload_bytes=int(package.image_kib * 1024),
                src=self.endpoint.ecu_name,
                dst=target_ecu,
                payload=package,
                session_id=self.sim.next_session_id(),
            )
            self.installs_administered += 1
            self.endpoint.send(transfer, QOS_BULK).add_callback(
                lambda _m: result.fire(True)
            )

        self.verifier.verify(package).add_callback(after_verify)
        return result


class UpdateMasterGroup:
    """Redundant update masters with automatic failover."""

    def __init__(self, masters: List[UpdateMaster]) -> None:
        if not masters:
            raise SecurityError("need at least one update master")
        self.masters = list(masters)
        self.failovers = 0

    def active_master(self) -> UpdateMaster:
        """The first healthy master.

        Raises:
            SecurityError: if every master is down.
        """
        for index, master in enumerate(self.masters):
            if not master.failed:
                if index > 0:
                    self.failovers += 1
                return master
        raise SecurityError("all update masters are down")

    def administer_install(
        self, package: SoftwarePackage, target_ecu: str
    ) -> Signal:
        """Delegate to the first healthy master."""
        return self.active_master().administer_install(package, target_ecu)
