"""Security layer: package signing, update masters, lightweight
authentication/authorization and probabilistic architecture analysis."""

from .access_control import AccessControlMatrix, permissive_matrix
from .app_analysis import DeploymentSecurityAnalyzer
from .analysis import (
    AttackPath,
    SecurityAnalyzer,
    SecurityAnnotations,
    SecurityReport,
)
from .auth import AuthBroker, SessionToken
from .crypto import Signature, TrustStore, digest
from .package import (
    PackageVerifier,
    SoftwarePackage,
    build_package,
    forged_package,
)
from .update_master import UpdateMaster, UpdateMasterGroup

__all__ = [
    "AccessControlMatrix",
    "AttackPath",
    "AuthBroker",
    "DeploymentSecurityAnalyzer",
    "PackageVerifier",
    "SecurityAnalyzer",
    "SecurityAnnotations",
    "SecurityReport",
    "SessionToken",
    "Signature",
    "SoftwarePackage",
    "TrustStore",
    "UpdateMaster",
    "UpdateMasterGroup",
    "build_package",
    "digest",
    "forged_package",
    "permissive_matrix",
]
