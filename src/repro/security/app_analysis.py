"""Security analysis extended to software functions.

Section 5.4 on the probabilistic-model-checking approach of [11]: "Such
an approach could be extended to also encompass software functions."

:class:`DeploymentSecurityAnalyzer` builds the extended attack graph: on
top of the hardware connectivity (ECUs and buses) it adds one node per
*deployed application*, attached to its host ECU, plus logical edges
along the service bindings of the system model — because a compromised
client can attack the service it is authorized to talk to.  Enforcing the
model-derived access-control matrix therefore *removes* logical edges,
and the analyzer quantifies exactly how much that buys.
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx

from ..errors import ConfigurationError
from ..model.deployment import Deployment
from ..model.system import SystemModel
from .analysis import SecurityAnalyzer, SecurityAnnotations, SecurityReport


class DeploymentSecurityAnalyzer(SecurityAnalyzer):
    """Attack-path analysis over hardware + deployed applications."""

    def __init__(
        self,
        model: SystemModel,
        deployment: Deployment,
        annotations: Optional[SecurityAnnotations] = None,
        *,
        enforce_acl: bool = True,
        max_paths: int = 2000,
    ) -> None:
        super().__init__(model.topology, annotations, max_paths=max_paths)
        self.model = model
        self.deployment = deployment
        self.enforce_acl = enforce_acl
        self._extended = self._build_extended_graph()

    def _build_extended_graph(self) -> nx.Graph:
        graph = self.topology.graph.copy()
        for app in self.model.apps:
            if not self.deployment.is_placed(app.name):
                continue
            ecu = self.deployment.ecu_of(app.name)
            graph.add_node(app.name, kind="app")
            # an app and its host can compromise each other
            graph.add_edge(app.name, ecu, kind="hosting")
        for producer, consumer, interface in self.model.communication_pairs():
            if not (
                self.deployment.is_placed(producer)
                and self.deployment.is_placed(consumer)
            ):
                continue
            # with the ACL enforced, only modelled bindings exist; without
            # it, any app can bind to any service on a reachable ECU — we
            # approximate "no ACL" by fully meshing the apps
            graph.add_edge(consumer, producer, kind="binding")
        if not self.enforce_acl:
            placed = [
                a.name for a in self.model.apps
                if self.deployment.is_placed(a.name)
            ]
            for i, a in enumerate(placed):
                for b in placed[i + 1:]:
                    graph.add_edge(a, b, kind="open_binding")
        return graph

    # -- overridden analysis over the extended graph -------------------------

    def analyse(self, entry_points: List[str], asset: str) -> SecurityReport:
        graph = self._extended
        if asset not in graph:
            raise ConfigurationError(f"unknown asset {asset!r}")
        from .analysis import AttackPath

        paths = []
        for entry in entry_points:
            if entry not in graph:
                raise ConfigurationError(f"unknown entry point {entry!r}")
            if entry == asset:
                paths.append(
                    AttackPath((asset,), self.annotations.probability(asset))
                )
                continue
            try:
                generator = nx.shortest_simple_paths(graph, entry, asset)
            except nx.NetworkXNoPath:
                continue
            # shortest-first enumeration guarantees the dominant (short)
            # paths are counted before the budget runs out
            for count, node_list in enumerate(generator):
                if count >= self.max_paths or len(node_list) > 8:
                    break
                paths.append(
                    AttackPath(tuple(node_list), self.path_probability(node_list))
                )
        if not paths:
            return SecurityReport(asset, 0.0, None, 0)
        miss = 1.0
        for path in paths:
            miss *= 1.0 - path.probability
        best = max(paths, key=lambda p: p.probability)
        return SecurityReport(asset, 1.0 - miss, best, len(paths))

    def acl_benefit(
        self, entry_points: List[str], asset: str
    ) -> tuple:
        """(probability with ACL, probability without) for one asset."""
        with_acl = DeploymentSecurityAnalyzer(
            self.model, self.deployment, self.annotations,
            enforce_acl=True, max_paths=self.max_paths,
        ).analyse(entry_points, asset)
        without = DeploymentSecurityAnalyzer(
            self.model, self.deployment, self.annotations,
            enforce_acl=False, max_paths=self.max_paths,
        ).analyse(entry_points, asset)
        return with_acl.compromise_probability, without.compromise_probability
