"""Simulated cryptographic primitives.

Real asymmetric cryptography is out of scope for a discrete-event
reproduction; what matters for the paper's Section 4 is the *protocol*
behaviour: who holds which key, what verifies against what, and how long
verification takes on which ECU class.  We therefore model:

* content digests with real SHA-256 (cheap, deterministic);
* "signatures" as HMACs under named keys held by a
  :class:`TrustStore` — the store stands in for a PKI: verifying
  against key id *k* succeeds iff the signature was produced with the
  secret registered for *k*;
* verification *cost* as data size divided by the ECU's crypto rate
  (see :data:`repro.hw.ecu.CRYPTO_RATES`).
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass
from typing import Dict

from ..errors import SecurityError


def digest(data: bytes) -> str:
    """SHA-256 hex digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class Signature:
    """A signature over a digest, attributable to a key id."""

    key_id: str
    mac: str

    def __post_init__(self) -> None:
        if not self.key_id or not self.mac:
            raise SecurityError("empty signature fields")


class TrustStore:
    """Holds signing secrets and verifies signatures (PKI stand-in).

    A platform instance trusts exactly the key ids registered in its
    store; an attacker without the secret cannot produce a valid MAC.
    """

    def __init__(self) -> None:
        self._secrets: Dict[str, bytes] = {}
        self._revoked: set = set()

    def generate_key(self, key_id: str) -> str:
        """Create and register a fresh signing key; returns the key id."""
        if key_id in self._secrets:
            raise SecurityError(f"key {key_id!r} already exists")
        self._secrets[key_id] = os.urandom(32)
        return key_id

    def import_key(self, key_id: str, secret: bytes) -> None:
        """Install a known secret (distributing trust to another store)."""
        self._secrets[key_id] = secret

    def export_key(self, key_id: str) -> bytes:
        """Export a secret for distribution to another trust store."""
        try:
            return self._secrets[key_id]
        except KeyError:
            raise SecurityError(f"unknown key {key_id!r}") from None

    def revoke(self, key_id: str) -> None:
        """Mark a key as revoked; verification against it will fail."""
        self._revoked.add(key_id)

    def knows(self, key_id: str) -> bool:
        return key_id in self._secrets and key_id not in self._revoked

    def sign(self, key_id: str, content_digest: str) -> Signature:
        """Sign a digest with key ``key_id``."""
        if key_id not in self._secrets:
            raise SecurityError(f"cannot sign with unknown key {key_id!r}")
        if key_id in self._revoked:
            raise SecurityError(f"cannot sign with revoked key {key_id!r}")
        mac = hmac.new(
            self._secrets[key_id], content_digest.encode("ascii"), hashlib.sha256
        ).hexdigest()
        return Signature(key_id=key_id, mac=mac)

    def verify(self, signature: Signature, content_digest: str) -> bool:
        """Check a signature against a digest.

        Returns ``False`` for unknown keys, revoked keys, or MAC
        mismatches (tampered content or forged signature).
        """
        if not self.knows(signature.key_id):
            return False
        expected = hmac.new(
            self._secrets[signature.key_id],
            content_digest.encode("ascii"),
            hashlib.sha256,
        ).hexdigest()
        return hmac.compare_digest(expected, signature.mac)
