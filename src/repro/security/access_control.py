"""Model-derived distributed access control (Section 4.2).

"Such an access control method needs to define which client is allowed to
access which service.  These definitions should be automatically extracted
from the modeling approach described in Section 2.  This way, the security
model can be checked already at integration time."

:class:`AccessControlMatrix` is built from the
:class:`~repro.model.codegen.MiddlewareConfig` and plugs into both the
service registry (as a binding guard) and the auth broker (as the
authorizer).  Runtime-adjustable wildcard grants cover the paper's data
logger case.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..middleware.registry import ServiceRegistry
from ..model.codegen import MiddlewareConfig


class AccessControlMatrix:
    """Which application may bind to which service id."""

    def __init__(self, allowed: Optional[Dict[str, Set[int]]] = None) -> None:
        self._allowed: Dict[str, Set[int]] = {
            app: set(sids) for app, sids in (allowed or {}).items()
        }
        self._wildcards: Set[str] = set()
        self.checks = 0
        self.denials = 0

    @classmethod
    def from_config(cls, config: MiddlewareConfig) -> "AccessControlMatrix":
        """Extract the matrix from generated middleware configuration."""
        return cls(allowed=config.allowed_bindings)

    # -- policy edits (runtime-adjustable, Section 4.2) -------------------------

    def grant(self, app: str, service_id: int) -> None:
        self._allowed.setdefault(app, set()).add(service_id)

    def deny(self, app: str, service_id: int) -> None:
        self._allowed.get(app, set()).discard(service_id)

    def grant_wildcard(self, app: str) -> None:
        """Give ``app`` access to every service (the data-logger case).

        The paper flags this as security-sensitive; wildcard holders are
        tracked so audits can enumerate them.
        """
        self._wildcards.add(app)

    def revoke_wildcard(self, app: str) -> None:
        self._wildcards.discard(app)

    @property
    def wildcard_holders(self) -> List[str]:
        return sorted(self._wildcards)

    # -- checks --------------------------------------------------------------------

    def allows(self, app: str, service_id: int) -> bool:
        self.checks += 1
        if app in self._wildcards:
            return True
        if service_id in self._allowed.get(app, set()):
            return True
        self.denials += 1
        return False

    def services_of(self, app: str) -> Set[int]:
        return set(self._allowed.get(app, set()))

    # -- integration ---------------------------------------------------------------

    def install_on(self, registry: ServiceRegistry) -> None:
        """Enforce this matrix on every future binding in ``registry``."""
        registry.set_binding_guard(
            lambda client_app, _client_ecu, service_id: self.allows(
                client_app, service_id
            )
        )

    def as_authorizer(self):
        """Adapter for :meth:`repro.security.auth.AuthBroker.set_authorizer`."""
        return lambda client_app, service_id: self.allows(client_app, service_id)


def permissive_matrix() -> AccessControlMatrix:
    """The ablation baseline (D4): everything allowed — the Android-style
    'apps request all available access rights' default the paper warns
    about."""

    class _Permissive(AccessControlMatrix):
        def allows(self, app: str, service_id: int) -> bool:  # noqa: D401
            self.checks += 1
            return True

    return _Permissive()
