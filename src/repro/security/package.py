"""Software package security (Section 4.1).

"It needs to be ensured that software updates can only be delivered by
authenticated authorities."  A :class:`SoftwarePackage` bundles an
application image with a signature; :class:`PackageVerifier` checks it on
an ECU, taking simulated time proportional to the image size and the
ECU's crypto capability.  ECUs without usable crypto must delegate to an
update master (see :mod:`repro.security.update_master`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..errors import SecurityError
from ..hw.ecu import EcuSpec
from ..model.applications import AppModel
from ..sim import Signal, Simulator
from .crypto import Signature, TrustStore, digest


@dataclass(frozen=True)
class SoftwarePackage:
    """An installable, signed application package.

    ``content_digest`` stands in for the full image; tampering is
    simulated by altering it (see :meth:`tampered`).
    """

    app: AppModel
    content_digest: str
    image_kib: float
    signature: Optional[Signature] = None

    @property
    def is_signed(self) -> bool:
        return self.signature is not None

    def tampered(self) -> "SoftwarePackage":
        """A copy whose content no longer matches its signature."""
        return replace(
            self, content_digest=digest(self.content_digest.encode() + b"!")
        )

    def resigned_by(self, store: TrustStore, key_id: str) -> "SoftwarePackage":
        return replace(self, signature=store.sign(key_id, self.content_digest))


def build_package(
    app: AppModel,
    store: TrustStore,
    key_id: str,
    *,
    content: bytes = b"",
) -> SoftwarePackage:
    """Package ``app`` and sign it with ``key_id`` from ``store``."""
    content_digest = digest(content or f"{app.name}:{app.version}".encode())
    return SoftwarePackage(
        app=app,
        content_digest=content_digest,
        image_kib=app.image_kib,
        signature=store.sign(key_id, content_digest),
    )


def forged_package(app: AppModel, *, content: bytes = b"") -> SoftwarePackage:
    """A package signed with a key the platform does not trust."""
    rogue = TrustStore()
    rogue.generate_key("rogue")
    content_digest = digest(content or f"{app.name}:{app.version}".encode())
    return SoftwarePackage(
        app=app,
        content_digest=content_digest,
        image_kib=app.image_kib,
        signature=rogue.sign("rogue", content_digest),
    )


class PackageVerifier:
    """Verifies packages on a specific ECU, modelling crypto time.

    Verification reads the whole image once: time = image bytes / crypto
    rate.  ECUs with :attr:`~repro.hw.ecu.CryptoCapability.NONE` cannot
    verify at all and raise immediately.
    """

    def __init__(self, sim: Simulator, ecu: EcuSpec, store: TrustStore) -> None:
        self.sim = sim
        self.ecu = ecu
        self.store = store
        self.verified = 0
        self.rejected = 0

    @property
    def can_verify(self) -> bool:
        return self.ecu.crypto_rate > 0

    def verification_time(self, package: SoftwarePackage) -> float:
        """Seconds this ECU needs to check the package signature."""
        if not self.can_verify:
            raise SecurityError(
                f"{self.ecu.name}: no crypto capability; delegate to an "
                "update master"
            )
        return package.image_kib * 1024.0 / self.ecu.crypto_rate

    def verify(self, package: SoftwarePackage) -> Signal:
        """Asynchronously verify; the signal fires with ``True``/``False``."""
        duration = self.verification_time(package)
        result = self.sim.signal(name=f"verify.{package.app.name}")
        self.sim.schedule(duration, self._finish, package, result)
        return result

    def _finish(self, package: SoftwarePackage, result: Signal) -> None:
        ok = self.check_now(package)
        result.fire(ok)

    def check_now(self, package: SoftwarePackage) -> bool:
        """Synchronous verdict (no time modelling) — used by tests/backend."""
        if package.signature is None:
            self.rejected += 1
            return False
        ok = self.store.verify(package.signature, package.content_digest)
        if ok:
            self.verified += 1
        else:
            self.rejected += 1
        return ok
