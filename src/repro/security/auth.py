"""Lightweight authentication and authorization (Section 4.2 / ref [10]).

Before a client may use a service, it runs a session-establishment
handshake with the authentication broker: one request/response exchange
that validates the client's credential and issues a session token scoped
to one service.  Subsequent calls present the token (zero marginal cost —
the "lightweight" property of [10]: per-message authentication is folded
into the established session).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict

from ..sim import Signal, Simulator
from .crypto import TrustStore

_token_counter = itertools.count(1)


@dataclass(frozen=True)
class SessionToken:
    """Authorization to use one service, bound to one client app."""

    token_id: int
    client_app: str
    service_id: int
    issued_at: float
    expires_at: float

    def valid_at(self, now: float) -> bool:
        return now <= self.expires_at


class AuthBroker:
    """Issues and validates session tokens.

    Credentials are modelled through the :class:`TrustStore`: a client is
    *authenticated* iff its key id is known (and not revoked).  Whether an
    authenticated client is *authorized* for a service is delegated to the
    access-control policy installed via :meth:`set_authorizer`.
    """

    #: Simulated broker-side processing time per handshake.
    HANDSHAKE_CPU_TIME = 0.0002

    def __init__(
        self,
        sim: Simulator,
        store: TrustStore,
        *,
        token_lifetime: float = 3600.0,
    ) -> None:
        self.sim = sim
        self.store = store
        self.token_lifetime = token_lifetime
        self._authorizer = None
        self._tokens: Dict[int, SessionToken] = {}
        self.handshakes = 0
        self.denials = 0

    def set_authorizer(self, authorizer) -> None:
        """Install the (client_app, service_id) -> bool policy."""
        self._authorizer = authorizer

    def establish_session(
        self, client_app: str, credential_key: str, service_id: int
    ) -> Signal:
        """Run the handshake; the signal fires with a token or ``None``."""
        result = self.sim.signal(name=f"auth.{client_app}")
        self.sim.schedule(
            self.HANDSHAKE_CPU_TIME,
            self._finish_handshake,
            client_app,
            credential_key,
            service_id,
            result,
        )
        return result

    def _finish_handshake(
        self, client_app: str, credential_key: str, service_id: int, result: Signal
    ) -> None:
        self.handshakes += 1
        if not self.store.knows(credential_key):
            self.denials += 1
            result.fire(None)
            return
        if self._authorizer is not None and not self._authorizer(
            client_app, service_id
        ):
            self.denials += 1
            result.fire(None)
            return
        token = SessionToken(
            token_id=next(_token_counter),
            client_app=client_app,
            service_id=service_id,
            issued_at=self.sim.now,
            expires_at=self.sim.now + self.token_lifetime,
        )
        self._tokens[token.token_id] = token
        result.fire(token)

    def validate(self, token: SessionToken, service_id: int) -> bool:
        """Check a presented token: known, unexpired, right service."""
        stored = self._tokens.get(token.token_id)
        if stored is None or stored != token:
            return False
        if token.service_id != service_id:
            return False
        return token.valid_at(self.sim.now)

    def revoke_token(self, token_id: int) -> None:
        self._tokens.pop(token_id, None)

    def revoke_client(self, client_app: str) -> int:
        """Invalidate all sessions of a client. Returns the count."""
        doomed = [
            tid for tid, t in self._tokens.items() if t.client_app == client_app
        ]
        for tid in doomed:
            del self._tokens[tid]
        return len(doomed)

    @property
    def active_sessions(self) -> int:
        return len(self._tokens)
