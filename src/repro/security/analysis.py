"""Probabilistic security analysis of architectures (Section 5.4 / ref [11]).

A lightweight re-implementation of the idea in "Security Analysis of
Automotive Architectures using Probabilistic Model Checking": every
component (ECU, bus, application) carries a per-attempt exploitability
probability; an attacker starts at declared entry points and moves along
the connectivity graph.  We compute, per asset, the probability that at
least one attack path succeeds (assuming independent exploits along a
path, and combining paths with the standard noisy-OR bound), plus the
single most likely path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..errors import ConfigurationError
from ..hw.topology import Topology


@dataclass
class SecurityAnnotations:
    """Exploit probabilities per component.

    ``exploitability[name]`` is the probability that an attacker who can
    interact with the component compromises it.  Unannotated components
    get :attr:`default_exploitability`.
    """

    exploitability: Dict[str, float] = field(default_factory=dict)
    default_exploitability: float = 0.1

    def probability(self, component: str) -> float:
        p = self.exploitability.get(component, self.default_exploitability)
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(
                f"exploitability of {component!r} out of range: {p}"
            )
        return p


@dataclass(frozen=True)
class AttackPath:
    """One attack path with its success probability."""

    nodes: Tuple[str, ...]
    probability: float


@dataclass
class SecurityReport:
    """Result of analysing one asset."""

    asset: str
    compromise_probability: float
    most_likely_path: Optional[AttackPath]
    n_paths: int

    @property
    def exposed(self) -> bool:
        return self.compromise_probability > 0.0


class SecurityAnalyzer:
    """Attack-path analysis over a vehicle topology."""

    def __init__(
        self,
        topology: Topology,
        annotations: Optional[SecurityAnnotations] = None,
        *,
        max_paths: int = 1000,
    ) -> None:
        self.topology = topology
        self.annotations = annotations or SecurityAnnotations()
        self.max_paths = max_paths

    def path_probability(self, nodes: List[str]) -> float:
        """Probability of compromising every node along a path (the entry
        point included — getting a foothold is itself an exploit)."""
        p = 1.0
        for node in nodes:
            p *= self.annotations.probability(node)
        return p

    def analyse(self, entry_points: List[str], asset: str) -> SecurityReport:
        """Probability that an attacker starting at any entry point
        compromises ``asset``."""
        graph = self.topology.graph
        if asset not in graph:
            raise ConfigurationError(f"unknown asset {asset!r}")
        paths: List[AttackPath] = []
        for entry in entry_points:
            if entry not in graph:
                raise ConfigurationError(f"unknown entry point {entry!r}")
            if entry == asset:
                paths.append(AttackPath((asset,), self.annotations.probability(asset)))
                continue
            try:
                simple = nx.all_simple_paths(graph, entry, asset)
            except nx.NodeNotFound:  # pragma: no cover - guarded above
                continue
            for count, node_list in enumerate(simple):
                if count >= self.max_paths:
                    break
                paths.append(
                    AttackPath(tuple(node_list), self.path_probability(node_list))
                )
        if not paths:
            return SecurityReport(asset, 0.0, None, 0)
        # noisy-OR across paths (upper bound; paths share nodes so the true
        # probability is lower — same approximation as the reference tool
        # uses for tractability)
        miss = 1.0
        for path in paths:
            miss *= 1.0 - path.probability
        best = max(paths, key=lambda p: p.probability)
        return SecurityReport(asset, 1.0 - miss, best, len(paths))

    def rank_assets(
        self, entry_points: List[str], assets: List[str]
    ) -> List[SecurityReport]:
        """Analyse several assets, most exposed first."""
        reports = [self.analyse(entry_points, a) for a in assets]
        reports.sort(key=lambda r: r.compromise_probability, reverse=True)
        return reports

    def hardening_effect(
        self, entry_points: List[str], asset: str, component: str, new_p: float
    ) -> Tuple[float, float]:
        """(before, after) compromise probability when ``component`` is
        hardened to exploitability ``new_p``."""
        before = self.analyse(entry_points, asset).compromise_probability
        old = self.annotations.exploitability.get(component)
        self.annotations.exploitability[component] = new_p
        after = self.analyse(entry_points, asset).compromise_probability
        if old is None:
            del self.annotations.exploitability[component]
        else:
            self.annotations.exploitability[component] = old
        return before, after
