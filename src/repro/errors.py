"""Exception hierarchy for the repro package.

All library-specific errors derive from :class:`ReproError` so callers can
catch the whole family with one handler while still distinguishing the
individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """An inconsistency was detected inside the discrete-event kernel."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or contradictory parameters."""


class ModelError(ReproError):
    """A system model (DSL artifact) is malformed."""


class VerificationError(ReproError):
    """The verification engine rejected a model or deployment."""


class SchedulingError(ReproError):
    """A schedule could not be constructed or was violated at runtime."""


class AdmissionError(ReproError):
    """The platform rejected an application at admission control."""


class UpdateError(ReproError):
    """A staged update could not be carried out safely."""


class SecurityError(ReproError):
    """A security check (signature, authentication, authorization) failed."""


class NetworkError(ReproError):
    """A frame could not be transmitted or routed."""


class PlatformError(ReproError):
    """The dynamic platform detected an illegal lifecycle transition."""


class ExecutionError(ReproError):
    """A parallel experiment batch could not complete (failed jobs)."""
